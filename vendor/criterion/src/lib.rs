//! Minimal, dependency-free re-implementation of the subset of the
//! `criterion` API this workspace's benches use, so `cargo build` and
//! `cargo bench` work without registry access.
//!
//! Each benchmark runs its closure for a small number of timed batches and
//! prints the mean wall-clock time per iteration. No statistics, plots, or
//! baselines — swap the real crate back in when the registry is reachable.

#![forbid(unsafe_code)]
use std::time::Instant;

/// Throughput annotation attached to a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Times `f` over a fixed batch of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm up once so lazy setup doesn't pollute the measurement.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64;
    }
}

/// Shim benchmark driver mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

fn run_one(name: &str, sample_size: u64, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: sample_size.max(1),
        elapsed_ns: 0.0,
    };
    f(&mut b);
    let per_iter_ns = b.elapsed_ns / b.iters as f64;
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (per_iter_ns / 1e9);
            println!("{name:<40} {per_iter_ns:>14.1} ns/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (per_iter_ns / 1e9);
            println!("{name:<40} {per_iter_ns:>14.1} ns/iter  {rate:>14.0} B/s");
        }
        None => println!("{name:<40} {per_iter_ns:>14.1} ns/iter"),
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, None, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.parent.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a benchmark group; supports both the plain and the
/// `name = ...; config = ...; targets = ...` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
