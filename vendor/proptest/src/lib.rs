//! Minimal, dependency-free re-implementation of the subset of the
//! `proptest` API this workspace uses, so property tests compile and run
//! without registry access.
//!
//! The shim keeps the same surface — `proptest!`, `prop_assert*`, range
//! strategies, `any::<T>()`, `proptest::collection::vec` — but drives each
//! property with a fixed number of deterministically generated cases
//! instead of full shrinking-capable generation. That is enough to make
//! `cargo test --features proptest` meaningful offline; on a machine with
//! registry access the real crate can be swapped back in without touching
//! the tests.

#![forbid(unsafe_code)]
use core::ops::Range;

/// Deterministic RNG used to drive generated cases (splitmix64 stream).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A value generator. The shim's strategies generate directly (no
/// shrinking), which is all the workspace's properties need.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<i64> {
    type Value = i64;
    fn sample(&self, rng: &mut TestRng) -> i64 {
        let span = (self.end - self.start) as u64;
        self.start + rng.below(span.max(1)) as i64
    }
}

impl Strategy for Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        let span = self.end - self.start;
        self.start + rng.below(span.max(1))
    }
}

impl Strategy for Range<u32> {
    type Value = u32;
    fn sample(&self, rng: &mut TestRng) -> u32 {
        let span = (self.end - self.start) as u64;
        self.start + rng.below(span.max(1)) as u32
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut TestRng) -> usize {
        let span = (self.end - self.start) as u64;
        self.start + rng.below(span.max(1)) as usize
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy wrapper produced by [`any`].
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy: unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Strategy producing a `Vec` with length drawn from `len` and
    /// elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Builds a [`VecStrategy`] mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Number of cases each property runs per test.
pub const CASES: u64 = 64;

/// FNV-1a hash used to derive a stable per-test seed from its name.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let mut rng = $crate::TestRng::from_seed($crate::seed_for(stringify!($name)));
                for _case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!` — plain assertion in the shim.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — plain equality assertion in the shim.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — plain inequality assertion in the shim.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Everything a property test needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, collection, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1_000 {
            let v = (10i64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.0f64..5.0).sample(&mut rng);
            assert!((0.0..5.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::from_seed(7);
        let mut b = TestRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = TestRng::from_seed(3);
        let s = collection::vec(0u64..10, 2..5);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        fn macro_generates_cases(x in 0i64..100, flag in any::<bool>()) {
            prop_assert!((0..100).contains(&x));
            let _ = flag;
        }
    }
}
