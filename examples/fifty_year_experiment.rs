//! The 50-year experiment, replicated: Monte-Carlo over deployment seeds.
//!
//! The paper commences a single physical run; simulation lets us ask what
//! the *distribution* of outcomes looks like over twenty alternate
//! histories, and what the maintenance diary of a typical one contains.
//!
//! ```text
//! cargo run --release --example fifty_year_experiment
//! ```

use century::experiment::paper_experiment;
use century::metrics::labor_per_device_decade;
use simcore::trace::{Severity, Tier};

fn main() {
    let replicates = 20;
    println!("=== 50-year experiment x {replicates} seeds ===\n");
    let out = paper_experiment(2021, replicates);

    for arm in &out.arms {
        let mut uptime = arm.uptime.clone();
        let mut labor = arm.labor_hours.clone();
        println!("arm: {}", arm.name);
        println!(
            "  weekly uptime: mean {:.2}%  [min {:.2}%, max {:.2}%]",
            uptime.mean() * 100.0,
            uptime.quantile(0.0).unwrap_or(0.0) * 100.0,
            uptime.quantile(1.0).unwrap_or(0.0) * 100.0,
        );
        println!(
            "  device failures/run: {:.1}   gateway repairs/run: {:.1}",
            arm.device_failures.mean(),
            arm.gateway_repairs.mean()
        );
        println!(
            "  labor: {:.0} h/run (median {:.0} h)   spend: ${:.0}/run",
            arm.labor_hours.mean(),
            labor.median().unwrap_or(0.0),
            arm.spend_dollars.mean()
        );
        println!();
    }

    // Per-device-decade labor: the paper's "no human attention" ideal
    // measured against reality.
    println!("labor per device-decade (exemplar run):");
    for arm in &out.exemplar.arms {
        println!(
            "  {:<16} {:.2} person-hours",
            arm.name,
            labor_per_device_decade(arm, 10, 50.0)
        );
    }

    // Where did the interventions land in the hierarchy?
    let diary = &out.exemplar.diary;
    println!("\nexemplar diary: {} entries", diary.len());
    for tier in [Tier::Device, Tier::Gateway, Tier::Backhaul, Tier::Cloud, Tier::System] {
        println!("  {:<9} {:>4} entries", tier.to_string(), diary.count_tier(tier));
    }
    println!("\nlast three interventions of the exemplar half-century:");
    let incidents: Vec<_> = diary.at_least(Severity::Incident).collect();
    for e in incidents.iter().rev().take(3).rev() {
        println!("  [{}] {}", e.at, e.message);
    }
}
