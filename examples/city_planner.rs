//! City planner: when should a municipality own its infrastructure?
//!
//! Walks §3.3–3.4's economics for a growing smart-city fleet: backhaul
//! choice per gateway, the vertical-integration tipping point, and the
//! spectrum-sunset exposure of renting.
//!
//! ```text
//! cargo run --release --example city_planner
//! ```

use backhaul::sunset::{migrate_forward, SunsetSchedule};
use backhaul::tech::{BackhaulTech, CellularGen};
use econ::money::Usd;
use econ::tipping::{tipping_fleet_size, tipping_year, Owned, ThirdParty};

fn main() {
    println!("=== City planner: rent or own? ===\n");

    // Per-gateway backhaul, 50-year view.
    println!("per-gateway backhaul, 50-year totals:");
    for tech in [
        BackhaulTech::Fiber,
        BackhaulTech::Cellular(CellularGen::G4),
        BackhaulTech::Ethernet,
        BackhaulTech::Wimax,
    ] {
        let stream = tech.cost_stream(50);
        println!(
            "  {:<14} nominal {:>12}   NPV(3%) {:>12}   revocable: {}",
            tech.label(),
            stream.total().to_string(),
            stream.npv(0.03).to_string(),
            if tech.revocable() { "yes" } else { "no" },
        );
    }
    let fiber = BackhaulTech::Fiber.cost_stream(50);
    let cell = BackhaulTech::Cellular(CellularGen::G4).cost_stream(50);
    if let Some(y) = cell.crossover_year(&fiber) {
        println!("  cellular's cumulative bill passes fiber's in year {y}");
    }

    // The tipping point for the whole deployment.
    let third = ThirdParty {
        per_device_yearly: Usd::from_dollars(12),
        sunset_rate_per_year: 0.05,
        replacement_per_device: Usd::from_dollars(125),
    };
    let owned = Owned {
        buildout: Usd::from_dollars(500_000),
        yearly_ops: Usd::from_dollars(50_000),
        per_device_yearly: Usd::from_dollars(1),
    };
    println!("\nvertical-integration tipping point (50-year horizon):");
    match tipping_fleet_size(&third, &owned, 50, 10_000_000) {
        Some(tp) => println!("  owning wins from {} devices up", tp.fleet),
        None => println!("  owning never wins at any fleet size tried"),
    }
    for fleet in [1_000u64, 10_000, 100_000] {
        match tipping_year(&third, &owned, fleet, 50) {
            Some(y) => println!("  at {fleet} devices, owning pays for itself by year {y}"),
            None => println!("  at {fleet} devices, renting stays cheaper all 50 years"),
        }
    }

    // Sunset exposure of the rented path.
    println!("\nspectrum-sunset exposure for a 4G-attached gateway fleet:");
    let schedule = SunsetSchedule::default();
    for (year, next) in migrate_forward(&schedule, CellularGen::G4, 50.0) {
        match next {
            Some(g) => println!("  year {year:>4.0}: forced migration to {g:?}"),
            None => println!("  year {year:>4.0}: sunset with nothing newer — devices stranded"),
        }
    }
    println!("\nTakeaway (paper, §3.4): retain the option of self-reliance.");
}
