//! Field analysis: treat the simulated 50-year diary as field data.
//!
//! A real operator of the paper's experiment would, decades in, fit
//! lifetime models to the observed failures (most devices still alive =
//! right-censored) to forecast spares and budgets. This example runs the
//! experiment, extracts per-device failure/censoring ages, fits a Weibull
//! by MLE, and checks the forecast against a longer run — the full
//! simulate → observe → fit → predict loop.

use reliability::fit::fit_weibull;
use reliability::hazard::Hazard;
use reliability::system::bom;
use simcore::rng::Rng;
use simcore::survival::{KaplanMeier, Observation};

fn observe_cohort(n: usize, horizon_years: f64, seed: u64) -> Vec<Observation> {
    // Deploy a cohort of harvesting nodes and watch until the horizon.
    let env = bom::Environment::default();
    let node = bom::harvesting_node(&env);
    let mut rng = Rng::seed_from(seed);
    (0..n)
        .map(|_| {
            let ttf = node.sample_ttf(&mut rng);
            if ttf > horizon_years {
                Observation::censored(horizon_years)
            } else {
                Observation::failed(ttf)
            }
        })
        .collect()
}

fn main() {
    println!("=== Fitting lifetime models to deployment observations ===\n");

    // Twenty years into a 200-device deployment: what do we know?
    let horizon = 20.0;
    let obs = observe_cohort(200, horizon, 42);
    let failures = obs.iter().filter(|o| o.event).count();
    println!(
        "after {horizon:.0} years: {failures} of {} devices have failed ({} censored)",
        obs.len(),
        obs.len() - failures
    );

    // Nonparametric first: Kaplan-Meier.
    let km = KaplanMeier::fit(&obs);
    println!(
        "Kaplan-Meier: S(10) = {:.2}, S(20) = {:.2}, median {}",
        km.survival_at(10.0),
        km.survival_at(20.0),
        km.median().map_or("not reached".into(), |m| format!("{m:.1} y")),
    );

    // Parametric: Weibull MLE under right censoring.
    match fit_weibull(&obs) {
        Ok(fit) => {
            println!(
                "\nWeibull MLE: shape {:.2}, scale {:.1} y ({} failures, {} censored, logL {:.1})",
                fit.shape, fit.scale, fit.failures, fit.censored, fit.log_likelihood
            );
            let h = fit.hazard();
            println!("forecast from the fit:");
            for t in [25.0, 35.0, 50.0] {
                println!("  P(survive {t:.0} y) = {:.1}%", h.survival(t) * 100.0);
            }
            // Validate against a much longer observation of a fresh cohort.
            let long = observe_cohort(4_000, 50.0, 4242);
            let km_long = KaplanMeier::fit(&long);
            println!("\nvalidation against a 50-year cohort (4,000 devices):");
            for t in [25.0, 35.0] {
                println!(
                    "  {t:.0} y: forecast {:.1}% vs observed {:.1}%",
                    h.survival(t) * 100.0,
                    km_long.survival_at(t) * 100.0
                );
            }
            // Spares budget: expected replacements per mount over 50 years.
            let mut rng = Rng::seed_from(7);
            let (m, se) =
                reliability::renewal::renewal_function(&h, &mut rng, 50.0, 5_000);
            println!(
                "\nspares forecast: {m:.2} +/- {se:.2} replacements per mount over 50 years"
            );
        }
        Err(e) => println!("fit failed: {e}"),
    }
}
