//! Times the 50-year paper experiment — the before/after harness for the
//! engine-profiling overhead budget (≤ 5 %, see DESIGN.md §6).
//!
//! ```text
//! cargo run --release --example telemetry_overhead
//! ```

use std::time::Instant; // simlint: allow(D002, this example *measures* wall-clock overhead)

use fleet::sim::{FleetConfig, FleetSim};

fn main() {
    const REPS: u64 = 200;
    // Warm-up.
    let _ = FleetSim::run(FleetConfig::paper_experiment(0));
    let t0 = Instant::now(); // simlint: allow(D002, wall-clock is the measurement itself)
    let mut events = 0u64;
    // Per-run wall times. On a shared core the *minimum* is the robust
    // before/after statistic: preemption only ever slows a run down, so
    // the fastest of 200 approaches the true cost floor.
    let mut per_run = Vec::with_capacity(REPS as usize);
    for seed in 0..REPS {
        let r0 = Instant::now(); // simlint: allow(D002, wall-clock is the measurement itself)
        let report = FleetSim::run(FleetConfig::paper_experiment(seed));
        per_run.push(r0.elapsed().as_secs_f64() * 1e3);
        events += report.events_processed;
    }
    let dt = t0.elapsed();
    per_run.sort_by(f64::total_cmp);
    println!(
        "{REPS} x 50-year runs: {:.3} s total, min {:.3} / p10 {:.3} / median {:.3} ms/run, {} events ({:.0} ev/s)",
        dt.as_secs_f64(),
        per_run[0],
        per_run[per_run.len() / 10],
        per_run[per_run.len() / 2],
        events,
        events as f64 / dt.as_secs_f64(),
    );
}
