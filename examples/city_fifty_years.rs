//! Fifty years of a small city's sensing program, decade by decade.
//!
//! The full municipal loop on one page: plan gateway placement, deploy
//! sensors in geographic cohorts, replace them as they die, staff the
//! crew, pay the bills — and audit the design against the paper's
//! principles before spending a dollar.
//!
//! ```text
//! cargo run --release --example city_fifty_years
//! ```

use century::presets::{CityCensus, CostPreset};
use century::principles::DesignPosture;
use century::{audit, readiness_score};
use econ::cost::CostStream;
use econ::money::Usd;
use fleet::pipeline::{run, PipelineConfig, Rollout};
use fleet::workforce::{run_backlog, Workforce};
use net::coverage::RadioParams;
use net::link::ReceptionModel;
use net::pathloss::LogDistance;
use net::placement::greedy_placement;
use net::topology::{AssetKind, ManhattanCity};
use net::units::Dbm;
use reliability::hazard::WeibullHazard;
use simcore::rng::Rng;

fn main() {
    let city = CityCensus::small_city();
    let costs = CostPreset::default();
    println!("=== {}: a 50-year sensing program ===\n", city.name);

    // 0. Audit before budget.
    let posture = DesignPosture::paper_experiment();
    println!(
        "design audit: {:.0}% century-ready ({} violations)\n",
        readiness_score(&posture) * 100.0,
        audit(&posture).len()
    );

    // 1. Plan gateway placement for a representative district, then scale.
    let district = ManhattanCity::new(10, 10);
    let sensors: Vec<net::topology::Point> = district
        .assets()
        .into_iter()
        .filter(|a| a.kind == AssetKind::Streetlight)
        .map(|a| a.at)
        .collect();
    let candidates: Vec<net::topology::Point> = district
        .assets()
        .into_iter()
        .filter(|a| a.kind == AssetKind::Intersection)
        .map(|a| a.at)
        .collect();
    let params = RadioParams {
        tx: Dbm(12.0),
        rx_model: ReceptionModel::at_sensitivity(net::ieee802154::SENSITIVITY),
        pathloss: LogDistance::urban_2450(),
        usable_margin_db: 3.0,
    };
    let mut rng = Rng::seed_from(50);
    let plan = greedy_placement(&sensors, &candidates, &params, 0.95, &mut rng);
    let gw_per_sensor = plan.chosen.len() as f64 / sensors.len() as f64;
    println!(
        "placement: {} gateways cover {:.1}% of a {}-sensor district ({:.1} sensors/gateway)",
        plan.chosen.len(),
        plan.covered_fraction * 100.0,
        sensors.len(),
        1.0 / gw_per_sensor
    );

    // 2. City-wide fleet: sensors on every streetlight, staggered rollout.
    let mounts = city.streetlights as u32;
    let ttf = WeibullHazard::with_median(4.0, 15.0);
    let cfg = PipelineConfig {
        mounts,
        rollout: Rollout::Staggered { years: 10 },
        replace_lag_years: 0.25,
        horizon_years: 50.0,
    };
    let fleet = run(&cfg, &ttf, &mut rng);
    println!(
        "\nfleet: {} streetlight sensors, staggered over 10 y; mean availability {:.1}%",
        mounts,
        fleet.mean_alive * 100.0
    );
    println!(
        "       {} replacements over 50 y (peak year: {})",
        fleet.total_replacements, fleet.peak_year_replacements
    );

    // 3. Staff it.
    let demand: Vec<f64> = fleet.replacements_per_year.iter().map(|&r| r as f64).collect();
    let crew = Workforce::from_crew(2, 1_800.0, 0.35);
    let backlog = run_backlog(&demand, &crew);
    println!(
        "\ncrew of 2: peak backlog {:.0} devices, {:.0} dark device-years, {:.0} person-hours worked",
        backlog.peak_backlog,
        backlog.dark_device_years,
        backlog.worked.hours()
    );

    // 4. Pay for it, decade by decade.
    let gateways = (mounts as f64 * gw_per_sensor).ceil() as i64;
    let mut ledger = CostStream::zeros(50);
    // Year-0 capex: devices + install + gateways.
    ledger.add(
        0,
        (costs.device_hardware + costs.truck_roll) * mounts as i64
            + costs.gateway_hardware * gateways,
    );
    // Replacements: spread by the pipeline's yearly counts.
    for (y, &r) in fleet.replacements_per_year.iter().enumerate() {
        ledger.add(
            y,
            (costs.device_hardware + costs.truck_roll) * r as i64,
        );
    }
    // Labor.
    let labor_yearly = backlog.worked.cost(costs.labor_hourly) / 50;
    for y in 0..50 {
        ledger.add(y, labor_yearly);
    }
    println!("\nbudget (nominal):");
    for decade in 0..5 {
        let from = decade * 10;
        let total: Usd = (from..from + 10).map(|y| ledger.at(y)).sum();
        println!("  years {:>2}-{:<2}  {}", from, from + 9, total);
    }
    println!("  50-year total {}", ledger.total());
    println!(
        "  NPV at 3%     {}",
        ledger.npv(0.03)
    );
    println!("\nThe program outlives every sensor in it — the Ship of Theseus, budgeted.");
}
