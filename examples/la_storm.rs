//! LA storm: a geometric storm cell sweeping a 320,000-pole city.
//!
//! The paper's motivating census is Los Angeles — 320k utility poles —
//! and its §3 failure stories are spatial: weather does not take down
//! "arm 3", it takes down everything under a disc. This example builds
//! the full-size pole deployment, resolves which gateways hear which
//! poles through the spatial grid (DESIGN.md §14 — the same index that
//! makes the city resolvable in ~a second instead of minutes), then
//! drives a seeded storm cell across the city and reports the coverage
//! lost underneath it, hour by hour.
//!
//! Stdout is pure JSONL (one `{"type":"storm_step",…}` object per hour,
//! same serde-free dialect as `telemetry::jsonl`); the human summary
//! goes to stderr, so the timeline pipes cleanly into standard tooling:
//!
//! ```text
//! cargo run --release --example la_storm > storm.jsonl
//! ```

use net::coverage::{resolve, RadioParams};
use net::link::ReceptionModel;
use net::pathloss::LogDistance;
use net::topology::{AssetKind, ManhattanCity, Point};
use net::units::Dbm;
use net::SpatialGrid;
use simcore::rng::Rng;

const SEED: u64 = 0x1a_5702;

/// LA pole census (topology.rs module docs).
const POLES: usize = 320_000;

/// Storm disc radius and track length, city defaults matching
/// `chaos::geo::GeoStormBuilder::city`: a 400 m cell, and knockouts
/// outlast the 24 h sweep (72 h truck-roll), so nothing recovers
/// mid-track — losses only accumulate.
const STORM_RADIUS_M: f64 = 400.0;
const SWEEP_HOURS: usize = 24;

/// Street-asset radio at 2.4 GHz — the parameter set whose ~1.1 km cull
/// radius makes the grid resolve city-scale-fast (see the throughput
/// bench's topology sweep).
fn radio() -> RadioParams {
    RadioParams {
        tx: Dbm(12.0),
        rx_model: ReceptionModel::at_sensitivity(net::ieee802154::SENSITIVITY),
        pathloss: LogDistance::urban_2450(),
        usable_margin_db: 3.0,
    }
}

fn main() {
    // The smallest square Manhattan city reaching the pole census:
    // 6n(n+1) poles for n×n blocks puts 320k at n = 231 (23.1 km side).
    let mut n = 1u32;
    while 6 * (n as usize) * (n as usize + 1) < POLES {
        n += 1;
    }
    let city = ManhattanCity::new(n, n);
    let (w, h) = city.extent();
    let mut poles: Vec<Point> = city
        .assets()
        .into_iter()
        .filter(|a| a.kind == AssetKind::UtilityPole)
        .map(|a| a.at)
        .collect();
    poles.truncate(POLES);
    let gateways = city.gateway_grid(300.0);
    eprintln!(
        "city: {n}x{n} blocks ({:.1} x {:.1} km), {} poles, {} gateways",
        w / 1e3,
        h / 1e3,
        poles.len(),
        gateways.len()
    );

    // Calm-weather reliance structure, resolved through the grid.
    let params = radio();
    let cov = resolve(&poles, &gateways, &params, &mut Rng::seed_from(SEED));
    let covered_total =
        cov.device_gateways.iter().filter(|g| !g.is_empty()).count();
    eprintln!(
        "calm coverage: {:.1}% of poles ({} of {}), mean redundancy {:.2}",
        cov.covered_fraction() * 100.0,
        covered_total,
        poles.len(),
        cov.mean_redundancy()
    );

    // A seeded storm track: enter on the west edge at a random latitude,
    // cross east at ~1 km/h-of-step with a wandering heading. The disc
    // selects its victims through the same spatial grid the resolver
    // uses — an O(candidates) query per step, never a city scan.
    let grid = SpatialGrid::build(&poles, STORM_RADIUS_M.max(1.0));
    let mut rng = Rng::seed_from(SEED ^ 0x0057_0211);
    let step_m = (w + 2.0 * STORM_RADIUS_M) / SWEEP_HOURS as f64;
    let mut x = -STORM_RADIUS_M;
    let mut y = rng.next_f64() * h;
    let mut knocked = vec![false; poles.len()];
    let mut victims: Vec<u32> = Vec::new();
    let mut covered_out = 0usize;

    for hour in 0..SWEEP_HOURS {
        grid.within_into(Point::new(x, y), STORM_RADIUS_M, &mut victims);
        let mut new_hits = 0usize;
        for &v in &victims {
            let v = v as usize;
            if !knocked[v] {
                knocked[v] = true;
                new_hits += 1;
                if !cov.device_gateways[v].is_empty() {
                    covered_out += 1;
                }
            }
        }
        let coverage_now =
            (covered_total - covered_out) as f64 / poles.len() as f64;
        println!(
            "{{\"type\":\"storm_step\",\"hour\":{hour},\"x_m\":{x:.0},\"y_m\":{y:.0},\
             \"new_knockouts\":{new_hits},\"covered_knocked_out\":{covered_out},\
             \"coverage_fraction\":{coverage_now:.4}}}"
        );
        // Wander: mostly east, drifting north/south a few hundred meters.
        x += step_m;
        y = (y + (rng.next_f64() - 0.5) * 800.0).clamp(0.0, h);
    }

    let knocked_total = knocked.iter().filter(|&&k| k).count();
    eprintln!(
        "after the sweep: {knocked_total} poles knocked out, coverage \
         {:.1}% -> {:.1}% ({covered_out} covered poles silenced)",
        cov.covered_fraction() * 100.0,
        (covered_total - covered_out) as f64 / poles.len() as f64 * 100.0
    );
    eprintln!(
        "takeaway: a single 400 m storm cell crossing town silences ~{}k \
         poles for a 72 h truck-roll window — geometry, not arm scopes, \
         decides who goes dark (chaos::geo plans exactly this).",
        knocked_total / 1000
    );
}
