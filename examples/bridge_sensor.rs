//! Bridge sensor: the paper's §1 vision, sized end to end.
//!
//! A concrete-health sensor embedded in a bridge deck, powered by the
//! structure's cathodic-protection system (rebar corrosion), reporting over
//! LoRa for the bridge's 50-year service life. This example walks the full
//! design loop: link budget → airtime → energy budget → storage sizing →
//! data-credit provisioning.
//!
//! ```text
//! cargo run --release --example bridge_sensor
//! ```

use econ::credits::{credits_for_schedule, Wallet};
use econ::money::Usd;
use energy::budget::{minimum_neutral_capacity, simulate};
use energy::harvester::CathodicProtection;
use energy::load::LoadProfile;
use energy::storage::Supercap;
use net::lora::{max_coupling_loss, DutyCycle, LoraConfig, SpreadingFactor};
use net::pathloss::LogDistance;
use net::units::Dbm;
use simcore::rng::Rng;
use simcore::time::SimDuration;

fn main() {
    println!("=== Bridge sensor design: 50 years on rebar corrosion ===\n");

    // 1. Radio: how far must we reach, and what does it cost on air?
    // The gateway sits on a pole 800 m away; concrete adds ~20 dB.
    let sf = SpreadingFactor::Sf10;
    let cfg = LoraConfig::uplink(sf);
    let airtime = cfg.airtime_s(24);
    let pl = LogDistance::urban_915();
    let path = pl.median_loss(800.0).0 + 20.0;
    let budget = max_coupling_loss(Dbm(14.0), sf).0;
    println!("link:    SF10, 24-byte payload, {:.0} ms airtime", airtime * 1e3);
    println!(
        "budget:  {budget:.0} dB available vs {path:.0} dB path+concrete -> {:.0} dB margin",
        budget - path
    );
    assert!(
        DutyCycle::Us915.transmission_legal(airtime),
        "SF10/24B fits the US dwell limit"
    );

    // 2. Energy: harvest vs load over the full 50 years.
    let load = LoadProfile::transmit_only(SimDuration::from_hours(1), airtime, 0.125);
    println!(
        "\nenergy:  load {:.1} uW mean vs 250 uW initial harvest (declining, tau 75 y)",
        load.mean_power_w() * 1e6
    );
    let mut harvester = CathodicProtection::bridge_default();
    let mut storage = Supercap::new(10.0).precharged(0.5).with_leak_per_day(0.01);
    let mut rng = Rng::seed_from(7);
    let report = simulate(
        &mut harvester,
        &mut storage,
        &load,
        SimDuration::from_years(50),
        &mut rng,
    );
    println!(
        "         50-year availability {:.3}% ({} outage events, min SoC {:.0}%)",
        report.availability() * 100.0,
        report.outage_events,
        report.min_soc * 100.0
    );

    // 3. Storage sizing: the smallest buffer that never browns out.
    let min = minimum_neutral_capacity(
        &|| Box::new(CathodicProtection::bridge_default()),
        &|j| Box::new(Supercap::new(j).precharged(1.0).with_leak_per_day(0.01)),
        &load,
        SimDuration::from_years(10),
        0.01,
        500.0,
        7,
    );
    match min {
        Some(j) => println!("sizing:  minimum energy-neutral buffer = {j:.2} J"),
        None => println!("sizing:  no buffer under 500 J suffices"),
    }

    // 4. Communication budget: prepay the bridge's entire data bill today.
    let need = credits_for_schedule(24, SimDuration::from_hours(1), SimDuration::from_years(50));
    let wallet = Wallet::provision_dollars(Usd::from_dollars(5));
    println!(
        "\ncredits: {need} credits needed for 50 y; a $5 wallet holds {} ({:.1} y runway)",
        wallet.balance(),
        wallet.runway(24, SimDuration::from_hours(1)).as_years_f64()
    );
    println!("\nThe sensor outlives its maintenance budget: zero scheduled visits.");
}
