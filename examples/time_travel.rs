//! Time travel: rewind a fifty-year run to just before a storm hits.
//!
//! The snapshot layer (`fleet::snapshot` + `chaos::checkpoint_with_plan`)
//! makes a mid-run checkpoint a first-class artifact: a sealed,
//! checksummed file that rebuilds the *exact* simulation state — clock,
//! pending events, every rng stream, wallets, wear, diaries, chaos replay
//! progress. This demo uses it the way an operator would after an ugly
//! incident in production telemetry:
//!
//! 1. run the storm-heavy half-century once, uninterrupted, and note the
//!    first correlated-outage incident in the §4.5 diary;
//! 2. re-run with a checkpoint planted one week *before* that incident,
//!    then "crash" (drop everything);
//! 3. resume from the file and replay through the storm — twice — and
//!    check both replays digest bit-identically to the uninterrupted run.
//!
//! Same bytes in, same catastrophe out: the rewind is a genuine time
//! machine, not an approximation.
//!
//! ```text
//! cargo run --release --example time_travel
//! ```

use chaos::{FaultKind, FaultPlanBuilder};
use fleet::sim::FleetConfig;
use fleet::sim::FleetSim;
use simcore::time::{SimDuration, SimTime};

fn main() {
    let seed = 2021;
    let cfg = || FleetConfig::paper_experiment(seed);
    let builder = FaultPlanBuilder::storm_heavy(seed);
    #[allow(clippy::expect_used)]
    // simlint: allow(P001, demo binary; 1.0 is a valid intensity)
    let plan = builder.build(&cfg(), 1.0).expect("1.0 is a valid intensity");

    // --- Act 1: the uninterrupted timeline. -----------------------------
    let baseline = chaos::run_with_plan(cfg(), plan.clone());
    println!("=== uninterrupted storm-heavy run (seed {seed}) ===");
    println!(
        "  {} faults planned, digest {:016x}, {} events",
        plan.len(),
        baseline.digest(),
        baseline.events_processed
    );

    // The incident to rewind to: the first regional-storm fault in the
    // plan (plans are time-ordered).
    #[allow(clippy::expect_used)]
    let storm = plan
        .faults()
        .iter()
        .find(|f| matches!(f.kind, FaultKind::RegionalOutage { .. }))
        // simlint: allow(P001, demo binary; storm_heavy plans always carry storms)
        .expect("storm_heavy plans always carry storms");
    let storm_week = storm.at.as_secs() / SimDuration::from_weeks(1).as_secs();
    let rewind_point = SimTime::ZERO + SimDuration::from_weeks(storm_week.saturating_sub(1));
    println!("  first regional storm lands in week {storm_week};");
    println!("  planting the checkpoint one week earlier.\n");

    // --- Act 2: checkpoint before the storm, then crash. ----------------
    let snap = std::env::temp_dir().join(format!("time-travel-seed{seed}.snap"));
    let live = chaos::checkpoint_with_plan(cfg(), plan.clone(), rewind_point, &snap);
    #[allow(clippy::expect_used)]
    // simlint: allow(P001, demo binary; temp dir is writable)
    let (engine, injector) = live.expect("checkpoint writes to the temp dir");
    println!("=== checkpoint at week {} ===", storm_week.saturating_sub(1));
    println!(
        "  {} of {} faults already replayed, {} bytes on disk at {}",
        injector.progress().next,
        plan.len(),
        std::fs::metadata(&snap).map(|m| m.len()).unwrap_or(0),
        snap.display()
    );
    // The crash: the live engine and injector are gone. Only the file —
    // and the original config and plan — survive.
    drop(engine);
    drop(injector);
    println!("  ...crash. Engine dropped; only the snapshot file remains.\n");

    // --- Act 3: resume and replay the storm, twice. ---------------------
    println!("=== replaying the storm from the snapshot ===");
    for attempt in 1..=2 {
        #[allow(clippy::expect_used)]
        let report = chaos::resume_with_plan(&snap, cfg(), plan.clone())
            // simlint: allow(P001, demo binary; the snapshot was just written)
            .expect("the snapshot was just written");
        let identical = report.digest() == baseline.digest();
        println!(
            "  replay {attempt}: digest {:016x}, {} events — {}",
            report.digest(),
            report.events_processed,
            if identical { "bit-identical to the uninterrupted timeline" } else { "DRIFTED" }
        );
        assert!(identical, "time travel must reproduce the timeline exactly");
    }

    // What the rewound week actually contains: the diary lines around the
    // storm, straight from a resumed run.
    #[allow(clippy::expect_used)]
    let resumed = FleetSim::resume_from(&snap, cfg())
        // simlint: allow(P001, demo binary; the snapshot was just written)
        .expect("the snapshot was just written");
    println!(
        "\n  resumed clock: week {} (sim time {} s)",
        resumed.engine.now().as_secs() / SimDuration::from_weeks(1).as_secs(),
        resumed.engine.now().as_secs()
    );
    let mut injector = chaos::FleetInjector::with_progress(plan.clone(), resumed.chaos);
    let report = resumed.run_to_horizon_hooked(&mut injector);
    println!("  diary entries for the storm and its aftermath:");
    for line in report
        .diary
        .render()
        .lines()
        .filter(|l| l.contains("chaos:"))
        .take(6)
    {
        println!("    {line}");
    }

    let _ = std::fs::remove_file(&snap);
    println!("\nSame bytes, same storm, same half-century: rewind verified.");
}
