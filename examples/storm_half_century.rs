//! Fifty years under a storm-heavy fault regime.
//!
//! Sweeps the chaos intensity knob over the paper experiment and prints
//! the degraded-uptime table: how the owned and federated arms hold up
//! as correlated outages, backhaul flaps and wedged firmware pile on.
//! The same seed drives every run (common random numbers), so the
//! columns are directly comparable and uptime falls monotonically.
//!
//! ```text
//! cargo run --release --example storm_half_century
//! ```

use chaos::FaultPlanBuilder;
use fleet::sim::FleetConfig;

fn main() {
    let seed = 2021;
    let cfg = FleetConfig::paper_experiment(seed);
    let builder = FaultPlanBuilder::storm_heavy(seed);
    let intensities = [0.0, 0.25, 0.5, 0.75, 1.0];

    println!("=== 50-year experiment under storm-heavy chaos (seed {seed}) ===\n");
    println!(
        "{:<10} {:>7} {:>9} {:>13} {:>13} {:>12}",
        "intensity", "faults", "arm", "uptime", "data yield", "weeks up"
    );

    let mut last: Option<Vec<f64>> = None;
    for intensity in intensities {
        #[allow(clippy::expect_used)]
        let plan = builder
            .build(&cfg, intensity)
            // simlint: allow(P001, demo binary; intensities are in [0,1] by construction)
            .expect("intensities are in [0,1] by construction");
        let n_faults = plan.len();
        let report = chaos::run_with_plan(cfg.clone(), plan);

        let uptimes: Vec<f64> = report.arms.iter().map(|a| a.uptime()).collect();
        for (i, arm) in report.arms.iter().enumerate() {
            println!(
                "{:<10} {:>7} {:>9} {:>12.1}% {:>12.1}% {:>8}/{}",
                if i == 0 { format!("{intensity:.2}") } else { String::new() },
                if i == 0 { n_faults.to_string() } else { String::new() },
                arm.name.split('-').next().unwrap_or(arm.name),
                arm.uptime() * 100.0,
                arm.data_yield() * 100.0,
                arm.weeks_up,
                arm.weeks_total,
            );
        }
        if let Some(prev) = &last {
            for (p, u) in prev.iter().zip(&uptimes) {
                assert!(u <= p, "uptime rose with intensity — CRN discipline broken");
            }
        }
        last = Some(uptimes);
        println!();
    }

    // Show what a storm actually looks like in the §4.5 diary.
    #[allow(clippy::expect_used)]
    // simlint: allow(P001, demo binary; 1.0 is a valid intensity)
    let plan = builder.build(&cfg, 1.0).expect("valid intensity");
    let report = chaos::run_with_plan(cfg, plan);
    println!("first chaos entries of the full-intensity diary:");
    for line in report
        .diary
        .render()
        .lines()
        .filter(|l| l.contains("chaos:"))
        .take(8)
    {
        println!("  {line}");
    }
    let total = report
        .diary
        .render()
        .lines()
        .filter(|l| l.contains("chaos:"))
        .count();
    println!("  ... {total} chaos entries in total");
}
