//! LA recovery: the paper's §1 motivating arithmetic, interactive.
//!
//! "If critical communication infrastructure disappeared", what would it
//! take to re-deploy sensors on every utility pole, intersection and
//! streetlight in Los Angeles?
//!
//! ```text
//! cargo run --release --example la_recovery
//! ```

use century::presets::{CityCensus, CostPreset};
use econ::labor::{recovery_effort, recovery_effort_paper};
use fleet::maintenance::{batched_effort, Crew, ServiceTimes};
use simcore::rng::Rng;
use simcore::time::SimDuration;

fn main() {
    let city = CityCensus::los_angeles();
    let costs = CostPreset::default();
    println!("=== Recovering {}'s sensor deployment ===\n", city.name);
    println!("asset census:");
    println!("  utility poles   {:>9}", city.utility_poles);
    println!("  intersections   {:>9}", city.intersections);
    println!("  streetlights    {:>9}", city.streetlights);
    println!("  total mounts    {:>9}", city.total_mounts());

    // The paper's nominal: 20 minutes per device, everything included.
    let nominal = recovery_effort_paper(city.total_mounts());
    println!(
        "\nat the paper's 20 min/device: {:.0} person-hours (paper: \"nearly 200,000\")",
        nominal.hours()
    );
    println!(
        "labor cost at $85/h: {}",
        nominal.cost(costs.labor_hourly)
    );

    // Sensitivity to the per-device figure.
    println!("\nsensitivity to service time:");
    for mins in [10u64, 20, 30, 45] {
        let e = recovery_effort(city.total_mounts(), SimDuration::from_mins(mins));
        println!("  {mins:>2} min/device -> {:>9.0} person-hours", e.hours());
    }

    // How long with a real crew — and how much geographic batching saves.
    let crew = Crew::municipal_small();
    println!(
        "\na {}-tech municipal crew needs {:.1} years of calendar time",
        crew.workers,
        crew.calendar_time(nominal).as_years_f64()
    );
    let times = ServiceTimes::paper_nominal();
    let mut rng = Rng::seed_from(1);
    let tranche = city.total_mounts() / 100;
    let batched = batched_effort(&times, tranche, 25, &mut rng).hours() * 100.0;
    println!(
        "batching replacements into 25-device projects cuts effort to {batched:.0} person-hours"
    );
    println!("\nTakeaway (paper, §1): \"Replacing a city's worth of devices is intractable.\"");
}
