//! Upgrade planning: riding technology generations for fifty years.
//!
//! Gateways are the tier the paper allows us to maintain (§4.2). A new
//! gateway generation arrives roughly every decade; the operator chooses
//! when to move. This example compares the three classic policies and then
//! sizes the crew for the resulting replacement demand.
//!
//! ```text
//! cargo run --release --example upgrade_planning
//! ```

use fleet::upgrade::{run, timeline, UpgradePolicy};
use fleet::workforce::{min_capacity_for_backlog, Workforce};
use reliability::hazard::WeibullHazard;
use simcore::rng::Rng;

fn main() {
    let mounts = 1_000u32;
    let horizon = 50.0;
    let ttf = WeibullHazard::with_median(2.0, 4.0); // Pi-class hardware.
    let tl = timeline(10.0, 15.0, horizon);
    println!("=== Gateway upgrade planning: {mounts} mounts, {horizon:.0} years ===");
    println!(
        "generations: one every 10 y, supported 15 y ({} generations in horizon)\n",
        tl.len()
    );

    println!(
        "{:<16} {:>10} {:>14} {:>6} {:>22}",
        "policy", "installs", "mean hetero", "peak", "unsupported mt-years"
    );
    for (label, policy) in [
        ("always-latest", UpgradePolicy::AlwaysLatest),
        ("run-to-failure", UpgradePolicy::RunToFailure),
        ("on-support-end", UpgradePolicy::OnSupportEnd),
    ] {
        let base = Rng::seed_from(2021);
        let mut rng = base.split("crn", 0); // Same lifetimes per policy.
        let out = run(policy, &ttf, &tl, mounts, horizon, &mut rng);
        println!(
            "{:<16} {:>10} {:>14.2} {:>6} {:>22.0}",
            label,
            out.installs,
            out.mean_heterogeneity,
            out.peak_heterogeneity,
            out.unsupported_mount_years
        );
    }

    // Staffing the steady state: ~1,000 mounts / 4.4 y MTTF ≈ 227
    // replacements/year at 2 h each.
    let steady = mounts as f64 / ttf.mttf();
    let crew = Workforce::from_crew(1, 1_800.0, 2.0);
    println!(
        "\nsteady-state demand ~{steady:.0} replacements/year; one tech covers {:.0}/year",
        crew.capacity_per_year
    );
    let demand = vec![steady; horizon as usize];
    let cap = min_capacity_for_backlog(&demand, 2.0, 20.0);
    println!(
        "capacity for a <=20-gateway backlog: {cap:.0}/year (~{:.1} technicians)",
        cap * 2.0 / 1_800.0
    );
    println!("\nTakeaway (paper, §3.2): the gateway layer must allow for upgradability —");
    println!("and somebody must be staffed to exercise it.");
}
