//! Streetlight network: coverage planning for an owned 802.15.4 district.
//!
//! Generates a Manhattan-grid district, places sensors on its street
//! furniture and Pi-class gateways on a service grid, resolves who hears
//! whom through urban 2.4 GHz propagation, and reports the Figure-1
//! reliance statistics plus the ALOHA headroom of the shared channel.
//!
//! ```text
//! cargo run --release --example streetlight_network
//! ```

use net::aloha::{delivery_prob, max_population, offered_load};
use net::coverage::{resolve, RadioParams};
use net::ieee802154;
use net::link::ReceptionModel;
use net::pathloss::LogDistance;
use net::topology::{AssetKind, ManhattanCity};
use net::units::Dbm;
use simcore::rng::Rng;

fn main() {
    // A 1.5 km x 1.5 km district.
    let city = ManhattanCity::new(15, 15);
    let (poles, intersections, lights) = city.census();
    println!("=== District: {}x{} blocks ===", 15, 15);
    println!("assets: {poles} poles, {intersections} intersections, {lights} streetlights");

    // Sensors on every streetlight; gateways every 200 m.
    let devices: Vec<_> = city
        .assets()
        .into_iter()
        .filter(|a| a.kind == AssetKind::Streetlight)
        .map(|a| a.at)
        .collect();
    let gateways = city.gateway_grid(200.0);
    println!("deploying {} sensors and {} gateways", devices.len(), gateways.len());

    let params = RadioParams {
        tx: Dbm(12.0),
        rx_model: ReceptionModel::at_sensitivity(ieee802154::SENSITIVITY),
        pathloss: LogDistance::urban_2450(),
        usable_margin_db: 3.0,
    };
    let mut rng = Rng::seed_from(11);
    let cov = resolve(&devices, &gateways, &params, &mut rng);

    println!("\ncoverage (the deployment lottery, one shadowing draw per link):");
    println!("  covered fraction            {:.1}%", cov.covered_fraction() * 100.0);
    println!("  mean gateways per device    {:.2}", cov.mean_redundancy());
    println!("  single-homed fraction       {:.1}%", cov.single_homed_fraction() * 100.0);
    println!("  busiest gateway serves      {} devices", cov.max_gateway_load());
    // Blast radius of losing the busiest gateway.
    #[allow(clippy::expect_used)]
    let busiest = (0..gateways.len())
        .max_by_key(|&g| cov.gateway_load[g])
        // simlint: allow(P001, demo binary; the scenario places gateways above)
        .expect("gateways exist");
    println!(
        "  losing gateway {} strands    {} devices",
        busiest,
        cov.stranded_by_gateway(busiest)
    );

    // Channel headroom: transmit-only sensors share one channel per
    // gateway neighborhood.
    let airtime = ieee802154::airtime_s(24);
    let interval = 3_600.0;
    let g = offered_load(devices.len() as u64, airtime, interval);
    println!("\nshared-channel analysis (hourly 24-byte reports):");
    println!("  frame airtime               {:.2} ms", airtime * 1e3);
    println!("  offered load G              {g:.5}");
    println!("  pure-ALOHA delivery         {:.2}%", delivery_prob(g) * 100.0);
    let cap = max_population(airtime, interval, 0.9);
    println!("  devices sustainable at 90%  {cap}");
    println!("\nThe district could grow {}x before the channel is the bottleneck.", cap / devices.len() as u64);
}
