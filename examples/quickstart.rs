//! Quickstart: run the paper's 50-year experiment and read the results.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use century::scenario::Scenario;
use simcore::trace::Severity;

fn main() {
    // The §4 experiment: 10 energy-harvesting, transmit-only sensors per
    // arm. Arm 1 uses our own 802.15.4 gateways on a campus backhaul;
    // arm 2 rides the Helium network with $5 prepaid data-credit wallets.
    let scenario = Scenario::paper_experiment(42);

    // First: does the design satisfy the paper's principles?
    let violations = scenario.audit();
    println!(
        "century-readiness: {:.0}% ({} violations)",
        scenario.readiness() * 100.0,
        violations.len()
    );

    // Then: fifty years of simulated operation.
    let report = scenario.run();
    println!("\n=== after 50 simulated years ===");
    for arm in &report.arms {
        println!(
            "{:<16} weekly uptime {:>6.2}%   data yield {:>6.2}%   {} device failures, {} gateway repairs",
            arm.name,
            arm.uptime() * 100.0,
            arm.data_yield() * 100.0,
            arm.device_failures,
            arm.gateway_repairs,
        );
        println!(
            "{:<16} labor {:.0} person-hours, total spend {}",
            "", arm.labor.hours(), arm.spend
        );
    }

    // The paper commits to publishing a maintenance diary (§4.5); here it is.
    println!(
        "\ndiary: {} entries, {} interventions; first five:",
        report.diary.len(),
        report.diary.count(Severity::Incident)
    );
    for entry in report.diary.at_least(Severity::Incident).take(5) {
        println!("  [{}] {}", entry.at, entry.message);
    }

    // The run digest pins this exact trace (the golden-digest suite
    // regression-tests these); the engine profile shows the event mix.
    println!("\nrun digest: {:016x}", report.digest());
    let p = &report.profile;
    print!("engine: {} events dispatched —", p.total_dispatched());
    for (kind, count) in p.dispatches() {
        print!(" {kind}:{count}");
    }
    println!();
    // Wall-clock profile fields (handler_nanos/run_nanos) vary run to
    // run and are deliberately not printed: quickstart output stays
    // byte-identical across invocations, like every seeded surface.
    println!("engine: queue high-water {}", p.queue_high_water);
}
