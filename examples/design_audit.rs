//! Design audit: score a deployment against the paper's principles.
//!
//! §3's takeaways as an executable checklist — compare a vendor-kit
//! deployment against a standards-compliant one, then simulate the lifetime
//! consequence of vendor lock-in.
//!
//! ```text
//! cargo run --release --example design_audit
//! ```

use century::principles::{audit, readiness_score, DesignPosture, Principle};
use fleet::obsolescence::vendor_locked_ttf;
use simcore::dist::Exponential;
use simcore::rng::Rng;

fn show(name: &str, posture: &DesignPosture) {
    println!("{name}: century-readiness {:.0}%", readiness_score(posture) * 100.0);
    for v in audit(posture) {
        println!("  VIOLATION [{:?}]: {}", v.principle, v.reason);
    }
    if audit(posture).is_empty() {
        println!("  all {} principles satisfied", Principle::ALL.len());
    }
    println!();
}

fn main() {
    println!("=== Auditing deployments against the paper's takeaways ===\n");
    show("paper experiment", &DesignPosture::paper_experiment());
    show("typical vendor kit", &DesignPosture::vendor_kit());

    // A middle posture: good devices, but the backhaul contract is shorter
    // than the migration it would take to replace it.
    let mut risky = DesignPosture::paper_experiment();
    risky.backhaul_guarantee_years = 1.0;
    risky.backhaul_replacement_years = 3.0;
    show("good devices, flaky contract", &risky);

    // What vendor lock-in costs in expected device lifetime: device would
    // live 20 years, vendor exits with mean 8.
    let mut rng = Rng::seed_from(3);
    #[allow(clippy::expect_used)]
    // simlint: allow(P001, demo binary with constant parameters)
    let vendor_exit = Exponential::with_mean(8.0).expect("mean > 0");
    let n = 50_000;
    let (mut locked_sum, mut open_sum) = (0.0, 0.0);
    for _ in 0..n {
        let exit = vendor_exit.sample(&mut rng);
        locked_sum += vendor_locked_ttf(20.0, exit, true);
        open_sum += vendor_locked_ttf(20.0, exit, false);
    }
    println!(
        "vendor lock-in: expected device service life {:.1} y locked vs {:.1} y open",
        locked_sum / n as f64,
        open_sum / n as f64
    );
    println!("\nTakeaway (paper, §3.2): rely on properties of infrastructure, not instances.");
}
