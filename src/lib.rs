//! Umbrella package for the `century` workspace.
//!
//! This package exists to host the workspace-level runnable examples
//! (`examples/`) and the cross-crate integration tests (`tests/`). The
//! library surface simply re-exports the member crates for convenience.

#![forbid(unsafe_code)]

pub use backhaul;
pub use century;
pub use econ;
pub use energy;
pub use fleet;
pub use net;
pub use reliability;
pub use simcore;
