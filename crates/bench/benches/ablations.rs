//! Criterion benchmarks for the ablation suite (DESIGN.md §4).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn a1_gateway_posture(c: &mut Criterion) {
    c.bench_function("a1_gateway_posture", |b| b.iter(bench::ablations::a1::compute));
}

fn a2_capture(c: &mut Criterion) {
    c.bench_function("a2_capture", |b| {
        b.iter(|| bench::ablations::a2::compute(black_box(1)))
    });
}

fn a3_checkpoint_sweep(c: &mut Criterion) {
    c.bench_function("a3_checkpoint_sweep", |b| {
        b.iter(|| bench::ablations::a3::compute(black_box(1), 100))
    });
}

fn a4_replacement_policy(c: &mut Criterion) {
    c.bench_function("a4_replacement_policy", |b| {
        b.iter(|| bench::ablations::a4::compute(black_box(1), 1))
    });
}

fn a5_scheduler(c: &mut Criterion) {
    c.bench_function("a5_scheduler", |b| {
        b.iter(|| bench::ablations::a5::compute(black_box(1), 1))
    });
}

fn a6_upgrade_policy(c: &mut Criterion) {
    c.bench_function("a6_upgrade_policy", |b| {
        b.iter(|| bench::ablations::a6::compute(black_box(1), 100))
    });
}

fn a7_mesh_density(c: &mut Criterion) {
    c.bench_function("a7_mesh_density", |b| {
        b.iter(|| bench::ablations::a7::compute(black_box(1)))
    });
}

criterion_group!(
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = a1_gateway_posture, a2_capture, a3_checkpoint_sweep, a4_replacement_policy, a5_scheduler, a6_upgrade_policy, a7_mesh_density
);
criterion_main!(ablations);
