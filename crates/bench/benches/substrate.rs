//! Substrate kernel benchmarks: the hot paths under every exhibit.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use fleet::sim::{FleetConfig, FleetSim};
use net::coverage::{resolve, RadioParams};
use net::link::ReceptionModel;
use net::lora::{LoraConfig, SpreadingFactor};
use net::pathloss::LogDistance;
use net::topology::ManhattanCity;
use net::units::Dbm;
use reliability::system::bom;
use simcore::dist::Weibull;
use simcore::engine::{Ctx, Engine, World};
use simcore::rng::Rng;
use simcore::survival::{KaplanMeier, Observation};
use simcore::time::{SimDuration, SimTime};

fn rng_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("next_u64_x1000", |b| {
        let mut rng = Rng::seed_from(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            black_box(acc)
        })
    });
    g.bench_function("weibull_sample_x1000", |b| {
        let mut rng = Rng::seed_from(2);
        #[allow(clippy::expect_used)]
        // simlint: allow(P001, constant parameters; infallible by construction)
        let w = Weibull::new(3.0, 15.0).expect("valid");
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1_000 {
                acc += w.sample(&mut rng);
            }
            black_box(acc)
        })
    });
    g.finish();
}

struct Ticker {
    left: u64,
}

impl World for Ticker {
    type Event = ();
    fn handle(&mut self, ctx: &mut Ctx<'_, ()>, _ev: ()) {
        if self.left > 0 {
            self.left -= 1;
            ctx.schedule_in(SimDuration::from_secs(10), ());
        }
    }
}

fn engine_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("events_x100k", |b| {
        b.iter(|| {
            let mut e = Engine::new(Ticker { left: 100_000 });
            e.schedule_at(SimTime::ZERO, ());
            e.run_until(SimTime::MAX);
            black_box(e.events_processed())
        })
    });
    g.finish();
}

fn lora_airtime(c: &mut Criterion) {
    c.bench_function("lora_airtime_all_sf", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for sf in SpreadingFactor::ALL {
                acc += LoraConfig::uplink(sf).airtime_s(black_box(24));
            }
            black_box(acc)
        })
    });
}

fn coverage_resolve(c: &mut Criterion) {
    let city = ManhattanCity::new(10, 10);
    let devices: Vec<net::topology::Point> =
        city.assets().iter().map(|a| a.at).collect();
    let gateways = city.gateway_grid(250.0);
    let params = RadioParams {
        tx: Dbm(12.0),
        rx_model: ReceptionModel::at_sensitivity(net::ieee802154::SENSITIVITY),
        pathloss: LogDistance::urban_2450(),
        usable_margin_db: 3.0,
    };
    c.bench_function("coverage_resolve_city", |b| {
        b.iter(|| {
            let mut rng = Rng::seed_from(3);
            black_box(resolve(&devices, &gateways, &params, &mut rng))
        })
    });
}

fn kaplan_meier_fit(c: &mut Criterion) {
    let mut rng = Rng::seed_from(4);
    #[allow(clippy::expect_used)]
    // simlint: allow(P001, constant parameters; infallible by construction)
    let w = Weibull::new(2.0, 10.0).expect("valid");
    let obs: Vec<Observation> = (0..10_000)
        .map(|i| {
            let t = w.sample(&mut rng);
            if i % 3 == 0 {
                Observation::censored(t * 0.8)
            } else {
                Observation::failed(t)
            }
        })
        .collect();
    c.bench_function("kaplan_meier_10k", |b| {
        b.iter(|| black_box(KaplanMeier::fit(&obs)))
    });
}

fn device_bom_sampling(c: &mut Criterion) {
    let env = bom::Environment::default();
    let node = bom::harvesting_node(&env);
    let mut rng = Rng::seed_from(5);
    let mut g = c.benchmark_group("reliability");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("harvesting_bom_ttf_x1000", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1_000 {
                acc += node.sample_ttf(&mut rng);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn mesh_and_placement(c: &mut Criterion) {
    let city = ManhattanCity::new(8, 8);
    let devices: Vec<net::topology::Point> = city
        .assets()
        .iter()
        .filter(|a| a.kind == net::topology::AssetKind::Streetlight)
        .map(|a| a.at)
        .collect();
    let gateways = city.gateway_grid(300.0);
    let params = RadioParams {
        tx: Dbm(12.0),
        rx_model: ReceptionModel::at_sensitivity(net::ieee802154::SENSITIVITY),
        pathloss: LogDistance::urban_2450(),
        usable_margin_db: 3.0,
    };
    c.bench_function("mesh_resolve_3hop", |b| {
        b.iter(|| {
            let mut rng = Rng::seed_from(6);
            black_box(net::mesh::resolve_mesh(&devices, &gateways, &params, 3, &mut rng))
        })
    });
    let candidates: Vec<net::topology::Point> = city
        .assets()
        .iter()
        .filter(|a| a.kind == net::topology::AssetKind::Intersection)
        .map(|a| a.at)
        .collect();
    c.bench_function("greedy_placement_90pct", |b| {
        b.iter(|| {
            let mut rng = Rng::seed_from(7);
            black_box(net::placement::greedy_placement(
                &devices, &candidates, &params, 0.9, &mut rng,
            ))
        })
    });
}

fn fleet_fifty_years(c: &mut Criterion) {
    c.bench_function("fleet_sim_50y_both_arms", |b| {
        b.iter(|| black_box(FleetSim::run(FleetConfig::paper_experiment(black_box(9)))))
    });
}

criterion_group!(
    name = substrate;
    config = Criterion::default().sample_size(10);
    targets = rng_throughput,
        engine_throughput,
        lora_airtime,
        coverage_resolve,
        kaplan_meier_fit,
        device_bom_sampling,
        mesh_and_placement,
        fleet_fifty_years
);
criterion_main!(substrate);
