//! One Criterion benchmark per exhibit (table/figure) in EXPERIMENTS.md.
//!
//! These time the *computation* behind each exhibit at reduced parameters,
//! serving two purposes: a performance regression net for the models, and a
//! quick way to regenerate any exhibit's numbers (`cargo bench e7`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn e1_lifetime_gap(c: &mut Criterion) {
    c.bench_function("e1_lifetime_gap", |b| {
        b.iter(|| bench::exhibits::e1::compute(black_box(1), 2_000))
    });
}

fn e2_recovery_labor(c: &mut Criterion) {
    c.bench_function("e2_recovery_labor", |b| {
        b.iter(|| bench::exhibits::e2::compute(black_box(1)))
    });
}

fn e3_theseus(c: &mut Criterion) {
    c.bench_function("e3_theseus", |b| {
        b.iter(|| bench::exhibits::e3::compute(black_box(1), 200))
    });
}

fn e4_today(c: &mut Criterion) {
    c.bench_function("e4_today", |b| {
        b.iter(|| bench::exhibits::e4::economics(black_box(1_600), 5))
    });
}

fn e5_backhaul_econ(c: &mut Criterion) {
    c.bench_function("e5_backhaul_econ", |b| b.iter(bench::exhibits::e5::compute));
}

fn e6_tipping(c: &mut Criterion) {
    c.bench_function("e6_tipping", |b| b.iter(bench::exhibits::e6::compute));
}

fn e7_helium_asn(c: &mut Criterion) {
    c.bench_function("e7_helium_asn", |b| {
        b.iter(|| bench::exhibits::e7::compute(black_box(2021)))
    });
}

fn e8_credits(c: &mut Criterion) {
    c.bench_function("e8_credits", |b| b.iter(bench::exhibits::e8::compute));
}

fn e9_fifty_year(c: &mut Criterion) {
    c.bench_function("e9_fifty_year", |b| {
        b.iter(|| bench::exhibits::e9::compute(black_box(1), 1))
    });
}

fn e10_bom_ablation(c: &mut Criterion) {
    c.bench_function("e10_bom_ablation", |b| {
        b.iter(|| bench::exhibits::e10::compute(black_box(1), 2_000))
    });
}

fn e11_sunset(c: &mut Criterion) {
    c.bench_function("e11_sunset", |b| b.iter(bench::exhibits::e11::compute));
}

fn e12_energy_neutral(c: &mut Criterion) {
    c.bench_function("e12_energy_neutral", |b| {
        b.iter(|| bench::exhibits::e12::sf_sweep(black_box(1), 2))
    });
}

fn f1_hierarchy(c: &mut Criterion) {
    c.bench_function("f1_hierarchy", |b| {
        b.iter(|| bench::exhibits::f1::compute(black_box(1)))
    });
}

criterion_group!(
    name = exhibits;
    config = Criterion::default().sample_size(10);
    targets = e1_lifetime_gap,
        e2_recovery_labor,
        e3_theseus,
        e4_today,
        e5_backhaul_econ,
        e6_tipping,
        e7_helium_asn,
        e8_credits,
        e9_fifty_year,
        e10_bom_ablation,
        e11_sunset,
        e12_energy_neutral,
        f1_hierarchy
);
criterion_main!(exhibits);
