//! JSON shape regression for the `throughput` bench binary.
//!
//! Downstream consumers diff per-row key-sets across runs and machines,
//! so every row of `sharded_scale` and `topology_scale` must expose the
//! same schema regardless of host shape or flag combination — in
//! particular, `--topology-grid-only` must *null* the pairwise-oracle
//! fields rather than drop them, and the per-row `host_parallelism`
//! annotation must be present and equal to the top-level field in every
//! mode.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::process::Command;

fn run_throughput(extra: &[&str]) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_throughput"));
    cmd.args([
        "--replicates",
        "2",
        "--threads",
        "1",
        "--passes",
        "1",
        "--shards",
        "2",
        "--scale-devices",
        "64",
        "--topology-devices",
        "150",
    ]);
    cmd.args(extra);
    let out = cmd.output().expect("throughput binary runs");
    assert!(
        out.status.success(),
        "throughput exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 report")
}

/// Extracts the objects of a top-level `"name":[{...},{...}]` array by
/// brace depth (rows nest objects, so a naive split would tear them).
fn array_rows(json: &str, name: &str) -> Vec<String> {
    let marker = format!("\"{name}\":[");
    let start = json.find(&marker).unwrap_or_else(|| panic!("report lacks {name}: {json}"))
        + marker.len();
    let mut rows = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut row_start = None;
    for (i, c) in json[start..].char_indices() {
        match c {
            '"' => in_string = !in_string,
            _ if in_string => {}
            '{' => {
                if depth == 0 {
                    row_start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if depth == 0 {
                    let s = row_start.take().expect("balanced braces");
                    rows.push(json[start + s..=start + i].to_string());
                }
            }
            ']' if depth == 0 => return rows,
            _ => {}
        }
    }
    panic!("unterminated array {name}");
}

/// Top-level keys of one row object, in source order.
fn row_keys(row: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut string_start = 0usize;
    let bytes = row.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => {
                if in_string {
                    // A string at depth 1 followed by ':' is a row key.
                    if depth == 1 && bytes.get(i + 1) == Some(&b':') {
                        keys.push(row[string_start + 1..i].to_string());
                    }
                    in_string = false;
                } else {
                    in_string = true;
                    string_start = i;
                }
            }
            _ if in_string => {}
            b'{' => depth += 1,
            b'}' => depth -= 1,
            _ => {}
        }
    }
    keys
}

fn scalar_field(json: &str, key: &str) -> String {
    let marker = format!("\"{key}\":");
    let start = json.find(&marker).unwrap_or_else(|| panic!("missing {key}")) + marker.len();
    json[start..]
        .split([',', '}', ']'])
        .next()
        .unwrap_or_else(|| panic!("unterminated {key}"))
        .to_string()
}

#[test]
fn topology_rows_keep_one_schema_across_grid_only_and_full_modes() {
    let full = run_throughput(&[]);
    let grid_only = run_throughput(&["--topology-grid-only"]);

    let full_rows = array_rows(&full, "topology_scale");
    let grid_rows = array_rows(&grid_only, "topology_scale");
    assert_eq!(full_rows.len(), 1);
    assert_eq!(grid_rows.len(), 1);

    let full_keys = row_keys(&full_rows[0]);
    let grid_keys = row_keys(&grid_rows[0]);
    assert_eq!(
        full_keys, grid_keys,
        "--topology-grid-only changed the row schema:\nfull: {full_rows:?}\ngrid: {grid_rows:?}"
    );
    for key in ["host_parallelism", "pairwise", "grid_speedup"] {
        assert!(grid_keys.iter().any(|k| k == key), "topology row lost {key:?}: {grid_rows:?}");
    }

    // Grid-only mode nulls the oracle fields instead of measuring them.
    assert_eq!(scalar_field(&grid_rows[0], "pairwise"), "null");
    assert_eq!(scalar_field(&grid_rows[0], "grid_speedup"), "null");
    // Full mode fills both.
    assert_ne!(scalar_field(&full_rows[0], "grid_speedup"), "null");

    // Both modes agree with the top-level annotation, row by row.
    for (report, row) in [(&full, &full_rows[0]), (&grid_only, &grid_rows[0])] {
        assert_eq!(
            scalar_field(row, "host_parallelism"),
            scalar_field(report, "host_parallelism"),
            "per-row host_parallelism must mirror the top-level field"
        );
    }
}

#[test]
fn scale_rows_carry_host_parallelism_and_speedup_expectation() {
    let report = run_throughput(&["--topology-grid-only"]);
    let rows = array_rows(&report, "sharded_scale");
    assert_eq!(rows.len(), 1);
    let keys = row_keys(&rows[0]);
    for key in ["host_parallelism", "sharded_speedup", "sharded_speedup_expected"] {
        assert!(keys.iter().any(|k| k == key), "scale row lost {key:?}: {rows:?}");
    }
    assert_eq!(
        scalar_field(&rows[0], "host_parallelism"),
        scalar_field(&report, "host_parallelism")
    );
    // On a 1-core host the expectation is explicitly waived, and granted
    // otherwise — either way the field must be a boolean, never absent.
    let expected = scalar_field(&rows[0], "sharded_speedup_expected");
    assert!(
        expected == "true" || expected == "false",
        "sharded_speedup_expected must be boolean, got {expected:?}"
    );
}
