//! F1 — the deployment hierarchy of Figure 1, measured.
//!
//! Figure 1's caption is a set of quantitative claims: devices rely on one
//! or two gateways while gateways support thousands of devices; gateways
//! rely on one or two backhauls; lifetime variability shrinks (stability
//! grows) up the hierarchy. We generate a city, resolve radio coverage,
//! and measure exactly those statistics, plus per-tier median lifetimes.

use century::report::{f, n, Table};
use fleet::hierarchy::Hierarchy;
use net::coverage::{resolve, RadioParams};
use net::link::ReceptionModel;
use net::pathloss::LogDistance;
use net::topology::ManhattanCity;
use net::units::Dbm;
use reliability::hazard::Hazard;
use reliability::system::bom;
use simcore::rng::Rng;

/// Computed results.
pub struct F1 {
    /// Devices placed.
    pub devices: usize,
    /// Gateways placed.
    pub gateways: usize,
    /// Coverage fraction.
    pub covered: f64,
    /// Mean gateways per covered device.
    pub mean_redundancy: f64,
    /// Single-homed fraction among covered devices.
    pub single_homed: f64,
    /// Devices on the busiest gateway.
    pub max_gateway_load: usize,
    /// Mean backhauls per gateway.
    pub gateway_redundancy: f64,
    /// Median lifetimes per tier (device, gateway, backhaul-provider,
    /// cloud-endpoint), years.
    pub tier_lifetimes: [f64; 4],
}

/// Builds the city, resolves coverage, and assembles the hierarchy.
pub fn compute(seed: u64) -> F1 {
    let mut rng = Rng::seed_from(seed);
    // A 1 km x 1 km district of the owned-802.15.4 arm: devices on every
    // intersection and every other streetlight; Pi gateways on a 200 m
    // grid (the 2.4 GHz street-level budget reaches ~100-150 m median, so
    // the grid pitch yields the paper's one-or-two-gateway redundancy).
    let city = ManhattanCity::new(10, 10);
    let assets = city.assets();
    let devices: Vec<net::topology::Point> = assets
        .iter()
        .enumerate()
        .filter(|(i, a)| match a.kind {
            net::topology::AssetKind::Intersection => true,
            net::topology::AssetKind::Streetlight => i % 2 == 0,
            net::topology::AssetKind::UtilityPole => false,
        })
        .map(|(_, a)| a.at)
        .collect();
    let gateways = city.gateway_grid(200.0);
    let params = RadioParams {
        tx: Dbm(12.0),
        rx_model: ReceptionModel::at_sensitivity(net::ieee802154::SENSITIVITY),
        pathloss: LogDistance::urban_2450(),
        usable_margin_db: 3.0,
    };
    let cov = resolve(&devices, &gateways, &params, &mut rng);

    // Assemble the Figure-1 reliance graph: every gateway dual-homed on
    // backhaul 0 (fiber) with half also reaching backhaul 1 (cellular);
    // both backhauls reach the single cloud.
    let mut h = Hierarchy::new();
    for (di, gws) in cov.device_gateways.iter().enumerate() {
        h.device_gateways
            .insert(di as u32, gws.iter().map(|&g| g as u32).collect());
    }
    for gi in 0..gateways.len() {
        let bs = if gi % 2 == 0 { vec![0, 1] } else { vec![0] };
        h.gateway_backhauls.insert(gi as u32, bs);
    }
    h.backhaul_clouds.insert(0, vec![0]);
    h.backhaul_clouds.insert(1, vec![0]);

    let gateway_layer = h.gateway_layer();
    debug_assert!(h.fully_connected(), "every covered device must reach the cloud");

    // Tier lifetime medians: device BOM, Pi gateway BOM, provider exit,
    // endpoint (dominated by organizational continuity; we use the
    // municipal-provider scale as a proxy).
    let env = bom::Environment::default();
    let median = |block: &dyn Hazard, rng: &mut Rng| {
        let mut v: Vec<f64> = (0..2_000).map(|_| block.sample_ttf(rng)).collect();
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let device_med = median(&bom::harvesting_node(&env), &mut rng);
    let gateway_med = median(&bom::pi_gateway(&env), &mut rng);
    let backhaul_med = backhaul::provider::Provider::municipal().mean_exit_years
        * core::f64::consts::LN_2;
    let cloud_med = 100.0; // Organizational: the university/municipality itself.

    F1 {
        devices: devices.len(),
        gateways: gateways.len(),
        covered: cov.covered_fraction(),
        mean_redundancy: cov.mean_redundancy(),
        single_homed: cov.single_homed_fraction(),
        max_gateway_load: cov.max_gateway_load(),
        gateway_redundancy: gateway_layer.mean_upstream,
        tier_lifetimes: [device_med, gateway_med, backhaul_med, cloud_med],
    }
}

/// Renders the exhibit.
pub fn render(seed: u64) -> String {
    let e = compute(seed);
    let mut t = Table::new(
        "F1 - Deployment hierarchy fan-out (paper: devices rely on 1-2 gateways; gateways support thousands)",
        &["quantity", "value"],
    );
    t.row(&["devices".into(), n(e.devices as u64)]);
    t.row(&["gateways".into(), n(e.gateways as u64)]);
    t.row(&["coverage fraction".into(), f(e.covered, 3)]);
    t.row(&["mean gateways per covered device".into(), f(e.mean_redundancy, 2)]);
    t.row(&["single-homed device fraction".into(), f(e.single_homed, 2)]);
    t.row(&["devices on busiest gateway".into(), n(e.max_gateway_load as u64)]);
    t.row(&["mean backhauls per gateway".into(), f(e.gateway_redundancy, 2)]);
    let mut l = Table::new(
        "F1b - Lifetime variability down the hierarchy (median years)",
        &["tier", "median lifetime (y)"],
    );
    for (name, med) in ["device", "gateway", "backhaul", "cloud"]
        .iter()
        .zip(e.tier_lifetimes)
    {
        l.row(&[name.to_string(), f(med, 1)]);
    }
    format!("{}\n{}", t.render(), l.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_redundancy_is_one_or_two_ish() {
        let e = compute(1);
        assert!(e.covered > 0.85, "covered {}", e.covered);
        assert!(
            e.mean_redundancy >= 1.0 && e.mean_redundancy <= 4.0,
            "redundancy {}",
            e.mean_redundancy
        );
    }

    #[test]
    fn gateways_support_many_devices() {
        let e = compute(2);
        assert!(
            e.max_gateway_load > e.devices / e.gateways,
            "busiest gateway load {} should exceed the mean {}",
            e.max_gateway_load,
            e.devices / e.gateways
        );
        assert!(e.max_gateway_load > 20, "load {}", e.max_gateway_load);
    }

    #[test]
    fn gateway_backhaul_redundancy_one_to_two() {
        let e = compute(3);
        assert!((e.gateway_redundancy - 1.5).abs() < 0.51);
    }

    #[test]
    fn lifetime_variability_rises_down_the_hierarchy() {
        // Paper: stability increases up the hierarchy. Device and gateway
        // tiers should have the shortest median lives; cloud the longest.
        let e = compute(4);
        let [_device, gateway, backhaul, cloud] = e.tier_lifetimes;
        assert!(gateway < backhaul, "gateway {gateway} backhaul {backhaul}");
        assert!(backhaul < cloud);
    }

    #[test]
    fn render_has_both_tables() {
        let s = render(5);
        assert!(s.contains("F1 -") && s.contains("F1b"));
    }
}
