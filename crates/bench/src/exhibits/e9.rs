//! E9 — the 50-year experiment, both arms (§4.1–4.5).
//!
//! The paper *commences* this experiment; we run it to completion, many
//! times. Ten energy-harvesting transmit-only devices per arm; the owned
//! arm's Pi gateways are maintained while devices are replaced only on
//! documented failure; the Helium arm rides third-party hotspots with $5
//! prepaid wallets. Reported: the weekly end-to-end uptime metric, the
//! intervention ledger, and what fifty years of "unattended" actually cost.

use century::experiment::{paper_experiment, ExperimentOutcome};
use century::metrics::cost_per_reading;
use century::report::{f, n, pct, Table};
use simcore::trace::Severity;

/// Runs the replicated experiment (in parallel when replicates warrant).
#[allow(clippy::expect_used)]
pub fn compute(base_seed: u64, replicates: usize) -> ExperimentOutcome {
    if replicates >= 4 {
        let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
        crate::parallel::run_replicated_parallel(
            &fleet::sim::FleetConfig::paper_experiment,
            base_seed,
            replicates,
            threads,
        )
        // simlint: allow(P001, replicates >= 4 and threads >= 1 are checked on this path)
        .expect("replicates >= 4 and threads >= 1")
    } else {
        paper_experiment(base_seed, replicates)
    }
}

/// Renders the exhibit.
pub fn render(seed: u64) -> String {
    let out = compute(seed, 20);
    let mut t = Table::new(
        "E9 - The 50-year experiment, 20 seeds (paper metric: some data each week)",
        &[
            "arm",
            "uptime mean",
            "uptime min",
            "data yield",
            "device failures",
            "gateway repairs",
            "labor (h)",
            "spend",
        ],
    );
    for (i, arm) in out.arms.iter().enumerate() {
        let mut uptime = arm.uptime.clone();
        let yield_ = arm.data_yield.clone();
        t.row(&[
            arm.name.to_string(),
            pct(uptime.mean()),
            pct(uptime.quantile(0.0).unwrap_or(0.0)),
            pct(yield_.mean()),
            f(arm.device_failures.mean(), 1),
            f(arm.gateway_repairs.mean(), 1),
            f(arm.labor_hours.mean(), 0),
            format!("${:.0}", arm.spend_dollars.mean()),
        ]);
        let _ = i;
    }
    let mut d = Table::new(
        "E9b - Exemplar run: intervention ledger (the §4.5 diary)",
        &["quantity", "value"],
    );
    d.row(&[
        "diary entries".into(),
        n(out.exemplar.diary.len() as u64),
    ]);
    d.row(&[
        "incidents (interventions)".into(),
        n(out.exemplar.diary.count(Severity::Incident) as u64),
    ]);
    d.row(&[
        "warnings".into(),
        n(out.exemplar.diary.count(Severity::Warning) as u64),
    ]);
    for arm in &out.exemplar.arms {
        d.row(&[
            format!("{}: cost per 1,000 delivered readings", arm.name),
            (cost_per_reading(arm) * 1_000).to_string(),
        ]);
        d.row(&[
            format!("{}: wallets exhausted", arm.name),
            n(arm.wallets_exhausted),
        ]);
    }
    // First few incidents as a diary excerpt.
    let mut excerpt = String::new();
    for e in out
        .exemplar
        .diary
        .at_least(Severity::Incident)
        .take(8)
    {
        excerpt.push_str(&format!("  [{}] {}\n", e.at, e.message));
    }
    format!(
        "{}\n{}\nDiary excerpt (first incidents):\n{}",
        t.render(),
        d.render(),
        excerpt
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_arms_survive_with_maintenance() {
        let out = compute(500, 5);
        for arm in &out.arms {
            let uptime = arm.uptime.clone();
            assert!(
                uptime.mean() > 0.5,
                "{} mean uptime {}",
                arm.name,
                uptime.mean()
            );
        }
    }

    #[test]
    fn owned_arm_higher_uptime_than_federated() {
        // The owned arm's maintained gateways on a campus backhaul should
        // beat the hotspot-churn-exposed federated arm on uptime.
        let out = compute(600, 10);
        let owned = out.arms[0].uptime.clone().mean();
        let helium = out.arms[1].uptime.clone().mean();
        assert!(
            owned >= helium - 0.02,
            "owned {owned} vs helium {helium}"
        );
    }

    #[test]
    fn experiment_requires_interventions_before_year_50() {
        // §4.4: "The end-to-end system will require maintenance before the
        // fifty year mark."
        let out = compute(700, 3);
        assert!(out.exemplar_incidents() > 0);
    }

    #[test]
    fn render_includes_diary_excerpt() {
        let s = render(800);
        assert!(s.contains("E9"));
        assert!(s.contains("Diary excerpt"));
    }
}
