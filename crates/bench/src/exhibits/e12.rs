//! E12 — energy-neutral sizing for embedded sensors (§1 ¶8).
//!
//! The paper's vision: a sensor in a bridge's concrete, powered by rebar
//! corrosion (cathodic protection), reporting "for literally as long as
//! the structure lasts." We size that sensor: harvest vs load across LoRa
//! spreading factors, the minimum storage for 50-year energy neutrality,
//! and the outage profile of an undersized design.

use century::report::{f, pct, Table};
use energy::budget::{minimum_neutral_capacity, simulate};
use energy::harvester::{CathodicProtection, SolarPanel};
use energy::load::LoadProfile;
use energy::storage::Supercap;
use net::lora::{LoraConfig, SpreadingFactor};
use simcore::rng::Rng;
use simcore::time::SimDuration;

/// Per-SF sizing row.
pub struct SfRow {
    /// Spreading factor.
    pub sf: SpreadingFactor,
    /// Packet airtime, seconds.
    pub airtime_s: f64,
    /// Mean load at hourly cadence, µW.
    pub mean_load_uw: f64,
    /// 50-year availability with a 50 J buffer on the bridge source.
    pub availability: f64,
}

/// The hourly transmit-only load at a given spreading factor (125 mW TX).
pub fn load_at(sf: SpreadingFactor) -> LoadProfile {
    let airtime = LoraConfig::uplink(sf).airtime_s(24);
    LoadProfile::transmit_only(SimDuration::from_hours(1), airtime, 0.125)
}

/// Runs the SF sweep on the cathodic-protection source.
pub fn sf_sweep(seed: u64, horizon_years: u64) -> Vec<SfRow> {
    SpreadingFactor::ALL
        .into_iter()
        .map(|sf| {
            let load = load_at(sf);
            let mut harvester = CathodicProtection::bridge_default();
            let mut storage = Supercap::new(50.0).precharged(0.5).with_leak_per_day(0.01);
            let mut rng = Rng::seed_from(seed);
            let rep = simulate(
                &mut harvester,
                &mut storage,
                &load,
                SimDuration::from_years(horizon_years),
                &mut rng,
            );
            SfRow {
                sf,
                airtime_s: LoraConfig::uplink(sf).airtime_s(24),
                mean_load_uw: load.mean_power_w() * 1e6,
                availability: rep.availability(),
            }
        })
        .collect()
}

/// Minimum neutral storage for the bridge sensor at SF10, joules.
pub fn min_storage_bridge(seed: u64, horizon_years: u64) -> Option<f64> {
    let load = load_at(SpreadingFactor::Sf10);
    minimum_neutral_capacity(
        &|| Box::new(CathodicProtection::bridge_default()),
        &|j| Box::new(Supercap::new(j).precharged(1.0).with_leak_per_day(0.01)),
        &load,
        SimDuration::from_years(horizon_years),
        0.01,
        2_000.0,
        seed,
    )
}

/// Minimum neutral storage for a solar streetlight sensor at SF10, joules.
pub fn min_storage_solar(seed: u64, horizon_years: u64) -> Option<f64> {
    let load = load_at(SpreadingFactor::Sf10);
    minimum_neutral_capacity(
        &|| Box::new(SolarPanel::small_outdoor()),
        &|j| Box::new(Supercap::new(j).precharged(1.0)),
        &load,
        SimDuration::from_years(horizon_years),
        0.01,
        2_000.0,
        seed,
    )
}

/// Renders the exhibit.
pub fn render(seed: u64) -> String {
    let rows = sf_sweep(seed, 50);
    let mut t = Table::new(
        "E12 - Bridge sensor on rebar-corrosion power: 50-year energy neutrality by SF",
        &["SF", "airtime (ms)", "mean load (uW)", "availability (50 y)"],
    );
    for r in &rows {
        t.row(&[
            format!("{:?}", r.sf),
            f(r.airtime_s * 1e3, 1),
            f(r.mean_load_uw, 2),
            pct(r.availability),
        ]);
    }
    let bridge = min_storage_bridge(seed, 10);
    let solar = min_storage_solar(seed, 10);
    let mut s = Table::new(
        "E12b - Minimum storage for energy neutrality (SF10, hourly, 10-y check)",
        &["source", "minimum buffer (J)"],
    );
    s.row(&[
        "cathodic protection (bridge)".into(),
        bridge.map_or("> 2000".into(), |j| f(j, 1)),
    ]);
    s.row(&[
        "small solar (streetlight)".into(),
        solar.map_or("> 2000".into(), |j| f(j, 1)),
    ]);
    format!("{}\n{}", t.render(), s.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bridge_sensor_neutral_at_every_sf() {
        // 250 µW declining source vs <12 µW worst-case load: the paper's
        // vision holds at any spreading factor.
        let rows = sf_sweep(1, 50);
        for r in &rows {
            assert!(
                r.availability > 0.999,
                "{:?} availability {}",
                r.sf,
                r.availability
            );
        }
    }

    #[test]
    fn load_rises_with_sf() {
        let rows = sf_sweep(2, 2);
        for w in rows.windows(2) {
            assert!(w[1].mean_load_uw > w[0].mean_load_uw);
            assert!(w[1].airtime_s > w[0].airtime_s);
        }
        // SF12 hourly 24-B: 1.48 s at 125 mW every hour ≈ 52 µW average.
        let sf12 = rows.last().unwrap();
        assert!(sf12.mean_load_uw > 40.0 && sf12.mean_load_uw < 70.0, "{}", sf12.mean_load_uw);
    }

    #[test]
    fn solar_needs_bigger_buffer_than_cathodic() {
        // Cathodic is steady day and night; solar must ride through nights
        // and overcast runs.
        let bridge = min_storage_bridge(3, 5).expect("bridge sizes");
        let solar = min_storage_solar(3, 5).expect("solar sizes");
        assert!(
            solar > bridge * 2.0,
            "solar {solar} J should dwarf bridge {bridge} J"
        );
    }

    #[test]
    fn render_has_sweep_and_sizing() {
        let s = render(4);
        assert!(s.contains("Sf7") && s.contains("Sf12"));
        assert!(s.contains("E12b"));
    }
}
