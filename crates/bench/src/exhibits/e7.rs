//! E7 — Helium backhaul AS diversity (§4.3 and footnote 5).
//!
//! Paper measurement: 12,400 gateways with public IPs; Comcast, Spectrum
//! and Verizon serve roughly half; 50 % of nodes sit in just ten ASes; the
//! tail reaches nearly 200 unique ASes. We synthesize a Zipf(1) population
//! calibrated to those aggregates and report the same statistics.

use backhaul::asn::{paper, AsPopulation, IspAssignment};
use century::report::{f, n, pct, Table};
use simcore::rng::Rng;

/// Computed results.
pub struct E7 {
    /// Total gateways.
    pub total: u64,
    /// Observed unique ASes.
    pub ases: usize,
    /// Top-1/3/10 shares.
    pub top1: f64,
    /// Share of the top 3 ASes.
    pub top3: f64,
    /// Share of the top 3 **ISPs** under the big-three ownership model.
    pub top3_isp: f64,
    /// Share of the top 10 ASes.
    pub top10: f64,
    /// Concentration index.
    pub hhi: f64,
    /// Gateways surviving loss of the top 10 ASes.
    pub survivors_without_top10: u64,
}

/// Synthesizes and measures the population.
pub fn compute(seed: u64) -> E7 {
    let mut rng = Rng::seed_from(seed);
    let pop = AsPopulation::paper_shaped(&mut rng);
    let isp = IspAssignment::paper_big_three(paper::UNIQUE_ASES);
    E7 {
        total: pop.total(),
        ases: pop.observed_ases(),
        top1: pop.top_share(1),
        top3: pop.top_share(3),
        top3_isp: isp.top_isp_share(&pop, 3),
        top10: pop.top_share(10),
        hhi: pop.hhi(),
        survivors_without_top10: pop.survivors_without_top(10),
    }
}

/// Renders the exhibit.
pub fn render(seed: u64) -> String {
    let e = compute(seed);
    let mut t = Table::new(
        "E7 - Helium backhaul AS diversity (paper: top-10 ASes = 50% of 12,400 gateways, ~200 ASes)",
        &["quantity", "simulated", "paper"],
    );
    t.row(&["public-IP gateways".into(), n(e.total), n(paper::PUBLIC_GATEWAYS)]);
    t.row(&[
        "unique ASes".into(),
        n(e.ases as u64),
        format!("~{}", paper::UNIQUE_ASES),
    ]);
    t.row(&["top-1 AS share".into(), pct(e.top1), "-".into()]);
    t.row(&["top-3 AS share".into(), pct(e.top3), "-".into()]);
    t.row(&[
        "top-3 ISP share (big three own the top-10 ASes)".into(),
        pct(e.top3_isp),
        "~50% (Comcast/Spectrum/Verizon)".into(),
    ]);
    t.row(&["top-10 AS share".into(), pct(e.top10), pct(paper::TOP10_SHARE)]);
    t.row(&["HHI concentration".into(), f(e.hhi, 4), "-".into()]);
    t.row(&[
        "gateways surviving loss of top-10 ASes".into(),
        n(e.survivors_without_top10),
        "~6,200".into(),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_aggregates() {
        let e = compute(2021);
        assert_eq!(e.total, 12_400);
        assert!((e.top10 - 0.50).abs() < 0.03, "top10 {}", e.top10);
        assert!(e.ases >= 185 && e.ases <= 200, "ases {}", e.ases);
    }

    #[test]
    fn shares_nested() {
        let e = compute(1);
        assert!(e.top1 < e.top3 && e.top3 < e.top10);
        // At AS granularity the top-3 share is well below the paper's
        // ISP-level figure; the big-three ISP model closes the gap.
        assert!(e.top3 > 0.2 && e.top3 < 0.5, "top3 {}", e.top3);
        assert!((e.top3_isp - 0.50).abs() < 0.03, "top3 isp {}", e.top3_isp);
    }

    #[test]
    fn survivors_are_about_half() {
        let e = compute(2);
        let frac = e.survivors_without_top10 as f64 / e.total as f64;
        assert!((frac - 0.5).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn render_cites_paper_column() {
        let s = render(3);
        assert!(s.contains("12,400"));
        assert!(s.contains("paper"));
    }
}
