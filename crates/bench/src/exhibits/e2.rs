//! E2 — Los Angeles recovery labor (§1 ¶4).
//!
//! Paper claim: 320,000 utility poles + 61,315 intersections + 210,000
//! streetlights, "at a very generous 20 minute total replacement
//! (including travel) time per device, recovering the deployment would
//! require nearly 200,000 person-hours of labor alone."

use century::presets::{CityCensus, CostPreset};
use century::report::{f, n, Table};
use econ::labor::{recovery_effort_paper, PersonHours};
use fleet::maintenance::{batched_effort, reactive_effort, ServiceTimes};
use simcore::rng::Rng;

/// Computed results.
pub struct E2 {
    /// Total mounts in the census.
    pub mounts: u64,
    /// The paper's nominal estimate (20 min/device), person-hours.
    pub nominal_hours: f64,
    /// Stochastic reactive estimate (travel + lognormal service).
    pub reactive_hours: f64,
    /// Geographic-batch estimate (25-device batches).
    pub batched_hours: f64,
}

/// Runs the experiment on the LA census.
pub fn compute(seed: u64) -> E2 {
    let city = CityCensus::los_angeles();
    let mounts = city.total_mounts();
    let nominal = recovery_effort_paper(mounts);
    let times = ServiceTimes::paper_nominal();
    let base = Rng::seed_from(seed);
    // Sample a 1% tranche and scale: full-city sampling is unnecessary for
    // a mean estimate and keeps the exhibit fast.
    let tranche = mounts / 100;
    let mut r1 = base.split("reactive", 0);
    let mut r2 = base.split("batched", 0);
    let reactive = reactive_effort(&times, tranche, &mut r1).hours() * 100.0;
    let batched = batched_effort(&times, tranche, 25, &mut r2).hours() * 100.0;
    E2 {
        mounts,
        nominal_hours: nominal.hours(),
        reactive_hours: reactive,
        batched_hours: batched,
    }
}

/// Renders the exhibit.
pub fn render(seed: u64) -> String {
    let e = compute(seed);
    let city = CityCensus::los_angeles();
    let costs = CostPreset::default();
    let mut t = Table::new(
        "E2 - LA-scale recovery labor (paper: ~197,000 person-hours at 20 min/device)",
        &["quantity", "value"],
    );
    t.row(&["utility poles".into(), n(city.utility_poles)]);
    t.row(&["intersections".into(), n(city.intersections)]);
    t.row(&["streetlights".into(), n(city.streetlights)]);
    t.row(&["total mounts".into(), n(e.mounts)]);
    t.row(&[
        "nominal effort (20 min/device)".into(),
        format!("{} person-hours", n(e.nominal_hours as u64)),
    ]);
    t.row(&[
        "stochastic reactive estimate".into(),
        format!("{} person-hours", n(e.reactive_hours as u64)),
    ]);
    t.row(&[
        "geographic batches of 25".into(),
        format!("{} person-hours", n(e.batched_hours as u64)),
    ]);
    t.row(&[
        "labor cost at $85/h (nominal)".into(),
        PersonHours::from_hours(e.nominal_hours).cost(costs.labor_hourly).to_string(),
    ]);
    let mut crews = Table::new(
        "E2b - Calendar time to recover (nominal effort, 8 h days)",
        &["crew size", "working days", "years"],
    );
    for workers in [10u32, 50, 200, 1_000] {
        let cal = PersonHours::from_hours(e.nominal_hours).calendar_time(workers, 8.0);
        crews.row(&[
            n(workers as u64),
            f(cal.as_days_f64(), 0),
            f(cal.as_years_f64(), 2),
        ]);
    }
    format!("{}\n{}", t.render(), crews.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_matches_paper_headline() {
        let e = compute(1);
        assert_eq!(e.mounts, 591_315);
        assert!((e.nominal_hours - 197_105.0).abs() < 1.0, "{}", e.nominal_hours);
    }

    #[test]
    fn stochastic_estimate_close_to_nominal() {
        let e = compute(2);
        let rel = (e.reactive_hours - e.nominal_hours).abs() / e.nominal_hours;
        assert!(rel < 0.05, "reactive {} nominal {}", e.reactive_hours, e.nominal_hours);
    }

    #[test]
    fn batching_saves_roughly_half() {
        let e = compute(3);
        let ratio = e.reactive_hours / e.batched_hours;
        assert!(ratio > 1.5 && ratio < 2.5, "ratio {ratio}");
    }

    #[test]
    fn render_mentions_key_numbers() {
        let s = render(4);
        assert!(s.contains("591,315"));
        assert!(s.contains("197,"));
    }
}
