//! E5 — backhaul economics: fiber vs cellular (§3.3.1–3.3.2).
//!
//! Paper claims: cellular is easy to start but opex-dominated and
//! subscription costs become expensive long-term (San Diego planned a
//! 3G/4G→wired transition); fiber is capex-dominated, amortizable across
//! services, and its capacity rides transceiver upgrades. We reproduce the
//! cumulative-cost crossover and the trench-sharing amortization effect.

use backhaul::tech::{BackhaulTech, CellularGen};
use century::report::{f, Table};
use econ::cost::amortize;
use econ::money::Usd;

/// Computed results.
pub struct E5 {
    /// Year index at which cellular's cumulative cost passes fiber's.
    pub crossover_year: Option<usize>,
    /// Same crossover with 3 %/yr opex escalation applied to both.
    pub escalated_crossover_year: Option<usize>,
    /// 50-year totals per technology `(label, nominal, npv3)`.
    pub totals: Vec<(&'static str, Usd, Usd)>,
    /// Fiber per-gateway yearly charge when the trench is shared 3 ways.
    pub shared_trench_yearly: Usd,
}

/// Runs the comparison over a 50-year horizon.
pub fn compute() -> E5 {
    let horizon = 50usize;
    let techs = [
        BackhaulTech::Fiber,
        BackhaulTech::Cellular(CellularGen::G4),
        BackhaulTech::Ethernet,
        BackhaulTech::Wimax,
    ];
    let fiber = BackhaulTech::Fiber.cost_stream(horizon);
    let cell = BackhaulTech::Cellular(CellularGen::G4).cost_stream(horizon);
    let totals = techs
        .iter()
        .map(|t| {
            let s = t.cost_stream(horizon);
            (t.label(), s.total(), s.npv(0.03))
        })
        .collect();
    // §3.3.1: trench capex amortized across road/power/comm projects.
    let shared = amortize(Usd::from_dollars(2_400), 40, 3);
    E5 {
        crossover_year: cell.crossover_year(&fiber),
        escalated_crossover_year: cell.escalated(0.03).crossover_year(&fiber.escalated(0.03)),
        totals,
        shared_trench_yearly: shared,
    }
}

/// Cumulative-cost series for plotting `(year, fiber, cellular)`.
pub fn cumulative_series(horizon: usize) -> Vec<(usize, f64, f64)> {
    let fiber = BackhaulTech::Fiber.cost_stream(horizon);
    let cell = BackhaulTech::Cellular(CellularGen::G4).cost_stream(horizon);
    (0..horizon)
        .map(|y| {
            (
                y,
                fiber.cumulative_through(y).dollars_f64(),
                cell.cumulative_through(y).dollars_f64(),
            )
        })
        .collect()
}

/// Renders the exhibit.
pub fn render(_seed: u64) -> String {
    let e = compute();
    let mut t = Table::new(
        "E5 - Backhaul economics per gateway, 50-year horizon (paper: cellular opex overtakes fiber)",
        &["technology", "nominal 50-y total", "NPV at 3%"],
    );
    for (label, total, npv) in &e.totals {
        t.row(&[label.to_string(), total.to_string(), npv.to_string()]);
    }
    let mut x = Table::new("E5b - Crossover and trench sharing", &["quantity", "value"]);
    x.row(&[
        "cellular cumulative cost passes fiber in year".into(),
        e.crossover_year.map_or("never".into(), |y| f(y as f64, 0)),
    ]);
    x.row(&[
        "same, with 3%/yr cost escalation".into(),
        e.escalated_crossover_year.map_or("never".into(), |y| f(y as f64, 0)),
    ]);
    x.row(&[
        "fiber trench shared 3 ways, per service-year".into(),
        e.shared_trench_yearly.to_string(),
    ]);
    let series = cumulative_series(50);
    let mut c = Table::new(
        "E5c - Cumulative cost series (figure data)",
        &["year", "fiber", "cellular-4g"],
    );
    for (y, fib, cell) in series.iter().step_by(10) {
        c.row(&[f(*y as f64, 0), format!("${fib:.0}"), format!("${cell:.0}")]);
    }
    format!("{}\n{}\n{}", t.render(), x.render(), c.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cellular_overtakes_fiber_inside_15_years() {
        let e = compute();
        let y = e.crossover_year.expect("must cross");
        assert!((5..=15).contains(&y), "crossover {y}");
    }

    #[test]
    fn fiber_cheapest_wired_beats_cellular_long_run() {
        let e = compute();
        let get = |label: &str| {
            e.totals
                .iter()
                .find(|(l, _, _)| *l == label)
                .map(|&(_, total, _)| total)
                .expect("label present")
        };
        assert!(get("fiber") < get("cellular-4g"));
        assert!(get("ethernet") < get("fiber"));
        // Cellular's 50-year bill is several times fiber's.
        assert!(get("cellular-4g").dollars_f64() / get("fiber").dollars_f64() > 2.0);
    }

    #[test]
    fn escalation_accelerates_the_crossover() {
        let e = compute();
        let plain = e.crossover_year.expect("crossover");
        let esc = e.escalated_crossover_year.expect("crossover");
        assert!(esc <= plain, "escalated {esc} should not be later than {plain}");
    }

    #[test]
    fn npv_discounts_opex_heavy_more() {
        let e = compute();
        let cell = e.totals.iter().find(|(l, _, _)| *l == "cellular-4g").unwrap();
        let fiber = e.totals.iter().find(|(l, _, _)| *l == "fiber").unwrap();
        // NPV/total ratio is lower for cellular (costs sit in the future).
        let r_cell = cell.2.dollars_f64() / cell.1.dollars_f64();
        let r_fiber = fiber.2.dollars_f64() / fiber.1.dollars_f64();
        assert!(r_cell < r_fiber, "cell {r_cell} fiber {r_fiber}");
    }

    #[test]
    fn series_monotone() {
        let s = cumulative_series(50);
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].2 >= w[0].2);
        }
    }

    #[test]
    fn render_mentions_crossover() {
        let s = render(0);
        assert!(s.contains("crossover") || s.contains("passes fiber"));
    }
}
