//! E4 — today's deployments: scale, cost, and upgrade cadence (§2).
//!
//! Paper claims: deployments of 500–5,000 nodes cost millions of dollars;
//! operators predict 2–7-year lifetimes until system upgrade; San Diego
//! fielded 8,000 smart LEDs with 3,300 sensors. We reproduce the cost
//! regime and the per-node-year economics it implies.

use century::presets::{CostPreset, DeploymentPreset};
use century::report::{f, n, Table};
use econ::cost::CostStream;
use econ::money::Usd;

/// Per-deployment economics row.
pub struct DeploymentEconomics {
    /// Node count.
    pub nodes: u64,
    /// All-in deployment cost.
    pub capex: Usd,
    /// Cost per node-year at a given upgrade horizon.
    pub per_node_year: Usd,
}

/// All-in per-node deployment cost: hardware + truck roll + gateway share
/// plus engineering/integration overhead — the dominant term in real
/// municipal projects; we use 4x hardware, consistent with §2's
/// millions-for-thousands observation.
pub fn per_node_capex(costs: &CostPreset) -> Usd {
    let hw = costs.device_hardware + costs.truck_roll;
    let gateway_share = costs.gateway_hardware / 20; // ~20 devices/gateway.
    let integration = costs.device_hardware * 4;
    hw + gateway_share + integration
}

/// Computes the economics for a node count and upgrade horizon.
pub fn economics(nodes: u64, upgrade_years: u32) -> DeploymentEconomics {
    let costs = CostPreset::default();
    let capex = per_node_capex(&costs) * nodes as i64;
    // Modest yearly O&M: 8 % of capex.
    let yearly = capex.scale(0.08);
    let stream = CostStream::upfront_plus_recurring(capex, yearly, upgrade_years as usize);
    let per_node_year = stream.total() / (nodes as i64) / (upgrade_years as i64);
    DeploymentEconomics { nodes, capex, per_node_year }
}

/// Renders the exhibit.
pub fn render(_seed: u64) -> String {
    let sd = DeploymentPreset::san_diego();
    let mut t = Table::new(
        "E4 - Today's deployments (paper: 500-5,000 nodes, millions of dollars, 2-7 y upgrade)",
        &["nodes", "all-in capex", "cost per node-year (5-y upgrade)"],
    );
    for nodes in [500u64, 1_600, 5_000, sd.nodes] {
        let e = economics(nodes, 5);
        t.row(&[n(nodes), e.capex.to_string(), e.per_node_year.to_string()]);
    }
    let mut h = Table::new(
        "E4b - Upgrade-horizon sensitivity (1,600 nodes)",
        &["upgrade horizon (years)", "cost per node-year"],
    );
    for years in [2u32, 5, 7, 15] {
        let e = economics(1_600, years);
        h.row(&[f(years as f64, 0), e.per_node_year.to_string()]);
    }
    format!("{}\n{}", t.render(), h.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_of_nodes_cost_millions() {
        // The paper's regime: a few thousand sensors -> millions of dollars.
        let e = economics(3_300, 5);
        assert!(
            e.capex > Usd::from_dollars(1_000_000),
            "capex {} should be millions",
            e.capex
        );
        assert!(e.capex < Usd::from_dollars(10_000_000));
    }

    #[test]
    fn longer_horizons_amortize() {
        let short = economics(1_600, 2);
        let long = economics(1_600, 7);
        assert!(short.per_node_year > long.per_node_year * 2);
    }

    #[test]
    fn per_node_capex_in_field_range() {
        // Real municipal numbers land $400-1,500 per node all-in.
        let c = per_node_capex(&CostPreset::default());
        assert!(
            c > Usd::from_dollars(300) && c < Usd::from_dollars(1_500),
            "per-node {c}"
        );
    }

    #[test]
    fn render_includes_san_diego_scale() {
        let s = render(0);
        assert!(s.contains("8,000"));
        assert!(s.contains("E4b"));
    }
}
