//! E8 — 50-year data-credit provisioning (§4.4).
//!
//! Paper arithmetic: one (up to 24-byte) packet per hour for 50 years
//! costs 438,000 data credits; a conservative 500,000-credit wallet costs
//! $5 today. We reproduce the numbers exactly and map the margin.

use century::report::{f, n, Table};
use econ::credits::{credits_for_schedule, paper, prepay_vs_payg, Wallet};
use econ::money::Usd;
use simcore::time::SimDuration;

/// Computed results.
pub struct E8 {
    /// Credits needed for the paper's schedule.
    pub fifty_year_credits: u64,
    /// Credits in the $5 wallet.
    pub wallet_credits: u64,
    /// Wallet cost.
    pub wallet_cost: Usd,
    /// Margin credits.
    pub margin: u64,
    /// Wallet runway at the paper cadence, years.
    pub runway_years: f64,
    /// Fastest reporting interval the wallet sustains for 50 years, minutes.
    pub min_sustainable_interval_mins: f64,
}

/// Runs the arithmetic.
pub fn compute() -> E8 {
    let need = credits_for_schedule(24, paper::PACKET_INTERVAL, SimDuration::from_years(50));
    let wallet = Wallet::provision_dollars(paper::provisioned_cost());
    let runway = wallet.runway(24, paper::PACKET_INTERVAL);
    // 500,000 packets spread over 50 years: one every 3,153.6 s.
    let min_interval_s =
        SimDuration::from_years(50).as_secs() as f64 / wallet.balance() as f64;
    E8 {
        fifty_year_credits: need,
        wallet_credits: wallet.balance(),
        wallet_cost: wallet.funded(),
        margin: wallet.balance() - need,
        runway_years: runway.as_years_f64(),
        min_sustainable_interval_mins: min_interval_s / 60.0,
    }
}

/// Wallet-exhaustion sweep: `(interval_minutes, runway_years)`.
pub fn runway_sweep() -> Vec<(f64, f64)> {
    let wallet = Wallet::provision_dollars(paper::provisioned_cost());
    [5.0f64, 15.0, 30.0, 52.56, 60.0, 240.0]
        .into_iter()
        .map(|mins| {
            let interval = SimDuration::from_secs((mins * 60.0) as u64);
            (mins, wallet.runway(24, interval).as_years_f64())
        })
        .collect()
}

/// Renders the exhibit.
pub fn render(_seed: u64) -> String {
    let e = compute();
    let mut t = Table::new(
        "E8 - 50-year data-credit provisioning (paper: 438,000 credits needed, 500,000 for $5)",
        &["quantity", "simulated", "paper"],
    );
    t.row(&["credits for hourly 24-B packets, 50 y".into(), n(e.fifty_year_credits), n(438_000)]);
    t.row(&["wallet credits for $5".into(), n(e.wallet_credits), n(500_000)]);
    t.row(&["wallet cost".into(), e.wallet_cost.to_string(), "$5.00".into()]);
    t.row(&["margin credits".into(), n(e.margin), n(62_000)]);
    t.row(&["runway at hourly cadence".into(), format!("{} years", f(e.runway_years, 1)), ">50 years".into()]);
    t.row(&[
        "fastest 50-y-sustainable cadence".into(),
        format!("every {} min", f(e.min_sustainable_interval_mins, 1)),
        "-".into(),
    ]);
    let mut s = Table::new(
        "E8b - Runway vs reporting cadence ($5 wallet)",
        &["interval (min)", "runway (years)"],
    );
    for (mins, years) in runway_sweep() {
        s.row(&[f(mins, 2), f(years, 1)]);
    }
    // The fixed-price property: prepaying vs buying yearly under credit
    // price escalation.
    let mut pp = Table::new(
        "E8c - Prepaid wallet vs pay-as-you-go (50 y, hourly cadence)",
        &["credit price escalation", "prepaid today", "pay-as-you-go total"],
    );
    for esc in [0.0f64, 0.02, 0.05, 0.10] {
        let (pre, payg) = prepay_vs_payg(esc);
        pp.row(&[f(esc, 2), pre.to_string(), payg.to_string()]);
    }
    format!("{}\n{}\n{}", t.render(), s.render(), pp.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_paper_numbers() {
        let e = compute();
        assert_eq!(e.fifty_year_credits, 438_000);
        assert_eq!(e.wallet_credits, 500_000);
        assert_eq!(e.wallet_cost, Usd::from_dollars(5));
        assert_eq!(e.margin, 62_000);
    }

    #[test]
    fn runway_exceeds_mission() {
        let e = compute();
        assert!(e.runway_years > 50.0 && e.runway_years < 60.0, "{}", e.runway_years);
        // ~52.6 minutes is the break-even cadence.
        assert!((e.min_sustainable_interval_mins - 52.56).abs() < 0.1);
    }

    #[test]
    fn sweep_monotone() {
        let s = runway_sweep();
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1, "longer intervals must extend runway");
        }
        // 5-minute cadence exhausts the wallet in under 5 years.
        assert!(s[0].1 < 5.0);
    }

    #[test]
    fn prepayment_beats_payg_beyond_two_percent_escalation() {
        let (pre, payg_flat) = prepay_vs_payg(0.0);
        assert!(payg_flat < pre, "flat prices favor exact pay-as-you-go");
        let (pre, payg5) = prepay_vs_payg(0.05);
        assert!(payg5 > pre * 3, "5%/yr escalation makes prepayment a bargain");
    }

    #[test]
    fn render_exact_strings() {
        let s = render(0);
        assert!(s.contains("438,000"));
        assert!(s.contains("500,000"));
        assert!(s.contains("$5.00"));
    }
}
