//! E6 — the vertical-integration tipping point (§3.4).
//!
//! Paper claim: *"there will always be a tipping point where the cost of
//! deploying vertically owned and managed infrastructure is lower than the
//! cost of replacing devices"*, so stakeholders must retain the option of
//! self-reliance. We sweep fleet sizes and sunset risk to locate the
//! tipping point.

use century::report::{f, n, Table};
use econ::money::Usd;
use econ::tipping::{cost_streams, tipping_fleet_size, tipping_year, Owned, ThirdParty};

/// The default option parameters used by the exhibit.
pub fn default_options() -> (ThirdParty, Owned) {
    (
        ThirdParty {
            per_device_yearly: Usd::from_dollars(12),
            sunset_rate_per_year: 0.05,
            replacement_per_device: Usd::from_dollars(125),
        },
        Owned {
            buildout: Usd::from_dollars(500_000),
            yearly_ops: Usd::from_dollars(50_000),
            per_device_yearly: Usd::from_dollars(1),
        },
    )
}

/// Computed results.
pub struct E6 {
    /// 50-year totals by fleet size: `(fleet, third_party, owned)`.
    pub sweep: Vec<(u64, Usd, Usd)>,
    /// The tipping fleet size over 50 years.
    pub tipping_fleet: Option<u64>,
    /// For a 10k-device fleet, the year owning should have started.
    pub tipping_year_10k: Option<usize>,
    /// Tipping fleet as a function of sunset risk.
    pub risk_sweep: Vec<(f64, Option<u64>)>,
}

/// Runs the sweeps.
pub fn compute() -> E6 {
    let (third, owned) = default_options();
    let horizon = 50usize;
    let sweep = [100u64, 1_000, 3_000, 10_000, 100_000, 1_000_000]
        .into_iter()
        .map(|fleet| {
            let (t, o) = cost_streams(&third, &owned, fleet, horizon);
            (fleet, t.total(), o.total())
        })
        .collect();
    let tipping_fleet =
        tipping_fleet_size(&third, &owned, horizon, 10_000_000).map(|tp| tp.fleet);
    let tipping_year_10k = tipping_year(&third, &owned, 10_000, horizon);
    let risk_sweep = [0.0f64, 0.02, 0.05, 0.10, 0.25]
        .into_iter()
        .map(|risk| {
            let t = ThirdParty { sunset_rate_per_year: risk, ..third };
            (risk, tipping_fleet_size(&t, &owned, horizon, 10_000_000).map(|tp| tp.fleet))
        })
        .collect();
    E6 { sweep, tipping_fleet, tipping_year_10k, risk_sweep }
}

/// Renders the exhibit.
pub fn render(_seed: u64) -> String {
    let e = compute();
    let mut t = Table::new(
        "E6 - Vertical-integration tipping point, 50-year totals",
        &["fleet size", "third-party total", "owned total", "owning wins"],
    );
    for (fleet, third, owned) in &e.sweep {
        t.row(&[
            n(*fleet),
            third.to_string(),
            owned.to_string(),
            if owned <= third { "yes" } else { "no" }.into(),
        ]);
    }
    let mut s = Table::new("E6b - Tipping summary", &["quantity", "value"]);
    s.row(&[
        "tipping fleet size (50-y horizon)".into(),
        e.tipping_fleet.map_or("none".into(), n),
    ]);
    s.row(&[
        "10k fleet: own-infrastructure pays for itself by year".into(),
        e.tipping_year_10k.map_or("never".into(), |y| f(y as f64, 0)),
    ]);
    let mut r = Table::new(
        "E6c - Sunset risk moves the tipping point",
        &["sunset probability per year", "tipping fleet size"],
    );
    for (risk, fleet) in &e.risk_sweep {
        r.row(&[f(*risk, 2), fleet.map_or("none".into(), n)]);
    }
    format!("{}\n{}\n{}", t.render(), s.render(), r.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tipping_point_exists() {
        let e = compute();
        let tf = e.tipping_fleet.expect("a tipping point must exist");
        assert!(tf > 1_000 && tf < 10_000, "tipping fleet {tf}");
    }

    #[test]
    fn small_fleets_rent_large_fleets_own() {
        let e = compute();
        let (small, st, so) = e.sweep[0];
        assert_eq!(small, 100);
        assert!(st < so, "small fleets should rent");
        let (large, lt, lo) = e.sweep[e.sweep.len() - 1];
        assert_eq!(large, 1_000_000);
        assert!(lo < lt, "large fleets should own");
    }

    #[test]
    fn risk_monotonically_lowers_tipping_point() {
        let e = compute();
        let fleets: Vec<u64> = e.risk_sweep.iter().filter_map(|&(_, f)| f).collect();
        for w in fleets.windows(2) {
            assert!(w[1] <= w[0], "higher risk must not raise the tipping point");
        }
    }

    #[test]
    fn ten_k_fleet_should_have_owned_within_a_decade() {
        let e = compute();
        let y = e.tipping_year_10k.expect("10k fleet tips");
        assert!(y <= 10, "year {y}");
    }

    #[test]
    fn render_has_all_three_tables() {
        let s = render(0);
        assert!(s.contains("E6 -") && s.contains("E6b") && s.contains("E6c"));
    }
}
