//! The exhibit suite: one module per table/figure in EXPERIMENTS.md.
//!
//! Each module exposes `compute(..)` (typed results, used by tests and
//! benches) and `render(seed) -> String` (the printed exhibit).

pub mod e1;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;
pub mod f1;

/// Exhibit ids in presentation order.
pub const ALL: [&str; 13] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "f1",
];

/// Renders one exhibit by id. Returns `None` for unknown ids.
pub fn render(id: &str, seed: u64) -> Option<String> {
    let out = match id {
        "e1" => e1::render(seed),
        "e2" => e2::render(seed),
        "e3" => e3::render(seed),
        "e4" => e4::render(seed),
        "e5" => e5::render(seed),
        "e6" => e6::render(seed),
        "e7" => e7::render(seed),
        "e8" => e8::render(seed),
        "e9" => e9::render(seed),
        "e10" => e10::render(seed),
        "e11" => e11::render(seed),
        "e12" => e12::render(seed),
        "f1" => f1::render(seed),
        _ => return None,
    };
    Some(out)
}
