//! E3 — Ship-of-Theseus cohort pipelining (§1 ¶6, §3.4).
//!
//! The paper: municipal systems outlive every constituent device because
//! deployments are pipelined in geographic batches. We compare en-masse
//! rollout against staggered cohorts for sharp-wear-out 15-year devices
//! over a 60-year horizon: both keep the *system* alive indefinitely, but
//! staggering flattens replacement-labor peaks dramatically.

use century::report::{f, n, Table};
use fleet::pipeline::{fleet_age_at_horizon, run, PipelineConfig, PipelineRun, Rollout};
use fleet::workforce::{min_capacity_for_backlog, run_backlog, Workforce};
use reliability::hazard::WeibullHazard;
use simcore::rng::Rng;

/// Computed results.
pub struct E3 {
    /// En-masse rollout results.
    pub en_masse: PipelineRun,
    /// Staggered rollout results.
    pub staggered: PipelineRun,
    /// Mean and P90 fleet age at horizon (staggered).
    pub fleet_age: (f64, f64),
    /// Device MTTF used.
    pub device_mttf: f64,
}

/// Runs the experiment.
pub fn compute(seed: u64, mounts: u32) -> E3 {
    // 15-year median, sharp wear-out (k = 6): the synchronized-wave case.
    let ttf = WeibullHazard::with_median(6.0, 15.0);
    let cfg = |rollout| PipelineConfig {
        mounts,
        rollout,
        replace_lag_years: 0.25,
        horizon_years: 60.0,
    };
    let base = Rng::seed_from(seed);
    let mut r1 = base.split("en-masse", 0);
    let mut r2 = base.split("staggered", 0);
    let mut r3 = base.split("age", 0);
    let en_masse = run(&cfg(Rollout::EnMasse), &ttf, &mut r1);
    let staggered = run(&cfg(Rollout::Staggered { years: 15 }), &ttf, &mut r2);
    let fleet_age = fleet_age_at_horizon(&cfg(Rollout::Staggered { years: 15 }), &ttf, &mut r3);
    E3 { en_masse, staggered, fleet_age, device_mttf: ttf.mttf() }
}

/// Renders the exhibit.
pub fn render(seed: u64) -> String {
    let e = compute(seed, 2_000);
    let mut t = Table::new(
        "E3 - Ship of Theseus: en-masse vs pipelined cohorts (2,000 mounts, 15-y devices, 60-y horizon)",
        &["metric", "en masse", "staggered (15 y)"],
    );
    t.row(&[
        "mean fleet availability".into(),
        f(e.en_masse.mean_alive, 3),
        f(e.staggered.mean_alive, 3),
    ]);
    t.row(&[
        "total replacements".into(),
        n(e.en_masse.total_replacements),
        n(e.staggered.total_replacements),
    ]);
    t.row(&[
        "peak-year replacements".into(),
        n(e.en_masse.peak_year_replacements as u64),
        n(e.staggered.peak_year_replacements as u64),
    ]);
    t.row(&[
        "peak / steady-state ratio".into(),
        f(
            e.en_masse.peak_year_replacements as f64
                / (e.en_masse.total_replacements as f64 / 60.0),
            2,
        ),
        f(
            e.staggered.peak_year_replacements as f64
                / (e.staggered.total_replacements as f64 / 60.0),
            2,
        ),
    ]);
    t.row(&[
        "device MTTF (years)".into(),
        f(e.device_mttf, 1),
        f(e.device_mttf, 1),
    ]);
    t.row(&[
        "fleet age at year 60: mean / P90".into(),
        "-".into(),
        format!("{} / {} years", f(e.fleet_age.0, 1), f(e.fleet_age.1, 1)),
    ]);
    // The staffing consequence: what each rollout demands of a finite crew.
    let demand = |run: &PipelineRun| -> Vec<f64> {
        run.replacements_per_year.iter().map(|&r| r as f64).collect()
    };
    let hours_per = 0.35; // Batched: ~21 min per replacement.
    let steady = e.en_masse.total_replacements as f64 / 60.0;
    let crew = Workforce::new(steady * 1.1, hours_per);
    let bl_masse = run_backlog(&demand(&e.en_masse), &crew);
    let bl_stag = run_backlog(&demand(&e.staggered), &crew);
    let mut w = Table::new(
        "E3b - Workforce consequence (crew sized at 1.1x steady-state demand)",
        &["metric", "en masse", "staggered (15 y)"],
    );
    w.row(&[
        "peak maintenance backlog (devices)".into(),
        f(bl_masse.peak_backlog, 0),
        f(bl_stag.peak_backlog, 0),
    ]);
    w.row(&[
        "dark device-years queued".into(),
        f(bl_masse.dark_device_years, 0),
        f(bl_stag.dark_device_years, 0),
    ]);
    w.row(&[
        "crew capacity for <=50-device backlog".into(),
        f(min_capacity_for_backlog(&demand(&e.en_masse), hours_per, 50.0), 0),
        f(min_capacity_for_backlog(&demand(&e.staggered), hours_per, 50.0), 0),
    ]);
    format!("{}\n{}", t.render(), w.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_outlives_devices_under_both_rollouts() {
        let e = compute(1, 500);
        assert!(e.en_masse.mean_alive > 0.9);
        assert!(e.staggered.mean_alive > 0.85); // Rollout period lowers early availability.
        // Each mount replaced ~3-4 times over 60 years.
        assert!(e.en_masse.total_replacements > 500 * 2);
    }

    #[test]
    fn staggering_flattens_peaks() {
        let e = compute(2, 1_000);
        assert!(
            (e.staggered.peak_year_replacements as f64)
                < e.en_masse.peak_year_replacements as f64 * 0.75,
            "staggered {} en-masse {}",
            e.staggered.peak_year_replacements,
            e.en_masse.peak_year_replacements
        );
    }

    #[test]
    fn fleet_age_below_device_mttf() {
        let e = compute(3, 500);
        assert!(e.fleet_age.0 < e.device_mttf);
        assert!(e.fleet_age.1 > e.fleet_age.0);
    }

    #[test]
    fn render_has_both_columns() {
        let s = render(4);
        assert!(s.contains("en masse"));
        assert!(s.contains("staggered"));
        assert!(s.contains("E3b"));
    }

    #[test]
    fn staggering_lowers_required_crew() {
        let e = compute(5, 1_000);
        let demand = |r: &PipelineRun| -> Vec<f64> {
            r.replacements_per_year.iter().map(|&x| x as f64).collect()
        };
        let cap_masse = min_capacity_for_backlog(&demand(&e.en_masse), 0.35, 25.0);
        let cap_stag = min_capacity_for_backlog(&demand(&e.staggered), 0.35, 25.0);
        assert!(
            cap_stag < cap_masse,
            "staggered crew {cap_stag} should be below en-masse {cap_masse}"
        );
    }
}
