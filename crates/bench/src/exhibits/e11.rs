//! E11 — spectrum-sunset stranding (§3.3.2, §3.4).
//!
//! Paper claim: when a cellular generation sunsets, "device owners have no
//! option: a fixed resource (spectrum) that they do not own or control is
//! taken away, and devices must be replaced." Wires keep their trench. We
//! run a gateway fleet attached per-generation through the sunset
//! schedule and count forced migrations, against a fiber fleet that sees
//! none.

use backhaul::sunset::{migrate_forward, stranding_events, SunsetSchedule};
use backhaul::tech::CellularGen;
use century::report::{f, n, Table};
use econ::money::Usd;

/// Computed results.
pub struct E11 {
    /// Stranding events for the cellular fleet: `(year, generation, count)`.
    pub events: Vec<(f64, CellularGen, u64)>,
    /// Forced migrations per gateway over 50 years starting on 4G.
    pub migrations_from_4g: usize,
    /// Whether the final hop leaves gateways permanently stranded.
    pub eventually_stranded: bool,
    /// Total forced-migration cost for the fleet.
    pub migration_cost: Usd,
    /// Fiber fleet stranding events (always zero).
    pub fiber_events: usize,
}

/// Fleet shape: gateways per generation at deployment time.
pub fn fleet(gen: CellularGen) -> u64 {
    match gen {
        CellularGen::G2 => 40,
        CellularGen::G3 => 160,
        CellularGen::G4 => 700,
        CellularGen::G5 => 100,
    }
}

/// Runs the stranding analysis.
pub fn compute() -> E11 {
    let schedule = SunsetSchedule::default();
    let horizon = 50.0;
    let events: Vec<(f64, CellularGen, u64)> = stranding_events(&schedule, fleet, horizon)
        .into_iter()
        .map(|e| (e.at.as_years_f64(), e.generation, e.stranded))
        .collect();
    let hops = migrate_forward(&schedule, CellularGen::G4, horizon);
    let eventually_stranded = hops.last().is_some_and(|&(_, next)| next.is_none());
    // $300 per forced gateway migration (hardware modem + visit).
    let total_stranded: u64 = events.iter().map(|&(_, _, c)| c).sum();
    E11 {
        events,
        migrations_from_4g: hops.len(),
        eventually_stranded,
        migration_cost: Usd::from_dollars(300) * total_stranded as i64,
        fiber_events: 0,
    }
}

/// Renders the exhibit.
pub fn render(_seed: u64) -> String {
    let e = compute();
    let mut t = Table::new(
        "E11 - Spectrum sunsets strand cellular-attached gateways (50-y horizon)",
        &["sunset year", "generation", "gateways stranded"],
    );
    for (year, generation, count) in &e.events {
        t.row(&[f(*year, 0), format!("{generation:?}"), n(*count)]);
    }
    let mut s = Table::new("E11b - Policy comparison", &["quantity", "value"]);
    s.row(&[
        "forced migrations for a 4G-attached gateway".into(),
        n(e.migrations_from_4g as u64),
    ]);
    s.row(&[
        "permanently stranded after final sunset".into(),
        if e.eventually_stranded { "yes (no newer generation modeled)" } else { "no" }.into(),
    ]);
    s.row(&[
        "fleet forced-migration cost".into(),
        e.migration_cost.to_string(),
    ]);
    s.row(&[
        "fiber-attached fleet stranding events".into(),
        n(e.fiber_events as u64),
    ]);
    format!("{}\n{}", t.render(), s.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_generations_sunset_within_horizon() {
        let e = compute();
        assert_eq!(e.events.len(), 4);
        let years: Vec<f64> = e.events.iter().map(|&(y, _, _)| y).collect();
        assert!(years.windows(2).all(|w| w[0] <= w[1]));
        assert!(years[0] >= 1.0 && years[3] <= 35.0);
    }

    #[test]
    fn four_g_fleet_migrates_then_strands() {
        let e = compute();
        assert_eq!(e.migrations_from_4g, 2); // 4G->5G, then 5G sunset.
        assert!(e.eventually_stranded);
    }

    #[test]
    fn stranded_counts_match_fleet() {
        let e = compute();
        let total: u64 = e.events.iter().map(|&(_, _, c)| c).sum();
        assert_eq!(total, 40 + 160 + 700 + 100);
        assert_eq!(e.migration_cost, Usd::from_dollars(300_000));
    }

    #[test]
    fn fiber_never_strands() {
        assert_eq!(compute().fiber_events, 0);
    }

    #[test]
    fn render_lists_generations() {
        let s = render(0);
        assert!(s.contains("G2") && s.contains("G5"));
        assert!(s.contains("fiber"));
    }
}
