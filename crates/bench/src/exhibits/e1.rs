//! E1 — the device-vs-infrastructure lifetime gap (§1 ¶1).
//!
//! Paper claims: wireless electronics are replaced every ~50 months while
//! bridges last ~50 years (12× gap) and roads ~25 years. We reproduce the
//! headline ratio and place our simulated device archetypes on the same
//! axis.

use century::report::{f, Table};
use fleet::obsolescence::{end_of_service, ObsolescenceRates};
use reliability::mission::{paper, MissionReport};
use reliability::system::bom;
use simcore::rng::Rng;
use simcore::stats::Samples;

/// Computed results, exposed for integration tests.
pub struct E1 {
    /// Median consumer replacement age (months) under the consumer
    /// obsolescence process.
    pub consumer_median_months: f64,
    /// Median battery-node life (years).
    pub battery_median_years: f64,
    /// Median harvesting-node life (years).
    pub harvesting_median_years: f64,
    /// The paper's headline ratio (bridge years / device months).
    pub paper_gap: f64,
}

/// Runs the experiment.
pub fn compute(seed: u64, draws: usize) -> E1 {
    let mut rng = Rng::seed_from(seed);
    let env = bom::Environment::default();

    // Consumer device: functional wear-out at ~12 y median, but the
    // consumer obsolescence process usually replaces it first.
    let consumer_rates = ObsolescenceRates::consumer();
    let battery = bom::battery_node(&env);
    let mut consumer_ages = Samples::new();
    for _ in 0..draws {
        let functional = battery.sample_ttf(&mut rng);
        let (age, _) = end_of_service(functional, &consumer_rates, &mut rng);
        consumer_ages.add(age * 12.0);
    }

    let mut bat = MissionReport::estimate(&bom::battery_node(&env), &mut rng, draws);
    let mut har = MissionReport::estimate(&bom::harvesting_node(&env), &mut rng, draws);

    #[allow(clippy::expect_used)]
    // simlint: allow(P001, callers pass a nonzero draw count; one sample per draw)
    let consumer_median_months = consumer_ages.median().expect("draws > 0");
    E1 {
        consumer_median_months,
        battery_median_years: bat.median_life(),
        harvesting_median_years: har.median_life(),
        paper_gap: paper::lifetime_gap(),
    }
}

/// Renders the exhibit.
pub fn render(seed: u64) -> String {
    let e = compute(seed, 20_000);
    let mut t = Table::new(
        "E1 - Device vs infrastructure lifetime gap (paper: 50 months vs 50 years, 12x)",
        &["entity", "median life", "gap vs bridge (50 y)"],
    );
    let gap = |years: f64| f(50.0 / years, 1);
    t.row(&[
        "consumer wireless device (sim)".into(),
        format!("{} months", f(e.consumer_median_months, 0)),
        format!("{}x", gap(e.consumer_median_months / 12.0)),
    ]);
    t.row(&[
        "paper: consumer device".into(),
        "50 months".into(),
        format!("{}x", f(e.paper_gap, 1)),
    ]);
    t.row(&[
        "battery IoT node (sim BOM)".into(),
        format!("{} years", f(e.battery_median_years, 1)),
        format!("{}x", gap(e.battery_median_years)),
    ]);
    t.row(&[
        "harvesting IoT node (sim BOM)".into(),
        format!("{} years", f(e.harvesting_median_years, 1)),
        format!("{}x", gap(e.harvesting_median_years)),
    ]);
    t.row_str(&["road (paper, WisDOT median)", "25 years", "2.0x"]);
    t.row_str(&["bridge (paper, NBI median)", "50 years", "1.0x"]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consumer_median_near_paper_50_months() {
        let e = compute(1, 20_000);
        // Median of exp(0.24/yr) ≈ 34.7 months; combined with wear-out the
        // consumer cadence lands in the paper's 50-month *mean* regime.
        // Check the broad band (30-60 months median).
        assert!(
            e.consumer_median_months > 25.0 && e.consumer_median_months < 60.0,
            "median {} months",
            e.consumer_median_months
        );
        assert!((e.paper_gap - 12.0).abs() < 1e-9);
    }

    #[test]
    fn harvesting_beats_battery() {
        let e = compute(2, 10_000);
        assert!(e.harvesting_median_years > e.battery_median_years);
        assert!(e.battery_median_years > 5.0 && e.battery_median_years < 18.0);
    }

    #[test]
    fn render_contains_rows() {
        let s = render(3);
        assert!(s.contains("E1"));
        assert!(s.contains("bridge"));
        assert!(s.contains("50 months"));
    }
}
