//! E10 — batteryless longevity ablation (§1 ¶8).
//!
//! Paper claim: batteries and electrolytics cap device life around 10–15
//! years; energy-harvesting design points remove those hazards and gain
//! robustness "for free" from low-power design. We ablate the BOM: same
//! node, battery vs harvesting power chain, and attribute first failures
//! to components.

use century::report::{f, pct, Table};
use reliability::mission::MissionReport;
use reliability::system::{bom, Block};
use simcore::rng::Rng;
use std::collections::BTreeMap;

/// Computed results for one BOM.
pub struct BomResult {
    /// Label.
    pub name: &'static str,
    /// Median life, years.
    pub median: f64,
    /// B10 (10th percentile) life, years.
    pub b10: f64,
    /// P(survive 15 y).
    pub p15: f64,
    /// P(survive 50 y).
    pub p50: f64,
    /// First-failure attribution shares by component.
    pub attribution: Vec<(&'static str, f64)>,
}

fn analyze(name: &'static str, block: &Block, rng: &mut Rng, draws: usize) -> BomResult {
    let mut rep = MissionReport::estimate(block, rng, draws);
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for _ in 0..draws {
        let (_, who) = block.sample_ttf_attributed(rng);
        *counts.entry(who).or_insert(0) += 1;
    }
    let mut attribution: Vec<(&'static str, f64)> = counts
        .into_iter()
        .map(|(k, v)| (k, v as f64 / draws as f64))
        .collect();
    attribution.sort_by(|a, b| b.1.total_cmp(&a.1));
    BomResult {
        name,
        median: rep.median_life(),
        b10: rep.percentile_life(0.1),
        p15: rep.p_survive(15.0),
        p50: rep.p_survive(50.0),
        attribution,
    }
}

/// Runs both BOMs.
pub fn compute(seed: u64, draws: usize) -> (BomResult, BomResult) {
    let env = bom::Environment::default();
    let mut rng = Rng::seed_from(seed);
    let battery = analyze("battery", &bom::battery_node(&env), &mut rng, draws);
    let harvesting = analyze("harvesting", &bom::harvesting_node(&env), &mut rng, draws);
    (battery, harvesting)
}

/// Renders the exhibit.
pub fn render(seed: u64) -> String {
    let (bat, har) = compute(seed, 20_000);
    let mut t = Table::new(
        "E10 - BOM ablation: battery vs energy-harvesting node (paper: 10-15 y folklore vs batteryless)",
        &["metric", "battery node", "harvesting node"],
    );
    t.row(&["median life (years)".into(), f(bat.median, 1), f(har.median, 1)]);
    t.row(&["B10 life (years)".into(), f(bat.b10, 1), f(har.b10, 1)]);
    t.row(&["P(survive 15 y)".into(), pct(bat.p15), pct(har.p15)]);
    t.row(&["P(survive 50 y)".into(), pct(bat.p50), pct(har.p50)]);
    let mut a = Table::new(
        "E10b - First-failure attribution (top components)",
        &["battery node", "share", "harvesting node", "share"],
    );
    for i in 0..4 {
        let b = bat.attribution.get(i);
        let h = har.attribution.get(i);
        a.row(&[
            b.map_or("-".into(), |x| x.0.to_string()),
            b.map_or("-".into(), |x| pct(x.1)),
            h.map_or("-".into(), |x| x.0.to_string()),
            h.map_or("-".into(), |x| pct(x.1)),
        ]);
    }
    format!("{}\n{}", t.render(), a.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_median_in_folklore_band() {
        let (bat, _) = compute(1, 10_000);
        assert!(bat.median > 6.0 && bat.median < 16.0, "median {}", bat.median);
    }

    #[test]
    fn harvesting_substantially_longer() {
        let (bat, har) = compute(2, 10_000);
        assert!(har.median > bat.median * 1.3, "bat {} har {}", bat.median, har.median);
        // At 50 years both survival probabilities are near the Monte-Carlo
        // floor; the separation shows clearly at 15 years (the folklore
        // boundary the paper quotes).
        assert!(har.p15 > bat.p15 + 0.1, "bat {} har {}", bat.p15, har.p15);
        assert!(har.p50 >= bat.p50);
    }

    #[test]
    fn battery_dominates_battery_node_attribution() {
        let (bat, _) = compute(3, 10_000);
        let battery_share = bat
            .attribution
            .iter()
            .find(|(name, _)| *name == "primary-battery")
            .map(|&(_, share)| share)
            .unwrap_or(0.0);
        assert!(battery_share > 0.25, "share {battery_share}");
    }

    #[test]
    fn harvesting_node_not_killed_by_battery() {
        let (_, har) = compute(4, 10_000);
        assert!(har
            .attribution
            .iter()
            .all(|(name, _)| *name != "primary-battery" && *name != "electrolytic-cap"));
    }

    #[test]
    fn render_has_both_tables() {
        let s = render(5);
        assert!(s.contains("E10 -") && s.contains("E10b"));
    }
}
