//! The ablation suite: executable versions of DESIGN.md §4's design-choice
//! ablations, in the same shape as the exhibits.

pub mod a1;
pub mod a2;
pub mod a3;
pub mod a4;
pub mod a5;
pub mod a6;
pub mod a7;

/// Ablation ids in presentation order.
pub const ALL: [&str; 7] = ["a1", "a2", "a3", "a4", "a5", "a6", "a7"];

/// Renders one ablation by id. Returns `None` for unknown ids.
pub fn render(id: &str, seed: u64) -> Option<String> {
    let out = match id {
        "a1" => a1::render(seed),
        "a2" => a2::render(seed),
        "a3" => a3::render(seed),
        "a4" => a4::render(seed),
        "a5" => a5::render(seed),
        "a6" => a6::render(seed),
        "a7" => a7::render(seed),
        _ => return None,
    };
    Some(out)
}
