//! A6 — gateway upgrade-policy ablation (§1 heterogeneity, §3.2
//! upgradability).
//!
//! Three policies for riding technology generations: chase the latest,
//! run to failure, or retire at end of support. Measured over 50 years of
//! Pi-class gateway hardware with a new generation every 10 years.

use century::report::{f, n, Table};
use fleet::upgrade::{run, timeline, UpgradePolicy, UpgradeRun};
use reliability::hazard::WeibullHazard;
use simcore::rng::Rng;

/// Policies compared, with display labels.
pub const POLICIES: [(&str, UpgradePolicy); 3] = [
    ("always-latest", UpgradePolicy::AlwaysLatest),
    ("run-to-failure", UpgradePolicy::RunToFailure),
    ("on-support-end", UpgradePolicy::OnSupportEnd),
];

/// Runs all policies over the same hardware-lifetime streams.
pub fn compute(seed: u64, mounts: u32) -> Vec<(&'static str, UpgradeRun)> {
    let ttf = WeibullHazard::with_median(2.0, 4.0);
    let tl = timeline(10.0, 15.0, 50.0);
    let base = Rng::seed_from(seed);
    POLICIES
        .into_iter()
        .map(|(label, policy)| {
            // Identical per-mount streams across policies (CRN).
            let mut rng = base.split("policy-crn", 0);
            (label, run(policy, &ttf, &tl, mounts, 50.0, &mut rng))
        })
        .collect()
}

/// Renders the ablation.
pub fn render(seed: u64) -> String {
    let rows = compute(seed, 500);
    let mut t = Table::new(
        "A6 - Gateway upgrade-policy ablation (500 mounts, 50 y, new generation every 10 y, 15 y support)",
        &[
            "policy",
            "hardware installs",
            "mean generations in service",
            "peak",
            "unsupported mount-years",
        ],
    );
    for (label, r) in &rows {
        t.row(&[
            label.to_string(),
            n(r.installs),
            f(r.mean_heterogeneity, 2),
            n(r.peak_heterogeneity as u64),
            f(r.unsupported_mount_years, 0),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_orderings_hold() {
        let rows = compute(1, 300);
        let get = |label: &str| {
            rows.iter()
                .find(|(l, _)| *l == label)
                .map(|(_, r)| r)
                .expect("policy present")
        };
        let latest = get("always-latest");
        let rtf = get("run-to-failure");
        let ose = get("on-support-end");
        // Spend: chase-latest installs most; run-to-failure least.
        assert!(latest.installs >= ose.installs);
        assert!(ose.installs >= rtf.installs);
        // Risk: run-to-failure accrues the most unsupported time.
        assert!(rtf.unsupported_mount_years > ose.unsupported_mount_years);
        assert!(latest.unsupported_mount_years <= rtf.unsupported_mount_years);
        // Heterogeneity: chase-latest keeps the fleet most uniform.
        assert!(latest.mean_heterogeneity <= rtf.mean_heterogeneity + 1e-9);
    }

    #[test]
    fn renders() {
        let s = render(2);
        assert!(s.contains("A6") && s.contains("run-to-failure"));
    }
}
