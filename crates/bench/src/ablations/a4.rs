//! A4 — device-replacement policy ablation for the 50-year experiment.
//!
//! The paper's policy is "untouched, but documented and replaced on
//! failure". The ablation sweeps the replacement turnaround — prompt
//! (2 weeks), sluggish (6 months), annual batch (1 year), and never — and
//! measures what each does to the weekly-uptime metric and the data yield.

use century::report::{f, n, pct, Table};
use fleet::sim::{FleetConfig, FleetSim};
use simcore::time::SimDuration;

/// One policy's outcome (averaged over seeds, owned arm).
pub struct PolicyRow {
    /// Policy label.
    pub label: &'static str,
    /// Mean weekly uptime.
    pub uptime: f64,
    /// Mean data yield.
    pub data_yield: f64,
    /// Mean replacements per run.
    pub replacements: f64,
}

/// Runs the sweep over `seeds` seeds per policy.
pub fn compute(base_seed: u64, seeds: u64) -> Vec<PolicyRow> {
    let policies: [(&'static str, Option<SimDuration>); 4] = [
        ("2-week turnaround", Some(SimDuration::from_weeks(2))),
        ("6-month turnaround", Some(SimDuration::from_weeks(26))),
        ("annual batch", Some(SimDuration::from_years(1))),
        ("never replaced", None),
    ];
    policies
        .into_iter()
        .map(|(label, policy)| {
            let mut uptime = 0.0;
            let mut data_yield = 0.0;
            let mut replacements = 0.0;
            for s in 0..seeds {
                // Same seeds across policies: common random numbers.
                let mut cfg = FleetConfig::paper_experiment(base_seed + s);
                for arm in &mut cfg.arms {
                    arm.replace_devices = policy;
                }
                let report = FleetSim::run(cfg);
                let owned = &report.arms[0];
                uptime += owned.uptime();
                data_yield += owned.data_yield();
                replacements += owned.device_replacements as f64;
            }
            let k = seeds as f64;
            PolicyRow {
                label,
                uptime: uptime / k,
                data_yield: data_yield / k,
                replacements: replacements / k,
            }
        })
        .collect()
}

/// Renders the ablation.
pub fn render(seed: u64) -> String {
    let rows = compute(seed, 5);
    let mut t = Table::new(
        "A4 - Replacement-policy ablation (owned arm, 5 seeds each, common random numbers)",
        &["policy", "weekly uptime", "data yield", "replacements/run"],
    );
    for r in &rows {
        t.row(&[
            r.label.to_string(),
            pct(r.uptime),
            pct(r.data_yield),
            n(r.replacements.round() as u64),
        ]);
    }
    #[allow(clippy::expect_used)]
    // simlint: allow(P001, rows has one entry per policy in the const sweep)
    let dead = rows.last().expect("rows");
    #[allow(clippy::expect_used)]
    // simlint: allow(P001, rows has one entry per policy in the const sweep)
    let prompt = rows.first().expect("rows");
    let mut s = Table::new("A4b - Spread", &["quantity", "value"]);
    s.row(&[
        "yield lost by never replacing".into(),
        format!("{} points", f((prompt.data_yield - dead.data_yield) * 100.0, 1)),
    ]);
    format!("{}\n{}", t.render(), s.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slower_replacement_never_helps() {
        let rows = compute(100, 3);
        for w in rows.windows(2) {
            assert!(
                w[1].data_yield <= w[0].data_yield + 0.01,
                "{} ({}) should not beat {} ({})",
                w[1].label,
                w[1].data_yield,
                w[0].label,
                w[0].data_yield
            );
        }
    }

    #[test]
    fn never_replacing_collapses_yield() {
        let rows = compute(200, 3);
        let prompt = &rows[0];
        let dead = &rows[3];
        assert_eq!(dead.replacements, 0.0);
        assert!(
            dead.data_yield < prompt.data_yield - 0.2,
            "dead {} prompt {}",
            dead.data_yield,
            prompt.data_yield
        );
    }

    #[test]
    fn renders() {
        let s = render(300);
        assert!(s.contains("A4") && s.contains("never replaced"));
    }
}
