//! A3 — checkpoint-interval ablation for intermittent execution.
//!
//! Batteryless devices compute through power failures by checkpointing.
//! Checkpoint too often and the overhead eats the harvested budget; too
//! rarely and every failure replays a long tail of lost work. The ablation
//! sweeps the interval and exposes the classic U-curve, plus where its
//! minimum sits relative to the power-on window.

use century::report::{f, Table};
use energy::intermittent::{mean_run, sweep_checkpoint_interval, IntermittentTask};
use simcore::rng::Rng;

/// The task used throughout: 10 s of work, 1 s mean power-on windows,
/// 10 ms checkpoints, turbulent harvest.
pub fn task() -> IntermittentTask {
    IntermittentTask {
        work_s: 10.0,
        on_time_s: 1.0,
        checkpoint_s: 0.01,
        checkpoint_interval_s: 0.25,
        jitter: true,
    }
}

/// Computed results.
pub struct A3 {
    /// `(interval_s, mean_total_on_time_s)` sweep.
    pub sweep: Vec<(f64, f64)>,
    /// Interval with the lowest total on-time.
    pub best_interval_s: f64,
    /// Efficiency (useful/total) at the best interval.
    pub best_efficiency: f64,
}

/// Runs the sweep.
pub fn compute(seed: u64, n_per_point: usize) -> A3 {
    let base = task();
    let intervals = [0.02, 0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4];
    let mut rng = Rng::seed_from(seed);
    let sweep = sweep_checkpoint_interval(&base, &intervals, &mut rng, n_per_point);
    #[allow(clippy::expect_used)]
    let &(best_interval_s, _) = sweep
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        // simlint: allow(P001, the interval grid is a non-empty const array)
        .expect("non-empty sweep");
    let best_task = IntermittentTask { checkpoint_interval_s: best_interval_s, ..base };
    let mut rng2 = Rng::seed_from(seed + 1);
    let run = mean_run(&best_task, &mut rng2, n_per_point);
    A3 { sweep, best_interval_s, best_efficiency: run.efficiency(base.work_s) }
}

/// Renders the ablation.
pub fn render(seed: u64) -> String {
    let a = compute(seed, 600);
    let mut t = Table::new(
        "A3 - Checkpoint-interval ablation (10 s task, 1 s mean power windows, 10 ms checkpoints)",
        &["interval (s)", "mean on-time to finish (s)"],
    );
    for (iv, total) in &a.sweep {
        t.row(&[f(*iv, 2), f(*total, 2)]);
    }
    let mut s = Table::new("A3b - Optimum", &["quantity", "value"]);
    s.row(&["best checkpoint interval".into(), format!("{} s", f(a.best_interval_s, 2))]);
    s.row(&["efficiency at optimum".into(), f(a.best_efficiency, 3)]);
    format!("{}\n{}", t.render(), s.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u_curve_has_interior_minimum() {
        let a = compute(1, 800);
        let first = a.sweep.first().expect("rows").1;
        let last = a.sweep.last().expect("rows").1;
        let min = a.sweep.iter().map(|&(_, t)| t).fold(f64::INFINITY, f64::min);
        assert!(min < first, "tiny intervals overpay checkpoints");
        assert!(min < last, "huge intervals lose work");
        assert!(a.best_interval_s > 0.02 && a.best_interval_s < 6.4);
    }

    #[test]
    fn efficiency_below_one_above_half() {
        let a = compute(2, 800);
        assert!(a.best_efficiency > 0.5 && a.best_efficiency < 1.0, "{}", a.best_efficiency);
    }

    #[test]
    fn renders() {
        let s = render(3);
        assert!(s.contains("A3") && s.contains("interval"));
    }
}
