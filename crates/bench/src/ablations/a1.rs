//! A1 — gateway service posture: transmit-only vs bidirectional (§4.4).
//!
//! The paper firewalls its gateways into unidirectional forwarders to
//! "limit the security risk of not attending to updates", accepting that
//! this "limits the utility of our deployed infrastructure". The ablation
//! prices both sides: 50 years of software upkeep per posture, and the
//! orphaning consequences when a gateway dies without a handoff (keyed
//! sessions are lost; connectionless devices just re-home).

use century::report::{f, n, Table};
use fleet::commissioning::{ProtocolError, Registry, Session};
use fleet::gateway::GatewayMode;

/// Computed results.
pub struct A1 {
    /// 50-year upkeep hours per gateway, unidirectional.
    pub upkeep_uni_h: f64,
    /// 50-year upkeep hours per gateway, bidirectional.
    pub upkeep_bi_h: f64,
    /// Devices orphaned by a disorderly failure with connectionless
    /// sessions.
    pub orphans_forwarding: usize,
    /// Devices orphaned by a disorderly failure with keyed sessions.
    pub orphans_keyed: usize,
    /// Devices that survive an *orderly* migration in either posture.
    pub migrated: usize,
}

/// Runs the ablation for a 100-device gateway.
/// Commissions one gateway with `devices` sessions and kills it without a
/// handoff, returning the orphan count.
fn orphans_after_disorderly_failure(
    devices: u32,
    session: Session,
) -> Result<usize, ProtocolError> {
    let mut reg = Registry::new();
    reg.add_factory(0);
    reg.commission(0)?;
    for d in 0..devices {
        reg.attach(0, d, session)?;
    }
    reg.fail_without_handoff(0)
}

/// Commissions one gateway with keyed sessions and retires it through the
/// orderly migration protocol, returning the migrated-device count.
fn survivors_after_orderly_migration(devices: u32) -> Result<usize, ProtocolError> {
    let mut reg = Registry::new();
    reg.add_factory(0);
    reg.commission(0)?;
    for d in 0..devices {
        reg.attach(0, d, Session::Keyed { epoch: 0 })?;
    }
    reg.add_factory(1);
    reg.begin_migration(0, 1)?;
    reg.complete_migration(0)
}

/// Computes the ablation: upkeep pricing plus the three protocol runs.
#[allow(clippy::expect_used)]
pub fn compute() -> A1 {
    let devices = 100u32;
    let upkeep_uni_h = GatewayMode::UnidirectionalFirewalled.yearly_upkeep_hours() * 50.0;
    let upkeep_bi_h = GatewayMode::Bidirectional.yearly_upkeep_hours() * 50.0;

    // Each protocol run follows the documented commission → attach →
    // retire state machine exactly, so the Results are infallible here.
    let orphans_forwarding = orphans_after_disorderly_failure(devices, Session::Forwarding)
        // simlint: allow(P001, scripted protocol run; every transition is legal)
        .expect("scripted protocol run");
    let orphans_keyed =
        orphans_after_disorderly_failure(devices, Session::Keyed { epoch: 0 })
            // simlint: allow(P001, scripted protocol run; every transition is legal)
            .expect("scripted protocol run");
    let migrated = survivors_after_orderly_migration(devices)
        // simlint: allow(P001, scripted protocol run; every transition is legal)
        .expect("scripted protocol run");

    A1 { upkeep_uni_h, upkeep_bi_h, orphans_forwarding, orphans_keyed, migrated }
}

/// Renders the ablation.
pub fn render(_seed: u64) -> String {
    let a = compute();
    let mut t = Table::new(
        "A1 - Gateway posture ablation: transmit-only/firewalled vs bidirectional (100 devices)",
        &["quantity", "unidirectional", "bidirectional"],
    );
    t.row(&[
        "software upkeep over 50 y (h/gateway)".into(),
        f(a.upkeep_uni_h, 0),
        f(a.upkeep_bi_h, 0),
    ]);
    t.row(&[
        "devices orphaned by disorderly gateway death".into(),
        n(a.orphans_forwarding as u64),
        n(a.orphans_keyed as u64),
    ]);
    t.row(&[
        "devices preserved by orderly (TTP) migration".into(),
        n(a.migrated as u64),
        n(a.migrated as u64),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn firewalled_posture_slashes_upkeep() {
        let a = compute();
        assert!(a.upkeep_bi_h > a.upkeep_uni_h * 10.0);
        assert!((a.upkeep_uni_h - 25.0).abs() < 1e-9);
        assert!((a.upkeep_bi_h - 300.0).abs() < 1e-9);
    }

    #[test]
    fn connectionless_devices_survive_disorder() {
        let a = compute();
        assert_eq!(a.orphans_forwarding, 0);
        assert_eq!(a.orphans_keyed, 100);
    }

    #[test]
    fn orderly_migration_saves_everyone() {
        let a = compute();
        assert_eq!(a.migrated, 100);
    }

    #[test]
    fn renders() {
        let s = render(0);
        assert!(s.contains("A1"));
        assert!(s.contains("unidirectional"));
    }
}
