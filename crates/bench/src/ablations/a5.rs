//! A5 — energy-scheduler ablation: fixed vs state-of-charge-adaptive.
//!
//! A transmit-only sensor can either report on a fixed clock or modulate
//! its cadence with the buffer's state of charge. The ablation runs both
//! policies on identical weather (common random numbers) across buffer
//! sizes and reports delivery success and total data.

use century::report::{f, pct, Table};
use energy::harvester::SolarPanel;
use energy::load::LoadProfile;
use energy::scheduler::{run_schedule, FixedRate, ScheduleReport, Scheduler, SocAdaptive};
use energy::storage::Supercap;
use simcore::rng::Rng;
use simcore::time::SimDuration;

/// One row: buffer size vs both policies.
pub struct A5Row {
    /// Buffer capacity in joules.
    pub capacity_j: f64,
    /// Fixed-rate outcome.
    pub fixed: ScheduleReport,
    /// Adaptive outcome.
    pub adaptive: ScheduleReport,
}

fn heavy_load() -> LoadProfile {
    // SF12-class reports: each one costs real energy.
    LoadProfile::transmit_only(SimDuration::from_hours(1), 1.48, 0.125)
}

fn run_policy(sched: &mut dyn Scheduler, capacity_j: f64, years: u64, seed: u64) -> ScheduleReport {
    let mut h = SolarPanel::small_outdoor();
    let mut s = Supercap::new(capacity_j).precharged(0.5);
    let mut rng = Rng::seed_from(seed);
    run_schedule(&mut h, &mut s, sched, &heavy_load(), SimDuration::from_years(years), &mut rng)
}

/// Runs the sweep.
pub fn compute(seed: u64, years: u64) -> Vec<A5Row> {
    [0.5f64, 1.0, 3.0, 10.0, 100.0]
        .into_iter()
        .map(|capacity_j| {
            let mut fixed = FixedRate { per_hour: 1 };
            let mut adaptive = SocAdaptive::default_hourly();
            A5Row {
                capacity_j,
                fixed: run_policy(&mut fixed, capacity_j, years, seed),
                adaptive: run_policy(&mut adaptive, capacity_j, years, seed),
            }
        })
        .collect()
}

/// Renders the ablation.
pub fn render(seed: u64) -> String {
    let rows = compute(seed, 3);
    let mut t = Table::new(
        "A5 - Scheduler ablation: fixed 1/h vs SoC-adaptive (solar, SF12-class reports, 3 y)",
        &[
            "buffer (J)",
            "fixed: success",
            "fixed: reports/day",
            "adaptive: success",
            "adaptive: reports/day",
        ],
    );
    for r in &rows {
        t.row(&[
            f(r.capacity_j, 1),
            pct(r.fixed.success_rate()),
            f(r.fixed.reports_per_day(), 1),
            pct(r.adaptive.success_rate()),
            f(r.adaptive.reports_per_day(), 1),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_success_dominates_on_small_buffers() {
        let rows = compute(1, 2);
        let tight = &rows[0];
        assert!(
            tight.adaptive.success_rate() >= tight.fixed.success_rate(),
            "adaptive {} fixed {}",
            tight.adaptive.success_rate(),
            tight.fixed.success_rate()
        );
    }

    #[test]
    fn adaptive_data_dominates_on_large_buffers() {
        let rows = compute(2, 2);
        let roomy = rows.last().expect("rows");
        assert!(
            roomy.adaptive.reports_per_day() > roomy.fixed.reports_per_day(),
            "adaptive {} fixed {}",
            roomy.adaptive.reports_per_day(),
            roomy.fixed.reports_per_day()
        );
    }

    #[test]
    fn bigger_buffers_help_fixed_policy() {
        let rows = compute(3, 2);
        let first = rows.first().expect("rows").fixed.success_rate();
        let last = rows.last().expect("rows").fixed.success_rate();
        assert!(last >= first);
    }

    #[test]
    fn renders() {
        let s = render(4);
        assert!(s.contains("A5") && s.contains("adaptive"));
    }
}
