//! A2 — the capture effect in transmit-only delivery (design ablation #3).
//!
//! Pure ALOHA without capture caps a shared LoRa channel hard; real
//! demodulators capture ≥6 dB-stronger packets, which in a 6 dB-shadowing
//! urban deployment rescues about a quarter of collisions. The ablation
//! sweeps population sizes at the paper's hourly cadence and reports the
//! maximum population sustaining 90 % delivery with and without capture.

use century::report::{f, n, pct, Table};
use net::aloha::{delivery_prob, delivery_prob_with_capture, max_population, offered_load};
use net::interference::{co_sf_capture_probability, q_function, CO_SF_CAPTURE_DB};
use net::lora::{LoraConfig, SpreadingFactor};
use simcore::rng::Rng;

/// Computed results.
pub struct A2 {
    /// Capture probability under 6 dB shadowing (Monte-Carlo).
    pub capture_prob: f64,
    /// `(population, delivery_plain, delivery_capture)` sweep rows.
    pub sweep: Vec<(u64, f64, f64)>,
    /// Max population at 90 % delivery, no capture.
    pub max_pop_plain: u64,
    /// Max population at 90 % delivery, with capture (numeric search).
    pub max_pop_capture: u64,
}

/// Runs the ablation at SF7 / hourly 24-byte reports.
pub fn compute(seed: u64) -> A2 {
    let airtime = LoraConfig::uplink(SpreadingFactor::Sf7).airtime_s(24);
    let interval = 3_600.0;
    let mut rng = Rng::seed_from(seed);
    let capture_prob = co_sf_capture_probability(6.0, &mut rng, 100_000);
    let sweep = [1_000u64, 10_000, 30_000, 100_000, 300_000]
        .into_iter()
        .map(|pop| {
            let g = offered_load(pop, airtime, interval);
            (pop, delivery_prob(g), delivery_prob_with_capture(g, capture_prob))
        })
        .collect();
    let max_pop_plain = max_population(airtime, interval, 0.9);
    // With capture the delivery floor is higher; search the 90 % point.
    let mut lo = max_pop_plain;
    let mut hi = max_pop_plain * 100;
    let ok = |pop: u64| {
        let g = offered_load(pop, airtime, interval);
        delivery_prob_with_capture(g, capture_prob) >= 0.9
    };
    if ok(hi) {
        lo = hi;
    } else {
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if ok(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }
    A2 { capture_prob, sweep, max_pop_plain, max_pop_capture: lo }
}

/// Renders the ablation.
pub fn render(seed: u64) -> String {
    let a = compute(seed);
    let mut t = Table::new(
        "A2 - Capture-effect ablation (SF7, hourly 24-B reports, one channel)",
        &["population", "delivery (no capture)", "delivery (capture)"],
    );
    for (pop, plain, cap) in &a.sweep {
        t.row(&[n(*pop), pct(*plain), pct(*cap)]);
    }
    let mut s = Table::new("A2b - Capture summary", &["quantity", "value"]);
    s.row(&[
        format!("co-SF capture probability (6 dB shadowing, {CO_SF_CAPTURE_DB} dB threshold)"),
        pct(a.capture_prob),
    ]);
    s.row(&[
        "analytic Q(6/(6*sqrt(2)))".into(),
        pct(q_function(CO_SF_CAPTURE_DB / (6.0 * core::f64::consts::SQRT_2))),
    ]);
    s.row(&["max population at 90% delivery, no capture".into(), n(a.max_pop_plain)]);
    s.row(&["max population at 90% delivery, with capture".into(), n(a.max_pop_capture)]);
    s.row(&[
        "scalability gain from capture".into(),
        format!("{}x", f(a.max_pop_capture as f64 / a.max_pop_plain as f64, 2)),
    ]);
    format!("{}\n{}", t.render(), s.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_prob_near_analytic() {
        let a = compute(1);
        let analytic = q_function(6.0 / (6.0 * core::f64::consts::SQRT_2));
        assert!((a.capture_prob - analytic).abs() < 0.01);
    }

    #[test]
    fn capture_extends_scalability() {
        let a = compute(2);
        assert!(a.max_pop_capture > a.max_pop_plain, "capture must help");
        let gain = a.max_pop_capture as f64 / a.max_pop_plain as f64;
        assert!(gain > 1.2 && gain < 10.0, "gain {gain}");
    }

    #[test]
    fn sweep_monotone_decreasing_in_population() {
        let a = compute(3);
        for w in a.sweep.windows(2) {
            assert!(w[1].1 <= w[0].1);
            assert!(w[1].2 <= w[0].2);
            assert!(w[1].2 >= w[1].1, "capture column dominates");
        }
    }

    #[test]
    fn renders() {
        let s = render(4);
        assert!(s.contains("A2") && s.contains("capture"));
    }
}
