//! A7 — mesh relaying vs gateway density.
//!
//! Coverage can be bought with more gateways (capex + backhaul drops) or
//! with device relaying (energy + complexity). The ablation sweeps gateway
//! grid pitch × hop budget on one city and prices both sides: coverage
//! fraction, per-device TX multiplier (the relay energy tax), and the
//! gateway count each pitch implies.

use century::report::{f, n, pct, Table};
use net::coverage::RadioParams;
use net::ieee802154;
use net::link::ReceptionModel;
use net::mesh::resolve_mesh;
use net::pathloss::LogDistance;
use net::topology::{AssetKind, ManhattanCity};
use net::units::Dbm;
use simcore::rng::Rng;

/// One sweep row.
pub struct A7Row {
    /// Gateway grid pitch (m).
    pub pitch_m: f64,
    /// Gateways that pitch implies.
    pub gateways: usize,
    /// Hop budget.
    pub max_hops: u8,
    /// Covered fraction.
    pub covered: f64,
    /// Mean TX multiplier (relay tax).
    pub tx_multiplier: f64,
    /// Heaviest relay load on any device.
    pub max_relay_load: u32,
}

fn params() -> RadioParams {
    RadioParams {
        tx: Dbm(12.0),
        rx_model: ReceptionModel::at_sensitivity(ieee802154::SENSITIVITY),
        pathloss: LogDistance::urban_2450(),
        usable_margin_db: 3.0,
    }
}

/// Runs the sweep on a 1 km² district with sensors on streetlights.
pub fn compute(seed: u64) -> Vec<A7Row> {
    let city = ManhattanCity::new(10, 10);
    let devices: Vec<net::topology::Point> = city
        .assets()
        .into_iter()
        .filter(|a| a.kind == AssetKind::Streetlight)
        .map(|a| a.at)
        .collect();
    let mut out = Vec::new();
    for pitch in [200.0f64, 350.0, 600.0] {
        let gateways = city.gateway_grid(pitch);
        for hops in [1u8, 3] {
            let mut rng = Rng::seed_from(seed);
            let mesh = resolve_mesh(&devices, &gateways, &params(), hops, &mut rng);
            out.push(A7Row {
                pitch_m: pitch,
                gateways: gateways.len(),
                max_hops: hops,
                covered: mesh.covered_fraction(),
                tx_multiplier: mesh.mean_tx_multiplier(),
                max_relay_load: mesh.max_relay_load(),
            });
        }
    }
    out
}

/// Renders the ablation.
pub fn render(seed: u64) -> String {
    let rows = compute(seed);
    let mut t = Table::new(
        "A7 - Mesh relaying vs gateway density (1 km2, 440 streetlight sensors, 2.4 GHz)",
        &["gateway pitch (m)", "gateways", "hops", "coverage", "mean TX multiplier", "max relay load"],
    );
    for r in &rows {
        t.row(&[
            f(r.pitch_m, 0),
            n(r.gateways as u64),
            f(r.max_hops as f64, 0),
            pct(r.covered),
            f(r.tx_multiplier, 2),
            n(r.max_relay_load as u64),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_substitute_for_gateways() {
        let rows = compute(1);
        // At the sparse 600 m pitch, 3 hops must beat 1 hop on coverage.
        let sparse_1 = rows.iter().find(|r| r.pitch_m == 600.0 && r.max_hops == 1).unwrap();
        let sparse_3 = rows.iter().find(|r| r.pitch_m == 600.0 && r.max_hops == 3).unwrap();
        assert!(
            sparse_3.covered > sparse_1.covered + 0.1,
            "3 hops {} vs 1 hop {}",
            sparse_3.covered,
            sparse_1.covered
        );
    }

    #[test]
    fn relay_tax_grows_where_gateways_are_sparse() {
        let rows = compute(2);
        let dense_3 = rows.iter().find(|r| r.pitch_m == 200.0 && r.max_hops == 3).unwrap();
        let sparse_3 = rows.iter().find(|r| r.pitch_m == 600.0 && r.max_hops == 3).unwrap();
        assert!(
            sparse_3.tx_multiplier > dense_3.tx_multiplier,
            "sparse {} dense {}",
            sparse_3.tx_multiplier,
            dense_3.tx_multiplier
        );
    }

    #[test]
    fn single_hop_has_no_relay_tax() {
        let rows = compute(3);
        for r in rows.iter().filter(|r| r.max_hops == 1) {
            assert!((r.tx_multiplier - 1.0).abs() < 1e-9 || r.covered == 0.0);
            assert_eq!(r.max_relay_load, 0);
        }
    }

    #[test]
    fn renders() {
        let s = render(4);
        assert!(s.contains("A7") && s.contains("relay"));
    }
}
