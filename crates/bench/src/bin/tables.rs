//! Regenerates the paper's exhibits as text tables.
//!
//! Usage:
//!
//! ```text
//! tables                 # all exhibits and ablations, default seed
//! tables --exhibit e7    # one exhibit
//! tables --seed 123      # override the seed
//! tables --csv out/      # also write figure-data CSVs to out/
//! ```

use bench::exhibits;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 2021u64;
    let mut wanted: Vec<String> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--exhibit" => {
                i += 1;
                let id = args.get(i).unwrap_or_else(|| die("--exhibit needs an id"));
                wanted.push(id.to_lowercase());
            }
            "--csv" => {
                i += 1;
                csv_dir = Some(
                    args.get(i).unwrap_or_else(|| die("--csv needs a directory")).clone(),
                );
            }
            "--list" => {
                for id in exhibits::ALL {
                    println!("{id}");
                }
                for id in bench::ablations::ALL {
                    println!("{id}");
                }
                return;
            }
            other => die(&format!("unknown argument: {other}")),
        }
        i += 1;
    }
    let ids: Vec<&str> = if wanted.is_empty() {
        exhibits::ALL
            .iter()
            .chain(bench::ablations::ALL.iter())
            .copied()
            .collect()
    } else {
        wanted.iter().map(String::as_str).collect()
    };
    println!("century exhibits (seed {seed})");
    println!("====================================================");
    for id in ids {
        match exhibits::render(id, seed).or_else(|| bench::ablations::render(id, seed)) {
            Some(text) => println!("{text}"),
            None => die(&format!("unknown exhibit: {id} (try --list)")),
        }
    }
    if let Some(dir) = csv_dir {
        let dir = std::path::Path::new(&dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            die(&format!("cannot create {}: {e}", dir.display()));
        }
        for fig in bench::figures::all(seed) {
            let path = dir.join(format!("{}.csv", fig.name));
            if let Err(e) = std::fs::write(&path, &fig.csv) {
                die(&format!("cannot write {}: {e}", path.display()));
            }
            println!("wrote {}", path.display());
        }
        let idx = dir.join("index.csv");
        if let Err(e) = std::fs::write(&idx, bench::figures::exhibit_tables_csv(seed)) {
            die(&format!("cannot write {}: {e}", idx.display()));
        }
        println!("wrote {}", idx.display());
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
