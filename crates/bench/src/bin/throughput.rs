//! Reproducible throughput benchmark for the 50-year paper experiment.
//!
//! Measures events/second and wall-clock through the full `FleetSim` stack
//! — the number the ROADMAP's "as fast as the hardware allows" north star
//! is tracked against — in two modes:
//!
//! * **serial**: one replicate after another through [`fleet::sim::FleetSim::run`];
//! * **parallel**: the same seeds through [`bench::parallel::run_reports`]
//!   across worker threads.
//!
//! With `--scale-devices N[,N...]` it additionally measures **intra-run
//! sharding** ([`fleet::sim::FleetSim::run_sharded`]) on synthetic
//! many-arm fleets of those device counts — serial vs `--shards K` on the
//! *same single run* — gating each pair on digest equality exactly like
//! the serial/parallel check. This is the ROADMAP's million-device axis:
//! one big run made faster, not many small runs packed onto cores.
//! Each row records `host_parallelism` next to `sharded_speedup`: on a
//! host that grants a single core the speedup expectation is waived
//! (annotated in the row), because sharded execution cannot beat serial
//! without a second core — that is a hardware ceiling, not a regression.
//!
//! With `--topology-devices N[,N...]` it measures **topology
//! construction** at LA scale: a Manhattan-grid city sized to N utility
//! poles with a 300 m gateway lattice, resolving coverage through the
//! spatial grid ([`net::coverage::resolve`]) vs the pairwise oracle
//! ([`net::coverage::resolve_pairwise`]), gated on
//! [`Coverage::digest`](net::coverage::Coverage::digest) equality — the
//! DESIGN.md §14 bit-identity claim measured where it matters, at
//! 320,000 poles. `--topology-grid-only` skips the O(n·m) oracle (for
//! smoke runs) and `--topology-budget-ms B` fails the run if the grid
//! resolve exceeds its wall-clock budget.
//!
//! Seeds are fixed (`base_seed..base_seed + replicates`), so the event
//! count and the per-seed run digests are deterministic; the binary folds
//! the digests and **fails** if the serial and parallel digest sets
//! disagree — throughput numbers from a non-reproducible run are
//! worthless. Output is a single JSON object (serde-free, same dialect as
//! `telemetry::jsonl`) written to `--out` and echoed to stdout, including
//! the pinned pre-optimisation baseline passed by `scripts/bench.sh` so
//! every future PR has a trajectory to beat in one file.
//!
//! Two snapshot modes (mutually exclusive with the sweep, plain runs
//! only — chaos resume lives in the `chaos` crate):
//!
//! * `--checkpoint-every <weeks> [--checkpoint-dir <dir>]`: runs the
//!   `--base-seed` paper experiment once uninterrupted and once writing a
//!   snapshot every N weeks, then resumes **every** snapshot to the
//!   horizon and exits 1 unless each resumed digest equals the
//!   uninterrupted one — the crash-recovery differential on real files,
//!   with checkpoint write and resume costs measured.
//! * `--resume <path>`: restores one snapshot (config = the
//!   `--base-seed` paper experiment), runs it to the horizon and reports
//!   the resumed digest and events/second.
//!
//! ```text
//! cargo run --release -p bench --bin throughput -- \
//!     --replicates 64 --threads 8 --out BENCH_sim_throughput.json
//! cargo run --release -p bench --bin throughput -- \
//!     --checkpoint-every 520 --checkpoint-dir /tmp/snaps
//! cargo run --release -p bench --bin throughput -- \
//!     --resume /tmp/snaps/seed0-week520.snap
//! ```

#![forbid(unsafe_code)]

use std::time::Instant;

use bench::parallel::run_reports;
use fleet::sim::{ArmConfig, FleetConfig, FleetSim, SamplingMode};
use fleet::snapshot::{self, ChaosProgress};
use net::coverage::{resolve, resolve_pairwise, Coverage, RadioParams};
use net::link::ReceptionModel;
use net::pathloss::LogDistance;
use net::topology::{AssetKind, ManhattanCity, Point};
use net::units::Dbm;
use simcore::rng::Rng;
use simcore::time::{SimDuration, SimTime};

/// One measured pass: wall-clock plus the determinism checksum.
struct Pass {
    wall_ms: f64,
    events: u64,
    events_per_sec: f64,
    /// XOR-fold of the per-seed run digests (order-insensitive).
    digest_xor: u64,
}

/// Best (fastest) of `passes` measurements. On a shared core preemption
/// only ever slows a pass down, so the minimum approaches the true cost
/// floor — same rationale as `examples/telemetry_overhead.rs`.
fn best_of(passes: usize, mut f: impl FnMut() -> Pass) -> Pass {
    let mut best = f();
    for _ in 1..passes {
        let p = f();
        if p.wall_ms < best.wall_ms {
            best = p;
        }
    }
    best
}

fn measure_serial(base_seed: u64, replicates: usize) -> Pass {
    let t0 = Instant::now();
    let mut events = 0u64;
    let mut digest_xor = 0u64;
    for i in 0..replicates {
        let report = FleetSim::run(FleetConfig::paper_experiment(base_seed + i as u64));
        events += report.events_processed;
        digest_xor ^= report.digest();
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    Pass { wall_ms, events, events_per_sec: events as f64 / (wall_ms / 1e3), digest_xor }
}

fn measure_parallel(base_seed: u64, replicates: usize, threads: usize) -> Pass {
    let t0 = Instant::now();
    #[allow(clippy::expect_used)]
    let reports = run_reports(&FleetConfig::paper_experiment, base_seed, replicates, threads)
        // simlint: allow(P001, replicates and threads are validated nonzero in main)
        .expect("replicates and threads are validated nonzero in main");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let events: u64 = reports.iter().map(|r| r.events_processed).sum();
    let digest_xor = reports.iter().fold(0u64, |acc, r| acc ^ r.digest());
    Pass { wall_ms, events, events_per_sec: events as f64 / (wall_ms / 1e3), digest_xor }
}

/// Arm count for the synthetic scale fleets: divisible by 2, 4 and 8 so
/// the LPT plan balances perfectly at the usual shard counts.
const SCALE_ARMS: usize = 16;

/// Horizon for a scale point, sized so the sweep finishes in bench time:
/// bigger fleets get shorter (but still multi-year) horizons.
fn scale_horizon_years(devices: usize) -> u64 {
    if devices >= 1_000_000 {
        1
    } else if devices >= 100_000 {
        5
    } else {
        10
    }
}

/// A synthetic `devices`-device fleet: [`SCALE_ARMS`] owned arms of
/// `devices / SCALE_ARMS` sensors with 2 gateways each, sharing the paper
/// environment. Many equal arms make the shard plan balanced, so the
/// measurement isolates engine scaling rather than partition skew.
///
/// The sweep runs in [`SamplingMode::Aggregate`] — one binomial draw per
/// path cohort per week instead of a per-device RNG loop — which is what
/// makes million-device fleets benchable at all; the per-device
/// [`SamplingMode::Reference`] oracle is measured alongside and must
/// agree digest-for-digest.
fn scaled_config(seed: u64, devices: usize) -> FleetConfig {
    let mut cfg = FleetConfig::paper_experiment(seed).with_sampling(SamplingMode::Aggregate);
    cfg.horizon = SimDuration::from_years(scale_horizon_years(devices));
    cfg.arms = (0..SCALE_ARMS)
        .map(|_| ArmConfig::paper_owned_154((devices / SCALE_ARMS).max(1), 2))
        .collect();
    cfg
}

fn measure_scale_serial(cfg: &FleetConfig) -> Pass {
    let t0 = Instant::now();
    let report = FleetSim::run(cfg.clone());
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    Pass {
        wall_ms,
        events: report.events_processed,
        events_per_sec: report.events_processed as f64 / (wall_ms / 1e3),
        digest_xor: report.digest(),
    }
}

fn measure_scale_sharded(cfg: &FleetConfig, shards: usize) -> Pass {
    let t0 = Instant::now();
    #[allow(clippy::expect_used)]
    let report = FleetSim::run_sharded(cfg.clone(), shards)
        // simlint: allow(P001, shards is validated nonzero in main)
        .expect("shards is validated nonzero in main");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    Pass {
        wall_ms,
        events: report.events_processed,
        events_per_sec: report.events_processed as f64 / (wall_ms / 1e3),
        digest_xor: report.digest(),
    }
}

/// Street-asset radio at 2.4 GHz: the parameter set whose ~1.3 km cull
/// radius is a small fraction of a city extent, so the grid path
/// genuinely skips most pairs (LoRa-915's ~46 km cull radius would make
/// the comparison no-cull at any city size — range is its whole point).
fn topology_params() -> RadioParams {
    RadioParams {
        tx: Dbm(12.0),
        rx_model: ReceptionModel::at_sensitivity(net::ieee802154::SENSITIVITY),
        pathloss: LogDistance::urban_2450(),
        usable_margin_db: 3.0,
    }
}

/// The smallest square Manhattan city whose utility-pole census reaches
/// `devices`: each 100 m block edge carries 3 poles at 33 m spacing and
/// an n×n city has 2n(n+1) street edges, so poles = 6n(n+1). 320,000
/// devices lands on n = 231 — the paper's LA pole census.
fn la_city(devices: usize) -> ManhattanCity {
    let mut n = 1usize;
    while 6 * n * (n + 1) < devices {
        n += 1;
    }
    // n ≤ sqrt(devices/6) + 1, far below u32::MAX for any usize count;
    // saturate rather than panic if that ever changes.
    let side = u32::try_from(n).unwrap_or(u32::MAX);
    ManhattanCity::new(side, side)
}

/// One measured coverage resolution: wall-clock plus the structure's
/// digest and headline statistics.
struct TopoPass {
    wall_ms: f64,
    digest: u64,
    links: u64,
    covered_fraction: f64,
}

fn measure_topology(
    devices: &[Point],
    gateways: &[Point],
    params: &RadioParams,
    seed: u64,
    pairwise: bool,
) -> TopoPass {
    let t0 = Instant::now();
    let cov: Coverage = if pairwise {
        resolve_pairwise(devices, gateways, params, &mut Rng::seed_from(seed))
    } else {
        resolve(devices, gateways, params, &mut Rng::seed_from(seed))
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    TopoPass {
        wall_ms,
        digest: cov.digest(),
        links: cov.device_gateways.iter().map(|g| g.len() as u64).sum(),
        covered_fraction: cov.covered_fraction(),
    }
}

fn topo_json(p: &TopoPass) -> String {
    format!(
        "{{\"wall_ms\":{:.3},\"links\":{},\"covered_fraction\":{:.4},\"digest\":\"{:016x}\"}}",
        p.wall_ms, p.links, p.covered_fraction, p.digest
    )
}

fn pass_json(p: &Pass) -> String {
    format!(
        "{{\"wall_ms\":{:.3},\"events\":{},\"events_per_sec\":{:.0},\"digest_xor\":\"{:016x}\"}}",
        p.wall_ms, p.events, p.events_per_sec, p.digest_xor
    )
}

/// Pinned numbers a current run is compared against (`scripts/bench.sh`
/// passes the pre-optimisation measurement recorded in that script).
#[derive(Default)]
struct Baseline {
    rev: String,
    serial_events_per_sec: f64,
    serial_wall_ms: f64,
    parallel_events_per_sec: f64,
    parallel_wall_ms: f64,
}

struct Args {
    replicates: usize,
    threads: usize,
    base_seed: u64,
    passes: usize,
    /// Shard count for the `--scale-devices` sweep.
    shards: usize,
    /// Device counts for the intra-run sharding sweep (empty = skip).
    scale_devices: Vec<usize>,
    /// Pole counts for the topology-construction sweep (empty = skip).
    topology_devices: Vec<usize>,
    /// Skip the O(n·m) pairwise oracle in the topology sweep.
    topology_grid_only: bool,
    /// Fail if any grid resolve in the topology sweep exceeds this.
    topology_budget_ms: Option<f64>,
    /// Checkpoint cadence in weeks; `Some` switches to checkpoint mode.
    checkpoint_every: Option<u64>,
    /// Directory checkpoint mode writes its snapshots into.
    checkpoint_dir: String,
    /// Snapshot path; `Some` switches to resume mode.
    resume: Option<String>,
    out: Option<String>,
    git_rev: String,
    baseline: Option<Baseline>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        replicates: 64,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        base_seed: 0,
        passes: 3,
        shards: 8,
        scale_devices: Vec::new(),
        topology_devices: Vec::new(),
        topology_grid_only: false,
        topology_budget_ms: None,
        checkpoint_every: None,
        checkpoint_dir: "snapshots".to_string(),
        resume: None,
        out: None,
        git_rev: "unknown".to_string(),
        baseline: None,
    };
    let mut baseline = Baseline::default();
    let mut have_baseline = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next().ok_or_else(|| format!("{what} needs a value"))
        };
        match flag.as_str() {
            "--replicates" => args.replicates = parse(&value(&flag)?)?,
            "--threads" => args.threads = parse(&value(&flag)?)?,
            "--base-seed" => args.base_seed = parse(&value(&flag)?)?,
            "--passes" => args.passes = parse(&value(&flag)?)?,
            "--shards" => args.shards = parse(&value(&flag)?)?,
            "--scale-devices" => {
                args.scale_devices = value(&flag)?
                    .split(',')
                    .map(parse)
                    .collect::<Result<Vec<usize>, String>>()?;
            }
            "--topology-devices" => {
                args.topology_devices = value(&flag)?
                    .split(',')
                    .map(parse)
                    .collect::<Result<Vec<usize>, String>>()?;
            }
            "--topology-grid-only" => args.topology_grid_only = true,
            "--topology-budget-ms" => args.topology_budget_ms = Some(parse(&value(&flag)?)?),
            "--checkpoint-every" => args.checkpoint_every = Some(parse(&value(&flag)?)?),
            "--checkpoint-dir" => args.checkpoint_dir = value(&flag)?,
            "--resume" => args.resume = Some(value(&flag)?),
            "--out" => args.out = Some(value(&flag)?),
            "--git-rev" => args.git_rev = value(&flag)?,
            "--baseline-rev" => {
                baseline.rev = value(&flag)?;
                have_baseline = true;
            }
            "--baseline-serial-eps" => {
                baseline.serial_events_per_sec = parse(&value(&flag)?)?;
                have_baseline = true;
            }
            "--baseline-serial-wall-ms" => {
                baseline.serial_wall_ms = parse(&value(&flag)?)?;
                have_baseline = true;
            }
            "--baseline-parallel-eps" => {
                baseline.parallel_events_per_sec = parse(&value(&flag)?)?;
                have_baseline = true;
            }
            "--baseline-parallel-wall-ms" => {
                baseline.parallel_wall_ms = parse(&value(&flag)?)?;
                have_baseline = true;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.replicates == 0 || args.threads == 0 || args.passes == 0 || args.shards == 0 {
        return Err("--replicates, --threads, --passes and --shards must be nonzero".to_string());
    }
    if args.scale_devices.contains(&0) {
        return Err("--scale-devices entries must be nonzero".to_string());
    }
    if args.topology_devices.contains(&0) {
        return Err("--topology-devices entries must be nonzero".to_string());
    }
    if (args.topology_grid_only || args.topology_budget_ms.is_some())
        && args.topology_devices.is_empty()
    {
        return Err(
            "--topology-grid-only/--topology-budget-ms need --topology-devices".to_string()
        );
    }
    if let Some(b) = args.topology_budget_ms {
        if !b.is_finite() || b <= 0.0 {
            return Err("--topology-budget-ms must be positive".to_string());
        }
    }
    if args.checkpoint_every == Some(0) {
        return Err("--checkpoint-every must be nonzero".to_string());
    }
    if args.checkpoint_every.is_some() && args.resume.is_some() {
        return Err("--checkpoint-every and --resume are mutually exclusive".to_string());
    }
    if have_baseline {
        args.baseline = Some(baseline);
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("bad value {s:?}: {e}"))
}

/// `--checkpoint-every` mode: the crash-recovery differential on real
/// files. One uninterrupted run is the oracle; a second run writes an
/// atomic snapshot every `every_weeks` weeks on its way to the horizon
/// (and must not be perturbed by doing so); then every snapshot is
/// resumed cold and driven to the horizon. Any digest mismatch is a
/// correctness failure, reported as `Err`.
fn run_checkpoint_mode(args: &Args, every_weeks: u64) -> Result<String, String> {
    let cfg = FleetConfig::paper_experiment(args.base_seed);
    let horizon = SimTime::ZERO + cfg.horizon;
    let horizon_weeks = cfg.horizon.as_secs() / SimDuration::from_weeks(1).as_secs();
    let t0 = Instant::now();
    let baseline = FleetSim::run(cfg.clone());
    let baseline_ms = t0.elapsed().as_secs_f64() * 1e3;

    std::fs::create_dir_all(&args.checkpoint_dir)
        .map_err(|e| format!("cannot create {}: {e}", args.checkpoint_dir))?;
    let mut engine = FleetSim::build(cfg.clone());
    let mut snaps: Vec<(u64, std::path::PathBuf, u64)> = Vec::new();
    let mut write_ms = 0.0f64;
    let mut w = every_weeks;
    while w < horizon_weeks {
        engine.run_until(SimTime::ZERO + SimDuration::from_weeks(w));
        let path = std::path::Path::new(&args.checkpoint_dir)
            .join(format!("seed{}-week{w}.snap", args.base_seed));
        let t = Instant::now();
        snapshot::write_checkpoint(&path, &mut engine, ChaosProgress::default())
            .map_err(|e| format!("checkpoint at week {w}: {e}"))?;
        write_ms += t.elapsed().as_secs_f64() * 1e3;
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        snaps.push((w, path, bytes));
        w += every_weeks;
    }
    engine.run_until(horizon);
    let checkpointed = FleetSim::into_report(engine, horizon);
    if checkpointed.digest() != baseline.digest() {
        return Err(format!(
            "checkpointing perturbed the run ({:016x} vs {:016x}) — \
             snapshot capture must be observation-only",
            checkpointed.digest(),
            baseline.digest()
        ));
    }

    let mut rows = Vec::new();
    for (week, path, bytes) in &snaps {
        let t = Instant::now();
        let resumed = snapshot::resume_from(path, cfg.clone())
            .map_err(|e| format!("resume of week-{week} snapshot: {e}"))?;
        let report = resumed.run_to_horizon();
        let resume_ms = t.elapsed().as_secs_f64() * 1e3;
        if report.digest() != baseline.digest() {
            return Err(format!(
                "resumed run from week {week} drifted ({:016x} vs {:016x}) — \
                 crash recovery is broken",
                report.digest(),
                baseline.digest()
            ));
        }
        rows.push(format!(
            "{{\"week\":{week},\"bytes\":{bytes},\"resume_wall_ms\":{resume_ms:.3}}}"
        ));
    }

    Ok(format!(
        "{{\"bench\":\"sim_throughput\",\"mode\":\"checkpoint\",\"git_rev\":\"{}\",\
         \"base_seed\":{},\"checkpoint_every_weeks\":{every_weeks},\
         \"uninterrupted_wall_ms\":{baseline_ms:.3},\"digest\":\"{:016x}\",\
         \"checkpoints\":{},\"checkpoint_write_ms\":{write_ms:.3},\
         \"resumes\":[{}],\"bit_identical\":true}}",
        args.git_rev,
        args.base_seed,
        baseline.digest(),
        snaps.len(),
        rows.join(",")
    ))
}

/// `--resume` mode: restore one snapshot and drive it to the horizon.
fn run_resume_mode(args: &Args, path: &str) -> Result<String, String> {
    let cfg = FleetConfig::paper_experiment(args.base_seed);
    let t0 = Instant::now();
    let resumed = snapshot::resume_from(std::path::Path::new(path), cfg)
        .map_err(|e| format!("cannot resume {path}: {e}"))?;
    let from = resumed.engine.now();
    let report = resumed.run_to_horizon();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    Ok(format!(
        "{{\"bench\":\"sim_throughput\",\"mode\":\"resume\",\"git_rev\":\"{}\",\
         \"base_seed\":{},\"snapshot\":\"{path}\",\"resumed_from_secs\":{},\
         \"wall_ms\":{wall_ms:.3},\"events\":{},\"digest\":\"{:016x}\"}}",
        args.git_rev,
        args.base_seed,
        from.as_secs(),
        report.events_processed,
        report.digest()
    ))
}

/// Prints mode output (echoing to `--out` like the sweep) and exits:
/// 0 on success, 1 on any digest or I/O failure.
fn finish_mode(result: Result<String, String>, out: Option<&String>) -> ! {
    match result {
        Ok(json) => {
            println!("{json}");
            if let Some(path) = out {
                let mut contents = json;
                contents.push('\n');
                if let Err(e) = std::fs::write(path, contents) {
                    eprintln!("throughput: cannot write {path}: {e}");
                    std::process::exit(1);
                }
            }
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("throughput: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("throughput: {e}");
            std::process::exit(2);
        }
    };

    if let Some(path) = args.resume.clone() {
        finish_mode(run_resume_mode(&args, &path), args.out.as_ref());
    }
    if let Some(every) = args.checkpoint_every {
        finish_mode(run_checkpoint_mode(&args, every), args.out.as_ref());
    }

    // Warm-up run so the first measured replicate doesn't pay cold-cache
    // costs the rest don't.
    let _ = FleetSim::run(FleetConfig::paper_experiment(args.base_seed));

    let serial = best_of(args.passes, || measure_serial(args.base_seed, args.replicates));
    let parallel = best_of(args.passes, || {
        measure_parallel(args.base_seed, args.replicates, args.threads)
    });

    // Reproducibility gate: the parallel batch-scheduling path must produce
    // bit-identical runs (digest for digest) or the numbers are meaningless.
    if serial.digest_xor != parallel.digest_xor {
        eprintln!(
            "throughput: serial/parallel digest mismatch ({:016x} vs {:016x}) — \
             the batch-scheduling path drifted; this is a correctness failure",
            serial.digest_xor, parallel.digest_xor
        );
        std::process::exit(1);
    }

    // Intra-run sharding sweep over the aggregate sampling path: one big
    // run serial vs sharded (digest-gated), plus the per-device reference
    // oracle (one pass — it is the slow path by design), which must agree
    // with the aggregate run digest-for-digest.
    // Speedup is only an expectation when the host grants the cores to
    // realize it. Computed once here so every per-row annotation below —
    // scale rows AND topology rows, in every flag combination — reports
    // the same value the top-level field does (downstream schema checks
    // diff row key-sets across modes).
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut scale_rows: Vec<String> = Vec::new();
    for &devices in &args.scale_devices {
        let cfg = scaled_config(args.base_seed, devices);
        let scale_serial = best_of(args.passes, || measure_scale_serial(&cfg));
        let scale_sharded =
            best_of(args.passes, || measure_scale_sharded(&cfg, args.shards));
        if scale_serial.digest_xor != scale_sharded.digest_xor {
            eprintln!(
                "throughput: serial/sharded digest mismatch at {devices} devices \
                 ({:016x} vs {:016x}) — sharded execution drifted; this is a \
                 correctness failure",
                scale_serial.digest_xor, scale_sharded.digest_xor
            );
            std::process::exit(1);
        }
        let ref_cfg = cfg.clone().with_sampling(SamplingMode::Reference);
        let scale_reference = measure_scale_serial(&ref_cfg);
        if scale_reference.digest_xor != scale_serial.digest_xor {
            eprintln!(
                "throughput: aggregate/reference digest mismatch at {devices} devices \
                 ({:016x} vs {:016x}) — the aggregate sampler drifted from the \
                 per-device oracle; this is a correctness failure",
                scale_serial.digest_xor, scale_reference.digest_xor
            );
            std::process::exit(1);
        }
        // Next to each sharded_speedup, record the parallelism actually
        // available and, on a 1-core host, waive the expectation
        // explicitly so a ~1.0x reads as a hardware ceiling rather than
        // a regression.
        let speedup_note = if host_parallelism == 1 {
            ",\"sharded_speedup_expected\":false,\
             \"sharded_speedup_note\":\"host grants 1 core; sharded cannot beat serial here\""
                .to_string()
        } else {
            ",\"sharded_speedup_expected\":true".to_string()
        };
        scale_rows.push(format!(
            "{{\"devices\":{},\"arms\":{},\"horizon_years\":{},\"shards\":{},\
             \"serial\":{},\"sharded\":{},\"reference\":{},\"sharded_speedup\":{:.3},\
             \"host_parallelism\":{host_parallelism}{speedup_note},\
             \"aggregate_speedup_vs_reference\":{:.3}}}",
            devices,
            SCALE_ARMS,
            scale_horizon_years(devices),
            args.shards,
            pass_json(&scale_serial),
            pass_json(&scale_sharded),
            pass_json(&scale_reference),
            scale_sharded.events_per_sec / scale_serial.events_per_sec,
            scale_serial.events_per_sec / scale_reference.events_per_sec
        ));
    }

    // Topology-construction sweep: LA-scale coverage resolution through
    // the spatial grid, optionally cross-checked bit-for-bit against the
    // pairwise oracle (the DESIGN.md §14 differential at full scale).
    let mut topology_rows: Vec<String> = Vec::new();
    for &poles in &args.topology_devices {
        let city = la_city(poles);
        let mut devices: Vec<Point> = city
            .assets()
            .into_iter()
            .filter(|a| a.kind == AssetKind::UtilityPole)
            .map(|a| a.at)
            .collect();
        devices.truncate(poles);
        let gateways = city.gateway_grid(300.0);
        let params = topology_params();
        let (extent_w, _) = city.extent();

        let mut grid = measure_topology(&devices, &gateways, &params, args.base_seed, false);
        for _ in 1..args.passes {
            let p = measure_topology(&devices, &gateways, &params, args.base_seed, false);
            if p.wall_ms < grid.wall_ms {
                grid = p;
            }
        }
        if let Some(budget) = args.topology_budget_ms {
            if grid.wall_ms > budget {
                eprintln!(
                    "throughput: grid resolve at {poles} poles took {:.1} ms, over the \
                     {budget:.1} ms budget — the spatial index regressed",
                    grid.wall_ms
                );
                std::process::exit(1);
            }
        }

        let mut row = format!(
            "{{\"devices\":{poles},\"gateways\":{},\"extent_m\":{extent_w:.0},\
             \"cull_radius_m\":{:.1},\"host_parallelism\":{host_parallelism},\"grid\":{}",
            gateways.len(),
            params.cull_radius_m(),
            topo_json(&grid)
        );
        if args.topology_grid_only {
            // Same key-set as the full mode: consumers diff row schemas
            // across runs, so skipping the oracle nulls its fields
            // rather than dropping them.
            row.push_str(",\"pairwise\":null,\"grid_speedup\":null");
        } else {
            // One pass: the oracle is the slow path by design.
            let pairwise =
                measure_topology(&devices, &gateways, &params, args.base_seed, true);
            if pairwise.digest != grid.digest {
                eprintln!(
                    "throughput: grid/pairwise digest mismatch at {poles} poles \
                     ({:016x} vs {:016x}) — link culling changed the coverage \
                     structure; this is a correctness failure",
                    grid.digest, pairwise.digest
                );
                std::process::exit(1);
            }
            row.push_str(&format!(
                ",\"pairwise\":{},\"grid_speedup\":{:.3}",
                topo_json(&pairwise),
                pairwise.wall_ms / grid.wall_ms
            ));
        }
        row.push('}');
        topology_rows.push(row);
    }

    let mut json = String::from("{\"bench\":\"sim_throughput\",");
    json.push_str("\"experiment\":\"paper_experiment_50y\",");
    json.push_str(&format!("\"git_rev\":\"{}\",", args.git_rev));
    json.push_str(&format!(
        "\"replicates\":{},\"threads\":{},\"base_seed\":{},\"passes\":{},",
        args.replicates, args.threads, args.base_seed, args.passes
    ));
    // Thread-scaling numbers are only meaningful relative to the cores the
    // host actually grants; a 1-core container cannot beat serial.
    json.push_str(&format!("\"host_parallelism\":{host_parallelism},"));
    if let Some(b) = &args.baseline {
        json.push_str(&format!(
            "\"baseline\":{{\"git_rev\":\"{}\",\"serial\":{{\"wall_ms\":{:.3},\"events_per_sec\":{:.0}}},\
             \"parallel\":{{\"wall_ms\":{:.3},\"events_per_sec\":{:.0}}}}},",
            b.rev,
            b.serial_wall_ms,
            b.serial_events_per_sec,
            b.parallel_wall_ms,
            b.parallel_events_per_sec
        ));
    }
    json.push_str(&format!("\"serial\":{},", pass_json(&serial)));
    json.push_str(&format!("\"parallel\":{}", pass_json(&parallel)));
    if !scale_rows.is_empty() {
        json.push_str(&format!(
            ",\"sharded_scale\":[{}]",
            scale_rows.join(",")
        ));
    }
    if !topology_rows.is_empty() {
        json.push_str(&format!(
            ",\"topology_scale\":[{}]",
            topology_rows.join(",")
        ));
    }
    if let Some(b) = &args.baseline {
        if b.serial_events_per_sec > 0.0 {
            json.push_str(&format!(
                ",\"serial_speedup_vs_baseline\":{:.3}",
                serial.events_per_sec / b.serial_events_per_sec
            ));
        }
        if b.parallel_events_per_sec > 0.0 {
            json.push_str(&format!(
                ",\"parallel_speedup_vs_baseline\":{:.3}",
                parallel.events_per_sec / b.parallel_events_per_sec
            ));
        }
    }
    json.push('}');

    println!("{json}");
    if let Some(path) = &args.out {
        let mut contents = json;
        contents.push('\n');
        if let Err(e) = std::fs::write(path, contents) {
            eprintln!("throughput: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}
