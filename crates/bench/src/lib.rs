//! `bench` — exhibit regeneration and performance benchmarks.
//!
//! The [`exhibits`] module regenerates every table and figure claimed in
//! EXPERIMENTS.md; the `tables` binary prints them; the Criterion benches
//! under `benches/` time both the exhibit computations and the substrate
//! kernels they stand on.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod ablations;
pub mod exhibits;
pub mod figures;
pub mod parallel;
