//! Parallel Monte-Carlo execution of fleet experiments.
//!
//! Replicates are embarrassingly parallel and fully deterministic per
//! seed, so results are independent of scheduling: workers claim seed
//! indices from an atomic counter, and the collector reorders by index
//! before aggregation. Output is **bit-identical** to the serial
//! [`century::experiment::run_replicated`] for the same seeds.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use century::experiment::ExperimentOutcome;
use century::metrics::ArmSummary;
use fleet::sim::{FleetConfig, FleetReport, FleetSim};

/// Runs `replicates` seeds (`base_seed..base_seed+replicates`) across
/// `threads` workers, returning reports in seed order.
///
/// # Panics
///
/// Panics if `replicates == 0` or `threads == 0`.
pub fn run_reports(
    make_config: &(dyn Fn(u64) -> FleetConfig + Sync),
    base_seed: u64,
    replicates: usize,
    threads: usize,
) -> Vec<FleetReport> {
    assert!(replicates > 0, "need at least one replicate");
    assert!(threads > 0, "need at least one thread");
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, FleetReport)>> = Mutex::new(Vec::with_capacity(replicates));
    std::thread::scope(|scope| {
        for _ in 0..threads.min(replicates) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= replicates {
                    break;
                }
                let report = FleetSim::run(make_config(base_seed + i as u64));
                results
                    .lock()
                    .expect("a worker panicked while holding the lock")
                    .push((i, report));
            });
        }
    });
    let mut out = results.into_inner().expect("a worker panicked");
    out.sort_by_key(|&(i, _)| i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Parallel equivalent of [`century::experiment::run_replicated`]:
/// identical summaries, wall-clock divided by the worker count.
pub fn run_replicated_parallel(
    make_config: &(dyn Fn(u64) -> FleetConfig + Sync),
    base_seed: u64,
    replicates: usize,
    threads: usize,
) -> ExperimentOutcome {
    let reports = run_reports(make_config, base_seed, replicates, threads);
    let mut arms: Vec<ArmSummary> = reports[0]
        .arms
        .iter()
        .map(|a| ArmSummary::new(a.name))
        .collect();
    for report in &reports {
        for (summary, arm) in arms.iter_mut().zip(&report.arms) {
            summary.add(arm);
        }
    }
    let exemplar = reports.into_iter().next().expect("replicates > 0");
    ExperimentOutcome { arms, exemplar, replicates }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_exactly() {
        let serial = century::experiment::run_replicated(FleetConfig::paper_experiment, 900, 4);
        let parallel =
            run_replicated_parallel(&FleetConfig::paper_experiment, 900, 4, 4);
        assert_eq!(serial.replicates, parallel.replicates);
        for (s, p) in serial.arms.iter().zip(&parallel.arms) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.uptime.values(), p.uptime.values());
            assert_eq!(s.spend_dollars.values(), p.spend_dollars.values());
        }
        assert_eq!(
            serial.exemplar.arms[0].readings_delivered,
            parallel.exemplar.arms[0].readings_delivered
        );
    }

    #[test]
    fn reports_in_seed_order_regardless_of_threads() {
        let one = run_reports(&FleetConfig::paper_experiment, 50, 6, 1);
        let many = run_reports(&FleetConfig::paper_experiment, 50, 6, 6);
        for (a, b) in one.iter().zip(&many) {
            assert_eq!(a.arms[0].readings_delivered, b.arms[0].readings_delivered);
            assert_eq!(a.diary.len(), b.diary.len());
        }
    }

    #[test]
    fn more_threads_than_replicates_is_fine() {
        let out = run_reports(&FleetConfig::paper_experiment, 1, 2, 16);
        assert_eq!(out.len(), 2);
    }

    #[test]
    #[should_panic(expected = "replicate")]
    fn zero_replicates_panics() {
        run_reports(&FleetConfig::paper_experiment, 1, 0, 4);
    }
}
