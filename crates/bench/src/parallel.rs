//! Parallel Monte-Carlo execution of fleet experiments.
//!
//! Replicates are embarrassingly parallel and fully deterministic per
//! seed, so results are independent of scheduling: workers claim seed
//! indices from an atomic counter, and the collector reorders by index
//! before aggregation. Output is **bit-identical** to the serial
//! [`century::experiment::run_replicated`] for the same seeds — the
//! golden-digest suite pins this with [`FleetReport::digest`] equality.
//!
//! Each worker accumulates its results locally and hands them back
//! through its join handle. A panic inside one replicate is caught at
//! the replicate boundary and surfaced as
//! [`ParallelError::ReplicatePanicked`] **with the failing seed** — a
//! 64-seed batch that dies on seed 41 tells you so, instead of handing
//! back a bare payload that leaves you bisecting. When several
//! replicates panic, the smallest seed wins deterministically,
//! independent of thread scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

use century::experiment::ExperimentOutcome;
use century::metrics::{ArmRow, ArmSummary};
use fleet::sim::{FleetConfig, FleetReport, FleetSim};
use simcore::event::EventQueue;

/// Failures of the parallel runners: bad preconditions, or a replicate
/// that panicked mid-run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParallelError {
    /// `replicates` was zero: there would be no reports to aggregate.
    ZeroReplicates,
    /// `threads` was zero: no worker could claim a seed.
    ZeroThreads,
    /// One replicate's config construction or simulation run panicked.
    /// When several do, the smallest seed is reported, deterministically.
    ReplicatePanicked {
        /// The seed whose replicate died (`base_seed + index`).
        seed: u64,
        /// The panic payload, stringified (`<non-string panic payload>`
        /// when the payload was neither `String` nor `&str`).
        message: String,
    },
}

impl core::fmt::Display for ParallelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParallelError::ZeroReplicates => f.write_str("need at least one replicate"),
            ParallelError::ZeroThreads => f.write_str("need at least one thread"),
            ParallelError::ReplicatePanicked { seed, message } => {
                write!(f, "replicate seed {seed} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for ParallelError {}

/// Renders a caught panic payload for [`ParallelError::ReplicatePanicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

/// Runs `replicates` seeds (`base_seed..base_seed+replicates`) across
/// `threads` workers, returning reports in seed order.
///
/// # Errors
///
/// [`ParallelError`] if `replicates` or `threads` is zero, or
/// [`ParallelError::ReplicatePanicked`] (naming the smallest failing
/// seed) if any replicate panics.
pub fn run_reports(
    make_config: &(dyn Fn(u64) -> FleetConfig + Sync),
    base_seed: u64,
    replicates: usize,
    threads: usize,
) -> Result<Vec<FleetReport>, ParallelError> {
    if replicates == 0 {
        return Err(ParallelError::ZeroReplicates);
    }
    if threads == 0 {
        return Err(ParallelError::ZeroThreads);
    }
    let mut indexed = run_indexed(make_config, base_seed, replicates, threads, |_, report| report)?;
    indexed.sort_by_key(|&(i, _)| i);
    Ok(indexed.into_iter().map(|(_, r)| r).collect())
}

/// Worker pool shared by the report and summary runners: claims seed
/// indices from an atomic counter, recycles one event queue per worker
/// across all the seeds it claims (see [`FleetSim::run_with_queue`]), and
/// maps each finished report through `extract` so callers choose how much
/// of it outlives the run. Results are unordered; callers sort by index.
///
/// Panics are caught at the replicate boundary
/// (`catch_unwind(AssertUnwindSafe(..))` — safe because the replicate's
/// world, queue and report are abandoned on failure, never reused) and
/// the worker stops claiming seeds. The collector still joins every
/// worker, then reports the panicking replicate with the **smallest
/// seed**, so the error is independent of which worker happened to claim
/// what.
///
/// # Panics
///
/// Re-raises a panic only if it somehow escapes the per-replicate guard
/// (e.g. from a `Drop` impl during unwinding).
fn run_indexed<T: Send>(
    make_config: &(dyn Fn(u64) -> FleetConfig + Sync),
    base_seed: u64,
    replicates: usize,
    threads: usize,
    extract: impl Fn(usize, FleetReport) -> T + Sync,
) -> Result<Vec<(usize, T)>, ParallelError> {
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(replicates))
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    let mut queue = EventQueue::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= replicates {
                            break;
                        }
                        let seed = base_seed + i as u64;
                        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || {
                                let (report, queue) =
                                    FleetSim::run_with_queue(make_config(seed), queue);
                                ((i, extract(i, report)), queue)
                            },
                        ));
                        match attempt {
                            Ok((item, recycled)) => {
                                queue = recycled;
                                local.push(item);
                            }
                            Err(payload) => {
                                return (
                                    local,
                                    Some((seed, panic_message(payload.as_ref()))),
                                );
                            }
                        }
                    }
                    (local, None)
                })
            })
            .collect();
        let mut all = Vec::with_capacity(replicates);
        let mut first_panic: Option<(u64, String)> = None;
        for handle in handles {
            match handle.join() {
                Ok((local, failure)) => {
                    all.extend(local);
                    if let Some((seed, message)) = failure {
                        let beats = match &first_panic {
                            None => true,
                            Some((earliest, _)) => seed < *earliest,
                        };
                        if beats {
                            first_panic = Some((seed, message));
                        }
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        match first_panic {
            Some((seed, message)) => Err(ParallelError::ReplicatePanicked { seed, message }),
            None => Ok(all),
        }
    })
}

/// Parallel equivalent of [`century::experiment::run_replicated`]:
/// identical summaries, wall-clock divided by the worker count.
///
/// # Errors
///
/// [`ParallelError`] if `replicates` or `threads` is zero.
pub fn run_replicated_parallel(
    make_config: &(dyn Fn(u64) -> FleetConfig + Sync),
    base_seed: u64,
    replicates: usize,
    threads: usize,
) -> Result<ExperimentOutcome, ParallelError> {
    let reports = run_reports(make_config, base_seed, replicates, threads)?;
    let mut arms: Vec<ArmSummary> = reports[0]
        .arms
        .iter()
        .map(|a| ArmSummary::new(a.name))
        .collect();
    for report in &reports {
        for (summary, arm) in arms.iter_mut().zip(&report.arms) {
            summary.add(arm);
        }
    }
    // `replicates` is checked nonzero on entry, so a report always exists;
    // re-surface the same error rather than panic if that ever changes.
    let Some(exemplar) = reports.into_iter().next() else {
        return Err(ParallelError::ZeroReplicates);
    };
    Ok(ExperimentOutcome { arms, exemplar, replicates })
}

/// Summary-only fast path: like [`run_replicated_parallel`] but each
/// worker reduces a replicate to its [`ArmRow`] scalars as soon as the
/// run finishes, so full `FleetReport`s (diary, spans, metric snapshots)
/// never pile up behind the join barrier — memory stays O(threads)
/// instead of O(replicates). Rows are folded in seed order, making the
/// resulting [`ArmSummary`]s bit-identical to the serial
/// [`century::experiment::run_replicated`] for the same seeds.
///
/// # Errors
///
/// [`ParallelError`] if `replicates` or `threads` is zero.
pub fn run_replicated_parallel_summaries(
    make_config: &(dyn Fn(u64) -> FleetConfig + Sync),
    base_seed: u64,
    replicates: usize,
    threads: usize,
) -> Result<Vec<ArmSummary>, ParallelError> {
    if replicates == 0 {
        return Err(ParallelError::ZeroReplicates);
    }
    if threads == 0 {
        return Err(ParallelError::ZeroThreads);
    }
    let mut indexed = run_indexed(make_config, base_seed, replicates, threads, |_, report| {
        report.arms.iter().map(ArmRow::of).collect::<Vec<ArmRow>>()
    })?;
    indexed.sort_by_key(|&(i, _)| i);
    let mut arms: Vec<ArmSummary> = indexed[0].1.iter().map(|r| ArmSummary::new(r.name)).collect();
    for (_, rows) in &indexed {
        for (summary, row) in arms.iter_mut().zip(rows) {
            summary.add_row(row);
        }
    }
    Ok(arms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_exactly() {
        let serial = century::experiment::run_replicated(FleetConfig::paper_experiment, 900, 4);
        let parallel =
            run_replicated_parallel(&FleetConfig::paper_experiment, 900, 4, 4).unwrap();
        assert_eq!(serial.replicates, parallel.replicates);
        for (s, p) in serial.arms.iter().zip(&parallel.arms) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.uptime.values(), p.uptime.values());
            assert_eq!(s.spend_dollars.values(), p.spend_dollars.values());
        }
        assert_eq!(
            serial.exemplar.arms[0].readings_delivered,
            parallel.exemplar.arms[0].readings_delivered
        );
    }

    #[test]
    fn parallel_digests_match_serial() {
        // The acceptance bar for the observability layer: same seed ⇒ the
        // same run digest whether the replicate ran serial or threaded.
        let serial: Vec<u64> = (0..4)
            .map(|i| FleetSim::run(FleetConfig::paper_experiment(900 + i)).digest())
            .collect();
        let parallel: Vec<u64> = run_reports(&FleetConfig::paper_experiment, 900, 4, 4)
            .unwrap()
            .iter()
            .map(FleetReport::digest)
            .collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn reports_in_seed_order_regardless_of_threads() {
        let one = run_reports(&FleetConfig::paper_experiment, 50, 6, 1).unwrap();
        let many = run_reports(&FleetConfig::paper_experiment, 50, 6, 6).unwrap();
        for (a, b) in one.iter().zip(&many) {
            assert_eq!(a.arms[0].readings_delivered, b.arms[0].readings_delivered);
            assert_eq!(a.diary.len(), b.diary.len());
        }
    }

    #[test]
    fn summaries_fast_path_matches_serial_bit_for_bit() {
        let serial = century::experiment::run_replicated(FleetConfig::paper_experiment, 700, 5);
        let fast = run_replicated_parallel_summaries(&FleetConfig::paper_experiment, 700, 5, 3)
            .expect("nonzero replicates and threads");
        assert_eq!(serial.arms.len(), fast.len());
        for (s, f) in serial.arms.iter().zip(&fast) {
            assert_eq!(s.name, f.name);
            assert_eq!(s.replicates(), f.replicates());
            // Samples must match in value AND order (seed order), not
            // just as a multiset.
            assert_eq!(s.uptime.values(), f.uptime.values());
            assert_eq!(s.data_yield.values(), f.data_yield.values());
            assert_eq!(s.device_failures.values(), f.device_failures.values());
            assert_eq!(s.gateway_repairs.values(), f.gateway_repairs.values());
            assert_eq!(s.spend_dollars.values(), f.spend_dollars.values());
            assert_eq!(s.labor_hours.values(), f.labor_hours.values());
        }
    }

    #[test]
    fn summaries_fast_path_checks_preconditions() {
        assert_eq!(
            run_replicated_parallel_summaries(&FleetConfig::paper_experiment, 1, 0, 4)
                .unwrap_err(),
            ParallelError::ZeroReplicates
        );
        assert_eq!(
            run_replicated_parallel_summaries(&FleetConfig::paper_experiment, 1, 4, 0)
                .unwrap_err(),
            ParallelError::ZeroThreads
        );
    }

    #[test]
    fn more_threads_than_replicates_is_fine() {
        let out = run_reports(&FleetConfig::paper_experiment, 1, 2, 16).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn zero_preconditions_are_typed_errors() {
        assert_eq!(
            run_reports(&FleetConfig::paper_experiment, 1, 0, 4).unwrap_err(),
            ParallelError::ZeroReplicates
        );
        assert_eq!(
            run_reports(&FleetConfig::paper_experiment, 1, 4, 0).unwrap_err(),
            ParallelError::ZeroThreads
        );
        match run_replicated_parallel(&FleetConfig::paper_experiment, 1, 0, 4) {
            Err(e @ ParallelError::ZeroReplicates) => {
                assert_eq!(e.to_string(), "need at least one replicate");
            }
            other => panic!("expected ZeroReplicates, got {other:?}"),
        }
    }

    #[test]
    fn replicate_panic_reports_the_failing_seed() {
        // Regression: the panic message itself does NOT name the seed —
        // the runner must thread it through the typed error.
        let boom = |seed: u64| -> FleetConfig {
            assert!(seed != 103, "config rejected");
            FleetConfig::paper_experiment(seed)
        };
        let err = run_reports(&boom, 100, 6, 2).unwrap_err();
        match &err {
            ParallelError::ReplicatePanicked { seed, message } => {
                assert_eq!(*seed, 103, "the failing replicate's seed");
                assert!(message.contains("config rejected"), "payload survives: {message:?}");
            }
            other => panic!("expected ReplicatePanicked, got {other:?}"),
        }
        let shown = err.to_string();
        assert!(shown.contains("seed 103"), "Display names the seed: {shown}");
        assert!(shown.contains("config rejected"), "Display keeps the payload: {shown}");
    }

    #[test]
    fn multiple_panics_report_the_smallest_seed_deterministically() {
        let boom = |seed: u64| -> FleetConfig {
            assert!(seed != 2 && seed != 4, "boom");
            FleetConfig::paper_experiment(seed)
        };
        // Max parallelism so both failing seeds are usually claimed by
        // different workers; the collector must still pick seed 2.
        for _ in 0..4 {
            match run_reports(&boom, 0, 6, 6).unwrap_err() {
                ParallelError::ReplicatePanicked { seed, .. } => assert_eq!(seed, 2),
                other => panic!("expected ReplicatePanicked, got {other:?}"),
            }
        }
    }

    #[test]
    fn summaries_fast_path_reports_panics_too() {
        let boom = |seed: u64| -> FleetConfig {
            assert!(seed != 1, "boom");
            FleetConfig::paper_experiment(seed)
        };
        match run_replicated_parallel_summaries(&boom, 0, 3, 2).unwrap_err() {
            ParallelError::ReplicatePanicked { seed, .. } => assert_eq!(seed, 1),
            other => panic!("expected ReplicatePanicked, got {other:?}"),
        }
    }
}
