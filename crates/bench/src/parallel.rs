//! Parallel Monte-Carlo execution of fleet experiments.
//!
//! Replicates are embarrassingly parallel and fully deterministic per
//! seed, so results are independent of scheduling: workers claim seed
//! indices from an atomic counter, and the collector reorders by index
//! before aggregation. Output is **bit-identical** to the serial
//! [`century::experiment::run_replicated`] for the same seeds — the
//! golden-digest suite pins this with [`FleetReport::digest`] equality.
//!
//! Each worker accumulates its results locally and hands them back
//! through its join handle; a panicking worker's payload is re-raised
//! intact with [`std::panic::resume_unwind`] rather than surfacing as a
//! second panic about a poisoned lock.

use std::sync::atomic::{AtomicUsize, Ordering};

use century::experiment::ExperimentOutcome;
use century::metrics::{ArmRow, ArmSummary};
use fleet::sim::{FleetConfig, FleetReport, FleetSim};
use simcore::event::EventQueue;

/// Precondition failures of the parallel runners.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParallelError {
    /// `replicates` was zero: there would be no reports to aggregate.
    ZeroReplicates,
    /// `threads` was zero: no worker could claim a seed.
    ZeroThreads,
}

impl core::fmt::Display for ParallelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParallelError::ZeroReplicates => f.write_str("need at least one replicate"),
            ParallelError::ZeroThreads => f.write_str("need at least one thread"),
        }
    }
}

impl std::error::Error for ParallelError {}

/// Runs `replicates` seeds (`base_seed..base_seed+replicates`) across
/// `threads` workers, returning reports in seed order.
///
/// # Errors
///
/// [`ParallelError`] if `replicates` or `threads` is zero.
///
/// # Panics
///
/// Re-raises (with its original payload) any panic that escapes a
/// worker's `make_config` or simulation run.
pub fn run_reports(
    make_config: &(dyn Fn(u64) -> FleetConfig + Sync),
    base_seed: u64,
    replicates: usize,
    threads: usize,
) -> Result<Vec<FleetReport>, ParallelError> {
    if replicates == 0 {
        return Err(ParallelError::ZeroReplicates);
    }
    if threads == 0 {
        return Err(ParallelError::ZeroThreads);
    }
    let mut indexed = run_indexed(make_config, base_seed, replicates, threads, |_, report| report);
    indexed.sort_by_key(|&(i, _)| i);
    Ok(indexed.into_iter().map(|(_, r)| r).collect())
}

/// Worker pool shared by the report and summary runners: claims seed
/// indices from an atomic counter, recycles one event queue per worker
/// across all the seeds it claims (see [`FleetSim::run_with_queue`]), and
/// maps each finished report through `extract` so callers choose how much
/// of it outlives the run. Results are unordered; callers sort by index.
///
/// # Panics
///
/// Re-raises (with its original payload) any panic that escapes a
/// worker's `make_config` or simulation run.
fn run_indexed<T: Send>(
    make_config: &(dyn Fn(u64) -> FleetConfig + Sync),
    base_seed: u64,
    replicates: usize,
    threads: usize,
    extract: impl Fn(usize, FleetReport) -> T + Sync,
) -> Vec<(usize, T)> {
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(replicates))
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    let mut queue = EventQueue::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= replicates {
                            break;
                        }
                        let report;
                        (report, queue) =
                            FleetSim::run_with_queue(make_config(base_seed + i as u64), queue);
                        local.push((i, extract(i, report)));
                    }
                    local
                })
            })
            .collect();
        let mut all = Vec::with_capacity(replicates);
        for handle in handles {
            match handle.join() {
                Ok(local) => all.extend(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        all
    })
}

/// Parallel equivalent of [`century::experiment::run_replicated`]:
/// identical summaries, wall-clock divided by the worker count.
///
/// # Errors
///
/// [`ParallelError`] if `replicates` or `threads` is zero.
pub fn run_replicated_parallel(
    make_config: &(dyn Fn(u64) -> FleetConfig + Sync),
    base_seed: u64,
    replicates: usize,
    threads: usize,
) -> Result<ExperimentOutcome, ParallelError> {
    let reports = run_reports(make_config, base_seed, replicates, threads)?;
    let mut arms: Vec<ArmSummary> = reports[0]
        .arms
        .iter()
        .map(|a| ArmSummary::new(a.name))
        .collect();
    for report in &reports {
        for (summary, arm) in arms.iter_mut().zip(&report.arms) {
            summary.add(arm);
        }
    }
    // `replicates` is checked nonzero on entry, so a report always exists;
    // re-surface the same error rather than panic if that ever changes.
    let Some(exemplar) = reports.into_iter().next() else {
        return Err(ParallelError::ZeroReplicates);
    };
    Ok(ExperimentOutcome { arms, exemplar, replicates })
}

/// Summary-only fast path: like [`run_replicated_parallel`] but each
/// worker reduces a replicate to its [`ArmRow`] scalars as soon as the
/// run finishes, so full `FleetReport`s (diary, spans, metric snapshots)
/// never pile up behind the join barrier — memory stays O(threads)
/// instead of O(replicates). Rows are folded in seed order, making the
/// resulting [`ArmSummary`]s bit-identical to the serial
/// [`century::experiment::run_replicated`] for the same seeds.
///
/// # Errors
///
/// [`ParallelError`] if `replicates` or `threads` is zero.
pub fn run_replicated_parallel_summaries(
    make_config: &(dyn Fn(u64) -> FleetConfig + Sync),
    base_seed: u64,
    replicates: usize,
    threads: usize,
) -> Result<Vec<ArmSummary>, ParallelError> {
    if replicates == 0 {
        return Err(ParallelError::ZeroReplicates);
    }
    if threads == 0 {
        return Err(ParallelError::ZeroThreads);
    }
    let mut indexed = run_indexed(make_config, base_seed, replicates, threads, |_, report| {
        report.arms.iter().map(ArmRow::of).collect::<Vec<ArmRow>>()
    });
    indexed.sort_by_key(|&(i, _)| i);
    let mut arms: Vec<ArmSummary> = indexed[0].1.iter().map(|r| ArmSummary::new(r.name)).collect();
    for (_, rows) in &indexed {
        for (summary, row) in arms.iter_mut().zip(rows) {
            summary.add_row(row);
        }
    }
    Ok(arms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_exactly() {
        let serial = century::experiment::run_replicated(FleetConfig::paper_experiment, 900, 4);
        let parallel =
            run_replicated_parallel(&FleetConfig::paper_experiment, 900, 4, 4).unwrap();
        assert_eq!(serial.replicates, parallel.replicates);
        for (s, p) in serial.arms.iter().zip(&parallel.arms) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.uptime.values(), p.uptime.values());
            assert_eq!(s.spend_dollars.values(), p.spend_dollars.values());
        }
        assert_eq!(
            serial.exemplar.arms[0].readings_delivered,
            parallel.exemplar.arms[0].readings_delivered
        );
    }

    #[test]
    fn parallel_digests_match_serial() {
        // The acceptance bar for the observability layer: same seed ⇒ the
        // same run digest whether the replicate ran serial or threaded.
        let serial: Vec<u64> = (0..4)
            .map(|i| FleetSim::run(FleetConfig::paper_experiment(900 + i)).digest())
            .collect();
        let parallel: Vec<u64> = run_reports(&FleetConfig::paper_experiment, 900, 4, 4)
            .unwrap()
            .iter()
            .map(FleetReport::digest)
            .collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn reports_in_seed_order_regardless_of_threads() {
        let one = run_reports(&FleetConfig::paper_experiment, 50, 6, 1).unwrap();
        let many = run_reports(&FleetConfig::paper_experiment, 50, 6, 6).unwrap();
        for (a, b) in one.iter().zip(&many) {
            assert_eq!(a.arms[0].readings_delivered, b.arms[0].readings_delivered);
            assert_eq!(a.diary.len(), b.diary.len());
        }
    }

    #[test]
    fn summaries_fast_path_matches_serial_bit_for_bit() {
        let serial = century::experiment::run_replicated(FleetConfig::paper_experiment, 700, 5);
        let fast = run_replicated_parallel_summaries(&FleetConfig::paper_experiment, 700, 5, 3)
            .expect("nonzero replicates and threads");
        assert_eq!(serial.arms.len(), fast.len());
        for (s, f) in serial.arms.iter().zip(&fast) {
            assert_eq!(s.name, f.name);
            assert_eq!(s.replicates(), f.replicates());
            // Samples must match in value AND order (seed order), not
            // just as a multiset.
            assert_eq!(s.uptime.values(), f.uptime.values());
            assert_eq!(s.data_yield.values(), f.data_yield.values());
            assert_eq!(s.device_failures.values(), f.device_failures.values());
            assert_eq!(s.gateway_repairs.values(), f.gateway_repairs.values());
            assert_eq!(s.spend_dollars.values(), f.spend_dollars.values());
            assert_eq!(s.labor_hours.values(), f.labor_hours.values());
        }
    }

    #[test]
    fn summaries_fast_path_checks_preconditions() {
        assert_eq!(
            run_replicated_parallel_summaries(&FleetConfig::paper_experiment, 1, 0, 4)
                .unwrap_err(),
            ParallelError::ZeroReplicates
        );
        assert_eq!(
            run_replicated_parallel_summaries(&FleetConfig::paper_experiment, 1, 4, 0)
                .unwrap_err(),
            ParallelError::ZeroThreads
        );
    }

    #[test]
    fn more_threads_than_replicates_is_fine() {
        let out = run_reports(&FleetConfig::paper_experiment, 1, 2, 16).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn zero_preconditions_are_typed_errors() {
        assert_eq!(
            run_reports(&FleetConfig::paper_experiment, 1, 0, 4).unwrap_err(),
            ParallelError::ZeroReplicates
        );
        assert_eq!(
            run_reports(&FleetConfig::paper_experiment, 1, 4, 0).unwrap_err(),
            ParallelError::ZeroThreads
        );
        match run_replicated_parallel(&FleetConfig::paper_experiment, 1, 0, 4) {
            Err(e @ ParallelError::ZeroReplicates) => {
                assert_eq!(e.to_string(), "need at least one replicate");
            }
            other => panic!("expected ZeroReplicates, got {other:?}"),
        }
    }

    #[test]
    fn worker_panics_propagate_with_their_payload() {
        let boom = |seed: u64| -> FleetConfig {
            assert!(seed != 3, "boom at seed 3");
            FleetConfig::paper_experiment(seed)
        };
        let result = std::panic::catch_unwind(|| run_reports(&boom, 0, 6, 2));
        let payload = result.expect_err("the worker panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default();
        assert!(msg.contains("boom at seed 3"), "original payload must survive: {msg:?}");
    }
}
