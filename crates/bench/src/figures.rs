//! Figure-data export: the plottable series behind the exhibits.
//!
//! `tables --csv <dir>` writes one CSV per figure so the exhibits can be
//! re-plotted outside the toolkit. Every series is regenerated from the
//! same deterministic computations as the text tables.

use std::fmt::Write as _;

use century::report::Table;
use reliability::system::bom;
use simcore::rng::Rng;
use simcore::survival::{KaplanMeier, Observation};

/// One exportable figure: a name and CSV content.
pub struct Figure {
    /// File stem (no extension).
    pub name: &'static str,
    /// CSV payload.
    pub csv: String,
}

/// E3: fleet alive-fraction over time, en-masse vs staggered.
pub fn fig_e3_alive(seed: u64) -> Figure {
    let e = crate::exhibits::e3::compute(seed, 2_000);
    let mut set = simcore::series::SeriesSet::new();
    let mut a = e.en_masse.alive_fraction.clone();
    let mut b = e.staggered.alive_fraction.clone();
    // Rename for the CSV header.
    a = rename(a, "en_masse");
    b = rename(b, "staggered");
    set.add(a);
    set.add(b);
    Figure { name: "e3_alive_fraction", csv: set.to_csv() }
}

fn rename(s: simcore::series::Series, name: &'static str) -> simcore::series::Series {
    let mut out = simcore::series::Series::new(name);
    for &(t, v) in s.points() {
        out.push(t, v);
    }
    out
}

/// E5: cumulative backhaul cost per gateway, fiber vs cellular.
pub fn fig_e5_cumulative() -> Figure {
    let series = crate::exhibits::e5::cumulative_series(50);
    let mut csv = String::from("year,fiber_usd,cellular_usd\n");
    for (y, fiber, cell) in series {
        let _ = writeln!(csv, "{y},{fiber:.2},{cell:.2}");
    }
    Figure { name: "e5_cumulative_cost", csv }
}

/// E8: wallet runway vs reporting cadence.
pub fn fig_e8_runway() -> Figure {
    let mut csv = String::from("interval_min,runway_years\n");
    for (mins, years) in crate::exhibits::e8::runway_sweep() {
        let _ = writeln!(csv, "{mins:.2},{years:.2}");
    }
    Figure { name: "e8_runway", csv }
}

/// E10: Kaplan–Meier survival curves for both BOMs.
pub fn fig_e10_survival(seed: u64) -> Figure {
    let env = bom::Environment::default();
    let mut rng = Rng::seed_from(seed);
    let draws = 5_000;
    let horizon = 50.0;
    let curve = |block: &reliability::Block, rng: &mut Rng| {
        let obs: Vec<Observation> = (0..draws)
            .map(|_| {
                let t = block.sample_ttf(rng);
                if t > horizon {
                    Observation::censored(horizon)
                } else {
                    Observation::failed(t)
                }
            })
            .collect();
        KaplanMeier::fit(&obs)
    };
    let bat = curve(&bom::battery_node(&env), &mut rng);
    let har = curve(&bom::harvesting_node(&env), &mut rng);
    let mut csv = String::from("years,battery_survival,harvesting_survival\n");
    for decile in 0..=100 {
        let t = decile as f64 * 0.5;
        let _ = writeln!(csv, "{t:.1},{:.4},{:.4}", bat.survival_at(t), har.survival_at(t));
    }
    Figure { name: "e10_survival", csv }
}

/// E12: per-SF load and availability sweep.
pub fn fig_e12_sweep(seed: u64) -> Figure {
    let rows = crate::exhibits::e12::sf_sweep(seed, 50);
    let mut csv = String::from("sf,airtime_ms,mean_load_uw,availability\n");
    for r in rows {
        let _ = writeln!(
            csv,
            "{},{:.1},{:.2},{:.6}",
            r.sf.value(),
            r.airtime_s * 1e3,
            r.mean_load_uw,
            r.availability
        );
    }
    Figure { name: "e12_sf_sweep", csv }
}

/// A2: delivery vs population, with and without capture.
pub fn fig_a2_capture(seed: u64) -> Figure {
    let a = crate::ablations::a2::compute(seed);
    let mut csv = String::from("population,delivery_plain,delivery_capture\n");
    for (pop, plain, cap) in a.sweep {
        let _ = writeln!(csv, "{pop},{plain:.4},{cap:.4}");
    }
    Figure { name: "a2_capture", csv }
}

/// A3: the checkpoint-interval U-curve.
pub fn fig_a3_ucurve(seed: u64) -> Figure {
    let a = crate::ablations::a3::compute(seed, 400);
    let mut csv = String::from("interval_s,mean_on_time_s\n");
    for (iv, t) in a.sweep {
        let _ = writeln!(csv, "{iv:.2},{t:.3}");
    }
    Figure { name: "a3_checkpoint_ucurve", csv }
}

/// All exportable figures at a seed.
pub fn all(seed: u64) -> Vec<Figure> {
    vec![
        fig_e3_alive(seed),
        fig_e5_cumulative(),
        fig_e8_runway(),
        fig_e10_survival(seed),
        fig_e12_sweep(seed),
        fig_a2_capture(seed),
        fig_a3_ucurve(seed),
    ]
}

/// Renders every exhibit's tables as CSV too (titles preserved as
/// comments), for spreadsheet users.
pub fn exhibit_tables_csv(_seed: u64) -> String {
    // Tables are rendered to text by each exhibit; this helper exists so
    // the binary has a single call for the `--csv` mode's index file.
    let mut t = Table::new("figure index", &["file", "content"]);
    for f in [
        ("e3_alive_fraction", "fleet alive fraction vs years"),
        ("e5_cumulative_cost", "cumulative backhaul cost vs years"),
        ("e8_runway", "wallet runway vs cadence"),
        ("e10_survival", "KM survival curves, both BOMs"),
        ("e12_sf_sweep", "per-SF load and availability"),
        ("a2_capture", "delivery vs population, capture on/off"),
        ("a3_checkpoint_ucurve", "checkpoint interval U-curve"),
    ] {
        t.row_str(&[f.0, f.1]);
    }
    t.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figures_nonempty_with_headers() {
        for fig in all(3) {
            assert!(fig.csv.lines().count() > 2, "{} too short", fig.name);
            let header = fig.csv.lines().next().expect("header");
            assert!(header.contains(','), "{} header malformed", fig.name);
        }
    }

    #[test]
    fn survival_figure_monotone() {
        let fig = fig_e10_survival(5);
        let mut last_b = 1.0f64;
        let mut last_h = 1.0f64;
        let mut at_15 = (0.0f64, 0.0f64);
        for line in fig.csv.lines().skip(1) {
            let mut parts = line.split(',');
            let t: f64 = parts.next().unwrap().parse().unwrap();
            let b: f64 = parts.next().unwrap().parse().unwrap();
            let h: f64 = parts.next().unwrap().parse().unwrap();
            assert!(b <= last_b + 1e-9);
            assert!(h <= last_h + 1e-9);
            if (t - 15.0).abs() < 1e-9 {
                at_15 = (b, h);
            }
            last_b = b;
            last_h = h;
        }
        // At the folklore boundary the curves are well separated (by year
        // 50 both are near the Monte-Carlo floor).
        assert!(at_15.1 > at_15.0 + 0.2, "at 15 y: battery {} harvesting {}", at_15.0, at_15.1);
    }

    #[test]
    fn e5_figure_matches_exhibit() {
        let fig = fig_e5_cumulative();
        assert!(fig.csv.contains("fiber_usd"));
        assert_eq!(fig.csv.lines().count(), 51);
    }

    #[test]
    fn index_lists_every_figure() {
        let idx = exhibit_tables_csv(1);
        for fig in all(1) {
            assert!(idx.contains(fig.name), "{} missing from index", fig.name);
        }
    }
}
