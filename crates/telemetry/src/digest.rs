//! The deterministic run digest: one `u64` that summarises a whole run.
//!
//! A [`Digest`] is a 64-bit FNV-1a fold with typed, length-prefixed
//! writers, so distinct value sequences cannot collide by concatenation
//! ambiguity (`"ab" + "c"` vs `"a" + "bc"` hash differently). Folding the
//! ordered trace and the final metric snapshot of a simulation yields a
//! number with the property the regression suite is built on:
//!
//! > same seed + same code ⇒ same digest, on every platform, serial or
//! > parallel.
//!
//! **Contract** (DESIGN.md §6): digests cover *simulated* behaviour only —
//! diary entries, spans, report ledgers, metric snapshots. Wall-clock
//! profiling ([`simcore::engine::EngineProfile`]) is excluded by design:
//! it varies run to run and must never perturb the hash.
//!
//! Floats are folded by `to_bits`, so a digest match is bit-for-bit, not
//! approximate.

use simcore::time::SimTime;
use simcore::trace::Diary;

use crate::registry::{MetricValue, Snapshot};
use crate::span::Span;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental 64-bit FNV-1a fold with typed writers.
///
/// # Examples
///
/// ```
/// use telemetry::Digest;
///
/// let mut a = Digest::new();
/// a.write_str("hello");
/// a.write_u64(7);
/// let mut b = Digest::new();
/// b.write_str("hello");
/// b.write_u64(7);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Clone, Debug)]
pub struct Digest {
    h: u64,
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

impl Digest {
    /// Starts a fresh fold at the FNV-1a offset basis.
    pub fn new() -> Self {
        Digest { h: FNV_OFFSET }
    }

    /// Folds raw bytes (no length prefix; prefer the typed writers).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Folds a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds an `i128` as 16 little-endian bytes (exact money amounts).
    pub fn write_i128(&mut self, v: i128) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds an `f64` bit-exactly.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds a string, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The current fold value.
    pub fn finish(&self) -> u64 {
        self.h
    }

    /// Folds a whole diary: every entry's time, severity, tier and
    /// message, in order.
    pub fn fold_diary(&mut self, diary: &Diary) {
        self.write_u64(diary.len() as u64);
        for e in diary.entries() {
            self.write_u64(e.at.as_secs());
            self.write_u8(e.severity.code());
            self.write_u8(e.tier.code());
            self.write_str(&e.message);
        }
    }

    /// Folds a span list in order; open spans fold as `u64::MAX`.
    pub fn fold_spans(&mut self, spans: &[Span]) {
        self.write_u64(spans.len() as u64);
        for s in spans {
            self.write_str(&s.name);
            self.write_u64(s.start.as_secs());
            self.write_u64(s.end.map_or(u64::MAX, SimTime::as_secs));
        }
    }

    /// Folds a metric snapshot (already name-sorted by construction).
    pub fn fold_snapshot(&mut self, snap: &Snapshot) {
        self.write_u64(snap.len() as u64);
        for (name, value) in snap.entries() {
            self.write_str(name);
            match value {
                MetricValue::Counter(v) => {
                    self.write_u8(0);
                    self.write_u64(*v);
                }
                MetricValue::Gauge(v) => {
                    self.write_u8(1);
                    self.write_f64(*v);
                }
                MetricValue::Histogram { bounds, counts, count, sum } => {
                    self.write_u8(2);
                    self.write_u64(bounds.len() as u64);
                    for b in bounds {
                        self.write_f64(*b);
                    }
                    for c in counts {
                        self.write_u64(*c);
                    }
                    self.write_u64(*count);
                    self.write_f64(*sum);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Buckets, Registry};
    use crate::span::SpanLog;
    use simcore::trace::{Severity, Tier};

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = Digest::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Digest::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn length_prefix_blocks_concatenation_ambiguity() {
        let mut a = Digest::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Digest::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn empty_digest_is_offset_basis() {
        assert_eq!(Digest::new().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn diary_fold_sees_every_field() {
        let mut d1 = Diary::new();
        d1.log(SimTime::from_years(1), Severity::Info, Tier::Device, "x");
        let mut d2 = Diary::new();
        d2.log(SimTime::from_years(1), Severity::Warning, Tier::Device, "x");
        let mut a = Digest::new();
        a.fold_diary(&d1);
        let mut b = Digest::new();
        b.fold_diary(&d2);
        assert_ne!(a.finish(), b.finish(), "severity must enter the fold");
    }

    #[test]
    fn snapshot_fold_distinguishes_kinds() {
        let r1 = Registry::new();
        r1.counter("m").unwrap().add(0);
        let r2 = Registry::new();
        r2.gauge("m").unwrap().set(0.0);
        let mut a = Digest::new();
        a.fold_snapshot(&r1.snapshot());
        let mut b = Digest::new();
        b.fold_snapshot(&r2.snapshot());
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn open_spans_fold_distinctly_from_closed() {
        let mut log = SpanLog::new();
        let id = log.open("outage", SimTime::from_years(1));
        let mut a = Digest::new();
        a.fold_spans(log.spans());
        log.close(id, SimTime::from_years(2));
        let mut b = Digest::new();
        b.fold_spans(log.spans());
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn histogram_fold_covers_counts() {
        let mk = |obs: &[f64]| {
            let r = Registry::new();
            let h = r.histogram("h", Buckets::linear(0.0, 1.0, 4).unwrap()).unwrap();
            for &x in obs {
                h.observe(x);
            }
            let mut d = Digest::new();
            d.fold_snapshot(&r.snapshot());
            d.finish()
        };
        assert_ne!(mk(&[0.5, 1.5]), mk(&[0.5, 2.5]));
        assert_eq!(mk(&[0.5, 1.5]), mk(&[0.5, 1.5]));
    }
}
