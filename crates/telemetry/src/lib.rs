//! `telemetry` — the observability layer of the century toolkit.
//!
//! The paper commits to a "public, living diary" of every intervention
//! over the 50-year experiment (§4.5). [`simcore::trace::Diary`] records
//! *what happened*; this crate answers the operational questions around
//! it — where the simulated half-century went, how hot each path ran, and
//! whether a code change moved the physics:
//!
//! * [`registry`] — a metrics registry (counters, gauges, fixed-bucket
//!   histograms) handing out cheap cloneable handles. Handles are plain
//!   `Arc<Atomic…>` wrappers, safe to update from hot paths and from
//!   worker threads; the registry snapshots them deterministically
//!   (sorted by name) at the end of a run.
//! * [`span`] — sim-time spans (an interval with a name, e.g. "backhaul
//!   outage on arm 0") recorded alongside the diary's point events.
//! * [`jsonl`] — structured export of diaries, spans and metric
//!   snapshots as JSON Lines, one self-describing object per line, for
//!   external tooling. No serde: the encoder is ~50 lines and vendored
//!   builds stay offline.
//! * [`digest`] — a deterministic 64-bit FNV-1a fold over ordered
//!   telemetry. Two runs of the same seed are comparable by a single
//!   number; the golden-trace regression suite (`tests/golden_digests.rs`)
//!   pins those numbers so a PR that changes the physics fails loudly.
//!
//! Engine-level profiling (per-event-kind dispatch counts, wall-clock
//! handler time, queue high-water marks) lives in
//! [`simcore::engine::EngineProfile`], collected by the engine itself and
//! surfaced on `fleet::sim::FleetReport` next to this crate's snapshot.
//! Wall-clock figures are **excluded** from digests by contract; see
//! DESIGN.md §6 for exactly what the hash covers.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod digest;
pub mod jsonl;
pub mod registry;
pub mod span;

pub use digest::Digest;
pub use registry::{
    Buckets, Counter, Gauge, Histogram, LocalHistogram, MetricValue, Registry, Snapshot,
    TelemetryError,
};
pub use span::{Span, SpanId, SpanLog};
