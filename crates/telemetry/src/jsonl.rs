//! JSON Lines export of diaries, spans and metric snapshots.
//!
//! One self-describing JSON object per line, distinguished by a `"type"`
//! field (`event`, `span`, `metric`), so a whole run can be concatenated
//! into a single `.jsonl` stream and filtered with standard tooling. The
//! encoder is hand-rolled (no serde — vendored builds must stay offline)
//! and emits `null` for non-finite floats, which JSON cannot represent.

use std::fmt::Write as _;

use simcore::trace::Diary;

use crate::registry::{MetricValue, Snapshot};
use crate::span::Span;

/// Appends `s` to `out` with JSON string escaping.
fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` as a JSON number, or `null` if non-finite.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Renders a diary as JSONL: one `{"type":"event",…}` object per entry.
pub fn diary_to_jsonl(diary: &Diary) -> String {
    let mut out = String::new();
    for e in diary.entries() {
        let _ = write!(out, "{{\"type\":\"event\",\"t\":{},\"sev\":", e.at.as_secs());
        push_escaped(&mut out, &e.severity.to_string());
        out.push_str(",\"tier\":");
        push_escaped(&mut out, &e.tier.to_string());
        out.push_str(",\"msg\":");
        push_escaped(&mut out, &e.message);
        out.push_str("}\n");
    }
    out
}

/// Renders spans as JSONL: one `{"type":"span",…}` object per span; open
/// spans export `"end":null`.
pub fn spans_to_jsonl(spans: &[Span]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str("{\"type\":\"span\",\"name\":");
        push_escaped(&mut out, &s.name);
        let _ = write!(out, ",\"start\":{}", s.start.as_secs());
        match s.end {
            Some(end) => {
                let _ = write!(out, ",\"end\":{}", end.as_secs());
            }
            None => out.push_str(",\"end\":null"),
        }
        out.push_str("}\n");
    }
    out
}

/// Renders a metric snapshot as JSONL: one `{"type":"metric",…}` object
/// per metric, in name order.
pub fn snapshot_to_jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in snap.entries() {
        out.push_str("{\"type\":\"metric\",\"name\":");
        push_escaped(&mut out, name);
        match value {
            MetricValue::Counter(v) => {
                let _ = write!(out, ",\"kind\":\"counter\",\"value\":{v}");
            }
            MetricValue::Gauge(v) => {
                out.push_str(",\"kind\":\"gauge\",\"value\":");
                push_f64(&mut out, *v);
            }
            MetricValue::Histogram { bounds, counts, count, sum } => {
                out.push_str(",\"kind\":\"histogram\",\"bounds\":[");
                for (i, b) in bounds.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_f64(&mut out, *b);
                }
                out.push_str("],\"counts\":[");
                for (i, c) in counts.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{c}");
                }
                let _ = write!(out, "],\"count\":{count},\"sum\":");
                push_f64(&mut out, *sum);
            }
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Buckets, Registry};
    use crate::span::SpanLog;
    use simcore::time::SimTime;
    use simcore::trace::{Severity, Tier};

    #[test]
    fn diary_lines_are_one_object_each() {
        let mut d = Diary::new();
        d.log(SimTime::from_years(1), Severity::Incident, Tier::Gateway, "gw \"g0\" died\n");
        let out = diary_to_jsonl(&d);
        assert_eq!(out.lines().count(), 1);
        assert!(out.contains("\"sev\":\"INCIDENT\""));
        assert!(out.contains("\\\"g0\\\""), "quotes escaped: {out}");
        assert!(out.contains("\\n"), "newline escaped");
        assert!(out.ends_with("}\n"));
    }

    #[test]
    fn span_export_handles_open_spans() {
        let mut log = SpanLog::new();
        let id = log.open("outage", SimTime::from_secs(10));
        log.open("other", SimTime::from_secs(20));
        log.close(id, SimTime::from_secs(30));
        let out = spans_to_jsonl(log.spans());
        assert!(out.contains("\"start\":10,\"end\":30"));
        assert!(out.contains("\"start\":20,\"end\":null"));
    }

    #[test]
    fn snapshot_export_covers_all_kinds() {
        let reg = Registry::new();
        reg.counter("c").unwrap().add(3);
        reg.gauge("g").unwrap().set(1.5);
        let h = reg.histogram("h", Buckets::linear(0.0, 1.0, 2).unwrap()).unwrap();
        h.observe(0.5);
        let out = snapshot_to_jsonl(&reg.snapshot());
        assert_eq!(out.lines().count(), 3);
        assert!(out.contains("\"kind\":\"counter\",\"value\":3"));
        assert!(out.contains("\"kind\":\"gauge\",\"value\":1.5"));
        assert!(out.contains("\"counts\":[1,0,0]"), "{out}");
    }

    #[test]
    fn control_chars_escape_to_unicode() {
        let mut out = String::new();
        push_escaped(&mut out, "a\u{1}b");
        assert_eq!(out, "\"a\\u0001b\"");
    }
}
