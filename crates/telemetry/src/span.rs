//! Sim-time spans: named intervals recorded alongside the diary.
//!
//! The [`simcore::trace::Diary`] records *point* events ("provider
//! terminated service"). A [`SpanLog`] records the *interval* view of the
//! same story ("the backhaul was out from year 12.3 to year 12.55"), which
//! is what downstream tooling needs to compute time-in-state without
//! re-parsing diary prose. Spans may still be open when the run ends —
//! an outage the horizon cut off — and export as `end: null`.

use simcore::time::SimTime;

/// One named interval. `end` is `None` while the span is open.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// What the interval represents.
    pub name: String,
    /// When it opened.
    pub start: SimTime,
    /// When it closed, if it has.
    pub end: Option<SimTime>,
}

impl Span {
    /// The span's length, measured to `horizon` when still open.
    pub fn duration_to(&self, horizon: SimTime) -> simcore::time::SimDuration {
        self.end.unwrap_or(horizon).since(self.start)
    }
}

/// Handle to an open span, returned by [`SpanLog::open`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(usize);

impl SpanId {
    /// The span's position in its log, for serialization. Re-mint the
    /// handle after a restore with [`SpanLog::handle`].
    pub fn index(self) -> usize {
        self.0
    }
}

/// An append-only log of spans, in open order.
#[derive(Clone, Debug, Default)]
pub struct SpanLog {
    spans: Vec<Span>,
}

impl SpanLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        SpanLog::default()
    }

    /// Opens a span at `at` and returns its handle.
    pub fn open(&mut self, name: impl Into<String>, at: SimTime) -> SpanId {
        self.spans.push(Span { name: name.into(), start: at, end: None });
        SpanId(self.spans.len() - 1)
    }

    /// Closes an open span. Returns `false` (and changes nothing) if the
    /// handle is stale or the span is already closed.
    pub fn close(&mut self, id: SpanId, at: SimTime) -> bool {
        match self.spans.get_mut(id.0) {
            Some(span) if span.end.is_none() && at >= span.start => {
                span.end = Some(at);
                true
            }
            _ => false,
        }
    }

    /// All spans, in open order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans still open (no close recorded).
    pub fn open_count(&self) -> usize {
        self.spans.iter().filter(|s| s.end.is_none()).count()
    }

    /// Rebuilds a log from checkpointed spans, in their original open
    /// order. Handles into the previous log stay valid positionally;
    /// re-mint them with [`SpanLog::handle`].
    pub fn restore(spans: Vec<Span>) -> Self {
        SpanLog { spans }
    }

    /// Mints the handle for the span at `index`, if one exists — the
    /// restore-side counterpart of [`SpanId::index`].
    pub fn handle(&self, index: usize) -> Option<SpanId> {
        (index < self.spans.len()).then_some(SpanId(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_close_roundtrip() {
        let mut log = SpanLog::new();
        let a = log.open("outage", SimTime::from_years(1));
        let b = log.open("outage", SimTime::from_years(2));
        assert!(log.close(a, SimTime::from_years(3)));
        assert_eq!(log.len(), 2);
        assert_eq!(log.open_count(), 1);
        assert_eq!(log.spans()[0].end, Some(SimTime::from_years(3)));
        assert_eq!(log.spans()[1].end, None);
        let horizon = SimTime::from_years(50);
        assert_eq!(log.spans()[1].duration_to(horizon).as_years_f64(), 48.0);
        let _ = b;
    }

    #[test]
    fn double_close_and_backwards_close_rejected() {
        let mut log = SpanLog::new();
        let a = log.open("x", SimTime::from_years(5));
        assert!(!log.close(a, SimTime::from_years(4)), "close before open");
        assert!(log.close(a, SimTime::from_years(6)));
        assert!(!log.close(a, SimTime::from_years(7)), "double close");
        assert_eq!(log.spans()[0].end, Some(SimTime::from_years(6)));
    }
}
