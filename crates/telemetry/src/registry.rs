//! The metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Design constraints, in order:
//!
//! 1. **Cheap on the hot path.** A handle is one `Arc` deref plus one
//!    relaxed atomic op; cloning a handle is an `Arc` clone. Simulation
//!    inner loops (weekly evaluations over every device, packet-level
//!    models in `net`, credit burns in `econ`) can hold handles without
//!    feeling them.
//! 2. **Deterministic snapshots.** [`Registry::snapshot`] sorts by metric
//!    name and reads exact integer state, so a snapshot of a
//!    deterministic simulation is itself deterministic and can be folded
//!    into a run digest.
//! 3. **Fixed bucketing.** Histogram buckets are chosen up front
//!    ([`Buckets`]) and never adapt to data, so the same inputs always
//!    produce the same counts — adaptive schemes would leak execution
//!    order into the digest.
//!
//! Counters and histogram bucket counts are exact under concurrency.
//! The histogram's floating-point `sum` is CAS-accumulated; when several
//! threads observe into *the same* histogram the sum is order-dependent
//! in the last ulp (each simulation replicate owns its registry, so the
//! fleet pipeline never hits that case).

use core::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Everything that can go wrong registering a metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TelemetryError {
    /// The name is already registered as a different metric kind (or a
    /// histogram with different buckets).
    KindMismatch {
        /// The contested metric name.
        name: String,
    },
    /// A bucket specification was rejected.
    BadBuckets {
        /// Why the specification is invalid.
        reason: &'static str,
    },
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::KindMismatch { name } => {
                write!(f, "metric '{name}' already registered with a different shape")
            }
            TelemetryError::BadBuckets { reason } => write!(f, "invalid buckets: {reason}"),
        }
    }
}

impl std::error::Error for TelemetryError {}

/// A monotonically increasing event count.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (stored as `f64` bits).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is greater (high-water mark).
    pub fn set_max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            if v <= f64::from_bits(cur) {
                return;
            }
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed, validated histogram bucket specification: strictly increasing
/// finite upper bounds. Observations land in the first bucket whose upper
/// bound is `>=` the value; anything above the last bound (or non-finite)
/// lands in the implicit overflow bucket.
#[derive(Clone, Debug, PartialEq)]
pub struct Buckets {
    bounds: Vec<f64>,
}

impl Buckets {
    /// Builds buckets from explicit upper bounds.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::BadBuckets`] if `bounds` is empty, non-finite,
    /// or not strictly increasing.
    pub fn explicit(bounds: Vec<f64>) -> Result<Self, TelemetryError> {
        if bounds.is_empty() {
            return Err(TelemetryError::BadBuckets { reason: "no bounds" });
        }
        if bounds.iter().any(|b| !b.is_finite()) {
            return Err(TelemetryError::BadBuckets { reason: "non-finite bound" });
        }
        if bounds.windows(2).any(|w| w[0] >= w[1]) {
            return Err(TelemetryError::BadBuckets { reason: "bounds not strictly increasing" });
        }
        Ok(Buckets { bounds })
    }

    /// `count` equal-width buckets: upper bounds `start + width,
    /// start + 2·width, …`.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::BadBuckets`] if `count` is zero or `width` is
    /// not a positive finite number.
    pub fn linear(start: f64, width: f64, count: usize) -> Result<Self, TelemetryError> {
        if count == 0 {
            return Err(TelemetryError::BadBuckets { reason: "zero buckets" });
        }
        if !(width.is_finite() && width > 0.0 && start.is_finite()) {
            return Err(TelemetryError::BadBuckets { reason: "bad linear parameters" });
        }
        Self::explicit((1..=count).map(|i| start + width * i as f64).collect())
    }

    /// `count` geometrically growing buckets: upper bounds `first,
    /// first·factor, first·factor², …`.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::BadBuckets`] if `count` is zero, `first` is not
    /// positive, or `factor` is not greater than one.
    pub fn exponential(first: f64, factor: f64, count: usize) -> Result<Self, TelemetryError> {
        if count == 0 {
            return Err(TelemetryError::BadBuckets { reason: "zero buckets" });
        }
        if !(first.is_finite() && first > 0.0 && factor.is_finite() && factor > 1.0) {
            return Err(TelemetryError::BadBuckets { reason: "bad exponential parameters" });
        }
        let mut bounds = Vec::with_capacity(count);
        let mut b = first;
        for _ in 0..count {
            bounds.push(b);
            b *= factor;
        }
        Self::explicit(bounds)
    }

    /// The bucket index an observation falls into: the first bucket whose
    /// upper bound is `>= x`, or the overflow index (`bounds().len()`)
    /// for larger or non-finite values. Monotone non-decreasing in `x`
    /// (the property the regression suite pins).
    pub fn bucket_index(&self, x: f64) -> usize {
        if x.is_nan() {
            return self.bounds.len();
        }
        self.bounds.partition_point(|&b| b < x)
    }

    /// The configured upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }
}

struct HistogramInner {
    buckets: Buckets,
    /// One slot per bound plus the overflow bucket.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram of `f64` observations.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, x: f64) {
        let idx = self.0.buckets.bucket_index(x);
        self.0.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        if x.is_finite() {
            let mut cur = self.0.sum_bits.load(Ordering::Relaxed);
            loop {
                let new = (f64::from_bits(cur) + x).to_bits();
                match self.0.sum_bits.compare_exchange_weak(
                    cur,
                    new,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all finite observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn counts(&self) -> Vec<u64> {
        self.0.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// The bucket specification.
    pub fn buckets(&self) -> &Buckets {
        &self.0.buckets
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("bounds", &self.0.buckets.bounds)
            .field("count", &self.count())
            .finish()
    }
}

/// A single-threaded accumulation buffer for a [`Histogram`].
///
/// Atomic handles are cheap, but a simulation hot loop can record tens of
/// thousands of observations per run; batching them in plain fields and
/// [`flush_into`](LocalHistogram::flush_into)-ing once at finalize keeps
/// the instrumented run inside the profiling overhead budget (DESIGN.md
/// §6). The layout must match the target histogram's.
#[derive(Clone, Debug)]
pub struct LocalHistogram {
    buckets: Buckets,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl LocalHistogram {
    /// An empty buffer with the given layout.
    pub fn new(buckets: Buckets) -> Self {
        let slots = buckets.bounds.len() + 1;
        LocalHistogram { buckets, counts: vec![0; slots], count: 0, sum: 0.0 }
    }

    /// Records one observation (no atomics).
    #[inline]
    pub fn observe(&mut self, x: f64) {
        let idx = self.buckets.bucket_index(x);
        self.counts[idx] += 1;
        self.count += 1;
        if x.is_finite() {
            self.sum += x;
        }
    }

    /// Records `n` identical observations of `x` in O(1).
    ///
    /// Exactly equivalent to calling [`observe`](Self::observe) `n`
    /// times when `x` is an integer-valued sample small enough that
    /// `x * n` and the running sum stay within `2^53` (the weekly
    /// delivery histograms observe integers ≤ 168, so every partial sum
    /// is an exactly-representable integer and the batched `sum` update
    /// is bit-identical to `n` repeated additions, in any order). This
    /// is what lets the aggregate sampling path fold a whole cohort's
    /// identical observations into the digest-feeding histogram without
    /// an O(devices) loop.
    #[inline]
    pub fn observe_n(&mut self, x: f64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self.buckets.bucket_index(x);
        self.counts[idx] += n;
        self.count += n;
        if x.is_finite() {
            self.sum += x * n as f64;
        }
    }

    /// Observations buffered so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The buffered per-bucket counts (last entry is the overflow
    /// bucket), for checkpointing a mid-run accumulator.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The buffered sum of finite observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Overwrites the buffer with checkpointed state. Returns `false`
    /// (and changes nothing) if `counts` does not match this buffer's
    /// bucket layout.
    pub fn restore(&mut self, counts: &[u64], count: u64, sum: f64) -> bool {
        if counts.len() != self.counts.len() {
            return false;
        }
        self.counts.copy_from_slice(counts);
        self.count = count;
        self.sum = sum;
        true
    }

    /// Adds everything buffered into `target` and clears the buffer.
    /// Returns `false` (and flushes nothing) if the bucket layouts differ.
    pub fn flush_into(&mut self, target: &Histogram) -> bool {
        if target.0.buckets.bounds != self.buckets.bounds {
            return false;
        }
        for (slot, &n) in target.0.counts.iter().zip(&self.counts) {
            if n > 0 {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
        target.0.count.fetch_add(self.count, Ordering::Relaxed);
        let add = self.sum;
        // Exact-zero fast path: skip the CAS loop when there is nothing to
        // add. This is an identity check, not a numeric comparison.
        // simlint: allow(F001, exact-zero fast path; adding 0.0 is a no-op)
        if add != 0.0 {
            let mut cur = target.0.sum_bits.load(Ordering::Relaxed);
            loop {
                let new = (f64::from_bits(cur) + add).to_bits();
                match target.0.sum_bits.compare_exchange_weak(
                    cur,
                    new,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum = 0.0;
        true
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The final value of one metric, as captured by [`Registry::snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A counter's total.
    Counter(u64),
    /// A gauge's last value.
    Gauge(f64),
    /// A histogram's full state.
    Histogram {
        /// Configured upper bounds.
        bounds: Vec<f64>,
        /// Per-bucket counts; the last entry is the overflow bucket.
        counts: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Sum of finite observations.
        sum: f64,
    },
}

/// A deterministic point-in-time capture of every registered metric,
/// sorted by name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// All `(name, value)` pairs, sorted by name.
    pub fn entries(&self) -> &[(String, MetricValue)] {
        &self.entries
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Number of captured metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The registry: owns metric identities, hands out cheap handles, and
/// snapshots deterministically.
///
/// # Examples
///
/// ```
/// use telemetry::{Buckets, Registry};
///
/// let reg = Registry::new();
/// let delivered = reg.counter("net.delivered").unwrap();
/// let depth = reg.gauge("queue.depth").unwrap();
/// let weekly = reg
///     .histogram("weekly.readings", Buckets::linear(0.0, 24.0, 7).unwrap())
///     .unwrap();
/// delivered.add(3);
/// depth.set(17.0);
/// weekly.observe(42.0);
/// let snap = reg.snapshot();
/// assert_eq!(snap.len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<Vec<(String, Metric)>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn with_entries<T>(&self, f: impl FnOnce(&mut Vec<(String, Metric)>) -> T) -> T {
        // A poisoned lock only means another thread panicked mid-push;
        // the Vec itself is still structurally sound, so recover rather
        // than propagate the panic (panic-free core).
        let mut guard = match self.metrics.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard)
    }

    /// Registers (or re-opens) a counter.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::KindMismatch`] if `name` is already a gauge or
    /// histogram.
    pub fn counter(&self, name: &str) -> Result<Counter, TelemetryError> {
        self.with_entries(|entries| {
            if let Some((_, m)) = entries.iter().find(|(n, _)| n == name) {
                return match m {
                    Metric::Counter(c) => Ok(c.clone()),
                    _ => Err(TelemetryError::KindMismatch { name: name.to_string() }),
                };
            }
            let c = Counter(Arc::new(AtomicU64::new(0)));
            entries.push((name.to_string(), Metric::Counter(c.clone())));
            Ok(c)
        })
    }

    /// Registers (or re-opens) a gauge, initialised to `0.0`.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::KindMismatch`] if `name` is already a counter or
    /// histogram.
    pub fn gauge(&self, name: &str) -> Result<Gauge, TelemetryError> {
        self.with_entries(|entries| {
            if let Some((_, m)) = entries.iter().find(|(n, _)| n == name) {
                return match m {
                    Metric::Gauge(g) => Ok(g.clone()),
                    _ => Err(TelemetryError::KindMismatch { name: name.to_string() }),
                };
            }
            let g = Gauge(Arc::new(AtomicU64::new(0f64.to_bits())));
            entries.push((name.to_string(), Metric::Gauge(g.clone())));
            Ok(g)
        })
    }

    /// Registers (or re-opens) a histogram. Re-opening requires identical
    /// buckets.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::KindMismatch`] if `name` is already a different
    /// metric kind or a histogram with different buckets.
    pub fn histogram(&self, name: &str, buckets: Buckets) -> Result<Histogram, TelemetryError> {
        self.with_entries(|entries| {
            if let Some((_, m)) = entries.iter().find(|(n, _)| n == name) {
                return match m {
                    Metric::Histogram(h) if *h.buckets() == buckets => Ok(h.clone()),
                    _ => Err(TelemetryError::KindMismatch { name: name.to_string() }),
                };
            }
            let slots = buckets.bounds().len() + 1;
            let h = Histogram(Arc::new(HistogramInner {
                buckets,
                counts: (0..slots).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }));
            entries.push((name.to_string(), Metric::Histogram(h.clone())));
            Ok(h)
        })
    }

    /// Captures every metric's current value, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let mut entries: Vec<(String, MetricValue)> = self.with_entries(|metrics| {
            metrics
                .iter()
                .map(|(name, m)| {
                    let value = match m {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram {
                            bounds: h.buckets().bounds().to_vec(),
                            counts: h.counts(),
                            count: h.count(),
                            sum: h.sum(),
                        },
                    };
                    (name.clone(), value)
                })
                .collect()
        });
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Snapshot { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip_and_reopen() {
        let reg = Registry::new();
        let a = reg.counter("hits").unwrap();
        let b = reg.counter("hits").unwrap();
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(matches!(reg.snapshot().get("hits"), Some(MetricValue::Counter(3))));
    }

    #[test]
    fn gauge_set_and_high_water() {
        let reg = Registry::new();
        let g = reg.gauge("depth").unwrap();
        g.set(5.0);
        g.set_max(3.0);
        assert_eq!(g.get(), 5.0);
        g.set_max(9.0);
        assert_eq!(g.get(), 9.0);
    }

    #[test]
    fn histogram_buckets_fill_exactly() {
        let reg = Registry::new();
        let h = reg
            .histogram("lat", Buckets::explicit(vec![1.0, 2.0, 4.0]).unwrap())
            .unwrap();
        for x in [0.5, 1.0, 1.5, 3.0, 100.0, f64::NAN] {
            h.observe(x);
        }
        assert_eq!(h.counts(), vec![2, 1, 1, 2]);
        assert_eq!(h.count(), 6);
        assert!((h.sum() - 106.0).abs() < 1e-12);
    }

    #[test]
    fn kind_mismatch_is_typed() {
        let reg = Registry::new();
        reg.counter("x").unwrap();
        assert!(matches!(reg.gauge("x"), Err(TelemetryError::KindMismatch { .. })));
        assert!(matches!(
            reg.histogram("x", Buckets::linear(0.0, 1.0, 2).unwrap()),
            Err(TelemetryError::KindMismatch { .. })
        ));
        let h = reg.histogram("h", Buckets::linear(0.0, 1.0, 2).unwrap()).unwrap();
        // Re-opening with different buckets is a mismatch too.
        assert!(matches!(
            reg.histogram("h", Buckets::linear(0.0, 2.0, 2).unwrap()),
            Err(TelemetryError::KindMismatch { .. })
        ));
        drop(h);
    }

    #[test]
    fn bad_buckets_rejected() {
        assert!(Buckets::explicit(vec![]).is_err());
        assert!(Buckets::explicit(vec![1.0, 1.0]).is_err());
        assert!(Buckets::explicit(vec![1.0, f64::NAN]).is_err());
        assert!(Buckets::linear(0.0, 0.0, 3).is_err());
        assert!(Buckets::linear(0.0, 1.0, 0).is_err());
        assert!(Buckets::exponential(0.0, 2.0, 3).is_err());
        assert!(Buckets::exponential(1.0, 1.0, 3).is_err());
    }

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let b = Buckets::exponential(1.0, 2.0, 8).unwrap();
        let mut last = 0usize;
        for i in 0..1_000 {
            let x = i as f64 * 0.5;
            let idx = b.bucket_index(x);
            assert!(idx >= last);
            assert!(idx <= b.bounds().len());
            last = idx;
        }
        assert_eq!(b.bucket_index(f64::NAN), b.bounds().len());
        assert_eq!(b.bucket_index(f64::INFINITY), b.bounds().len());
        assert_eq!(b.bucket_index(f64::NEG_INFINITY), 0);
    }

    #[test]
    fn snapshot_sorted_by_name() {
        let reg = Registry::new();
        reg.counter("zeta").unwrap();
        reg.counter("alpha").unwrap();
        reg.gauge("mid").unwrap();
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.entries().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn local_histogram_flush_matches_direct_observation_bit_for_bit() {
        let buckets = Buckets::linear(0.0, 24.0, 7).unwrap();
        let reg = Registry::new();
        let direct = reg.histogram("direct", buckets.clone()).unwrap();
        let batched = reg.histogram("batched", buckets.clone()).unwrap();
        let mut acc = LocalHistogram::new(buckets);
        let samples = [0.0, 3.5, 24.0, 24.1, 167.9, 168.0, 1.0e9, f64::NAN, 0.1];
        for &x in &samples {
            direct.observe(x);
            acc.observe(x);
        }
        assert_eq!(acc.count(), samples.len() as u64);
        assert!(acc.flush_into(&batched));
        assert_eq!(acc.count(), 0, "flush clears the buffer");
        let snap = reg.snapshot();
        let (Some(MetricValue::Histogram { counts: cd, count: nd, sum: sd, .. }),
             Some(MetricValue::Histogram { counts: cb, count: nb, sum: sb, .. })) =
            (snap.get("direct"), snap.get("batched"))
        else {
            panic!("both metrics must be histograms");
        };
        assert_eq!(cd, cb);
        assert_eq!(nd, nb);
        assert_eq!(sd.to_bits(), sb.to_bits(), "f64 sum must match bit-for-bit");
    }

    #[test]
    fn local_histogram_observe_n_matches_repeated_observe_bit_for_bit() {
        let buckets = Buckets::linear(0.0, 24.0, 7).unwrap();
        let mut looped = LocalHistogram::new(buckets.clone());
        let mut batched = LocalHistogram::new(buckets);
        // Integer observations ≤ 168 in arbitrary interleavings: the
        // batched sum must be the exact same f64 as the loop's.
        let runs = [(0.0, 3_u64), (7.0, 1000), (168.0, 9), (24.0, 1), (3.0, 0), (1.0, 250_000)];
        for &(x, n) in &runs {
            for _ in 0..n {
                looped.observe(x);
            }
            batched.observe_n(x, n);
        }
        assert_eq!(looped.bucket_counts(), batched.bucket_counts());
        assert_eq!(looped.count(), batched.count());
        assert_eq!(looped.sum().to_bits(), batched.sum().to_bits());
    }

    #[test]
    fn local_histogram_refuses_mismatched_layout() {
        let reg = Registry::new();
        let h = reg.histogram("h", Buckets::linear(0.0, 1.0, 3).unwrap()).unwrap();
        let mut acc = LocalHistogram::new(Buckets::linear(0.0, 2.0, 3).unwrap());
        acc.observe(1.5);
        assert!(!acc.flush_into(&h));
        assert_eq!(h.count(), 0, "mismatched flush must not leak observations");
        assert_eq!(acc.count(), 1, "mismatched flush must not clear the buffer");
    }

    #[test]
    fn handles_are_shareable_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("par").unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4_000);
    }
}
