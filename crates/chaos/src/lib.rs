//! `chaos` — deterministic fault injection for the fleet simulation.
//!
//! A century-scale deployment will see every failure the paper warns
//! about, usually several at once: storms that black out a region's
//! gateways, backhaul providers that flap or sunset service without
//! notice (§3.3.2), hotspot markets that collapse under the federated
//! arm (§4.2), billing systems that eat a wallet top-up, and devices
//! that wedge or go byzantine in the field. This crate turns those into
//! a reproducible experiment:
//!
//! * [`FaultPlan`] — a time-ordered fault schedule, built once from a
//!   seed and replayed exactly.
//! * [`FaultPlanBuilder`] — Poisson-arrival fault generation over a
//!   [`FleetConfig`]'s horizon, scaled by an *intensity* knob in `[0, 1]`.
//!   Plans built at lower intensity are **nested subsets** of plans built
//!   at higher intensity from the same seed, which is what makes
//!   monotonicity metamorphic tests meaningful.
//! * [`FleetInjector`] — a [`FaultHook`] that replays a plan against a
//!   running [`FleetSim`] engine without touching the world's own event
//!   stream or randomness (injection is draw-free by construction).
//! * [`run_with_plan`] — build, run hooked, finalize: the chaos
//!   counterpart of [`FleetSim::run`]. With an empty plan the output is
//!   byte-identical to the fault-free run.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod geo;

use fleet::shard::{run_sharded_hooked, ShardError};
use fleet::sim::{ArmKind, Ev, FleetConfig, FleetReport, FleetSim};
use simcore::engine::{Ctx, FaultHook};
use simcore::error::ModelError;
use simcore::event::EventQueue;
use simcore::rng::Rng;
use simcore::snapshot::SnapshotError;
use simcore::time::{SimDuration, SimTime};

/// One kind of injected fault, with its target and magnitude.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Correlated regional outage (storm/grid): the whole arm's coverage
    /// is suppressed for `duration`.
    RegionalOutage {
        /// Target arm index.
        arm: usize,
        /// Outage length.
        duration: SimDuration,
    },
    /// The owned arm's backhaul link flaps out for `duration`.
    BackhaulFlap {
        /// Target arm index.
        arm: usize,
        /// Flap length.
        duration: SimDuration,
    },
    /// The backhaul provider sunsets service abruptly; the arm spends an
    /// emergency-recommissioning quarter dark.
    ProviderSunset {
        /// Target arm index.
        arm: usize,
    },
    /// The federated arm's hotspot market collapses, losing `fraction`
    /// of the audible census at once.
    HotspotCollapse {
        /// Target arm index.
        arm: usize,
        /// Fraction of hotspots removed, clamped to `[0, 1]`.
        fraction: f64,
    },
    /// A top-up/billing failure drains one device's prepaid wallet.
    WalletFailure {
        /// Target arm index.
        arm: usize,
        /// Target device index within the arm.
        device: usize,
    },
    /// A device's firmware wedges: it transmits nothing for `duration`.
    DeviceStuck {
        /// Target arm index.
        arm: usize,
        /// Target device index within the arm.
        device: usize,
        /// Wedged interval.
        duration: SimDuration,
    },
    /// A device goes byzantine: it transmits (and pays) but every
    /// reading is garbage for `duration`.
    DeviceByzantine {
        /// Target arm index.
        arm: usize,
        /// Target device index within the arm.
        device: usize,
        /// Garbage interval.
        duration: SimDuration,
    },
    /// A geometric storm disc (see [`geo`]) knocks one device out for
    /// `duration` — planned per affected device so replay, sharded
    /// routing and snapshot cursors need no geometry at injection time.
    StormKnockout {
        /// Target arm index.
        arm: usize,
        /// Target device index within the arm.
        device: usize,
        /// Knockout interval.
        duration: SimDuration,
    },
}

impl FaultKind {
    /// The global arm index this fault targets. Possibly out of range —
    /// plans can aim at arms a configuration lacks; those faults inject
    /// as skips. The sharded runner routes such strays to shard 0, whose
    /// injector skips them exactly as the serial injector would.
    pub fn arm(&self) -> usize {
        match *self {
            FaultKind::RegionalOutage { arm, .. }
            | FaultKind::BackhaulFlap { arm, .. }
            | FaultKind::ProviderSunset { arm }
            | FaultKind::HotspotCollapse { arm, .. }
            | FaultKind::WalletFailure { arm, .. }
            | FaultKind::DeviceStuck { arm, .. }
            | FaultKind::DeviceByzantine { arm, .. }
            | FaultKind::StormKnockout { arm, .. } => arm,
        }
    }
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fault {
    /// Injection time.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A time-ordered fault schedule. Build one with [`FaultPlanBuilder`] or
/// start [`empty`](FaultPlan::empty) and [`push`](FaultPlan::push) faults
/// by hand for targeted experiments.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with no faults: running it is byte-identical to not
    /// injecting at all.
    pub fn empty() -> Self {
        FaultPlan { faults: Vec::new() }
    }

    /// Builds a plan from an unordered fault list, sorting by time
    /// (stable: equal-time faults keep insertion order).
    pub fn from_faults(mut faults: Vec<Fault>) -> Self {
        faults.sort_by_key(|f| f.at);
        FaultPlan { faults }
    }

    /// Appends one fault, keeping the schedule time-ordered.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
        self.faults.sort_by_key(|f| f.at);
    }

    /// Scheduled faults in replay order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Per-injector candidate rates (events per arm-year at full intensity)
/// and magnitudes. The *intensity* argument of
/// [`build`](FaultPlanBuilder::build) thins the candidate set: a
/// candidate drawn with inclusion variate `u` joins the plan iff
/// `u < intensity`, so plans at increasing intensity from one seed are
/// nested supersets.
#[derive(Clone, Debug)]
pub struct FaultPlanBuilder {
    seed: u64,
    /// Regional outages per arm-year (any arm kind).
    pub outage_rate: f64,
    /// Outage length.
    pub outage_duration: SimDuration,
    /// Backhaul flaps per arm-year (owned arms).
    pub flap_rate: f64,
    /// Flap length.
    pub flap_duration: SimDuration,
    /// Abrupt provider sunsets per arm-year (owned arms).
    pub sunset_rate: f64,
    /// Hotspot-market collapses per arm-year (federated arms).
    pub collapse_rate: f64,
    /// Census fraction lost per collapse.
    pub collapse_fraction: f64,
    /// Wallet top-up failures per arm-year (federated arms).
    pub wallet_rate: f64,
    /// Firmware-wedge events per arm-year (any arm kind).
    pub stuck_rate: f64,
    /// Wedged interval.
    pub stuck_duration: SimDuration,
    /// Byzantine episodes per arm-year (any arm kind).
    pub byzantine_rate: f64,
    /// Garbage interval.
    pub byzantine_duration: SimDuration,
}

impl FaultPlanBuilder {
    /// A builder with every injector disabled; enable rates field by
    /// field for targeted schedules.
    pub fn quiet(seed: u64) -> Self {
        FaultPlanBuilder {
            seed,
            outage_rate: 0.0,
            outage_duration: SimDuration::from_weeks(3),
            flap_rate: 0.0,
            flap_duration: SimDuration::from_hours(36),
            sunset_rate: 0.0,
            collapse_rate: 0.0,
            collapse_fraction: 0.5,
            wallet_rate: 0.0,
            stuck_rate: 0.0,
            stuck_duration: SimDuration::from_weeks(4),
            byzantine_rate: 0.0,
            byzantine_duration: SimDuration::from_weeks(4),
        }
    }

    /// The storm-heavy preset: correlated outages, backhaul flaps and
    /// wedged firmware only. Every storm fault forces the affected path
    /// probability to zero (rather than scaling it), so with the
    /// simulation's common-random-numbers discipline weekly uptime is
    /// non-increasing in intensity — the preset the metamorphic
    /// monotonicity tests use.
    pub fn storm_heavy(seed: u64) -> Self {
        FaultPlanBuilder {
            outage_rate: 0.8,
            flap_rate: 2.0,
            stuck_rate: 0.5,
            ..Self::quiet(seed)
        }
    }

    /// The kitchen-sink preset: every injector enabled, §3's whole risk
    /// register at once.
    pub fn full(seed: u64) -> Self {
        FaultPlanBuilder {
            sunset_rate: 0.05,
            collapse_rate: 0.1,
            wallet_rate: 0.5,
            byzantine_rate: 0.3,
            ..Self::storm_heavy(seed)
        }
    }

    /// Builds the fault schedule for `cfg` at the given intensity.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidRate`] if `intensity` is outside `[0, 1]` or
    /// any rate/magnitude is negative or non-finite.
    pub fn build(&self, cfg: &FleetConfig, intensity: f64) -> Result<FaultPlan, ModelError> {
        if !intensity.is_finite() || !(0.0..=1.0).contains(&intensity) {
            return Err(ModelError::InvalidRate { what: "intensity", value: intensity });
        }
        for (what, value) in [
            ("outage_rate", self.outage_rate),
            ("flap_rate", self.flap_rate),
            ("sunset_rate", self.sunset_rate),
            ("collapse_rate", self.collapse_rate),
            ("wallet_rate", self.wallet_rate),
            ("stuck_rate", self.stuck_rate),
            ("byzantine_rate", self.byzantine_rate),
            ("collapse_fraction", self.collapse_fraction),
        ] {
            if !value.is_finite() || value < 0.0 {
                return Err(ModelError::InvalidRate { what, value });
            }
        }

        let root = Rng::seed_from(self.seed);
        let years = cfg.horizon.as_years_f64();
        let mut queue: EventQueue<FaultKind> = EventQueue::new();

        for (ai, arm) in cfg.arms.iter().enumerate() {
            let owned = matches!(arm.kind, ArmKind::Owned { .. });
            let devices = arm.devices;
            // Each injector owns a private stream keyed by arm, and draws
            // its full-rate candidate sequence (arrival gap, inclusion
            // variate, target) identically at every intensity. Inclusion
            // thins the sequence, so lower-intensity plans are nested
            // subsets of higher-intensity ones.
            let emit = |label: &str,
                            rate: f64,
                            queue: &mut EventQueue<FaultKind>,
                            mk: &dyn Fn(&mut Rng) -> FaultKind| {
                if rate <= 0.0 {
                    return;
                }
                // simlint: allow(R001, label is a closure param; every emit() call below passes a distinct string literal)
                let mut rng = root.split(label, ai as u64);
                let mut t_years = 0.0f64;
                loop {
                    // Poisson arrivals: exponential gaps at the full rate.
                    t_years += -(1.0 - rng.next_f64()).ln() / rate;
                    if t_years >= years {
                        break;
                    }
                    let include = rng.next_f64() < intensity;
                    let kind = mk(&mut rng);
                    if include {
                        let at = SimTime::ZERO + SimDuration::from_years_f64(t_years);
                        queue.schedule(at, kind);
                    }
                }
            };

            emit("outage", self.outage_rate, &mut queue, &|_| FaultKind::RegionalOutage {
                arm: ai,
                duration: self.outage_duration,
            });
            if owned {
                emit("flap", self.flap_rate, &mut queue, &|_| FaultKind::BackhaulFlap {
                    arm: ai,
                    duration: self.flap_duration,
                });
                emit("sunset", self.sunset_rate, &mut queue, &|_| FaultKind::ProviderSunset {
                    arm: ai,
                });
            } else {
                emit("collapse", self.collapse_rate, &mut queue, &|_| {
                    FaultKind::HotspotCollapse { arm: ai, fraction: self.collapse_fraction }
                });
                if devices > 0 {
                    emit("wallet", self.wallet_rate, &mut queue, &|rng| FaultKind::WalletFailure {
                        arm: ai,
                        device: rng.next_below(devices as u64) as usize,
                    });
                }
            }
            if devices > 0 {
                emit("stuck", self.stuck_rate, &mut queue, &|rng| FaultKind::DeviceStuck {
                    arm: ai,
                    device: rng.next_below(devices as u64) as usize,
                    duration: self.stuck_duration,
                });
                emit("byzantine", self.byzantine_rate, &mut queue, &|rng| {
                    FaultKind::DeviceByzantine {
                        arm: ai,
                        device: rng.next_below(devices as u64) as usize,
                        duration: self.byzantine_duration,
                    }
                });
            }
        }

        // The engine's event queue does the time-ordering (FIFO on ties),
        // exactly as the simulation itself would.
        let mut faults = Vec::with_capacity(queue.len());
        while let Some((at, kind)) = queue.pop() {
            faults.push(Fault { at, kind });
        }
        Ok(FaultPlan { faults })
    }
}

/// Replays a [`FaultPlan`] against a running [`FleetSim`] engine.
///
/// Use with [`simcore::engine::Engine::run_until_hooked`]; each fault
/// fires at its scheduled time, before any simulation event at the same
/// instant. Faults that target a missing arm/device or an arm of the
/// wrong kind are counted as skipped, not errors.
#[derive(Clone, Debug)]
pub struct FleetInjector {
    plan: FaultPlan,
    next: usize,
    applied: u64,
    skipped: u64,
}

impl FleetInjector {
    /// Wraps a plan for replay.
    pub fn new(plan: FaultPlan) -> Self {
        FleetInjector { plan, next: 0, applied: 0, skipped: 0 }
    }

    /// Wraps a plan with replay already advanced to `progress` — the
    /// snapshot-resume constructor. `progress.next` indexes into *this*
    /// plan's fault order (a stored value beyond the plan clamps to its
    /// end, leaving nothing to replay).
    pub fn with_progress(plan: FaultPlan, progress: fleet::snapshot::ChaosProgress) -> Self {
        let next = usize::try_from(progress.next).unwrap_or(plan.len()).min(plan.len());
        FleetInjector { plan, next, applied: progress.applied, skipped: progress.skipped }
    }

    /// Replay progress in snapshot form: the next fault index and the
    /// applied/skipped tallies. Stored by `fleet::snapshot` checkpoints
    /// and fed back through [`FleetInjector::with_progress`] on resume.
    pub fn progress(&self) -> fleet::snapshot::ChaosProgress {
        fleet::snapshot::ChaosProgress {
            next: self.next as u64,
            applied: self.applied,
            skipped: self.skipped,
        }
    }

    /// Faults successfully injected so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Faults whose target did not exist (wrong arm kind, index out of
    /// range).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

impl FaultHook<FleetSim> for FleetInjector {
    fn next_fault_at(&self) -> Option<SimTime> {
        self.plan.faults.get(self.next).map(|f| f.at)
    }

    fn fire(&mut self, now: SimTime, world: &mut FleetSim, _ctx: &mut Ctx<'_, Ev>) {
        let Some(fault) = self.plan.faults.get(self.next).copied() else { return };
        self.next += 1;
        let ok = match fault.kind {
            FaultKind::RegionalOutage { arm, duration } => {
                world.inject_regional_outage(arm, now, duration)
            }
            FaultKind::BackhaulFlap { arm, duration } => {
                world.inject_backhaul_flap(arm, now, duration)
            }
            FaultKind::ProviderSunset { arm } => world.inject_provider_sunset(arm, now),
            FaultKind::HotspotCollapse { arm, fraction } => {
                world.inject_hotspot_collapse(arm, now, fraction)
            }
            FaultKind::WalletFailure { arm, device } => {
                world.inject_wallet_failure(arm, now, device)
            }
            FaultKind::DeviceStuck { arm, device, duration } => {
                world.inject_device_stuck(arm, now, device, duration)
            }
            FaultKind::DeviceByzantine { arm, device, duration } => {
                world.inject_device_byzantine(arm, now, device, duration)
            }
            FaultKind::StormKnockout { arm, device, duration } => {
                world.inject_storm_knockout(arm, now, device, duration)
            }
        };
        if ok {
            self.applied += 1;
        } else {
            self.skipped += 1;
            world.note_chaos_skipped();
        }
    }
}

/// Runs `cfg` to its horizon with `plan` injected, and finalizes through
/// the same path as [`FleetSim::run`]. An [`empty`](FaultPlan::empty)
/// plan reproduces the fault-free run byte for byte (diary included).
pub fn run_with_plan(cfg: FleetConfig, plan: FaultPlan) -> FleetReport {
    let horizon = SimTime::ZERO + cfg.horizon;
    let mut engine = FleetSim::build(cfg);
    let mut injector = FleetInjector::new(plan);
    engine.run_until_hooked(horizon, &mut injector);
    FleetSim::into_report(engine, horizon)
}

/// [`run_with_plan`] split across `shards` worker threads — bit-identical
/// digest, same skip accounting.
///
/// Each fault is routed to the shard owning its target arm
/// ([`fleet::shard::ShardPlan::owner_of`]); faults aimed at arms the
/// configuration lacks go to shard 0, whose injector records the skip
/// just like the serial injector. Because the per-arm interleaving of
/// faults and simulation events is preserved within each shard (hooks
/// fire before tied events there too), the merged report digests
/// identically to the serial injected run for every plan and shard count.
///
/// # Errors
///
/// Returns [`ShardError::ZeroShards`] when `shards == 0`.
pub fn run_sharded_with_plan(
    cfg: FleetConfig,
    plan: FaultPlan,
    shards: usize,
) -> Result<FleetReport, ShardError> {
    run_sharded_hooked(cfg, shards, |si, splan| {
        let mine: Vec<Fault> = plan
            .faults()
            .iter()
            .copied()
            .filter(|f| splan.owner_of(f.kind.arm()).unwrap_or(0) == si)
            .collect();
        // `from_faults` sorts stably by time; the filtered subsequence is
        // already time-ordered, so replay order is the serial plan's.
        FleetInjector::new(FaultPlan::from_faults(mine))
    })
}

/// [`run_sharded_with_plan`] without the small-fleet serial fallback
/// (see [`fleet::shard::SERIAL_FALLBACK_DEVICES`]): always splits into
/// the requested shard count. The differential suites use this so small
/// test fleets still exercise the multi-shard fault routing.
///
/// # Errors
///
/// Returns [`ShardError::ZeroShards`] when `shards == 0`.
pub fn run_sharded_with_plan_forced(
    cfg: FleetConfig,
    plan: FaultPlan,
    shards: usize,
) -> Result<FleetReport, ShardError> {
    fleet::shard::run_sharded_hooked_forced(cfg, shards, |si, splan| {
        let mine: Vec<Fault> = plan
            .faults()
            .iter()
            .copied()
            .filter(|f| splan.owner_of(f.kind.arm()).unwrap_or(0) == si)
            .collect();
        FleetInjector::new(FaultPlan::from_faults(mine))
    })
}

/// Why a chaos-run resume failed: the snapshot was unusable, or the
/// shard request was invalid. Both are fail-closed — no partial world is
/// ever returned.
#[derive(Debug)]
pub enum ResumeError {
    /// The snapshot failed verification or decoding.
    Snapshot(SnapshotError),
    /// The sharded continuation request was invalid.
    Shard(ShardError),
}

impl core::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ResumeError::Snapshot(e) => write!(f, "resume failed: {e}"),
            ResumeError::Shard(e) => write!(f, "resume failed: {e}"),
        }
    }
}

impl std::error::Error for ResumeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResumeError::Snapshot(e) => Some(e),
            ResumeError::Shard(e) => Some(e),
        }
    }
}

impl From<SnapshotError> for ResumeError {
    fn from(e: SnapshotError) -> Self {
        ResumeError::Snapshot(e)
    }
}

impl From<ShardError> for ResumeError {
    fn from(e: ShardError) -> Self {
        ResumeError::Shard(e)
    }
}

/// Runs `cfg` under `plan` to the checkpoint boundary `at` and writes an
/// atomic snapshot (world state plus the injector's replay progress) to
/// `path`. Returns the engine and injector still positioned at `at`, so
/// the caller can keep running — checkpointing never perturbs the run.
///
/// # Errors
///
/// [`SnapshotError::Io`] on any filesystem failure.
pub fn checkpoint_with_plan(
    cfg: FleetConfig,
    plan: FaultPlan,
    at: SimTime,
    path: &std::path::Path,
) -> Result<(simcore::engine::Engine<FleetSim>, FleetInjector), SnapshotError> {
    let mut engine = FleetSim::build(cfg);
    let mut injector = FleetInjector::new(plan);
    engine.run_until_hooked(at, &mut injector);
    fleet::snapshot::write_checkpoint(path, &mut engine, injector.progress())?;
    Ok((engine, injector))
}

/// Resumes a chaos run from the snapshot at `path` and runs it serially
/// to the horizon. `cfg` and `plan` must be the configuration and the
/// *full serial* fault plan of the original run; replay continues from
/// the stored progress, so already-injected faults never fire twice. The
/// finished report digests bit-identically to the uninterrupted
/// [`run_with_plan`].
///
/// # Errors
///
/// Fail-closed [`SnapshotError`] on any snapshot defect.
pub fn resume_with_plan(
    path: &std::path::Path,
    cfg: FleetConfig,
    plan: FaultPlan,
) -> Result<FleetReport, SnapshotError> {
    let resumed = fleet::snapshot::resume_from(path, cfg)?;
    let mut injector = FleetInjector::with_progress(plan, resumed.chaos);
    Ok(resumed.run_to_horizon_hooked(&mut injector))
}

/// [`resume_with_plan`] continued across `shards` worker threads —
/// bit-identical digest to the uninterrupted serial run. Small fleets
/// take the serial fallback; [`resume_sharded_with_plan_forced`]
/// bypasses it.
///
/// # Errors
///
/// [`ResumeError`] wrapping the snapshot or shard failure.
pub fn resume_sharded_with_plan(
    path: &std::path::Path,
    cfg: FleetConfig,
    plan: FaultPlan,
    shards: usize,
) -> Result<FleetReport, ResumeError> {
    resume_sharded_inner(path, cfg, plan, shards, false)
}

/// [`resume_sharded_with_plan`] without the small-fleet serial fallback.
///
/// # Errors
///
/// [`ResumeError`] wrapping the snapshot or shard failure.
pub fn resume_sharded_with_plan_forced(
    path: &std::path::Path,
    cfg: FleetConfig,
    plan: FaultPlan,
    shards: usize,
) -> Result<FleetReport, ResumeError> {
    resume_sharded_inner(path, cfg, plan, shards, true)
}

fn resume_sharded_inner(
    path: &std::path::Path,
    cfg: FleetConfig,
    plan: FaultPlan,
    shards: usize,
    force: bool,
) -> Result<FleetReport, ResumeError> {
    let resumed = fleet::snapshot::resume_from(path, cfg)?;
    let serial_next = usize::try_from(resumed.chaos.next).unwrap_or(plan.len()).min(plan.len());
    // Each shard replays the plan subsequence targeting its arms; its
    // replay cursor starts past the prefix of that subsequence the serial
    // run had already fired (faults with serial index < `next`). The
    // shard tallies restart at zero — the cumulative pre-checkpoint
    // applied/skipped counts live in the world's restored chaos counters,
    // exactly as in an uninterrupted sharded run.
    let make_hook = |si: usize, splan: &fleet::shard::ShardPlan| {
        let mut mine = Vec::new();
        let mut mine_next = 0usize;
        for (idx, f) in plan.faults().iter().enumerate() {
            if splan.owner_of(f.kind.arm()).unwrap_or(0) == si {
                if idx < serial_next {
                    mine_next += 1;
                }
                mine.push(*f);
            }
        }
        FleetInjector::with_progress(
            FaultPlan::from_faults(mine),
            fleet::snapshot::ChaosProgress { next: mine_next as u64, applied: 0, skipped: 0 },
        )
    };
    let report = if force {
        fleet::shard::run_resumed_hooked_forced(resumed.engine, shards, make_hook)?
    } else {
        fleet::shard::run_resumed_hooked(resumed.engine, shards, make_hook)?
    };
    Ok(report)
}

/// Convenience: the paper experiment under a storm-heavy plan at the
/// given intensity.
///
/// # Errors
///
/// Propagates [`FaultPlanBuilder::build`] validation failures.
pub fn paper_experiment_under_storms(
    seed: u64,
    intensity: f64,
) -> Result<FleetReport, ModelError> {
    let cfg = FleetConfig::paper_experiment(seed);
    let plan = FaultPlanBuilder::storm_heavy(seed ^ 0x5eed_c4a0).build(&cfg, intensity)?;
    Ok(run_with_plan(cfg, plan))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> FleetConfig {
        FleetConfig::paper_experiment(seed)
    }

    #[test]
    fn zero_intensity_plan_is_empty() {
        let plan = FaultPlanBuilder::full(1).build(&cfg(1), 0.0).unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let a = FaultPlanBuilder::full(7).build(&cfg(1), 0.6).unwrap();
        let b = FaultPlanBuilder::full(7).build(&cfg(1), 0.6).unwrap();
        assert_eq!(a, b);
        let c = FaultPlanBuilder::full(8).build(&cfg(1), 0.6).unwrap();
        assert_ne!(a, c, "different seeds should schedule different faults");
    }

    #[test]
    fn plans_nest_by_intensity() {
        let b = FaultPlanBuilder::full(3);
        let lo = b.build(&cfg(1), 0.25).unwrap();
        let mid = b.build(&cfg(1), 0.5).unwrap();
        let hi = b.build(&cfg(1), 1.0).unwrap();
        assert!(lo.len() < mid.len() && mid.len() < hi.len());
        for plan in [&lo, &mid] {
            for f in plan.faults() {
                assert!(hi.faults().contains(f), "{f:?} missing at full intensity");
            }
        }
        for f in lo.faults() {
            assert!(mid.faults().contains(f), "{f:?} missing at mid intensity");
        }
    }

    #[test]
    fn plan_is_time_ordered_and_in_horizon() {
        let c = cfg(1);
        let plan = FaultPlanBuilder::full(5).build(&c, 1.0).unwrap();
        assert!(!plan.is_empty());
        let horizon = SimTime::ZERO + c.horizon;
        let mut last = SimTime::ZERO;
        for f in plan.faults() {
            assert!(f.at >= last);
            assert!(f.at < horizon);
            last = f.at;
        }
    }

    #[test]
    fn invalid_inputs_are_typed_errors() {
        let b = FaultPlanBuilder::full(1);
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            match b.build(&cfg(1), bad) {
                Err(ModelError::InvalidRate { what, .. }) => assert_eq!(what, "intensity"),
                other => panic!("expected InvalidRate, got {other:?}"),
            }
        }
        let mut broken = FaultPlanBuilder::full(1);
        broken.stuck_rate = f64::NAN;
        match broken.build(&cfg(1), 0.5) {
            Err(ModelError::InvalidRate { what, .. }) => assert_eq!(what, "stuck_rate"),
            other => panic!("expected InvalidRate, got {other:?}"),
        }
    }

    #[test]
    fn every_planned_fault_applies_to_the_paper_experiment() {
        let c = cfg(4);
        let plan = FaultPlanBuilder::full(4).build(&c, 1.0).unwrap();
        let n = plan.len() as u64;
        assert!(n > 50, "full intensity over 50 years should be busy, got {n}");
        let report = run_with_plan(c, plan);
        let injected: u64 = report.arms.iter().map(|a| a.faults_injected).sum();
        assert_eq!(injected, n, "plan targets are built from the config; none may miss");
        let chaos_lines = report
            .diary
            .render()
            .lines()
            .filter(|l| l.contains("chaos:"))
            .count() as u64;
        assert_eq!(chaos_lines, n);
    }

    #[test]
    fn empty_plan_reproduces_the_fault_free_run_exactly() {
        let plain = FleetSim::run(cfg(9));
        let hooked = run_with_plan(cfg(9), FaultPlan::empty());
        assert_eq!(plain.diary.render(), hooked.diary.render());
        assert_eq!(plain.events_processed, hooked.events_processed);
        assert_eq!(
            plain.digest(),
            hooked.digest(),
            "a zero-fault chaos run must digest identically to a plain run"
        );
        for (a, b) in plain.arms.iter().zip(&hooked.arms) {
            assert_eq!(a.weeks_up, b.weeks_up);
            assert_eq!(a.readings_delivered, b.readings_delivered);
            assert_eq!(a.faults_injected, 0);
            assert_eq!(b.faults_injected, 0);
        }
    }

    #[test]
    fn storms_cost_uptime() {
        let calm = paper_experiment_under_storms(11, 0.0).unwrap();
        let wild = paper_experiment_under_storms(11, 1.0).unwrap();
        for (c, w) in calm.arms.iter().zip(&wild.arms) {
            assert!(
                w.weeks_up < c.weeks_up,
                "{}: storms should cost weeks ({} vs {})",
                w.name,
                w.weeks_up,
                c.weeks_up
            );
        }
    }

    #[test]
    fn misaimed_faults_are_skipped_not_fatal() {
        let c = cfg(2);
        let horizon = SimTime::ZERO + c.horizon;
        let plan = FaultPlan::from_faults(vec![
            Fault {
                at: SimTime::from_years(1),
                kind: FaultKind::HotspotCollapse { arm: 0, fraction: 0.5 }, // arm 0 is owned
            },
            Fault {
                at: SimTime::from_years(2),
                kind: FaultKind::RegionalOutage { arm: 99, duration: SimDuration::from_weeks(1) },
            },
            Fault {
                at: SimTime::from_years(3),
                kind: FaultKind::BackhaulFlap { arm: 0, duration: SimDuration::from_hours(12) },
            },
        ]);
        let mut engine = FleetSim::build(c);
        let mut injector = FleetInjector::new(plan);
        engine.run_until_hooked(horizon, &mut injector);
        assert_eq!(injector.applied(), 1);
        assert_eq!(injector.skipped(), 2);
        let report = FleetSim::into_report(engine, horizon);
        let injected: u64 = report.arms.iter().map(|a| a.faults_injected).sum();
        assert_eq!(injected, 1);
        // Both outcomes are ledgered in the metric snapshot too.
        use telemetry::MetricValue;
        assert_eq!(report.metrics.get("chaos.applied"), Some(&MetricValue::Counter(1)));
        assert_eq!(report.metrics.get("chaos.skipped"), Some(&MetricValue::Counter(2)));
    }

    #[test]
    fn hand_built_plans_stay_sorted() {
        let mut plan = FaultPlan::empty();
        plan.push(Fault {
            at: SimTime::from_years(5),
            kind: FaultKind::ProviderSunset { arm: 0 },
        });
        plan.push(Fault {
            at: SimTime::from_years(1),
            kind: FaultKind::ProviderSunset { arm: 0 },
        });
        assert_eq!(plan.faults()[0].at, SimTime::from_years(1));
        assert_eq!(plan.len(), 2);
    }

    fn temp_snapshot(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("chaos-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn injector_progress_roundtrip() {
        let plan = FaultPlanBuilder::full(5).build(&cfg(5), 1.0).unwrap();
        let mut a = FleetInjector::new(plan.clone());
        a.next = 3;
        a.applied = 2;
        a.skipped = 1;
        let b = FleetInjector::with_progress(plan.clone(), a.progress());
        assert_eq!(b.progress(), a.progress());
        // A stored cursor beyond the plan clamps to its end.
        let over = fleet::snapshot::ChaosProgress { next: u64::MAX, applied: 0, skipped: 0 };
        let clamped = FleetInjector::with_progress(plan.clone(), over);
        assert_eq!(clamped.progress().next, plan.len() as u64);
    }

    #[test]
    fn chaos_checkpoint_resume_matches_uninterrupted() {
        let plan = FaultPlanBuilder::full(77).build(&cfg(77), 1.0).unwrap();
        let baseline = run_with_plan(cfg(77), plan.clone());
        let path = temp_snapshot("serial-resume.snap");
        let at = SimTime::from_years(10);
        let (engine, injector) = checkpoint_with_plan(cfg(77), plan.clone(), at, &path).unwrap();
        assert!(injector.progress().next > 0, "a decade of full chaos fires faults");
        drop(engine);
        let report = resume_with_plan(&path, cfg(77), plan).unwrap();
        assert_eq!(report.digest(), baseline.digest());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn chaos_checkpoint_resume_sharded_matches_uninterrupted() {
        let plan = FaultPlanBuilder::storm_heavy(78).build(&cfg(78), 1.0).unwrap();
        let baseline = run_with_plan(cfg(78), plan.clone());
        let path = temp_snapshot("sharded-resume.snap");
        let at = SimTime::from_years(25);
        let _ = checkpoint_with_plan(cfg(78), plan.clone(), at, &path).unwrap();
        let report = resume_sharded_with_plan_forced(&path, cfg(78), plan, 2).unwrap();
        assert_eq!(report.digest(), baseline.digest());
        assert_eq!(report.events_processed, baseline.events_processed);
        std::fs::remove_file(&path).unwrap();
    }
}
