//! Geometric chaos: storms with a footprint instead of an arm scope.
//!
//! [`FaultKind::RegionalOutage`](crate::FaultKind::RegionalOutage) takes
//! a whole arm down — the right model for a backhaul or grid failure,
//! but weather is spatial: a storm cell has a center and a radius, and
//! only the devices underneath it suffer. [`GeoStormBuilder`] plans that
//! geometry deterministically: per arm, Poisson storm arrivals draw a
//! center uniformly over the arm's district
//! ([`fleet::geometry::FleetGeometry`]), and the storm disc selects its
//! victims through the arm's [`SpatialGrid`] — an O(candidates) query,
//! not an O(devices) scan — expanding at *plan-build time* into one
//! [`FaultKind::StormKnockout`] per affected device. The injector,
//! sharded fault routing, and snapshot replay cursor therefore need no
//! geometry at all: geometric chaos inherits CRN discipline and
//! bit-identical snapshot/resume from the existing plan machinery.
//!
//! The same nesting contract as [`FaultPlanBuilder`](crate::FaultPlanBuilder)
//! holds: every candidate storm draws its arrival gap, inclusion variate
//! and center at full rate regardless of intensity, and the inclusion
//! variate alone thins the plan — so lower-intensity plans are exact
//! subsets of higher-intensity ones and the storm-uptime monotonicity
//! metamorphic property is meaningful. Knockouts force transmit silence
//! (max-merged stuck-until), so more storms can only cost uptime.

use fleet::geometry::FleetGeometry;
use fleet::sim::FleetConfig;
use net::grid::SpatialGrid;
use net::topology::Point;
use simcore::error::ModelError;
use simcore::event::EventQueue;
use simcore::rng::Rng;
use simcore::time::{SimDuration, SimTime};

use crate::{Fault, FaultKind, FaultPlan};

/// Plans seeded geometric storms over a fleet's device layout.
#[derive(Clone, Debug)]
pub struct GeoStormBuilder {
    seed: u64,
    /// Storm cells per arm-year at full intensity.
    pub storm_rate: f64,
    /// Storm disc radius (m).
    pub radius_m: f64,
    /// How long a knocked-out device stays silent.
    pub duration: SimDuration,
}

impl GeoStormBuilder {
    /// City defaults: two storm cells per arm-year, a 400 m disc, and a
    /// three-day knockout (downed poles wait for a truck roll).
    pub fn city(seed: u64) -> Self {
        GeoStormBuilder {
            seed,
            storm_rate: 2.0,
            radius_m: 400.0,
            duration: SimDuration::from_hours(72),
        }
    }

    /// Builds the storm schedule for `cfg` over `geometry` at the given
    /// intensity. `geometry` must come from
    /// [`FleetGeometry::for_config`] on the same `cfg` (arm/device
    /// counts must line up; extra geometry arms are ignored).
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidRate`] if `intensity` is outside `[0, 1]`,
    /// or the rate or radius is negative or non-finite.
    pub fn build(
        &self,
        cfg: &FleetConfig,
        geometry: &FleetGeometry,
        intensity: f64,
    ) -> Result<FaultPlan, ModelError> {
        if !intensity.is_finite() || !(0.0..=1.0).contains(&intensity) {
            return Err(ModelError::InvalidRate { what: "intensity", value: intensity });
        }
        for (what, value) in [("storm_rate", self.storm_rate), ("radius_m", self.radius_m)] {
            if !value.is_finite() || value < 0.0 {
                return Err(ModelError::InvalidRate { what, value });
            }
        }

        let root = Rng::seed_from(self.seed);
        let years = cfg.horizon.as_years_f64();
        let mut queue: EventQueue<FaultKind> = EventQueue::new();
        let mut victims: Vec<u32> = Vec::new();

        if self.storm_rate > 0.0 {
            for (ai, arm_geo) in geometry.arms.iter().enumerate().take(cfg.arms.len()) {
                let grid: SpatialGrid = arm_geo.grid(self.radius_m.max(1.0));
                let mut rng = root.split("geo-storm", ai as u64);
                let mut t_years = 0.0f64;
                loop {
                    // Poisson arrivals: exponential gaps at the full rate.
                    t_years += -(1.0 - rng.next_f64()).ln() / self.storm_rate;
                    if t_years >= years {
                        break;
                    }
                    let include = rng.next_f64() < intensity;
                    // The center is drawn at every intensity, included or
                    // not, so thinning preserves the nested-subset
                    // contract.
                    let center = Point::new(
                        rng.next_f64() * arm_geo.side_m,
                        rng.next_f64() * arm_geo.side_m,
                    );
                    if !include {
                        continue;
                    }
                    let at = SimTime::ZERO + SimDuration::from_years_f64(t_years);
                    // Victim selection is draw-free: a pure grid query in
                    // ascending device order (FIFO ties in the queue keep
                    // that order in the plan).
                    grid.within_into(center, self.radius_m, &mut victims);
                    for &device in &victims {
                        queue.schedule(
                            at,
                            FaultKind::StormKnockout {
                                arm: ai,
                                device: device as usize,
                                duration: self.duration,
                            },
                        );
                    }
                }
            }
        }

        let mut faults = Vec::with_capacity(queue.len());
        while let Some((at, kind)) = queue.pop() {
            faults.push(Fault { at, kind });
        }
        Ok(FaultPlan::from_faults(faults))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{checkpoint_with_plan, resume_with_plan, run_with_plan};
    use fleet::sim::FleetSim;

    fn cfg(seed: u64) -> FleetConfig {
        FleetConfig::paper_experiment(seed)
    }

    fn city_plan(seed: u64, intensity: f64) -> FaultPlan {
        let c = cfg(seed);
        let geo = FleetGeometry::for_config(&c);
        GeoStormBuilder::city(seed ^ 0x9e0_57a3)
            .build(&c, &geo, intensity)
            .unwrap()
    }

    #[test]
    fn plans_are_deterministic_and_nested() {
        let a = city_plan(5, 0.5);
        let b = city_plan(5, 0.5);
        assert_eq!(a, b);
        let hi = city_plan(5, 1.0);
        assert!(!hi.is_empty(), "50 years of storms should hit someone");
        assert!(a.len() < hi.len());
        for f in a.faults() {
            assert!(hi.faults().contains(f), "{f:?} missing at full intensity");
        }
        assert!(city_plan(5, 0.0).is_empty());
    }

    #[test]
    fn storms_only_hit_devices_inside_the_disc() {
        // Rebuild the geometry and verify each planned knockout's victim
        // is within radius of *some* storm draw — by brute force over a
        // tiny radius that cannot cover a whole district.
        let c = cfg(3);
        let geo = FleetGeometry::for_config(&c);
        let mut builder = GeoStormBuilder::city(11);
        builder.radius_m = 30.0;
        let plan = builder.build(&c, &geo, 1.0).unwrap();
        for f in plan.faults() {
            let FaultKind::StormKnockout { arm, device, duration } = f.kind else {
                panic!("geo plans contain only storm knockouts, got {:?}", f.kind);
            };
            assert_eq!(duration, builder.duration);
            assert!(arm < c.arms.len());
            assert!(device < geo.arms[arm].devices.len());
        }
    }

    #[test]
    fn storm_knockouts_apply_and_are_diarised() {
        let c = cfg(7);
        let plan = city_plan(7, 1.0);
        let n = plan.len() as u64;
        assert!(n > 0);
        let report = run_with_plan(c, plan);
        let injected: u64 = report.arms.iter().map(|a| a.faults_injected).sum();
        assert_eq!(injected, n, "every planned knockout targets a real device");
        let knockout_lines = report
            .diary
            .render()
            .lines()
            .filter(|l| l.contains("storm knockout"))
            .count() as u64;
        assert_eq!(knockout_lines, n);
    }

    #[test]
    fn zero_intensity_is_a_noop() {
        let plain = FleetSim::run(cfg(9));
        let stormed = run_with_plan(cfg(9), city_plan(9, 0.0));
        assert_eq!(plain.digest(), stormed.digest());
    }

    #[test]
    fn uptime_is_monotone_in_storm_intensity() {
        let run = |intensity: f64| {
            let report = run_with_plan(cfg(13), city_plan(13, intensity));
            report.arms.iter().map(|a| a.weeks_up).sum::<u64>()
        };
        let calm = run(0.0);
        let mid = run(0.5);
        let wild = run(1.0);
        assert!(mid <= calm, "mid {mid} calm {calm}");
        assert!(wild <= mid, "wild {wild} mid {mid}");
        assert!(wild < calm, "full-intensity storms must cost something");
    }

    #[test]
    fn mid_storm_resume_is_bit_identical() {
        let plan = city_plan(21, 1.0);
        assert!(plan.len() > 2, "need storms on both sides of the checkpoint");
        // Checkpoint *between* two knockouts of the same storm cluster if
        // possible — any interior fault time works: the replay cursor
        // carries exact progress.
        let mid = plan.faults()[plan.len() / 2].at;
        let baseline = run_with_plan(cfg(21), plan.clone());
        let dir = std::env::temp_dir().join("chaos-geo-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mid-storm.snap");
        let _ = checkpoint_with_plan(cfg(21), plan.clone(), mid, &path).unwrap();
        let resumed = resume_with_plan(&path, cfg(21), plan).unwrap();
        assert_eq!(resumed.digest(), baseline.digest());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn invalid_inputs_are_typed_errors() {
        let c = cfg(1);
        let geo = FleetGeometry::for_config(&c);
        let b = GeoStormBuilder::city(1);
        for bad in [-0.1, 1.5, f64::NAN] {
            assert!(matches!(
                b.build(&c, &geo, bad),
                Err(ModelError::InvalidRate { what: "intensity", .. })
            ));
        }
        let mut broken = GeoStormBuilder::city(1);
        broken.radius_m = f64::NAN;
        assert!(matches!(
            broken.build(&c, &geo, 1.0),
            Err(ModelError::InvalidRate { what: "radius_m", .. })
        ));
    }
}
