//! Fixture-driven integration tests for the simlint rule set.
//!
//! Each rule has one positive fixture (must fire) and one negative
//! fixture (must stay silent) under `tests/fixtures/`. Fixtures are
//! linted via [`simlint::rules::check_file`] with an explicit crate name
//! and `is_test_file = false`, because on disk they live under a
//! `tests/` directory (which the workspace walk deliberately skips and
//! the classifier would otherwise exempt).
//!
//! The tail of the suite drives the real binary via
//! `CARGO_BIN_EXE_simlint`: a seeded violation must produce exit code 1
//! and a `file:line: [RULE]` finding (the PR's acceptance criterion),
//! and `--workspace` on the actual tree must exit 0.

#![allow(clippy::unwrap_used, clippy::expect_used)] // Test-only target.

use simlint::rules::{check_file, FileReport};
use std::path::Path;
use std::process::Command;

/// Reads a fixture from `tests/fixtures/`.
fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

/// Lints a fixture as non-test code belonging to `crate_name`.
fn lint_as(name: &str, crate_name: &str) -> FileReport {
    check_file(name, crate_name, &fixture(name), false)
}

fn rules_fired(report: &FileReport) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

// ---- D001: no HashMap/HashSet in digest-feeding crates -----------------

#[test]
fn d001_fires_on_hash_containers_in_digest_crates() {
    let r = lint_as("d001_pos.rs", "simcore");
    assert!(
        r.findings.iter().filter(|f| f.rule == "D001").count() >= 2,
        "expected HashMap and HashSet findings, got {:?}",
        r.findings
    );
    assert!(r.findings.iter().all(|f| f.rule == "D001"));
}

#[test]
fn d001_scopes_to_digest_feeding_crates() {
    // simlint itself never touches simulation state and is out of scope.
    let r = lint_as("d001_pos.rs", "simlint");
    assert!(rules_fired(&r).is_empty(), "got {:?}", r.findings);
}

#[test]
fn d001_silent_on_ordered_containers() {
    let r = lint_as("d001_neg.rs", "simcore");
    assert!(rules_fired(&r).is_empty(), "got {:?}", r.findings);
}

// ---- D002: no wall-clock reads outside the profiling allowlist ---------

#[test]
fn d002_fires_on_wall_clock_in_sim_crates() {
    let r = lint_as("d002_pos.rs", "simcore");
    let fired = rules_fired(&r);
    assert!(fired.iter().filter(|&&x| x == "D002").count() >= 2, "got {:?}", r.findings);
}

#[test]
fn d002_allows_the_bench_crate() {
    let r = lint_as("d002_pos.rs", "bench");
    assert!(r.findings.iter().all(|f| f.rule != "D002"), "got {:?}", r.findings);
}

#[test]
fn d002_silent_on_sim_time() {
    let r = lint_as("d002_neg.rs", "simcore");
    assert!(rules_fired(&r).is_empty(), "got {:?}", r.findings);
}

// ---- D003: no OS entropy / ambient RNG ---------------------------------

#[test]
fn d003_fires_on_ambient_randomness() {
    let r = lint_as("d003_pos.rs", "simcore");
    let d003 = r.findings.iter().filter(|f| f.rule == "D003").count();
    // thread_rng, the rand:: path, and RandomState all fire.
    assert!(d003 >= 3, "got {:?}", r.findings);
}

#[test]
fn d003_silent_on_seeded_simcore_rng() {
    let r = lint_as("d003_neg.rs", "simcore");
    assert!(rules_fired(&r).is_empty(), "got {:?}", r.findings);
}

// ---- D004: no indexed devices[…] access in digest-feeding crates -------

#[test]
fn d004_fires_on_indexed_devices_access() {
    let r = lint_as("d004_pos.rs", "fleet");
    let d004 = r.findings.iter().filter(|f| f.rule == "D004").count();
    // The write and the read both fire.
    assert_eq!(d004, 2, "got {:?}", r.findings);
}

#[test]
fn d004_scopes_to_digest_feeding_crates() {
    // simlint itself never touches simulation state and is out of scope.
    let r = lint_as("d004_pos.rs", "simlint");
    assert!(rules_fired(&r).is_empty(), "got {:?}", r.findings);
}

#[test]
fn d004_silent_on_store_accessors_and_other_names() {
    let r = lint_as("d004_neg.rs", "fleet");
    assert!(rules_fired(&r).is_empty(), "got {:?}", r.findings);
}

#[test]
fn d004_pragma_waives_a_local_slice() {
    // The escape hatch for genuinely local `devices` slices (e.g. the
    // mesh model's radio positions) — a trailing pragma with a reason.
    let src = "pub fn f(devices: &[P], a: usize) -> f64 {\n    devices[a].x // simlint: allow(D004, local position slice, not the fleet DeviceStore)\n}\n";
    let r = check_file("m.rs", "net", src, false);
    assert!(rules_fired(&r).is_empty(), "got {:?}", r.findings);
    assert_eq!(r.allowed, 1);
}

// ---- P001: no unwrap/expect/panic!/todo! in non-test code --------------

#[test]
fn p001_fires_on_each_panic_form() {
    let r = lint_as("p001_pos.rs", "simcore");
    let p001 = r.findings.iter().filter(|f| f.rule == "P001").count();
    // unwrap, expect, panic!, todo!
    assert_eq!(p001, 4, "got {:?}", r.findings);
}

#[test]
fn p001_silent_on_handled_fallbacks() {
    let r = lint_as("p001_neg.rs", "simcore");
    assert!(rules_fired(&r).is_empty(), "got {:?}", r.findings);
}

// ---- F001: no float == / partial_cmp chains ----------------------------

#[test]
fn f001_fires_on_partial_cmp_and_float_equality() {
    let r = lint_as("f001_pos.rs", "simcore");
    let f001 = r.findings.iter().filter(|f| f.rule == "F001").count();
    // partial_cmp, `== 0.5`, `!= 1.0`
    assert_eq!(f001, 3, "got {:?}", r.findings);
}

#[test]
fn f001_silent_on_total_cmp_and_integer_compares() {
    let r = lint_as("f001_neg.rs", "simcore");
    assert!(rules_fired(&r).is_empty(), "got {:?}", r.findings);
}

// ---- Pragma handling ---------------------------------------------------

#[test]
fn valid_pragmas_waive_and_are_counted() {
    let r = lint_as("pragma_ok.rs", "simcore");
    assert!(rules_fired(&r).is_empty(), "got {:?}", r.findings);
    // Two D002 waivers (trailing + standalone) and one P001 waiver.
    assert_eq!(r.allowed, 3, "got allowed = {}", r.allowed);
}

#[test]
fn malformed_pragmas_are_sl000_and_do_not_waive() {
    let r = lint_as("pragma_bad.rs", "simcore");
    let fired = rules_fired(&r);
    assert_eq!(fired.iter().filter(|&&x| x == "SL000").count(), 2, "got {:?}", r.findings);
    // The broken pragma must not waive the unwrap underneath it.
    assert!(fired.contains(&"P001"), "got {:?}", r.findings);
    assert_eq!(r.allowed, 0);
}

// ---- False-positive regressions ----------------------------------------

#[test]
fn trigger_tokens_in_strings_and_comments_never_fire() {
    let r = lint_as("strings_comments.rs", "simcore");
    assert!(rules_fired(&r).is_empty(), "got {:?}", r.findings);
}

#[test]
fn cfg_test_regions_are_exempt() {
    let r = lint_as("cfg_test.rs", "simcore");
    assert!(rules_fired(&r).is_empty(), "got {:?}", r.findings);
}

#[test]
fn same_file_as_test_file_is_fully_exempt() {
    // Whole-file exemption (files under tests/ compile with cfg(test)).
    let r = check_file("p001_pos.rs", "simcore", &fixture("p001_pos.rs"), true);
    assert!(r.findings.is_empty(), "got {:?}", r.findings);
}

// ---- Findings are ordered and rendered for the verify gate -------------

#[test]
fn findings_sort_by_line_and_render_with_location() {
    let r = lint_as("p001_pos.rs", "simcore");
    let lines: Vec<u32> = r.findings.iter().map(|f| f.line).collect();
    let mut sorted = lines.clone();
    sorted.sort_unstable();
    assert_eq!(lines, sorted);
    let rendered = r.findings[0].render();
    assert!(
        rendered.starts_with("p001_pos.rs:") && rendered.contains("[P001]"),
        "got {rendered}"
    );
}

// ---- The real binary ---------------------------------------------------

/// Copies a fixture into `CARGO_TARGET_TMPDIR` (whose path has no `tests`
/// component, so the binary lints it as non-test code) and returns the
/// new path.
fn stage(fixture_name: &str, as_name: &str) -> std::path::PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("simlint_fixtures");
    std::fs::create_dir_all(&dir).expect("create tmp fixture dir");
    let dst = dir.join(as_name);
    std::fs::write(&dst, fixture(fixture_name)).expect("stage fixture");
    dst
}

#[test]
fn binary_exits_nonzero_with_file_line_findings_on_violation() {
    let staged = stage("p001_pos.rs", "p001_seeded.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .arg(&staged)
        .output()
        .expect("run simlint");
    assert_eq!(out.status.code(), Some(1), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("p001_seeded.rs:"), "stdout: {stdout}");
    assert!(stdout.contains("[P001]"), "stdout: {stdout}");
    // file:LINE: — the location is machine-greppable.
    assert!(stdout.lines().any(|l| l.contains(":4: [P001]")), "stdout: {stdout}");
}

#[test]
fn binary_emits_json_findings() {
    let staged = stage("f001_pos.rs", "f001_seeded.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .arg("--json")
        .arg(&staged)
        .output()
        .expect("run simlint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"findings\":["), "stdout: {stdout}");
    assert!(stdout.contains("\"rule\":\"F001\""), "stdout: {stdout}");
    assert!(stdout.contains("\"files_scanned\":1"), "stdout: {stdout}");
}

#[test]
fn binary_exits_zero_on_clean_file() {
    let staged = stage("p001_neg.rs", "clean.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .arg(&staged)
        .output()
        .expect("run simlint");
    assert_eq!(out.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn binary_exits_two_on_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_simlint")).output().expect("run simlint");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("nothing to lint"));
}

#[test]
fn workspace_tree_is_clean() {
    // The acceptance criterion: the shipped tree has zero unpragma'd
    // findings. `--root` points two levels up from this crate.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .arg("--workspace")
        .arg("--root")
        .arg(&root)
        .output()
        .expect("run simlint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "findings:\n{stdout}");
    assert!(stdout.contains("0 finding(s)"), "stdout: {stdout}");
}
