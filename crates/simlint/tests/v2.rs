//! Integration tests for the v2 flow-aware rules: R001 (stream-key
//! stability), R002 (cross-file chain collisions + the STREAMS.md
//! registry), R003 (digest-purity taint) and R004 (stale pragmas).
//!
//! Rule behavior is checked through [`simlint::rules::check_file`] on the
//! fixture corpus; the registry, baseline, and `--streams` workflows are
//! checked end-to-end by driving the real binary over throwaway
//! workspaces built under `CARGO_TARGET_TMPDIR`.

#![allow(clippy::unwrap_used, clippy::expect_used)] // Test-only target.

use simlint::rules::{check_file, FileReport};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

fn lint_as(name: &str, crate_name: &str) -> FileReport {
    check_file(name, crate_name, &fixture(name), false)
}

fn rules_fired(report: &FileReport) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

// ---- R001: stream keys must be stable entity ids -----------------------

#[test]
fn r001_fires_on_each_unstable_key_shape() {
    let r = lint_as("r001_pos.rs", "net");
    let r001 = r.findings.iter().filter(|f| f.rule == "R001").count();
    // Enumerate-over-local, mutable accumulator, computed label.
    assert_eq!(r001, 3, "got {:?}", r.findings);
    let msgs: Vec<&str> = r.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("candidates")), "got {msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("link_idx")), "got {msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("string literal")), "got {msgs:?}");
}

#[test]
fn r001_silent_on_stable_keys_and_shadowed_names() {
    let r = lint_as("r001_neg.rs", "net");
    assert!(rules_fired(&r).is_empty(), "got {:?}", r.findings);
    // All five mints are extracted as stream sites for R002.
    assert_eq!(r.sites.len(), 5, "got {:?}", r.sites);
}

#[test]
fn r001_pragma_waives_a_deliberate_visit_order_key() {
    let src = "pub fn f(root: &Rng, xs: &[u64]) {\n    let mut k = 0u64;\n    for x in xs {\n        seed(root.split(\"s\", k)); // simlint: allow(R001, xs is append-only; visit order IS the entity id)\n        k += 1;\n    }\n}\n";
    let r = check_file("m.rs", "net", src, false);
    assert!(rules_fired(&r).is_empty(), "got {:?}", r.findings);
    assert_eq!(r.allowed, 1);
}

#[test]
fn r001_exempt_in_test_code() {
    let r = check_file("r001_pos.rs", "net", &fixture("r001_pos.rs"), true);
    assert!(r.findings.is_empty(), "got {:?}", r.findings);
    assert!(r.sites.is_empty(), "test-file sites must not feed R002");
}

// ---- R003: digest-purity taint -----------------------------------------

#[test]
fn r003_fires_on_impure_flows_into_sinks() {
    let r = lint_as("r003_pos.rs", "simcore");
    let r003 = r.findings.iter().filter(|f| f.rule == "R003").count();
    // env -> write_str, thread id -> diary log, pointer -> observe.
    assert_eq!(r003, 3, "got {:?}", r.findings);
}

#[test]
fn r003_silent_on_sim_time_and_contained_impurity() {
    let r = lint_as("r003_neg.rs", "simcore");
    assert!(rules_fired(&r).is_empty(), "got {:?}", r.findings);
}

#[test]
fn r003_scopes_to_digest_feeding_crates() {
    // simlint itself never computes digests; the taint pass is off.
    let r = lint_as("r003_pos.rs", "simlint");
    assert!(rules_fired(&r).is_empty(), "got {:?}", r.findings);
}

#[test]
fn r003_pragma_waives_a_documented_sink() {
    let src = "pub fn f(digest: &mut D) {\n    let who = std::env::var(\"X\");\n    let t = encode(who);\n    digest.write_str(&t); // simlint: allow(R003, build-stamp string, excluded from the run digest)\n}\n";
    let r = check_file("m.rs", "simcore", src, false);
    assert!(rules_fired(&r).is_empty(), "got {:?}", r.findings);
    assert_eq!(r.allowed, 1);
}

// ---- R004: stale pragmas -----------------------------------------------

#[test]
fn r004_fires_on_a_pragma_that_waives_nothing() {
    let r = lint_as("r004_stale.rs", "simcore");
    let fired = rules_fired(&r);
    assert_eq!(fired, vec!["R004"], "got {:?}", r.findings);
    // Anchored at the pragma's own line.
    assert_eq!(r.findings[0].line, 3, "got {:?}", r.findings);
    assert!(r.findings[0].message.contains("waives nothing"));
}

#[test]
fn r004_meta_pragma_keeps_an_intentional_entry() {
    // A trailing pragma kept for a cfg'd-out path, itself waived by a
    // standalone allow(R004, …) targeting its line.
    let src = "// simlint: allow(R004, kept: waives P001 only when the cfg feature is on)\nuse std::fmt; // simlint: allow(P001, feature-gated panic path)\n";
    let r = check_file("m.rs", "simcore", src, false);
    assert!(rules_fired(&r).is_empty(), "got {:?}", r.findings);
    assert_eq!(r.allowed, 1);
}

#[test]
fn r004_exempt_in_test_regions() {
    let src = "#[cfg(test)]\nmod tests {\n    // simlint: allow(P001, test-region pragma, never audited)\n    fn f() {}\n}\n";
    let r = check_file("m.rs", "simcore", src, false);
    assert!(rules_fired(&r).is_empty(), "got {:?}", r.findings);
}

// ---- Temp-workspace harness for binary-level R002/baseline tests -------

/// Builds a throwaway workspace under `CARGO_TARGET_TMPDIR` from
/// (relative-path, contents) pairs, clearing any previous run.
fn temp_ws(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("simlint_v2").join(name);
    if root.exists() {
        std::fs::remove_dir_all(&root).expect("clear temp ws");
    }
    for (rel, contents) in files {
        let dst = root.join(rel);
        std::fs::create_dir_all(dst.parent().expect("parent")).expect("mkdir");
        std::fs::write(&dst, contents).expect("write");
    }
    root
}

fn run_ws(root: &Path, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_simlint"))
        .arg("--workspace")
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("run simlint")
}

fn stdout_of(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

const REGISTERED_BOTH: &str = "\
## Shared streams\n\n\
| stream | files | reason |\n\
|--------|-------|--------|\n\
| shared-crn | crates/fleet/src/a.rs crates/net/src/b.rs | CRN pair for the fixture |\n";

// ---- R002: collisions and the STREAMS.md registry ----------------------

#[test]
fn r002_unregistered_collision_fails_both_sites() {
    let a = fixture("r002_collide_a.rs");
    let b = fixture("r002_collide_b.rs");
    let ws = temp_ws(
        "collide",
        &[("crates/fleet/src/a.rs", a.as_str()), ("crates/net/src/b.rs", b.as_str())],
    );
    let out = run_ws(&ws, &[]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", stdout_of(&out));
    let stdout = stdout_of(&out);
    assert!(stdout.contains("crates/fleet/src/a.rs:5: [R002]"), "stdout: {stdout}");
    assert!(stdout.contains("crates/net/src/b.rs:5: [R002]"), "stdout: {stdout}");
    assert!(stdout.contains("'shared-crn'"), "stdout: {stdout}");
}

#[test]
fn r002_registered_share_passes() {
    let a = fixture("r002_collide_a.rs");
    let b = fixture("r002_collide_b.rs");
    let ws = temp_ws(
        "registered",
        &[
            ("crates/fleet/src/a.rs", a.as_str()),
            ("crates/net/src/b.rs", b.as_str()),
            ("STREAMS.md", REGISTERED_BOTH),
        ],
    );
    let out = run_ws(&ws, &[]);
    let stdout = stdout_of(&out);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}");
    assert!(stdout.contains("0 finding(s)"), "stdout: {stdout}");
}

#[test]
fn r002_under_registered_share_still_fails() {
    // The registry must cover every minting file, not just one.
    let a = fixture("r002_collide_a.rs");
    let b = fixture("r002_collide_b.rs");
    let partial = "\
## Shared streams\n\n\
| stream | files | reason |\n\
|--------|-------|--------|\n\
| shared-crn | crates/fleet/src/a.rs | only one minter listed |\n";
    let ws = temp_ws(
        "partial",
        &[
            ("crates/fleet/src/a.rs", a.as_str()),
            ("crates/net/src/b.rs", b.as_str()),
            ("STREAMS.md", partial),
        ],
    );
    let out = run_ws(&ws, &[]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", stdout_of(&out));
    assert!(stdout_of(&out).contains("[R002]"));
}

#[test]
fn r002_stale_registry_entry_is_flagged_at_its_row() {
    // Only one live site: the registered share no longer exists.
    let a = fixture("r002_collide_a.rs");
    let ws = temp_ws(
        "stale-registry",
        &[("crates/fleet/src/a.rs", a.as_str()), ("STREAMS.md", REGISTERED_BOTH)],
    );
    let out = run_ws(&ws, &[]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", stdout_of(&out));
    let stdout = stdout_of(&out);
    assert!(stdout.contains("STREAMS.md:5: [R002]"), "stdout: {stdout}");
    assert!(stdout.contains("stale registry entry"), "stdout: {stdout}");
}

#[test]
fn r002_pragmas_cannot_waive_collisions() {
    // The registry is the only waiver for R002; a pragma neither silences
    // the collision nor survives R004 (it waives nothing).
    let a = fixture("r002_collide_a.rs");
    let b = fixture("r002_collide_b.rs")
        .replace("base.split(\"shared-crn\", 0);", "base.split(\"shared-crn\", 0); // simlint: allow(R002, not how R002 is waived)");
    let ws = temp_ws(
        "pragma-r002",
        &[("crates/fleet/src/a.rs", a.as_str()), ("crates/net/src/b.rs", b.as_str())],
    );
    let out = run_ws(&ws, &[]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", stdout_of(&out));
    let stdout = stdout_of(&out);
    assert!(stdout.contains("[R002]"), "stdout: {stdout}");
    assert!(stdout.contains("[R004]"), "stdout: {stdout}");
}

// ---- Baseline: the "no new findings" gate ------------------------------

const ACCUMULATOR_VIOLATION: &str = "\
pub fn f(root: &Rng, xs: &[u64]) {\n\
    let mut k = 0u64;\n\
    for x in xs {\n\
        seed(root.split(\"acc\", k));\n\
        k += 1;\n\
    }\n\
}\n";

const SECOND_VIOLATION: &str = "\
pub fn g(root: &Rng, name: &str) {\n\
    seed(root.split(name, 0));\n\
}\n";

#[test]
fn baseline_round_trip_gates_only_new_findings() {
    let ws = temp_ws("baseline", &[("crates/fleet/src/acc.rs", ACCUMULATOR_VIOLATION)]);
    let bl = ws.join("simlint-baseline.json");
    let bl_s = bl.to_string_lossy().into_owned();

    // Accept the current findings.
    let out = run_ws(&ws, &["--write-baseline", &bl_s]);
    assert_eq!(out.status.code(), Some(1), "accepting still reports: {}", stdout_of(&out));
    assert!(bl.exists());

    // Gated run: the accepted finding no longer fails the gate.
    let out = run_ws(&ws, &["--baseline", &bl_s]);
    let stdout = stdout_of(&out);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}");
    assert!(stdout.contains("1 baselined"), "stdout: {stdout}");

    // A new violation fails the gate, reporting only the new finding.
    std::fs::write(ws.join("crates/fleet/src/new.rs"), SECOND_VIOLATION).expect("write");
    let out = run_ws(&ws, &["--baseline", &bl_s]);
    let stdout = stdout_of(&out);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(stdout.contains("crates/fleet/src/new.rs:2: [R001]"), "stdout: {stdout}");
    assert!(!stdout.contains("acc.rs:"), "baselined finding leaked: {stdout}");
}

#[test]
fn baseline_survives_line_shifts() {
    let ws = temp_ws("baseline-shift", &[("crates/fleet/src/acc.rs", ACCUMULATOR_VIOLATION)]);
    let bl = ws.join("b.json");
    let bl_s = bl.to_string_lossy().into_owned();
    run_ws(&ws, &["--write-baseline", &bl_s]);

    // Prepend comment lines: every finding moves, none are new.
    let shifted = format!("// shifted\n// shifted again\n{ACCUMULATOR_VIOLATION}");
    std::fs::write(ws.join("crates/fleet/src/acc.rs"), shifted).expect("write");
    let out = run_ws(&ws, &["--baseline", &bl_s]);
    assert_eq!(out.status.code(), Some(0), "stdout: {}", stdout_of(&out));
}

#[test]
fn missing_baseline_file_gates_everything() {
    let ws = temp_ws("baseline-missing", &[("crates/fleet/src/acc.rs", ACCUMULATOR_VIOLATION)]);
    let out = run_ws(&ws, &["--baseline", "/nonexistent/simlint-baseline.json"]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", stdout_of(&out));
    assert!(stdout_of(&out).contains("0 baselined"));
}

// ---- --streams inventory -----------------------------------------------

#[test]
fn streams_flag_prints_the_chain_inventory() {
    let a = fixture("r002_collide_a.rs");
    let b = fixture("r002_collide_b.rs");
    let ws = temp_ws(
        "streams",
        &[
            ("crates/fleet/src/a.rs", a.as_str()),
            ("crates/net/src/b.rs", b.as_str()),
            ("STREAMS.md", REGISTERED_BOTH),
        ],
    );
    let out = run_ws(&ws, &["--streams"]);
    assert_eq!(out.status.code(), Some(0), "stdout: {}", stdout_of(&out));
    let stdout = stdout_of(&out);
    assert!(stdout.contains("| shared-crn |"), "stdout: {stdout}");
    assert!(stdout.contains("crates/fleet/src/a.rs:5"), "stdout: {stdout}");
    assert!(stdout.contains("crates/net/src/b.rs:5"), "stdout: {stdout}");
}

// ---- The PR 8 regression, end to end -----------------------------------

#[test]
fn binary_catches_the_pr8_mesh_keying_bug_with_file_line_and_exit_1() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("simlint_v2");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let staged = dir.join("r001_seeded.rs");
    std::fs::write(&staged, fixture("r001_pos.rs")).expect("stage fixture");
    let out = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .arg(&staged)
        .output()
        .expect("run simlint");
    assert_eq!(out.status.code(), Some(1), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The pre-fix mesh shape: enumerate counter over a local candidate
    // list keying `dev-link`, reported with a clickable file:line.
    assert!(stdout.contains("r001_seeded.rs:8: [R001]"), "stdout: {stdout}");
    assert!(stdout.contains("'dev-link'"), "stdout: {stdout}");
}
