//! Test code is exempt from every rule.
pub fn prod(o: Option<u32>) -> u32 {
    o.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn unwrap_everywhere() {
        let mut m: HashMap<u32, u32> = HashMap::new();
        m.insert(1, 2);
        let _ = Instant::now();
        assert_eq!(*m.get(&1).unwrap(), 2);
        assert!(1.0 == 1.0);
    }
}

#[test]
fn free_test_fn(o: Option<u32>) {
    o.unwrap();
}
