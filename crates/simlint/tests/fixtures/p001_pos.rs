//! P001 positive: the four banned panic forms.
pub fn bad(o: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = o.unwrap();
    let b = r.expect("fine");
    if a + b > 100 {
        panic!("too big");
    }
    todo!()
}
