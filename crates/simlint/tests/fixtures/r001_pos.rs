//! R001 positive fixture — the PR 8 mesh dev-link bug class: stream
//! keys derived from visit order instead of stable entity ids.

pub fn mesh_dev_links(root: &Rng, grid: &Grid) {
    let mut candidates = Vec::new();
    grid.query_into(&mut candidates);
    for (pos, cand) in candidates.iter().enumerate() {
        let mut rng = root.split("dev-link", pos as u64);
        link(cand, rng.next_f64());
    }
}

pub fn mesh_dev_links_accumulator(root: &Rng, devices: &[u64]) {
    let mut link_idx = 0u64;
    for d in devices {
        let mut rng = root.split("mesh-dev", link_idx);
        link(d, rng.next_f64());
        link_idx += 1;
    }
}

pub fn computed_label(root: &Rng, suffix: &str) {
    let label = format!("mesh-{suffix}");
    let mut rng = root.split(&label, 0);
    rng.next_f64();
}
