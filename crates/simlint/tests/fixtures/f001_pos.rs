//! F001 positive: float-literal equality and partial_cmp chains.
pub fn bad(xs: &mut [f64], y: f64) -> bool {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    y == 0.5 || y != 1.0
}
