//! F001 negative: total_cmp and integer/tolerance comparisons.
pub fn good(xs: &mut [f64], y: f64, n: u32) -> bool {
    xs.sort_by(f64::total_cmp);
    (y - 0.5).abs() < 1e-9 && n == 10
}
