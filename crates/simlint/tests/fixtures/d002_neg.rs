//! D002 negative: simulation time, not wall time.
pub fn advance(now: u64, dt: u64) -> u64 {
    now + dt
}
