//! D002 positive: wall-clock reads outside the profiling allowlist.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u128 {
    let t0 = Instant::now();
    let _ = SystemTime::now();
    t0.elapsed().as_nanos()
}
