//! Malformed pragmas must themselves be findings (SL000).
pub fn f(o: Option<u32>) -> u32 {
    // simlint: allow(P001)
    let a = o.unwrap();
    // simlint: allow(NOPE, unknown rule id)
    let b = o.unwrap_or(1);
    a + b
}
