//! R003 negative fixture — sim-time values into sinks are fine, and
//! impure reads that never reach a sink are fine.

pub fn clean_sinks(arm: &mut Arm, now: SimTime, dur_weeks: f64) {
    arm.diary.log(now, Severity::Info, Tier::System, note());
    arm.weekly.observe(dur_weeks);
}

pub fn contained_impurity(out: &mut String) {
    // The env read stays inside rendering; it never reaches a digest.
    let who = std::env::var("SIM_OPERATOR");
    let banner = describe(who);
    out.push_str(&banner);
}
