//! R002 fixture A — mints the seed-rooted chain `shared-crn`.

pub fn policy_a(seed: u64) -> f64 {
    let base = Rng::seed_from(seed);
    let mut r = base.split("shared-crn", 0);
    r.next_f64()
}
