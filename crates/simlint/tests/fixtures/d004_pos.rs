//! D004 positive: indexed `devices[…]` access in a digest-feeding crate —
//! row-at-a-time pokes bypass the DeviceStore's cohort census.

pub fn poke(devices: &mut [Dev], di: usize) -> u64 {
    devices[di].failed = true;
    let seq = devices[di].seq;
    seq
}
