//! D003 positive: ambient randomness.
pub fn roll() -> f64 {
    let mut r = rand::thread_rng();
    r.gen()
}

pub fn seed_state() -> std::collections::hash_map::RandomState {
    std::collections::hash_map::RandomState::new()
}
