//! P001 negative: handled fallbacks never panic.
pub fn good(o: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = o.unwrap_or(0);
    let b = r.unwrap_or_default();
    o.map_or(a + b, |x| x + b)
}
