//! D003 negative: all entropy flows from the seeded simcore Rng.
pub fn roll(rng: &mut simcore::Rng) -> f64 {
    rng.next_f64()
}
