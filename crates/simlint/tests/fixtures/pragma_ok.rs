//! Pragma handling: every violation below carries a reasoned allow.
use std::time::Instant; // simlint: allow(D002, fixture demonstrates a trailing pragma)

pub fn timed() -> u128 {
    // simlint: allow(D002, fixture demonstrates a standalone pragma)
    let t0 = Instant::now();
    t0.elapsed().as_nanos()
}

pub fn risky(o: Option<u32>) -> u32 {
    // simlint: allow(P001, fixture demonstrates waiving a panic site)
    o.unwrap()
}
