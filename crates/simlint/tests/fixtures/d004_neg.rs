//! D004 negative: DeviceStore accessors, other-name indexing, and the
//! bare `devices` identifier without a subscript are all fine.

pub fn ok(store: &mut DeviceStore, homes: &[Vec<usize>], di: usize) -> u64 {
    store.mark_failed(di);
    let dev = store.row(di);
    store.set_row(di, &dev);
    let _gw = homes[di].first();
    let devices = store.len();
    devices as u64 + dev.seq
}
