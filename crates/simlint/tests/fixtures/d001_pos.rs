//! D001 positive: HashMap/HashSet in a digest-feeding crate.
use std::collections::{HashMap, HashSet};

pub fn tally(xs: &[u32]) -> usize {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        seen.insert(x);
        *counts.entry(x).or_insert(0) += 1;
    }
    seen.len() + counts.len()
}
