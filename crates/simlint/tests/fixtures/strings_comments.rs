//! False-positive regression: trigger tokens inside strings, raw strings,
//! chars, and comments must never fire.
//!
//! Mentions in docs: HashMap, Instant::now(), thread_rng, .unwrap(),
//! partial_cmp, panic!().

// HashMap::new() and SystemTime::now() in a line comment.
/* .unwrap() and todo!() in a /* nested */ block comment. */

pub fn quoted() -> (String, String, char) {
    let s = "HashMap Instant::now() .unwrap() panic! thread_rng 1.0 == 2.0".to_string();
    let r = r#"SystemTime "RandomState" .expect( partial_cmp"#.to_string();
    let c = 'x';
    (s, r, c)
}
