//! R001 negative fixture — stable stream keys that must stay silent:
//! range loops, enumerate over caller-pinned params, chained splits, and
//! a closure param that merely shares a name with an enumerate counter.

pub fn stable_keys(root: &Rng, cfg: &Config, devices: &[Dev]) {
    for m in 0..cfg.mounts {
        seed(root.split("mount", m as u64));
    }
    // `devices` is a parameter: its order is pinned by the caller.
    for (di, d) in devices.iter().enumerate() {
        seed(root.split("device", di as u64));
    }
    let pair = root.split("cov-pair", cfg.di as u64).split("gw", cfg.gi as u64);
    seed(pair);
}

pub fn closure_param_is_not_the_counter(arm_rng: &Rng, n: usize) {
    // `di` here is a range-map closure param (stable), even though an
    // unrelated enumerate loop below binds the same name over a local.
    let devs = (0..n).map(|di| arm_rng.split("ranged", di as u64)).collect();
    let mut fails = Vec::new();
    pick_failures(&mut fails);
    for (di, at) in fails.iter().enumerate() {
        record(at, di);
    }
    keep(devs);
}
