//! D001 negative: ordered containers are fine.
use std::collections::{BTreeMap, BTreeSet};

pub fn tally(xs: &[u32]) -> usize {
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
    for &x in xs {
        seen.insert(x);
        *counts.entry(x).or_insert(0) += 1;
    }
    seen.len() + counts.len()
}
