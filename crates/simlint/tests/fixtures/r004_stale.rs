//! R004 positive fixture — a well-formed pragma that waives nothing.

// simlint: allow(P001, the unwrap below was refactored away two PRs ago)
pub fn tidy(x: Option<u64>) -> u64 {
    x.unwrap_or(0)
}
