//! R002 fixture B — mints the same seed-rooted chain as fixture A.

pub fn policy_b(seed: u64) -> f64 {
    let base = Rng::seed_from(seed);
    let mut r = base.split("shared-crn", 0);
    r.next_f64()
}
