//! R003 positive fixture — impure values flowing into digest sinks.

pub fn leak_env(digest: &mut RunDigest) {
    let who = std::env::var("SIM_OPERATOR");
    let tag = encode(who);
    digest.write_str(&tag);
}

pub fn leak_thread(arm: &mut Arm, now: SimTime) {
    let tid = std::thread::current().id();
    let label = name_of(tid);
    arm.diary.log(now, Severity::Info, Tier::System, label);
}

pub fn leak_pointer_identity(hist: &mut Histogram, xs: &[f64]) {
    let key = xs.as_ptr() as usize;
    hist.observe(key as f64);
}
