//! The stable baseline format: "no new findings" gating for verify.sh.
//!
//! A baseline is a JSONL file, one object per accepted finding, keyed by
//! `(file, rule, message)` — deliberately *without* line numbers, so
//! unrelated edits shifting a file never invalidate the baseline, while
//! any new finding (or a message change, which means the code changed
//! shape) fails the gate. Workflow:
//!
//! ```text
//! simlint --workspace --write-baseline target/simlint-baseline.json
//! simlint --workspace --baseline target/simlint-baseline.json   # exit 1 on NEW findings only
//! ```
//!
//! A missing baseline file is an empty baseline (everything is new),
//! which keeps the gate fail-closed on fresh checkouts. The format is
//! hand-rolled like the rest of the crate: the writer emits exactly the
//! escapes [`crate`]'s JSON renderer uses, and the reader understands
//! exactly those.

use crate::rules::Finding;
use std::collections::BTreeSet;
use std::path::Path;

/// A set of accepted findings.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    entries: BTreeSet<(String, String, String)>,
}

impl Baseline {
    /// Loads a baseline; a missing file is an empty baseline. I/O errors
    /// other than not-found, and unparsable lines, are reported.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Baseline::default())
            }
            Err(e) => return Err(format!("cannot read baseline {}: {e}", path.display())),
        };
        let mut entries = BTreeSet::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let entry = parse_line(line).ok_or_else(|| {
                format!("malformed baseline line {} in {}", i + 1, path.display())
            })?;
            entries.insert(entry);
        }
        Ok(Baseline { entries })
    }

    /// Builds a baseline from findings (for `--write-baseline`).
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        Baseline {
            entries: findings
                .iter()
                .map(|f| (f.file.clone(), f.rule.to_string(), f.message.clone()))
                .collect(),
        }
    }

    /// Renders the baseline in its stable on-disk form (sorted JSONL).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (file, rule, message) in &self.entries {
            out.push_str(&format!(
                "{{\"file\":{},\"rule\":{},\"message\":{}}}\n",
                crate::json_str(file),
                crate::json_str(rule),
                crate::json_str(message)
            ));
        }
        out
    }

    /// True if the finding is covered by the baseline.
    pub fn covers(&self, f: &Finding) -> bool {
        self.entries
            .contains(&(f.file.clone(), f.rule.to_string(), f.message.clone()))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Parses one `{"file":…,"rule":…,"message":…}` line.
fn parse_line(line: &str) -> Option<(String, String, String)> {
    let file = extract_str(line, "\"file\":")?;
    let rule = extract_str(line, "\"rule\":")?;
    let message = extract_str(line, "\"message\":")?;
    Some((file, rule, message))
}

/// Extracts and unescapes the JSON string value following `key`.
fn extract_str(line: &str, key: &str) -> Option<String> {
    let at = line.find(key)? + key.len();
    let rest = line.get(at..)?;
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'u' => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, message: &str) -> Finding {
        Finding { file: file.to_string(), line: 7, rule: "R001", message: message.to_string() }
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let findings =
            vec![finding("a.rs", "uses `x` \"quoted\"\nsecond line"), finding("b.rs", "plain")];
        let b = Baseline::from_findings(&findings);
        let text = b.render();
        let mut reparsed = BTreeSet::new();
        for line in text.lines() {
            reparsed.insert(parse_line(line).expect("line parses"));
        }
        assert_eq!(reparsed, b.entries);
    }

    #[test]
    fn covers_ignores_line_numbers() {
        let b = Baseline::from_findings(&[finding("a.rs", "m")]);
        let mut moved = finding("a.rs", "m");
        moved.line = 999;
        assert!(b.covers(&moved));
        assert!(!b.covers(&finding("a.rs", "other")));
        assert!(!b.covers(&finding("c.rs", "m")));
    }

    #[test]
    fn missing_file_is_empty() {
        let b = Baseline::load(Path::new("/nonexistent/simlint-baseline.json")).expect("ok");
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }
}
