//! `simlint` CLI — the verify-gate entry point.
//!
//! ```text
//! simlint --workspace [--json] [--root DIR]   # lint the whole workspace
//! simlint --workspace --baseline B.json       # exit 1 only on NEW findings
//! simlint --workspace --write-baseline B.json # accept current findings
//! simlint --workspace --streams               # print the stream inventory
//! simlint FILE.rs …  [--json]                 # lint specific files
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error. The
//! binary is panic-free (it must pass its own P001 rule).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workspace: bool,
    json: bool,
    streams: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        json: false,
        streams: false,
        root: None,
        baseline: None,
        write_baseline: None,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--json" => args.json = true,
            "--streams" => args.streams = true,
            "--root" => {
                let v = it.next().ok_or("--root requires a directory argument")?;
                args.root = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline requires a file argument")?;
                args.baseline = Some(PathBuf::from(v));
            }
            "--write-baseline" => {
                let v = it.next().ok_or("--write-baseline requires a file argument")?;
                args.write_baseline = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                return Err("usage: simlint (--workspace [--root DIR] | FILE.rs ...) \
                            [--json] [--streams] [--baseline FILE] [--write-baseline FILE]"
                    .to_string())
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}` (try --help)"));
            }
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if !args.workspace && args.paths.is_empty() {
        return Err("nothing to lint: pass --workspace or one or more .rs files".to_string());
    }
    Ok(args)
}

fn run(args: &Args) -> Result<simlint::RunReport, String> {
    if args.workspace {
        let root = match &args.root {
            Some(r) => r.clone(),
            None => {
                let cwd = std::env::current_dir()
                    .map_err(|e| format!("cannot read current dir: {e}"))?;
                simlint::find_workspace_root(&cwd)
                    .ok_or("no [workspace] Cargo.toml above the current directory")?
            }
        };
        return simlint::lint_workspace(&root).map_err(|e| format!("scan failed: {e}"));
    }
    let mut report = simlint::RunReport::default();
    for path in &args.paths {
        let rel = path.to_string_lossy().replace('\\', "/");
        let file = simlint::lint_path_as(path, &rel)
            .map_err(|e| format!("cannot lint {}: {e}", path.display()))?;
        report.findings.extend(file.findings);
        report.allowed += file.allowed;
        report.sites.extend(file.sites);
        report.files_scanned += 1;
    }
    Ok(report)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("simlint: {msg}");
            return ExitCode::from(2);
        }
    };
    let mut report = match run(&args) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("simlint: {msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.write_baseline {
        let baseline = simlint::baseline::Baseline::from_findings(&report.findings);
        if let Err(e) = std::fs::write(path, baseline.render()) {
            eprintln!("simlint: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &args.baseline {
        match simlint::baseline::Baseline::load(path) {
            Ok(b) => report.apply_baseline(&b),
            Err(msg) => {
                eprintln!("simlint: {msg}");
                return ExitCode::from(2);
            }
        }
    }
    if args.streams {
        print!("{}", report.render_streams());
        return ExitCode::SUCCESS;
    }
    if args.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
