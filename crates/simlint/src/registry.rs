//! The `STREAMS.md` workspace stream registry, as read by R002.
//!
//! Two call sites minting the same lineage chain would hand the same
//! substream to two different consumers — correlated randomness nobody
//! asked for. R002 flags every such collision *unless* the chain is
//! registered here as deliberate (the classic legitimate case is common
//! random numbers: two policy arms sharing one stream on purpose, as
//! `fleet::maintenance::batching_speedup` does).
//!
//! The registry is the `Shared streams` table in the workspace-root
//! `STREAMS.md`:
//!
//! ```text
//! ## Shared streams
//!
//! | stream | files | reason |
//! |--------|-------|--------|
//! | svc-crn | crates/fleet/src/maintenance.rs | CRN: both arms share draws |
//! ```
//!
//! * `stream` — the rendered lineage chain (see `crate::lineage`);
//! * `files` — space- or comma-separated workspace-relative paths allowed
//!   to mint it;
//! * `reason` — why sharing is correct, for the audit trail.
//!
//! An entry that no longer matches at least two live call sites is itself
//! an R002 finding (stale registry), the same bar R004 holds pragmas to.

use std::collections::BTreeSet;
use std::path::Path;

/// One registered shared stream.
#[derive(Clone, Debug)]
pub struct RegistryEntry {
    /// Rendered lineage chain.
    pub chain: String,
    /// Files allowed to mint this chain.
    pub files: BTreeSet<String>,
    /// 1-based line of the table row in `STREAMS.md`.
    pub line: u32,
}

/// The parsed registry. Missing `STREAMS.md` parses as empty — every
/// collision is then unregistered.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    /// Entries in file order.
    pub entries: Vec<RegistryEntry>,
}

impl Registry {
    /// Loads the registry from `<root>/STREAMS.md` if present.
    pub fn load(root: &Path) -> Registry {
        match std::fs::read_to_string(root.join("STREAMS.md")) {
            Ok(text) => Registry::parse(&text),
            Err(_) => Registry::default(),
        }
    }

    /// Parses the `Shared streams` table out of markdown text.
    pub fn parse(text: &str) -> Registry {
        let mut entries = Vec::new();
        let mut in_section = false;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if let Some(heading) = line.strip_prefix("##") {
                in_section = heading.trim().eq_ignore_ascii_case("shared streams");
                continue;
            }
            if !in_section || !line.starts_with('|') {
                continue;
            }
            let cells: Vec<&str> =
                line.trim_matches('|').split('|').map(str::trim).collect();
            if cells.len() < 3 {
                continue;
            }
            // Skip the header row and the divider row.
            if cells[0].eq_ignore_ascii_case("stream")
                || cells[0].chars().all(|c| c == '-' || c == ':')
            {
                continue;
            }
            let files: BTreeSet<String> = cells[1]
                .split([',', ' '])
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
            entries.push(RegistryEntry {
                chain: cells[0].to_string(),
                files,
                line: (i + 1) as u32,
            });
        }
        Registry { entries }
    }

    /// Looks up the entry for a chain, if registered.
    pub fn entry(&self, chain: &str) -> Option<&RegistryEntry> {
        self.entries.iter().find(|e| e.chain == chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shared_streams_table_only() {
        let md = "\
# STREAMS\n\
Some prose with | pipes | in it.\n\
\n\
## Shared streams\n\
\n\
| stream | files | reason |\n\
|--------|-------|--------|\n\
| svc-crn | crates/fleet/src/maintenance.rs | CRN pair |\n\
| a/b | x.rs, y.rs | two minters |\n\
\n\
## Stream inventory\n\
| not | a | registry row |\n";
        let r = Registry::parse(md);
        assert_eq!(r.entries.len(), 2);
        assert_eq!(r.entries[0].chain, "svc-crn");
        assert!(r.entries[0].files.contains("crates/fleet/src/maintenance.rs"));
        let ab = r.entry("a/b").map(|e| e.files.len());
        assert_eq!(ab, Some(2));
        assert!(r.entry("not").is_none());
    }

    #[test]
    fn missing_file_is_an_empty_registry() {
        let r = Registry::load(Path::new("/nonexistent-simlint-root"));
        assert!(r.entries.is_empty());
    }
}
