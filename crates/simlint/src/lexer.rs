//! A minimal, dependency-free Rust lexer.
//!
//! `simlint` deliberately does not use `syn` or any other parser crate:
//! the workspace must build offline, and the rules we enforce (see
//! [`crate::rules`]) only need token-level context — "is this identifier a
//! method call?", "is this literal a float?", "is this line inside a
//! `#[cfg(test)]` item?". A hand-rolled lexer that is *correct about what
//! is not code* (string literals, char literals, comments) is enough, and
//! it is small enough to audit in one sitting — which matters for a tool
//! whose whole job is to be trusted for decades (DESIGN.md §8).
//!
//! The lexer produces:
//!
//! * a flat token stream ([`Token`]) with line numbers, and
//! * the line comments ([`LineComment`]), which carry `simlint:` pragmas.
//!
//! It understands the parts of the language that would otherwise cause
//! false positives: escaped strings, raw strings (`r#"…"#`), byte strings,
//! char literals vs. lifetimes (`'a'` vs. `'a`), nested block comments,
//! numeric literals with exponents/suffixes, and range punctuation
//! (`0..10` is two ints, not a float).

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `fn`, `r#raw`).
    Ident,
    /// An integer literal (`42`, `0xff_u32`).
    Int,
    /// A float literal (`1.0`, `1e-3`, `2f64`).
    Float,
    /// A string, byte-string, or raw-string literal. Contents are opaque.
    Str,
    /// A char or byte-char literal. Contents are opaque.
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation, one or two characters (`.`, `::`, `==`, `{`).
    Punct,
}

/// One lexed token with its source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokKind,
    /// The token text. `Str` tokens carry the literal's contents (without
    /// the surrounding quotes/hashes, escapes left verbatim) so the stream
    /// lineage rules (R001/R002) can read `Rng::split` labels. `Char` and
    /// byte-string tokens carry an empty string — no rule reads them.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A `//` comment, kept separately from the token stream so pragma
/// handling (and only pragma handling) can see it.
#[derive(Clone, Debug)]
pub struct LineComment {
    /// 1-based source line the comment starts on.
    pub line: u32,
    /// Comment text including the leading slashes.
    pub text: String,
    /// True if no token precedes the comment on its line (the comment is
    /// the whole line). Standalone pragmas apply to the *next* code line;
    /// trailing pragmas apply to their own line.
    pub standalone: bool,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Token stream in source order.
    pub tokens: Vec<Token>,
    /// Line comments in source order.
    pub comments: Vec<LineComment>,
}

/// Two-character punctuation we must lex greedily so single-char rules
/// (`==` vs `=`, `..` vs `.`) see the right token.
const TWO_CHAR_PUNCT: [&str; 18] = [
    "==", "!=", "<=", ">=", "=>", "->", "::", "..", "&&", "||", "<<", ">>", "+=", "-=", "*=",
    "/=", "%=", "^=",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src`, returning the token stream and the line comments.
///
/// The lexer never fails: malformed input (an unterminated string, a stray
/// byte) degrades to "consume one character and move on", which is the
/// right bias for a linter — we would rather under-report on a file that
/// does not even parse than crash the gate.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut last_token_line: u32 = 0;
    let n = chars.len();

    // Advances over `chars[i..]` while counting newlines.
    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < n {
        let c = chars[i];

        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }

        // Line comment (also doc comments `///`, `//!`).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start_line = line;
            let mut text = String::new();
            while i < n && chars[i] != '\n' {
                text.push(chars[i]);
                i += 1;
            }
            out.comments.push(LineComment {
                line: start_line,
                text,
                standalone: last_token_line != start_line,
            });
            continue;
        }

        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            i += 2;
            let mut depth = 1u32;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    bump!();
                }
            }
            continue;
        }

        // Raw identifiers and raw strings: r#ident, r"…", r#"…"#, plus the
        // byte forms b"…", b'…', br"…", br#"…"#.
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            let mut saw_r = c == 'r';
            if c == 'b' && j < n && chars[j] == 'r' {
                saw_r = true;
                j += 1;
            }
            if saw_r {
                // Count hashes after the (b)r prefix.
                let mut hashes = 0usize;
                while j < n && chars[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && chars[j] == '"' {
                    // Raw string: scan for `"` followed by `hashes` hashes.
                    let tok_line = line;
                    let byte_form = c == 'b';
                    // Count newlines we skip inside the literal.
                    while i < j {
                        bump!();
                    }
                    bump!(); // opening quote
                    let mut text = String::new();
                    'raw: while i < n {
                        if chars[i] == '"' {
                            let mut k = i + 1;
                            let mut seen = 0usize;
                            while k < n && seen < hashes && chars[k] == '#' {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                i = k;
                                break 'raw;
                            }
                        }
                        text.push(chars[i]);
                        bump!();
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Str,
                        text: if byte_form { String::new() } else { text },
                        line: tok_line,
                    });
                    last_token_line = tok_line;
                    continue;
                }
                if c == 'r' && hashes == 1 && j < n && is_ident_start(chars[j]) {
                    // Raw identifier r#ident: lex as the identifier itself.
                    let tok_line = line;
                    i = j;
                    let mut text = String::new();
                    while i < n && is_ident_continue(chars[i]) {
                        text.push(chars[i]);
                        i += 1;
                    }
                    out.tokens.push(Token { kind: TokKind::Ident, text, line: tok_line });
                    last_token_line = tok_line;
                    continue;
                }
                // Not a raw form after all: fall through to plain ident.
            }
            if c == 'b' && i + 1 < n && (chars[i + 1] == '"' || chars[i + 1] == '\'') {
                // Byte string / byte char: skip the `b` and lex the literal.
                i += 1;
                // Fall through to the string/char lexers below via `c` reload.
                let c2 = chars[i];
                if c2 == '"' {
                    let tok_line = line;
                    let _ = lex_string(&chars, &mut i, &mut line, n);
                    out.tokens.push(Token {
                        kind: TokKind::Str,
                        text: String::new(),
                        line: tok_line,
                    });
                    last_token_line = tok_line;
                } else {
                    let tok_line = line;
                    lex_char(&chars, &mut i, &mut line, n);
                    out.tokens.push(Token {
                        kind: TokKind::Char,
                        text: String::new(),
                        line: tok_line,
                    });
                    last_token_line = tok_line;
                }
                continue;
            }
        }

        // Identifier / keyword.
        if is_ident_start(c) {
            let tok_line = line;
            let mut text = String::new();
            while i < n && is_ident_continue(chars[i]) {
                text.push(chars[i]);
                i += 1;
            }
            out.tokens.push(Token { kind: TokKind::Ident, text, line: tok_line });
            last_token_line = tok_line;
            continue;
        }

        // String literal.
        if c == '"' {
            let tok_line = line;
            let text = lex_string(&chars, &mut i, &mut line, n);
            out.tokens.push(Token { kind: TokKind::Str, text, line: tok_line });
            last_token_line = tok_line;
            continue;
        }

        // Char literal or lifetime.
        if c == '\'' {
            let tok_line = line;
            // `'a` (lifetime) vs `'a'` (char): a quote followed by an ident
            // that is NOT closed by another quote is a lifetime.
            if i + 1 < n && is_ident_start(chars[i + 1]) && chars[i + 1] != '\\' {
                let mut j = i + 1;
                let mut text = String::from("'");
                while j < n && is_ident_continue(chars[j]) {
                    text.push(chars[j]);
                    j += 1;
                }
                if j < n && chars[j] == '\'' {
                    // Single-ident-char literal like 'a' — treat as char.
                    lex_char(&chars, &mut i, &mut line, n);
                    out.tokens.push(Token {
                        kind: TokKind::Char,
                        text: String::new(),
                        line: tok_line,
                    });
                } else {
                    i = j;
                    out.tokens.push(Token { kind: TokKind::Lifetime, text, line: tok_line });
                }
                last_token_line = tok_line;
                continue;
            }
            lex_char(&chars, &mut i, &mut line, n);
            out.tokens.push(Token { kind: TokKind::Char, text: String::new(), line: tok_line });
            last_token_line = tok_line;
            continue;
        }

        // Numeric literal.
        if c.is_ascii_digit() {
            let tok_line = line;
            let mut is_float = false;
            if c == '0' && i + 1 < n && matches!(chars[i + 1], 'x' | 'X' | 'b' | 'B' | 'o' | 'O')
            {
                // Radix literal: 0x1f, 0b1010, 0o755 (never a float).
                i += 2;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            } else {
                while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    i += 1;
                }
                // Fractional part — but not `..` (range) and not `.method()`.
                if i < n && chars[i] == '.' {
                    let next = chars.get(i + 1).copied();
                    let next_is_range = next == Some('.');
                    let next_is_method = next.map(is_ident_start).unwrap_or(false);
                    if !next_is_range && !next_is_method {
                        is_float = true;
                        i += 1;
                        while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                            i += 1;
                        }
                    }
                }
                // Exponent.
                if i < n && matches!(chars[i], 'e' | 'E') {
                    let mut j = i + 1;
                    if j < n && matches!(chars[j], '+' | '-') {
                        j += 1;
                    }
                    if j < n && chars[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                            i += 1;
                        }
                    }
                }
                // Type suffix: f32/f64 force float; u8/i64/usize stay int.
                if i < n && chars[i] == 'f' {
                    is_float = true;
                }
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
            }
            out.tokens.push(Token {
                kind: if is_float { TokKind::Float } else { TokKind::Int },
                text: String::new(),
                line: tok_line,
            });
            last_token_line = tok_line;
            continue;
        }

        // Punctuation: greedy two-char, else one char.
        let tok_line = line;
        if i + 1 < n {
            let pair: String = [chars[i], chars[i + 1]].iter().collect();
            if TWO_CHAR_PUNCT.contains(&pair.as_str()) {
                i += 2;
                out.tokens.push(Token { kind: TokKind::Punct, text: pair, line: tok_line });
                last_token_line = tok_line;
                continue;
            }
        }
        out.tokens.push(Token { kind: TokKind::Punct, text: c.to_string(), line: tok_line });
        last_token_line = tok_line;
        bump!();
    }

    out
}

/// Consumes a `"…"` literal starting at the opening quote, handling
/// escapes; leaves `*i` one past the closing quote. Returns the contents
/// between the quotes with escape sequences left verbatim (`\n` stays as
/// backslash-n) — exact enough for split-label comparison, where escapes
/// never appear in practice.
fn lex_string(chars: &[char], i: &mut usize, line: &mut u32, n: usize) -> String {
    let mut text = String::new();
    *i += 1; // opening quote
    while *i < n {
        match chars[*i] {
            '\\' => {
                // Keep the escape introducer and the escaped char verbatim.
                text.push(chars[*i]);
                *i += 1;
                if *i < n {
                    if chars[*i] == '\n' {
                        *line += 1;
                    }
                    text.push(chars[*i]);
                    *i += 1;
                }
            }
            '"' => {
                *i += 1;
                return text;
            }
            '\n' => {
                *line += 1;
                text.push('\n');
                *i += 1;
            }
            _ => {
                text.push(chars[*i]);
                *i += 1;
            }
        }
    }
    text
}

/// Consumes a `'…'` literal starting at the opening quote, handling
/// escapes (`'\n'`, `'\u{1F600}'`); leaves `*i` one past the closing quote.
fn lex_char(chars: &[char], i: &mut usize, line: &mut u32, n: usize) {
    *i += 1; // opening quote
    while *i < n {
        match chars[*i] {
            '\\' => {
                *i += 1;
                if *i < n {
                    *i += 1;
                }
            }
            '\'' => {
                *i += 1;
                return;
            }
            '\n' => {
                // Unterminated char on this line; bail rather than eat the file.
                *line += 1;
                *i += 1;
                return;
            }
            _ => *i += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_trigger_tokens() {
        let src = r##"
            // HashMap::new() in a comment
            /* Instant::now() in /* a nested */ block comment */
            let s = "HashMap::new() .unwrap()";
            let r = r#"SystemTime "quoted" panic!()"#;
            let ok = 1;
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|t| t == "HashMap" || t == "Instant" || t == "unwrap"));
        assert!(ids.contains(&"ok".to_string()));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> =
            lexed.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        let chars: Vec<_> = lexed.tokens.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn floats_ints_and_ranges() {
        let lexed = lex("let a = 1.0; let b = 0..10; let c = 1e-3; let d = 2f64; let e = 7.max(3); let f = 0xff;");
        let floats = lexed.tokens.iter().filter(|t| t.kind == TokKind::Float).count();
        let ints = lexed.tokens.iter().filter(|t| t.kind == TokKind::Int).count();
        assert_eq!(floats, 3, "1.0, 1e-3, 2f64");
        // 0, 10, 7, 3, 0xff
        assert_eq!(ints, 5);
        assert!(lexed.tokens.iter().any(|t| t.is_punct("..")));
    }

    #[test]
    fn two_char_punct_is_greedy() {
        let lexed = lex("a == b != c <= d => e :: f");
        let puncts: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "<=", "=>", "::"]);
    }

    #[test]
    fn line_comments_report_standalone_correctly() {
        let src = "let x = 1; // trailing\n// standalone\nlet y = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed.comments[0].standalone);
        assert!(lexed.comments[1].standalone);
    }

    #[test]
    fn multiline_and_raw_strings_track_lines() {
        let src = "let a = \"one\ntwo\";\nlet b = r#\"three\nfour\"#;\nlet after = 1;";
        let lexed = lex(src);
        let after = lexed.tokens.iter().find(|t| t.is_ident("after"));
        assert_eq!(after.map(|t| t.line), Some(5));
    }

    #[test]
    fn byte_strings_are_opaque() {
        let ids = idents("let a = b\"unwrap()\"; let c = br#\"panic!\"#; let d = b'x';");
        assert!(!ids.iter().any(|t| t == "unwrap" || t == "panic"));
    }

    #[test]
    fn string_literals_carry_contents() {
        let lexed = lex("rng.split(\"cov-pair\", di); let r = r#\"raw \"label\"\"#;");
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(strs, vec!["cov-pair", "raw \"label\""]);
        // Contents never leak trigger identifiers into the Ident stream.
        let lexed2 = lex("let s = \"HashMap::new() .unwrap()\";");
        assert!(!lexed2.tokens.iter().any(|t| t.is_ident("HashMap")));
    }
}
