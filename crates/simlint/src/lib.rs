//! `simlint` — a dependency-free determinism & panic-safety linter.
//!
//! The century workspace's correctness contract is *the digest*: a run is
//! correct iff its FNV-1a digest matches the golden trace, and serial ==
//! parallel (DESIGN.md §6). Golden tests enforce that contract after the
//! fact; `simlint` enforces it at the source level, before any simulation
//! runs, by rejecting the classic sources of silent nondeterminism and
//! the panics the core has been free of since PR 1. See [`rules`] for the
//! rule catalogue (D001–D003, P001, F001) and DESIGN.md §8 for the
//! policy discussion.
//!
//! Since v2 (DESIGN.md §15) the linter is flow-aware: a hand-rolled
//! structural view ([`parse`]) feeds an RNG stream-lineage analysis
//! ([`lineage`], rules R001/R002 against the `STREAMS.md` [`registry`]),
//! a digest-purity taint pass ([`taint`], R003), and a stale-pragma audit
//! (R004). Findings can be gated against a stable [`baseline`] so CI
//! fails only on *new* findings.
//!
//! The crate is self-contained on purpose: no `syn`, no `walkdir`, no
//! `serde` — it builds offline like the rest of the workspace and its
//! lexer ([`lexer`]) is small enough to audit. Run it with:
//!
//! ```text
//! cargo run -p simlint -- --workspace          # human output, exit 1 on findings
//! cargo run -p simlint -- --workspace --json   # machine-readable CI output
//! cargo run -p simlint -- --workspace --baseline B.json   # fail on NEW findings only
//! cargo run -p simlint -- --workspace --streams # print the stream inventory
//! cargo run -p simlint -- path/to/file.rs …    # lint specific files
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod baseline;
pub mod lexer;
pub mod lineage;
pub mod parse;
pub mod registry;
pub mod rules;
pub mod taint;

use lineage::StreamSite;
use registry::Registry;
use rules::{check_file, FileReport, Finding};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Aggregate result of a lint run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// All surviving findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Would-be findings waived by valid pragmas (the auditable ledger).
    pub allowed: usize,
    /// Findings subtracted by `--baseline` (accepted pre-existing debt).
    pub baselined: usize,
    /// Every non-test stream mint site in the run (the `--streams`
    /// inventory; also the input to the R002 collision pass).
    pub sites: Vec<StreamSite>,
}

impl RunReport {
    fn absorb(&mut self, file: FileReport) {
        self.findings.extend(file.findings);
        self.allowed += file.allowed;
        self.sites.extend(file.sites);
        self.files_scanned += 1;
    }

    /// Subtracts baseline-covered findings, recording how many were
    /// accepted. The gate then fails only on what remains.
    pub fn apply_baseline(&mut self, baseline: &baseline::Baseline) {
        let before = self.findings.len();
        self.findings.retain(|f| !baseline.covers(f));
        self.baselined += before - self.findings.len();
    }

    /// Renders the stream inventory: every minted chain with its sites,
    /// ready to paste into `STREAMS.md`'s informational section.
    pub fn render_streams(&self) -> String {
        let mut by_chain: BTreeMap<&str, Vec<&StreamSite>> = BTreeMap::new();
        for s in &self.sites {
            by_chain.entry(&s.chain).or_default().push(s);
        }
        let mut out = String::new();
        for (chain, sites) in &by_chain {
            let mut locs: Vec<String> =
                sites.iter().map(|s| format!("{}:{}", s.file, s.line)).collect();
            locs.sort();
            locs.dedup();
            out.push_str(&format!("| {} | {} |\n", chain, locs.join(" ")));
        }
        out.push_str(&format!(
            "simlint: {} stream chain(s) across {} site(s)\n",
            by_chain.len(),
            self.sites.len()
        ));
        out
    }

    /// Renders findings for humans, one per line, plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "simlint: {} finding(s), {} pragma-allowed, {} baselined, {} file(s) scanned\n",
            self.findings.len(),
            self.allowed,
            self.baselined,
            self.files_scanned
        ));
        out
    }

    /// Renders the report as a single JSON object (hand-rolled — no serde;
    /// the schema is `{files_scanned, allowed, baselined, findings:
    /// [{file, line, rule, message}]}`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"files_scanned\":{},\"allowed\":{},\"baselined\":{},\"findings\":[",
            self.files_scanned, self.allowed, self.baselined
        ));
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"file\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                json_str(&f.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Path prefixes (workspace-relative, `/`-separated) excluded from the
/// workspace walk:
///
/// * `vendor/` — third-party shims (criterion legitimately reads the wall
///   clock); they are not our code and not digest-feeding.
/// * `target/` — build output.
/// * `crates/simlint/tests/fixtures/` — the fixture corpus *deliberately*
///   contains one of every violation.
const EXCLUDED_PREFIXES: [&str; 3] = ["vendor/", "target/", "crates/simlint/tests/fixtures/"];

/// Classifies a workspace-relative path into (crate name, is_test_file).
///
/// `crates/<name>/…` belongs to `<name>`; everything else (`src/`,
/// `tests/`, `examples/` at the root) belongs to the root `workspace`
/// package. Files under any `tests/` directory compile with `cfg(test)`
/// and are test code wholesale.
fn classify(rel: &str) -> (String, bool) {
    let mut parts = rel.split('/');
    let crate_name = if rel.starts_with("crates/") {
        parts.nth(1).unwrap_or("workspace").to_string()
    } else {
        "workspace".to_string()
    };
    let is_test = rel.split('/').any(|p| p == "tests");
    (crate_name, is_test)
}

/// Recursively collects `.rs` files under `dir`, sorted for deterministic
/// output, skipping hidden directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every workspace `.rs` file under `root` (excluding
/// [`EXCLUDED_PREFIXES`]). Returns an error only on I/O failure; findings
/// are data, not errors.
pub fn lint_workspace(root: &Path) -> std::io::Result<RunReport> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    let mut report = RunReport::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if EXCLUDED_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        report.absorb(lint_path_as(&path, &rel)?);
    }
    r002_collisions(&mut report, &Registry::load(root));
    report.findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    Ok(report)
}

/// The cross-file R002 pass: two non-test call sites minting the same
/// lineage chain alias the same substream — an error unless `STREAMS.md`
/// registers the share (deliberate CRN). Registry entries that no longer
/// match at least two live sites are stale, to the same standard R004
/// holds pragmas to. Pragmas cannot waive R002: the registry, with its
/// mandatory reason column, *is* the waiver mechanism.
fn r002_collisions(report: &mut RunReport, registry: &Registry) {
    let mut by_chain: BTreeMap<&str, BTreeSet<(&str, u32)>> = BTreeMap::new();
    for s in &report.sites {
        by_chain.entry(&s.chain).or_default().insert((&s.file, s.line));
    }
    let mut findings = Vec::new();
    for (chain, sites) in &by_chain {
        if sites.len() < 2 {
            continue;
        }
        let files: BTreeSet<&str> = sites.iter().map(|(f, _)| *f).collect();
        if let Some(entry) = registry.entry(chain) {
            if files.iter().all(|f| entry.files.contains(*f)) {
                continue;
            }
        }
        let file_list = files.iter().copied().collect::<Vec<_>>().join(", ");
        for (file, line) in sites {
            findings.push(Finding {
                file: file.to_string(),
                line: *line,
                rule: "R002",
                message: format!(
                    "stream chain '{chain}' is minted at {} call sites ({file_list}): \
                     identical chains alias the same substream; register the share in \
                     STREAMS.md (deliberate CRN) or re-key one site",
                    sites.len()
                ),
            });
        }
    }
    for entry in &registry.entries {
        let live = by_chain.get(entry.chain.as_str()).map(BTreeSet::len).unwrap_or(0);
        if live < 2 {
            findings.push(Finding {
                file: "STREAMS.md".to_string(),
                line: entry.line,
                rule: "R002",
                message: format!(
                    "stale registry entry: stream chain '{}' has {live} live call site(s), \
                     not the two-plus a registered share implies; remove the entry",
                    entry.chain
                ),
            });
        }
    }
    report.findings.append(&mut findings);
}

/// Lints a single file, reporting it under the name `rel`.
pub fn lint_path_as(path: &Path, rel: &str) -> std::io::Result<FileReport> {
    let src = std::fs::read_to_string(path)?;
    let (crate_name, is_test) = classify(rel);
    Ok(check_file(rel, &crate_name, &src, is_test))
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_maps_crates_and_root() {
        assert_eq!(classify("crates/simcore/src/rng.rs"), ("simcore".to_string(), false));
        assert_eq!(classify("crates/fleet/tests/x.rs"), ("fleet".to_string(), true));
        assert_eq!(classify("src/lib.rs"), ("workspace".to_string(), false));
        assert_eq!(classify("tests/golden_digests.rs"), ("workspace".to_string(), true));
        assert_eq!(classify("examples/quickstart.rs"), ("workspace".to_string(), false));
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_output_is_well_formed_without_findings() {
        let r = RunReport { files_scanned: 3, allowed: 1, ..RunReport::default() };
        assert_eq!(
            r.render_json(),
            "{\"files_scanned\":3,\"allowed\":1,\"baselined\":0,\"findings\":[]}"
        );
    }

    #[test]
    fn r002_flags_unregistered_collisions_and_stale_entries() {
        let site = |file: &str, line: u32, chain: &str| StreamSite {
            file: file.to_string(),
            line,
            label: chain.rsplit('/').next().unwrap_or(chain).to_string(),
            chain: chain.to_string(),
        };
        let mut report = RunReport {
            sites: vec![
                site("a.rs", 10, "svc"),
                site("b.rs", 20, "svc"),
                site("c.rs", 5, "solo"),
            ],
            ..RunReport::default()
        };
        let registry = Registry::parse(
            "## Shared streams\n| stream | files | reason |\n|---|---|---|\n\
             | dead | z.rs | gone |\n",
        );
        r002_collisions(&mut report, &registry);
        let rules: Vec<_> = report.findings.iter().map(|f| (f.rule, f.file.as_str())).collect();
        assert_eq!(
            rules,
            vec![("R002", "a.rs"), ("R002", "b.rs"), ("R002", "STREAMS.md")],
            "{:?}",
            report.findings
        );

        // The same collision, registered, is clean — but the registration
        // must cover every minting file.
        let mut ok = RunReport {
            sites: vec![site("a.rs", 10, "svc"), site("b.rs", 20, "svc")],
            ..RunReport::default()
        };
        let reg_ok = Registry::parse(
            "## Shared streams\n| stream | files | reason |\n|---|---|---|\n\
             | svc | a.rs b.rs | CRN pair |\n",
        );
        r002_collisions(&mut ok, &reg_ok);
        assert!(ok.findings.is_empty(), "{:?}", ok.findings);
    }
}
