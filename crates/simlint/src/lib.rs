//! `simlint` — a dependency-free determinism & panic-safety linter.
//!
//! The century workspace's correctness contract is *the digest*: a run is
//! correct iff its FNV-1a digest matches the golden trace, and serial ==
//! parallel (DESIGN.md §6). Golden tests enforce that contract after the
//! fact; `simlint` enforces it at the source level, before any simulation
//! runs, by rejecting the classic sources of silent nondeterminism and
//! the panics the core has been free of since PR 1. See [`rules`] for the
//! rule catalogue (D001–D003, P001, F001) and DESIGN.md §8 for the
//! policy discussion.
//!
//! The crate is self-contained on purpose: no `syn`, no `walkdir`, no
//! `serde` — it builds offline like the rest of the workspace and its
//! lexer ([`lexer`]) is small enough to audit. Run it with:
//!
//! ```text
//! cargo run -p simlint -- --workspace          # human output, exit 1 on findings
//! cargo run -p simlint -- --workspace --json   # machine-readable CI output
//! cargo run -p simlint -- path/to/file.rs …    # lint specific files
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod lexer;
pub mod rules;

use rules::{check_file, FileReport, Finding};
use std::path::{Path, PathBuf};

/// Aggregate result of a lint run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// All surviving findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Would-be findings waived by valid pragmas (the auditable ledger).
    pub allowed: usize,
}

impl RunReport {
    fn absorb(&mut self, file: FileReport) {
        self.findings.extend(file.findings);
        self.allowed += file.allowed;
        self.files_scanned += 1;
    }

    /// Renders findings for humans, one per line, plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "simlint: {} finding(s), {} pragma-allowed, {} file(s) scanned\n",
            self.findings.len(),
            self.allowed,
            self.files_scanned
        ));
        out
    }

    /// Renders the report as a single JSON object (hand-rolled — no serde;
    /// the schema is `{files_scanned, allowed, findings: [{file, line,
    /// rule, message}]}`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"files_scanned\":{},\"allowed\":{},\"findings\":[",
            self.files_scanned, self.allowed
        ));
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"file\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                json_str(&f.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Path prefixes (workspace-relative, `/`-separated) excluded from the
/// workspace walk:
///
/// * `vendor/` — third-party shims (criterion legitimately reads the wall
///   clock); they are not our code and not digest-feeding.
/// * `target/` — build output.
/// * `crates/simlint/tests/fixtures/` — the fixture corpus *deliberately*
///   contains one of every violation.
const EXCLUDED_PREFIXES: [&str; 3] = ["vendor/", "target/", "crates/simlint/tests/fixtures/"];

/// Classifies a workspace-relative path into (crate name, is_test_file).
///
/// `crates/<name>/…` belongs to `<name>`; everything else (`src/`,
/// `tests/`, `examples/` at the root) belongs to the root `workspace`
/// package. Files under any `tests/` directory compile with `cfg(test)`
/// and are test code wholesale.
fn classify(rel: &str) -> (String, bool) {
    let mut parts = rel.split('/');
    let crate_name = if rel.starts_with("crates/") {
        parts.nth(1).unwrap_or("workspace").to_string()
    } else {
        "workspace".to_string()
    };
    let is_test = rel.split('/').any(|p| p == "tests");
    (crate_name, is_test)
}

/// Recursively collects `.rs` files under `dir`, sorted for deterministic
/// output, skipping hidden directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every workspace `.rs` file under `root` (excluding
/// [`EXCLUDED_PREFIXES`]). Returns an error only on I/O failure; findings
/// are data, not errors.
pub fn lint_workspace(root: &Path) -> std::io::Result<RunReport> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    let mut report = RunReport::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if EXCLUDED_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        report.absorb(lint_path_as(&path, &rel)?);
    }
    report.findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    Ok(report)
}

/// Lints a single file, reporting it under the name `rel`.
pub fn lint_path_as(path: &Path, rel: &str) -> std::io::Result<FileReport> {
    let src = std::fs::read_to_string(path)?;
    let (crate_name, is_test) = classify(rel);
    Ok(check_file(rel, &crate_name, &src, is_test))
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_maps_crates_and_root() {
        assert_eq!(classify("crates/simcore/src/rng.rs"), ("simcore".to_string(), false));
        assert_eq!(classify("crates/fleet/tests/x.rs"), ("fleet".to_string(), true));
        assert_eq!(classify("src/lib.rs"), ("workspace".to_string(), false));
        assert_eq!(classify("tests/golden_digests.rs"), ("workspace".to_string(), true));
        assert_eq!(classify("examples/quickstart.rs"), ("workspace".to_string(), false));
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_output_is_well_formed_without_findings() {
        let r = RunReport { findings: vec![], files_scanned: 3, allowed: 1 };
        assert_eq!(r.render_json(), "{\"files_scanned\":3,\"allowed\":1,\"findings\":[]}");
    }
}
