//! A lightweight structural view over the token stream: token trees and a
//! per-function statement view.
//!
//! simlint v2's flow-aware rules (R001–R003, see [`crate::lineage`] and
//! [`crate::taint`]) need more shape than a flat token stream — which
//! expression feeds which `Rng::split` argument, which `let` binds which
//! stream — but far less than a real Rust grammar. This module nests
//! tokens into trees at the `()`/`[]`/`{}` delimiters (exactly the token
//! trees rustc's own macro layer uses) and extracts every `fn` item with
//! its parameter names and body. Everything else (types, generics, match
//! arms) stays flat; the analyses walk tree sequences with small local
//! patterns. Like the lexer, the parser never fails: unbalanced input
//! degrades to "treat the stray token as a leaf", which under-reports
//! rather than crashing the gate.

use crate::lexer::{TokKind, Token};

/// One token tree: a single token, or a delimited group of trees.
#[derive(Clone, Debug)]
pub enum Tree {
    /// Index of a token in the lexed stream.
    Leaf(usize),
    /// A `(…)`, `[…]` or `{…}` group.
    Group {
        /// Opening delimiter: `'('`, `'['` or `'{'`.
        delim: char,
        /// Index of the opening delimiter token (for line numbers).
        open: usize,
        /// The trees between the delimiters.
        children: Vec<Tree>,
    },
}

/// A `fn` item: its name, parameter names, and body trees.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Parameter pattern names, including `self` when present. These are
    /// the "stable" identifiers for R001: callers pin what they pass.
    pub params: Vec<String>,
    /// The trees of the body block.
    pub body: Vec<Tree>,
}

/// The parsed view of one file.
#[derive(Clone, Debug, Default)]
pub struct Parsed {
    /// Top-level token trees (the whole file).
    pub trees: Vec<Tree>,
    /// Every `fn` item found at any nesting depth.
    pub fns: Vec<FnItem>,
}

/// Parses the lexed token stream into trees and function items.
pub fn parse(toks: &[Token]) -> Parsed {
    let mut i = 0usize;
    let trees = build(toks, &mut i, None);
    let mut fns = Vec::new();
    collect_fns(toks, &trees, &mut fns);
    Parsed { trees, fns }
}

fn closer(delim: char) -> &'static str {
    match delim {
        '(' => ")",
        '[' => "]",
        _ => "}",
    }
}

fn build(toks: &[Token], i: &mut usize, close: Option<&str>) -> Vec<Tree> {
    let mut out = Vec::new();
    while *i < toks.len() {
        let t = &toks[*i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => {
                    let open = *i;
                    let delim = match t.text.as_str() {
                        "(" => '(',
                        "[" => '[',
                        _ => '{',
                    };
                    *i += 1;
                    let children = build(toks, i, Some(closer(delim)));
                    out.push(Tree::Group { delim, open, children });
                    continue;
                }
                // Stray closers (unbalanced input) fall through to the
                // leaf push below so the walk terminates.
                ")" | "]" | "}" if Some(t.text.as_str()) == close => {
                    *i += 1;
                    return out;
                }
                _ => {}
            }
        }
        out.push(Tree::Leaf(*i));
        *i += 1;
    }
    out
}

/// Recursively finds every `fn NAME … ( params ) … { body }` item.
fn collect_fns(toks: &[Token], trees: &[Tree], out: &mut Vec<FnItem>) {
    let mut k = 0usize;
    while k < trees.len() {
        if let Tree::Group { children, .. } = &trees[k] {
            collect_fns(toks, children, out);
            k += 1;
            continue;
        }
        if !is_leaf_ident(toks, &trees[k], "fn") {
            k += 1;
            continue;
        }
        // `fn` must be followed by a name (skips `fn(u32)` pointer types).
        let Some(name) = leaf(toks, trees.get(k + 1))
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
        else {
            k += 1;
            continue;
        };
        // Skip generics between the name and the parameter list: balanced
        // `<…>` at leaf level. `->`/`=>` don't count; `>>` closes two.
        let mut j = k + 2;
        if is_leaf_punct(toks, trees.get(j), "<") {
            let mut depth = 0i32;
            while j < trees.len() {
                if let Some(t) = leaf(toks, trees.get(j)) {
                    match t.text.as_str() {
                        "<" | "<<" if t.kind == TokKind::Punct => {
                            depth += if t.text == "<<" { 2 } else { 1 };
                        }
                        ">" if t.kind == TokKind::Punct => depth -= 1,
                        ">>" if t.kind == TokKind::Punct => depth -= 2,
                        _ => {}
                    }
                }
                j += 1;
                if depth <= 0 {
                    break;
                }
            }
        }
        // The parameter list is the next `(…)` group.
        let mut params = Vec::new();
        while j < trees.len() {
            match &trees[j] {
                Tree::Group { delim: '(', children, .. } => {
                    params = param_names(toks, children);
                    j += 1;
                    break;
                }
                Tree::Group { .. } => j += 1,
                t => {
                    // A `;` before the parameter list means a malformed
                    // item; bail on this candidate.
                    if is_leaf_punct(toks, Some(t), ";") {
                        break;
                    }
                    j += 1;
                }
            }
        }
        // The body is the next `{…}` group before a `;` (trait method
        // declarations have no body).
        let mut body = None;
        while j < trees.len() {
            match &trees[j] {
                Tree::Group { delim: '{', children, .. } => {
                    body = Some(children.clone());
                    break;
                }
                t if is_leaf_punct(toks, Some(t), ";") => break,
                _ => j += 1,
            }
        }
        if let Some(body) = body {
            out.push(FnItem { name, params, body });
            // Nested fns inside this body are found by the recursion at the
            // top of the loop when we pass the body group.
        }
        k += 1;
    }
}

/// Extracts parameter names from the trees of a parameter list: the
/// pattern identifiers before each top-level `:` (plus bare `self`).
fn param_names(toks: &[Token], children: &[Tree]) -> Vec<String> {
    let mut out = Vec::new();
    for param in split_on_comma(toks, children) {
        let mut saw_colon = false;
        for t in param {
            match t {
                Tree::Leaf(ix) => {
                    let tok = &toks[*ix];
                    if tok.is_punct(":") {
                        saw_colon = true;
                    } else if !saw_colon && tok.kind == TokKind::Ident {
                        let s = tok.text.as_str();
                        if s != "mut" && s != "ref" {
                            out.push(s.to_string());
                        }
                    }
                }
                Tree::Group { children, .. } if !saw_colon => {
                    // Tuple / struct patterns: all idents inside bind.
                    collect_pattern_idents(toks, children, &mut out);
                }
                Tree::Group { .. } => {}
            }
        }
    }
    out
}

fn collect_pattern_idents(toks: &[Token], trees: &[Tree], out: &mut Vec<String>) {
    for t in trees {
        match t {
            Tree::Leaf(ix) => {
                let tok = &toks[*ix];
                if tok.kind == TokKind::Ident && tok.text != "mut" && tok.text != "ref" {
                    out.push(tok.text.clone());
                }
            }
            Tree::Group { children, .. } => collect_pattern_idents(toks, children, out),
        }
    }
}

/// Returns the token behind a leaf tree, if any.
pub fn leaf<'a>(toks: &'a [Token], t: Option<&Tree>) -> Option<&'a Token> {
    match t {
        Some(Tree::Leaf(ix)) => toks.get(*ix),
        _ => None,
    }
}

/// True if `t` is a leaf holding the identifier `s`.
pub fn is_leaf_ident(toks: &[Token], t: &Tree, s: &str) -> bool {
    leaf(toks, Some(t)).map(|tok| tok.is_ident(s)).unwrap_or(false)
}

/// True if `t` is a leaf holding the punctuation `s`.
pub fn is_leaf_punct(toks: &[Token], t: Option<&Tree>, s: &str) -> bool {
    leaf(toks, t).map(|tok| tok.is_punct(s)).unwrap_or(false)
}

/// The source line a tree starts on.
pub fn line_of(toks: &[Token], t: &Tree) -> u32 {
    match t {
        Tree::Leaf(ix) => toks.get(*ix).map(|t| t.line).unwrap_or(0),
        Tree::Group { open, .. } => toks.get(*open).map(|t| t.line).unwrap_or(0),
    }
}

/// Splits a tree sequence on top-level commas.
pub fn split_on_comma<'a>(toks: &[Token], trees: &'a [Tree]) -> Vec<&'a [Tree]> {
    split_on(toks, trees, ",")
}

/// Splits a tree sequence on top-level `;` (statement boundaries).
pub fn split_statements<'a>(toks: &[Token], trees: &'a [Tree]) -> Vec<&'a [Tree]> {
    split_on(toks, trees, ";")
}

fn split_on<'a>(toks: &[Token], trees: &'a [Tree], sep: &str) -> Vec<&'a [Tree]> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for (i, t) in trees.iter().enumerate() {
        if is_leaf_punct(toks, Some(t), sep) {
            if i > start {
                out.push(&trees[start..i]);
            }
            start = i + 1;
        }
    }
    if start < trees.len() {
        out.push(&trees[start..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_fns_with_params_at_any_depth() {
        let src = "impl Foo {\n  fn method(&self, di: usize, cfg: &Config) -> u64 { di }\n}\nfn top<T: Fn(u32) -> bool>(f: T, (a, b): (u8, u8)) { }\n";
        let lexed = lex(src);
        let p = parse(&lexed.tokens);
        let names: Vec<_> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["method", "top"]);
        assert_eq!(p.fns[0].params, vec!["self", "di", "cfg"]);
        assert_eq!(p.fns[1].params, vec!["f", "a", "b"]);
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let src = "trait T { fn decl(&self) -> u64; fn with_body(&self) -> u64 { 1 } }";
        let lexed = lex(src);
        let p = parse(&lexed.tokens);
        let names: Vec<_> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["with_body"]);
    }

    #[test]
    fn statements_split_on_top_level_semicolons_only() {
        let src = "fn f() { let a = g(1; 2); let b = 2; }";
        // (`;` inside the group stays inside its subtree)
        let lexed = lex(src);
        let p = parse(&lexed.tokens);
        let stmts = split_statements(&lexed.tokens, &p.fns[0].body);
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn unbalanced_input_degrades_to_leaves() {
        let src = "fn f( { ) } ] extra";
        let lexed = lex(src);
        let p = parse(&lexed.tokens);
        // No panic, and the walk terminates.
        assert!(!p.trees.is_empty());
    }
}
