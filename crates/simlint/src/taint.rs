//! R003: intraprocedural digest-purity taint.
//!
//! The run digest is the workspace's correctness contract: a digest must
//! be a pure function of (config, seed). D002/D003 already ban wall-clock
//! and ambient-RNG *tokens* from digest-feeding crates, but allowlisted
//! sites (profiling, `bench`) still hold impure values legitimately — the
//! invariant that keeps digests honest is that those values never *flow
//! into a digest sink*. R003 checks that flow, per function:
//!
//! * **sources** — `Instant`/`SystemTime` construction, `env::var`-family
//!   reads, `thread::current`/`ThreadId`, pointer identity (`.as_ptr()`,
//!   `addr_of!`), `type_name`, and `RandomState`/`DefaultHasher` (hash
//!   identity);
//! * **propagation** — `let` bindings and plain reassignments whose
//!   right-hand side mentions a source or an already-tainted variable
//!   (two fixpoint passes cover chains bound before their source reads);
//! * **sinks** — the digest-feeding byte sinks (`write_u64`, `write_str`,
//!   `fold_diary`, …), histogram `observe`/`observe_n`, diary `log`
//!   (receiver mentioning `diary`), and span-log `open`/`close` (receiver
//!   mentioning `spans`).
//!
//! A tainted value reaching a sink argument is a finding. The analysis is
//! deliberately shallow — no interprocedural flow, no field sensitivity —
//! because the workspace convention is that impure values stay inside the
//! profiling structs that own them; any flow visible within one function
//! body is already a contract violation.

use crate::lexer::{TokKind, Token};
use crate::parse::{self, Parsed, Tree};
use crate::rules::Finding;
use std::collections::BTreeSet;

/// Identifiers whose construction taints a value.
const SOURCE_TYPES: [&str; 5] =
    ["Instant", "SystemTime", "ThreadId", "RandomState", "DefaultHasher"];

/// `env::<fn>` reads that taint a value.
const ENV_READS: [&str; 5] = ["var", "var_os", "vars", "args", "args_os"];

/// Method names that are digest sinks wherever they appear.
const SINK_METHODS: [&str; 11] = [
    "observe",
    "observe_n",
    "write_u8",
    "write_u64",
    "write_i128",
    "write_f64",
    "write_str",
    "write_bytes",
    "fold_diary",
    "fold_spans",
    "fold_snapshot",
];

/// Analyzes every function in `parsed`, returning R003 findings.
pub fn analyze(file: &str, toks: &[Token], parsed: &Parsed) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &parsed.fns {
        let mut scan = TaintScan { file, toks, tainted: BTreeSet::new(), findings: Vec::new() };
        // Two passes reach values bound through one intermediate variable
        // regardless of statement order quirks.
        scan.propagate(&f.body);
        scan.propagate(&f.body);
        scan.check_sinks(&f.body);
        findings.append(&mut scan.findings);
    }
    findings
}

struct TaintScan<'a> {
    file: &'a str,
    toks: &'a [Token],
    tainted: BTreeSet<String>,
    findings: Vec<Finding>,
}

impl TaintScan<'_> {
    fn tok(&self, seq: &[Tree], i: usize) -> Option<&Token> {
        parse::leaf(self.toks, seq.get(i))
    }

    /// True if the expression trees mention a taint source directly.
    fn has_source(&self, trees: &[Tree]) -> bool {
        for (i, t) in trees.iter().enumerate() {
            match t {
                Tree::Leaf(ix) => {
                    let tok = &self.toks[*ix];
                    if tok.kind != TokKind::Ident {
                        continue;
                    }
                    let s = tok.text.as_str();
                    if SOURCE_TYPES.contains(&s) {
                        return true;
                    }
                    if s == "addr_of" || s == "addr_of_mut" || s == "type_name" {
                        return true;
                    }
                    if s == "as_ptr"
                        && self.tok(trees, i.wrapping_sub(1)).map(|p| p.is_punct(".")).unwrap_or(false)
                    {
                        return true;
                    }
                    // `env::var(…)` / `thread::current()`.
                    let next_is_path = self
                        .tok(trees, i + 1)
                        .map(|n| n.is_punct("::"))
                        .unwrap_or(false);
                    if next_is_path {
                        if let Some(f) = self.tok(trees, i + 2) {
                            if (s == "env" && ENV_READS.contains(&f.text.as_str()))
                                || (s == "thread" && f.is_ident("current"))
                            {
                                return true;
                            }
                        }
                    }
                }
                Tree::Group { children, .. } => {
                    if self.has_source(children) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// True if the expression mentions a tainted variable as a value atom
    /// (not a method/field name or path segment).
    fn has_tainted_atom(&self, trees: &[Tree]) -> bool {
        for (i, t) in trees.iter().enumerate() {
            match t {
                Tree::Leaf(ix) => {
                    let tok = &self.toks[*ix];
                    if tok.kind != TokKind::Ident || !self.tainted.contains(&tok.text) {
                        continue;
                    }
                    let prev_is_path = i
                        .checked_sub(1)
                        .and_then(|j| self.tok(trees, j))
                        .map(|p| p.is_punct(".") || p.is_punct("::"))
                        .unwrap_or(false);
                    if !prev_is_path {
                        return true;
                    }
                }
                Tree::Group { children, .. } => {
                    if self.has_tainted_atom(children) {
                        return true;
                    }
                }
            }
        }
        false
    }

    fn expr_tainted(&self, trees: &[Tree]) -> bool {
        self.has_source(trees) || self.has_tainted_atom(trees)
    }

    /// One propagation pass: taint `let`/assignment targets whose
    /// right-hand side is tainted, at every nesting depth.
    fn propagate(&mut self, seq: &[Tree]) {
        for seg in parse::split_statements(self.toks, seq) {
            let mut i = 0usize;
            while i < seg.len() {
                let Some(t) = self.tok(seg, i) else {
                    i += 1;
                    continue;
                };
                if t.is_ident("let") {
                    let is_mut = self.tok(seg, i + 1).map(|t| t.is_ident("mut")).unwrap_or(false);
                    let name_ix = if is_mut { i + 2 } else { i + 1 };
                    let name = self
                        .tok(seg, name_ix)
                        .filter(|t| t.kind == TokKind::Ident)
                        .map(|t| t.text.clone());
                    let eq = (name_ix..seg.len()).find(|&j| {
                        self.tok(seg, j).map(|t| t.is_punct("=")).unwrap_or(false)
                    });
                    if let (Some(name), Some(eq)) = (name, eq) {
                        if self.expr_tainted(&seg[eq + 1..]) {
                            self.tainted.insert(name);
                        }
                    }
                } else if t.kind == TokKind::Ident
                    && self.tok(seg, i + 1).map(|n| n.is_punct("=")).unwrap_or(false)
                    && i + 2 < seg.len()
                    && self.expr_tainted(&seg[i + 2..])
                {
                    // `x = tainted_expr;`
                    self.tainted.insert(t.text.clone());
                }
                i += 1;
            }
        }
        for t in seq {
            if let Tree::Group { children, .. } = t {
                self.propagate(children);
            }
        }
    }

    /// Sink pass: flag tainted arguments to digest sinks.
    fn check_sinks(&mut self, seq: &[Tree]) {
        let mut k = 0usize;
        while k + 2 < seq.len() {
            let is_call = parse::is_leaf_punct(self.toks, seq.get(k), ".")
                && matches!(seq.get(k + 2), Some(Tree::Group { delim: '(', .. }));
            if !is_call {
                k += 1;
                continue;
            }
            let Some(method) = self.tok(seq, k + 1).filter(|t| t.kind == TokKind::Ident) else {
                k += 1;
                continue;
            };
            let name = method.text.clone();
            let line = method.line;
            let is_sink = SINK_METHODS.contains(&name.as_str())
                || (name == "log" && self.receiver_mentions(seq, k, "diary"))
                || ((name == "open" || name == "close")
                    && self.receiver_mentions(seq, k, "spans"));
            if is_sink {
                if let Some(Tree::Group { children, .. }) = seq.get(k + 2) {
                    if self.expr_tainted(children) {
                        self.findings.push(Finding {
                            file: self.file.to_string(),
                            line,
                            rule: "R003",
                            message: format!(
                                "impure value (wall-clock/env/thread/pointer-identity \
                                 derived) flows into digest sink `.{name}(…)`: digests \
                                 must be pure functions of (config, seed)"
                            ),
                        });
                    }
                }
            }
            k += 1;
        }
        for t in seq {
            if let Tree::Group { children, .. } = t {
                self.check_sinks(children);
            }
        }
    }

    /// True if the postfix receiver chain left of the `.` at `dot`
    /// contains an identifier mentioning `what` (`arm.diary`, `self.spans`).
    fn receiver_mentions(&self, seq: &[Tree], dot: usize, what: &str) -> bool {
        let mut p = dot;
        while p > 0 {
            p -= 1;
            match &seq[p] {
                Tree::Group { delim: '(' | '[', .. } => {}
                Tree::Leaf(ix) => {
                    let t = &self.toks[*ix];
                    if t.kind == TokKind::Ident {
                        if t.text.contains(what) {
                            return true;
                        }
                    } else if !(t.is_punct(".") || t.is_punct("::")) {
                        return false;
                    }
                }
                Tree::Group { .. } => return false,
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn run(src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        analyze("t.rs", &lexed.tokens, &parsed)
    }

    #[test]
    fn wall_clock_to_histogram_is_flagged() {
        let src = r#"
fn f(hist: &Histogram) {
    let t0 = Instant::now();
    let secs = t0.elapsed().as_secs_f64();
    hist.observe(secs);
}
"#;
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "R003");
        assert!(f[0].message.contains("observe"));
    }

    #[test]
    fn env_var_to_diary_is_flagged() {
        let src = r#"
fn f(arm: &mut Arm, now: SimTime) {
    let who = std::env::var("USER").unwrap_or_default();
    arm.diary.log(now, Severity::Info, Tier::System, who);
}
"#;
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn sim_time_values_are_clean() {
        let src = r#"
fn f(arm: &mut Arm, now: SimTime, dur: f64) {
    arm.diary.log(now, Severity::Info, Tier::System, format!("x"));
    arm.weekly.observe(dur);
    let t0 = Instant::now();
    let wall = t0.elapsed().as_nanos();
    profile.handler_nanos = wall;
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn non_sink_methods_accept_impure_values() {
        let src = r#"
fn f(out: &mut String) {
    let t0 = Instant::now();
    let e = t0.elapsed().as_secs_f64();
    out.push_str(&format!("{e}"));
    json.field("elapsed", e);
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn log_on_non_diary_receiver_is_not_a_sink() {
        let src = r#"
fn f(x: f64) {
    let t0 = Instant::now();
    let e = t0.elapsed().as_secs_f64();
    let y = e.log(2.0);
}
"#;
        assert!(run(src).is_empty());
    }
}
