//! R001: RNG stream-key stability, plus the stream-site extraction that
//! feeds the cross-file R002 collision check.
//!
//! The workspace's CRN discipline (DESIGN.md §15) is that every random
//! draw comes from a substream minted by `Rng::split(label, id)` where
//! `label` is a string literal and `id` is a *stable entity id* — an arm
//! index from config, a device id, a week number. PR 8 found the one
//! hazard class this grammar admits by hand: keys derived from *visit
//! order* (a loop counter over a locally-built container, a mutable
//! accumulator bumped per iteration). Such keys are bit-identical today
//! and silently different the day a cull, a sort, or a refactor reorders
//! the loop. R001 flags exactly that shape:
//!
//! * the label argument must be a single string literal (stream identity
//!   must be auditable, and R002 needs to read it);
//! * the id argument must not mention a mutable integer accumulator
//!   (`let mut k = 0; … split(…, k); k += 1`);
//! * the id argument must not mention an `.enumerate()` counter whose
//!   enumerated container is a fn-local (params, `self`, and anything
//!   non-local are considered order-pinned by the caller).
//!
//! The analysis is intraprocedural over the [`crate::parse`] tree view,
//! resolving `let` bindings of streams so chained derivations render as
//! lineage chains: `Rng::seed_from(seed)` roots render as `label/label2`,
//! unknown roots (params, fields) as `?/label`. Those chains are the
//! currency of R002 (the workspace pass in the crate root and `STREAMS.md`).

use crate::lexer::{TokKind, Token};
use crate::parse::{self, FnItem, Parsed, Tree};
use crate::rules::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// One `Rng::split` call site with a literal label, as seen by R002.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the `split` call.
    pub line: u32,
    /// The split's label literal.
    pub label: String,
    /// Rendered lineage chain (`arm/device`, `?/mount`).
    pub chain: String,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Root {
    /// Derived from `Rng::seed_from(…)` in this function.
    Seed,
    /// Unknown provenance: a parameter, a field, an unresolved call.
    Opaque,
}

#[derive(Clone, Debug)]
struct Chain {
    root: Root,
    labels: Vec<String>,
}

impl Chain {
    fn opaque() -> Self {
        Chain { root: Root::Opaque, labels: Vec::new() }
    }

    fn seed() -> Self {
        Chain { root: Root::Seed, labels: Vec::new() }
    }

    fn child(&self, label: &str) -> Self {
        let mut labels = self.labels.clone();
        labels.push(label.to_string());
        Chain { root: self.root, labels }
    }

    fn render(&self) -> String {
        let mut s = String::new();
        if self.root == Root::Opaque {
            s.push('?');
        }
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 || self.root == Root::Opaque {
                s.push('/');
            }
            s.push_str(l);
        }
        s
    }
}

/// Identifier atoms never classified (operators and binding noise).
const ATOM_SKIP: [&str; 9] =
    ["as", "mut", "ref", "move", "if", "else", "match", "true", "false"];

/// Analyzes every function in `parsed`, returning R001 findings and the
/// stream sites (literal-labelled splits) for the R002 workspace pass.
pub fn analyze(file: &str, toks: &[Token], parsed: &Parsed) -> (Vec<Finding>, Vec<StreamSite>) {
    let mut findings = Vec::new();
    let mut sites = Vec::new();
    for f in &parsed.fns {
        let mut scan = FnScan::new(file, toks, f);
        scan.prescan(&f.body);
        scan.walk(&f.body);
        findings.append(&mut scan.findings);
        sites.append(&mut scan.sites);
    }
    (findings, sites)
}

struct FnScan<'a> {
    file: &'a str,
    toks: &'a [Token],
    params: BTreeSet<String>,
    /// Names bound by `let` in this function (containers built locally).
    locals: BTreeSet<String>,
    /// `let mut x = <int literal>` bindings.
    mut_int_inits: BTreeSet<String>,
    /// Names on the left of `+=`-style compound assignment.
    compound_assigned: BTreeSet<String>,
    /// `.enumerate()` counters → (head identifier of the enumerated
    /// expression, token index of the binding pattern leaf). The token
    /// index lets the walk tell *this* counter apart from an unrelated
    /// same-named binding (`|di| …` over a range vs a later
    /// `for (di, _) in xs.iter().enumerate()`).
    counters: BTreeMap<String, (String, usize)>,
    /// Enclosing closure/for-loop binders on the current walk path, as
    /// (name, binding-leaf token index). Innermost last.
    scopes: Vec<(String, usize)>,
    /// Stream variables → their lineage chain.
    chains: BTreeMap<String, Chain>,
    /// Resolved chain per split-args group, keyed by the group's opening
    /// token index (lets `a.split(…).split(…)` extend the left chain).
    cache: BTreeMap<usize, Chain>,
    findings: Vec<Finding>,
    sites: Vec<StreamSite>,
}

impl<'a> FnScan<'a> {
    fn new(file: &'a str, toks: &'a [Token], f: &FnItem) -> Self {
        FnScan {
            file,
            toks,
            params: f.params.iter().cloned().collect(),
            locals: BTreeSet::new(),
            mut_int_inits: BTreeSet::new(),
            compound_assigned: BTreeSet::new(),
            counters: BTreeMap::new(),
            scopes: Vec::new(),
            chains: BTreeMap::new(),
            cache: BTreeMap::new(),
            findings: Vec::new(),
            sites: Vec::new(),
        }
    }

    fn tok(&self, seq: &[Tree], i: usize) -> Option<&'a Token> {
        parse::leaf(self.toks, seq.get(i))
    }

    /// Pass A: collect locals, accumulators and enumerate counters at
    /// every nesting depth (order-insensitive facts).
    fn prescan(&mut self, seq: &[Tree]) {
        for segment in parse::split_statements(self.toks, seq) {
            self.prescan_segment(segment);
        }
        for t in seq {
            if let Tree::Group { children, .. } = t {
                self.prescan(children);
            }
        }
    }

    fn prescan_segment(&mut self, seg: &[Tree]) {
        let mut i = 0usize;
        while i < seg.len() {
            let Some(t) = self.tok(seg, i) else {
                i += 1;
                continue;
            };
            // `let [mut] NAME … = INIT`
            if t.is_ident("let") {
                let is_mut = self.tok(seg, i + 1).map(|t| t.is_ident("mut")).unwrap_or(false);
                let name_ix = if is_mut { i + 2 } else { i + 1 };
                if let Some(name) =
                    self.tok(seg, name_ix).filter(|t| t.kind == TokKind::Ident)
                {
                    self.locals.insert(name.text.clone());
                    // Find the `=` and check for a bare integer initializer.
                    let eq = (name_ix..seg.len())
                        .find(|&j| self.tok(seg, j).map(|t| t.is_punct("=")).unwrap_or(false));
                    if let Some(eq) = eq {
                        let init = &seg[eq + 1..];
                        let init_is_int = init.len() == 1
                            && parse::leaf(self.toks, init.first())
                                .map(|t| t.kind == TokKind::Int)
                                .unwrap_or(false);
                        if is_mut && init_is_int {
                            let name = name.text.clone();
                            self.mut_int_inits.insert(name);
                        }
                    }
                }
            }
            // `NAME += …` / `NAME = NAME …` (self-referencing reassignment).
            if t.kind == TokKind::Ident {
                if let Some(op) = self.tok(seg, i + 1) {
                    let compound = op.kind == TokKind::Punct
                        && matches!(op.text.as_str(), "+=" | "-=" | "*=" | "/=" | "%=" | "^=");
                    let self_assign = op.is_punct("=")
                        && self.tok(seg, i + 2).map(|n| n.is_ident(&t.text)).unwrap_or(false);
                    if compound || self_assign {
                        self.compound_assigned.insert(t.text.clone());
                    }
                }
            }
            // `for (I, …) in EXPR.enumerate()… {` — positional counter I
            // over EXPR; the head identifier of EXPR decides stability.
            if t.is_ident("for") {
                self.scan_for_loop(seg, i);
            }
            // `….enumerate().map(|(I, …)| …)` — the closure form.
            if t.is_ident("enumerate") {
                self.scan_enumerate_closure(seg, i);
            }
            i += 1;
        }
    }

    fn scan_for_loop(&mut self, seg: &[Tree], for_ix: usize) {
        // Pattern must be a tuple `(I, …)` for a counter to bind.
        let Some(Tree::Group { delim: '(', children, .. }) = seg.get(for_ix + 1) else {
            return;
        };
        let Some(Tree::Leaf(counter_ix)) = children.first() else {
            return;
        };
        let counter_ix = *counter_ix;
        let counter = match &self.toks[counter_ix] {
            t if t.kind == TokKind::Ident => t.text.clone(),
            _ => return,
        };
        if !self.tok(seg, for_ix + 2).map(|t| t.is_ident("in")).unwrap_or(false) {
            return;
        }
        // EXPR runs from after `in` to the loop body `{…}`.
        let mut saw_enumerate = false;
        let mut head: Option<String> = None;
        for t in &seg[for_ix + 3..] {
            match t {
                Tree::Group { delim: '{', .. } => break,
                Tree::Leaf(ix) => {
                    let tok = &self.toks[*ix];
                    if tok.is_ident("enumerate") {
                        saw_enumerate = true;
                    }
                    if head.is_none()
                        && tok.kind == TokKind::Ident
                        && !ATOM_SKIP.contains(&tok.text.as_str())
                    {
                        head = Some(tok.text.clone());
                    }
                }
                Tree::Group { .. } => {}
            }
        }
        if saw_enumerate {
            if let Some(head) = head {
                self.counters.insert(counter, (head, counter_ix));
            }
        }
    }

    fn scan_enumerate_closure(&mut self, seg: &[Tree], en_ix: usize) {
        // `enumerate ( ) . map ( |(I, …)| … )`
        if !matches!(seg.get(en_ix + 1), Some(Tree::Group { delim: '(', .. })) {
            return;
        }
        if !parse::is_leaf_punct(self.toks, seg.get(en_ix + 2), ".") {
            return;
        }
        let is_adapter = self
            .tok(seg, en_ix + 3)
            .map(|t| matches!(t.text.as_str(), "map" | "filter_map" | "flat_map" | "for_each"))
            .unwrap_or(false);
        if !is_adapter {
            return;
        }
        let Some(Tree::Group { delim: '(', children, .. }) = seg.get(en_ix + 4) else {
            return;
        };
        // Closure: `|` then a tuple-pattern group.
        if !parse::is_leaf_punct(self.toks, children.first(), "|") {
            return;
        }
        let Some(Tree::Group { delim: '(', children: pat, .. }) = children.get(1) else {
            return;
        };
        let Some(Tree::Leaf(counter_ix)) = pat.first() else {
            return;
        };
        let counter_ix = *counter_ix;
        let counter = match &self.toks[counter_ix] {
            t if t.kind == TokKind::Ident => t.text.clone(),
            _ => return,
        };
        // Walk left over the postfix chain to its start; the head is the
        // chain's first identifier.
        let mut start = en_ix;
        while start > 0 {
            let prev = &seg[start - 1];
            let chainy = match prev {
                Tree::Group { delim: '(' | '[', .. } => true,
                Tree::Leaf(ix) => {
                    let t = &self.toks[*ix];
                    t.kind == TokKind::Ident || t.is_punct(".") || t.is_punct("::")
                }
                Tree::Group { .. } => false,
            };
            if !chainy {
                break;
            }
            start -= 1;
        }
        let head = seg[start..en_ix].iter().find_map(|t| {
            parse::leaf(self.toks, Some(t))
                .filter(|tok| tok.kind == TokKind::Ident)
                .map(|tok| tok.text.clone())
        });
        if let Some(head) = head {
            self.counters.insert(counter, (head, counter_ix));
        }
    }

    /// Pass B: resolve split chains and emit findings/sites, outer levels
    /// before inner so bindings are visible inside nested blocks. While
    /// recursing, closure params and for-loop patterns are pushed onto
    /// [`Self::scopes`] so a split id can be matched against the binding
    /// that is actually in scope, not a same-named one elsewhere in the fn.
    fn walk(&mut self, seq: &[Tree]) {
        for segment in parse::split_statements(self.toks, seq) {
            self.walk_segment(segment);
        }
        // For-loop pattern binders waiting for their body `{…}` group.
        let mut pending: Vec<(String, usize)> = Vec::new();
        for (i, t) in seq.iter().enumerate() {
            match t {
                Tree::Leaf(ix) => {
                    if self.toks[*ix].is_ident("for") {
                        pending = self.for_pattern_binders(seq, i + 1);
                    }
                }
                Tree::Group { delim: '{', children, .. } if !pending.is_empty() => {
                    let n = pending.len();
                    self.scopes.append(&mut pending);
                    self.walk(children);
                    self.scopes.truncate(self.scopes.len() - n);
                }
                Tree::Group { children, .. } => {
                    let binders = self.closure_binders(children);
                    let n = binders.len();
                    self.scopes.extend(binders);
                    self.walk(children);
                    self.scopes.truncate(self.scopes.len() - n);
                }
            }
        }
    }

    /// Collects binder idents of a `for PAT in …` pattern: every ident
    /// leaf (including inside tuple groups) from `start` up to the `in`
    /// keyword, minus binding noise.
    fn for_pattern_binders(&self, seq: &[Tree], start: usize) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        for t in &seq[start.min(seq.len())..] {
            match t {
                Tree::Leaf(ix) => {
                    let tok = &self.toks[*ix];
                    if tok.is_ident("in") {
                        break;
                    }
                    if tok.kind == TokKind::Ident && !ATOM_SKIP.contains(&tok.text.as_str()) {
                        out.push((tok.text.clone(), *ix));
                    }
                }
                Tree::Group { children, .. } => self.collect_binder_leaves(children, &mut out),
            }
        }
        out
    }

    /// If a group's children open with a closure header (`|params| …`,
    /// possibly after `move`), returns the params as binders.
    fn closure_binders(&self, children: &[Tree]) -> Vec<(String, usize)> {
        let mut at = 0usize;
        if parse::leaf(self.toks, children.first()).map(|t| t.is_ident("move")).unwrap_or(false) {
            at = 1;
        }
        if !parse::is_leaf_punct(self.toks, children.get(at), "|") {
            return Vec::new();
        }
        let mut out = Vec::new();
        for t in &children[at + 1..] {
            match t {
                Tree::Leaf(ix) => {
                    let tok = &self.toks[*ix];
                    if tok.is_punct("|") {
                        break;
                    }
                    if tok.kind == TokKind::Ident && !ATOM_SKIP.contains(&tok.text.as_str()) {
                        out.push((tok.text.clone(), *ix));
                    }
                }
                Tree::Group { children, .. } => self.collect_binder_leaves(children, &mut out),
            }
        }
        out
    }

    fn collect_binder_leaves(&self, trees: &[Tree], out: &mut Vec<(String, usize)>) {
        for t in trees {
            match t {
                Tree::Leaf(ix) => {
                    let tok = &self.toks[*ix];
                    if tok.kind == TokKind::Ident && !ATOM_SKIP.contains(&tok.text.as_str()) {
                        out.push((tok.text.clone(), *ix));
                    }
                }
                Tree::Group { children, .. } => self.collect_binder_leaves(children, out),
            }
        }
    }

    fn walk_segment(&mut self, seg: &[Tree]) {
        // `let` target, if this segment binds one.
        let mut let_target: Option<String> = None;
        let mut last_chain: Option<Chain> = None;
        let mut seeded_init = false;
        for (i, t) in seg.iter().enumerate() {
            if parse::is_leaf_ident(self.toks, t, "let") {
                let is_mut =
                    self.tok(seg, i + 1).map(|t| t.is_ident("mut")).unwrap_or(false);
                let name_ix = if is_mut { i + 2 } else { i + 1 };
                let_target = self
                    .tok(seg, name_ix)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone());
            }
            if parse::is_leaf_ident(self.toks, t, "seed_from") {
                seeded_init = true;
            }
        }

        // Split sites at this level: `. split ( label , id )`.
        let mut k = 0usize;
        while k + 2 < seg.len() {
            let is_site = parse::is_leaf_punct(self.toks, seg.get(k), ".")
                && self.tok(seg, k + 1).map(|t| t.is_ident("split")).unwrap_or(false);
            if !is_site {
                k += 1;
                continue;
            }
            let Some(Tree::Group { delim: '(', open, children, .. }) = seg.get(k + 2) else {
                k += 1;
                continue;
            };
            let args = parse::split_on_comma(self.toks, children);
            if args.len() != 2 {
                // `str::split`, `slice::split` and friends take one
                // argument; only two-argument splits are stream mints.
                k += 1;
                continue;
            }
            let line = self.tok(seg, k + 1).map(|t| t.line).unwrap_or(0);
            let receiver = self.resolve_receiver(seg, k);
            let chain = self.check_site(line, receiver, args[0], args[1]);
            if let Some(chain) = &chain {
                self.cache.insert(*open, chain.clone());
                last_chain = Some(chain.clone());
            } else {
                last_chain = None;
            }
            k += 3;
        }

        // Bind the let target to the stream it derives, if any.
        if let Some(name) = let_target {
            if let Some(chain) = last_chain {
                self.chains.insert(name, chain);
            } else if seeded_init {
                self.chains.insert(name, Chain::seed());
            } else if seg.len() >= 2 {
                // `let alias = existing_stream;`
                if let Some(src) = parse::leaf(self.toks, seg.last())
                    .filter(|t| t.kind == TokKind::Ident)
                    .and_then(|t| self.chains.get(&t.text).cloned())
                {
                    self.chains.insert(name, src);
                }
            }
        }
    }

    fn resolve_receiver(&self, seg: &[Tree], dot: usize) -> Chain {
        if dot == 0 {
            return Chain::opaque();
        }
        let r = dot - 1;
        // Chained `.split(…).split(…)`: the receiver ends at the previous
        // split's resolved args group.
        if let Some(Tree::Group { delim: '(', open, .. }) = seg.get(r) {
            if let Some(c) = self.cache.get(open) {
                return c.clone();
            }
        }
        // Bare identifier receiver: a bound stream variable, or opaque.
        if let Some(tok) = self.tok(seg, r).filter(|t| t.kind == TokKind::Ident) {
            let prev_is_path = r >= 1
                && self
                    .tok(seg, r - 1)
                    .map(|p| p.is_punct(".") || p.is_punct("::"))
                    .unwrap_or(false);
            if !prev_is_path {
                return self.chains.get(&tok.text).cloned().unwrap_or_else(Chain::opaque);
            }
        }
        // Complex postfix receiver: `Rng::seed_from(…)` roots a seed
        // chain; fields and unresolved calls are opaque.
        let mut p = r;
        let mut saw_seed_from = false;
        loop {
            let chainy = match &seg[p] {
                Tree::Group { delim: '(' | '[', .. } => true,
                Tree::Leaf(ix) => {
                    let t = &self.toks[*ix];
                    if t.is_ident("seed_from") {
                        saw_seed_from = true;
                    }
                    t.kind == TokKind::Ident || t.is_punct(".") || t.is_punct("::")
                }
                Tree::Group { .. } => false,
            };
            if !chainy || p == 0 {
                break;
            }
            p -= 1;
        }
        if saw_seed_from {
            Chain::seed()
        } else {
            Chain::opaque()
        }
    }

    /// R001 checks for one split site; returns the minted chain when the
    /// label is a literal.
    fn check_site(
        &mut self,
        line: u32,
        receiver: Chain,
        label_arg: &[Tree],
        id_arg: &[Tree],
    ) -> Option<Chain> {
        let label = match (label_arg.len(), parse::leaf(self.toks, label_arg.first())) {
            (1, Some(t)) if t.kind == TokKind::Str => t.text.clone(),
            _ => {
                self.findings.push(Finding {
                    file: self.file.to_string(),
                    line,
                    rule: "R001",
                    message: "split label must be a single string literal: stream identity \
                              must be auditable and registrable in STREAMS.md"
                        .to_string(),
                });
                return None;
            }
        };
        let mut atoms = Vec::new();
        self.collect_atoms(id_arg, &mut atoms);
        for a in atoms {
            // The innermost enclosing closure/for binder of this name, if
            // any; a binder that is not the counter's own binding site
            // shadows the (flow-insensitive) per-fn counter/accumulator
            // facts — `|di| …` over a range is not the `for (di, _) in
            // xs.enumerate()` three statements later.
            let binder = self.scopes.iter().rev().find(|(n, _)| n == &a).map(|&(_, ix)| ix);
            if binder.is_none()
                && self.mut_int_inits.contains(&a)
                && self.compound_assigned.contains(&a)
            {
                self.findings.push(Finding {
                    file: self.file.to_string(),
                    line,
                    rule: "R001",
                    message: format!(
                        "split id for stream '{label}' uses mutable accumulator `{a}`: \
                         visit-order keys silently re-seed when a cull or reorder skips \
                         an iteration (the PR 8 mesh bug class); key by stable entity id"
                    ),
                });
            } else if let Some((head, reg_ix)) = self.counters.get(&a) {
                if binder.map(|ix| ix == *reg_ix).unwrap_or(true)
                    && self.locals.contains(head)
                    && !self.params.contains(head)
                {
                    self.findings.push(Finding {
                        file: self.file.to_string(),
                        line,
                        rule: "R001",
                        message: format!(
                            "split id for stream '{label}' uses enumerate counter `{a}` over \
                             locally-built `{head}` whose order is not pinned by any caller; \
                             key by the element's stable id instead (the PR 8 mesh bug class)"
                        ),
                    });
                }
            }
        }
        let chain = receiver.child(&label);
        self.sites.push(StreamSite {
            file: self.file.to_string(),
            line,
            label,
            chain: chain.render(),
        });
        Some(chain)
    }

    /// Collects "head" identifier atoms from an id-argument expression:
    /// idents that are not path/method/field segments, `as`-cast targets,
    /// or operator keywords.
    fn collect_atoms(&self, trees: &[Tree], out: &mut Vec<String>) {
        for (i, t) in trees.iter().enumerate() {
            match t {
                Tree::Leaf(ix) => {
                    let tok = &self.toks[*ix];
                    if tok.kind != TokKind::Ident
                        || ATOM_SKIP.contains(&tok.text.as_str())
                    {
                        continue;
                    }
                    let prev = i.checked_sub(1).and_then(|j| self.tok(trees, j));
                    if prev
                        .map(|p| p.is_punct(".") || p.is_punct("::") || p.is_ident("as"))
                        .unwrap_or(false)
                    {
                        continue;
                    }
                    if self
                        .tok(trees, i + 1)
                        .map(|n| n.is_punct("::"))
                        .unwrap_or(false)
                    {
                        continue;
                    }
                    out.push(tok.text.clone());
                }
                Tree::Group { children, .. } => self.collect_atoms(children, out),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn run(src: &str) -> (Vec<Finding>, Vec<StreamSite>) {
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        analyze("t.rs", &lexed.tokens, &parsed)
    }

    #[test]
    fn stable_keys_are_clean_and_chains_render() {
        let src = r#"
fn eval(root: &Rng, di: usize, gi: usize) {
    let pair = root.split("cov-pair", di as u64).split("gw", gi as u64);
}
fn plan(cfg: &Config) {
    let root = Rng::seed_from(cfg.seed);
    for m in 0..cfg.mounts {
        let r = root.split("mount", m as u64);
    }
}
"#;
        let (findings, sites) = run(src);
        assert!(findings.is_empty(), "{findings:?}");
        let chains: Vec<_> = sites.iter().map(|s| s.chain.as_str()).collect();
        assert_eq!(chains, vec!["?/cov-pair", "?/cov-pair/gw", "mount"]);
    }

    #[test]
    fn mutable_accumulator_key_is_flagged() {
        let src = r#"
fn resolve(root: &Rng, devices: &[Dev]) {
    let mut link_idx = 0u64;
    for d in devices {
        let s = root.split("mesh-dev", link_idx);
        link_idx += 1;
    }
}
"#;
        let (findings, _) = run(src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "R001");
        assert!(findings[0].message.contains("link_idx"));
    }

    #[test]
    fn enumerate_over_local_container_is_flagged_but_param_is_not() {
        let src = r#"
fn bad(root: &Rng, grid: &Grid) {
    let mut candidates = Vec::new();
    grid.query_into(&mut candidates);
    for (pos, b) in candidates.iter().enumerate() {
        let s = root.split("dev-link", pos as u64);
    }
}
fn good(root: &Rng, probs: &[f64]) {
    for (c, p) in probs.iter().enumerate() {
        let s = root.split("cohort", c as u64);
    }
}
"#;
        let (findings, _) = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("candidates"));
    }

    #[test]
    fn enumerate_closure_form_resolves_head() {
        let src = r#"
fn geo(cfg: &Config, root: &Rng) {
    let arms = cfg.arms.iter().enumerate().map(|(ai, arm)| {
        root.split("geometry", ai as u64)
    }).collect();
    let picked = build_list();
    let out = picked.iter().enumerate().map(|(i, x)| root.split("pick", i as u64)).collect();
}
fn build_list() -> Vec<u32> { Vec::new() }
"#;
        let (findings, _) = run(src);
        // `cfg` is a param (stable); `picked` is a local (flagged).
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("picked"));
    }

    #[test]
    fn closure_param_shadows_same_named_counter_elsewhere() {
        // `di` in the range-map closure is a stable key even though an
        // unrelated `for (di, _) in fails.iter().enumerate()` later in
        // the same fn registers `di` as a counter over a local.
        let src = r#"
fn plan(arm_rng: &Rng, n: usize) {
    let devs = (0..n).map(|di| arm_rng.split("device", di as u64)).collect();
    let mut fails = Vec::new();
    pick_failures(&mut fails);
    for (di, at) in fails.iter().enumerate() {
        record(at, di);
    }
}
"#;
        let (findings, sites) = run(src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(sites.len(), 1);
        // …but using the enumerate counter in its *own* loop still flags.
        let bad = r#"
fn plan(arm_rng: &Rng) {
    let mut fails = Vec::new();
    pick_failures(&mut fails);
    for (di, at) in fails.iter().enumerate() {
        let r = arm_rng.split("fail", di as u64);
    }
}
"#;
        let (findings, _) = run(bad);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("fails"));
    }

    #[test]
    fn computed_label_is_flagged() {
        let src = "fn f(r: &Rng, name: &str) { let s = r.split(name, 0); }";
        let (findings, sites) = run(src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("string literal"));
        assert!(sites.is_empty());
    }

    #[test]
    fn one_argument_split_is_not_a_stream_mint() {
        let src = "fn f(s: &str) { for part in s.split('-') { } let v = s.split(\",\"); }";
        let (findings, sites) = run(src);
        assert!(findings.is_empty());
        assert!(sites.is_empty());
    }

    #[test]
    fn seed_rooted_chains_render_without_question_mark() {
        let src = r#"
fn f(seed: u64) {
    let base = Rng::seed_from(seed);
    let a = base.split("reactive", 0);
    let b = Rng::seed_from(seed).split("inline", 1);
}
"#;
        let (_, sites) = run(src);
        let chains: Vec<_> = sites.iter().map(|s| s.chain.as_str()).collect();
        assert_eq!(chains, vec!["reactive", "inline"]);
    }
}
