//! The simlint rule set.
//!
//! Each rule enforces one of the workspace's written-but-otherwise-unchecked
//! determinism or panic-safety invariants (DESIGN.md §8):
//!
//! * **D001** — no `std` `HashMap`/`HashSet` in digest-feeding crates.
//!   Their iteration order is seeded per-process (`RandomState`), so any
//!   iteration that feeds a digest, a report, or an event schedule is a
//!   reproducibility time bomb. Use `BTreeMap`/`BTreeSet` or sort first.
//! * **D002** — no `Instant`/`SystemTime` outside the profiling allowlist
//!   (the `bench` crate; `EngineProfile` sites carry explicit pragmas).
//!   Wall-clock reads in simulation code are nondeterminism by definition.
//! * **D003** — no OS entropy or ambient RNG (`thread_rng`, `OsRng`,
//!   `from_entropy`, `getrandom`, `RandomState`, `rand::…`). All
//!   randomness flows from `simcore::Rng` so a seed reproduces a run.
//! * **P001** — no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in
//!   non-test code. The simulation core is panic-free by contract (PR 1);
//!   this extends the clippy `unwrap_used`/`expect_used` gate to a tool we
//!   fully control.
//! * **F001** — no float `==`/`!=` against float literals and no
//!   `.partial_cmp(…)` chains in non-test code; use `total_cmp` (the PR 1
//!   convention) so NaN and signed zero cannot poison an ordering.
//! * **D004** — no indexed `devices[…]` access in digest-feeding crates.
//!   The device population is a struct-of-arrays [`DeviceStore`] (PR 7);
//!   row-at-a-time poking through a `devices` vector bypasses the store's
//!   incremental cohort census and stuck-device index, silently desyncing
//!   the aggregate weekly sampler from the population it summarizes. Go
//!   through the store's accessors (`row`/`set_row`/`mark_failed`/…).
//!
//! The flow-aware v2 rules (DESIGN.md §15) live in their own modules and
//! are run from [`check_file`] / the workspace pass:
//!
//! * **R001** ([`crate::lineage`]) — `Rng::split` keys must be a string
//!   literal plus stable-id arguments; visit-order keys (enumerate
//!   counters over locally-built containers, mutable accumulators) are
//!   the PR 8 bug class.
//! * **R002** (workspace pass + [`crate::registry`]) — two call sites
//!   minting the same stream lineage chain are an error unless the chain
//!   is registered in `STREAMS.md`; stale registry entries are errors too.
//! * **R003** ([`crate::taint`]) — values derived from wall clocks, env
//!   vars, thread/pointer identity may not flow into digest sinks.
//! * **R004** (here) — a pragma that waives nothing is itself a finding,
//!   so the allow-ledger can only shrink as code heals.
//!
//! Rules operate on the token stream from [`crate::lexer`]; test code
//! (`#[cfg(test)]` items, `#[test]` functions, files under `tests/`) is
//! exempt from every rule, and individual lines can be waived with an
//! auditable pragma:
//!
//! ```text
//! // simlint: allow(D002, profiling wall-clock is excluded from digests)
//! ```
//!
//! A trailing pragma waives its own line; a standalone pragma waives the
//! next code line. A pragma without a reason (or naming an unknown rule)
//! is itself a finding — the ledger stays greppable and honest.

use crate::lexer::{lex, LineComment, TokKind, Token};
use crate::lineage::{self, StreamSite};
use crate::taint;

/// Rule identifiers, in report order.
pub const RULE_IDS: [&str; 11] =
    ["D001", "D002", "D003", "D004", "P001", "F001", "R001", "R002", "R003", "R004", "SL000"];

/// Crates whose state feeds run digests, golden traces, or rendered
/// exhibits. `HashMap` iteration anywhere in these is a D001 finding.
/// Today that is every runtime crate: `telemetry` computes the digests,
/// `bench` cross-checks serial vs parallel digests, and the root
/// workspace package hosts the integration examples that print golden
/// output. Only `simlint` itself is out of scope (it never touches
/// simulation state).
const DIGEST_FEEDING_CRATES: [&str; 13] = [
    "simcore",
    "core",
    "fleet",
    "net",
    "energy",
    "econ",
    "backhaul",
    "reliability",
    "chaos",
    "telemetry",
    "bench",
    "serve",
    "workspace",
];

/// Crates allowed to read the wall clock: `bench` measures real elapsed
/// time by design, and `serve` implements request deadlines and
/// admission timing — wall-clock concerns of the daemon, never of the
/// simulation it runs (run results stay pure functions of the request).
/// Everything else needs a pragma (see `EngineProfile`).
const WALL_CLOCK_CRATES: [&str; 2] = ["bench", "serve"];

/// Ambient-RNG identifiers banned by D003.
const ENTROPY_IDENTS: [&str; 8] = [
    "thread_rng",
    "OsRng",
    "from_entropy",
    "getrandom",
    "RandomState",
    "StdRng",
    "SmallRng",
    "ThreadRng",
];

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`D001`, …, or `SL000` for malformed pragmas).
    pub rule: &'static str,
    /// Human-readable explanation with the expected fix.
    pub message: String,
}

impl Finding {
    /// Renders the finding in the `file:line: [RULE] message` form the
    /// verify gate prints.
    pub fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Outcome of linting one file.
#[derive(Clone, Debug, Default)]
pub struct FileReport {
    /// Findings that survived pragma filtering, in line order.
    pub findings: Vec<Finding>,
    /// Number of would-be findings waived by a valid pragma.
    pub allowed: usize,
    /// Non-test stream mint sites, for the workspace R002 pass.
    pub sites: Vec<StreamSite>,
}

/// A parsed `// simlint: allow(RULE, reason)` pragma.
#[derive(Clone, Debug)]
struct Pragma {
    rule: String,
    reason: String,
    /// The line the pragma comment starts on (R004 anchors here).
    at: u32,
    /// The line(s) this pragma waives.
    lines: Vec<u32>,
}

/// Lints one file's source.
///
/// `file` is the path used in findings (workspace-relative by convention),
/// `crate_name` scopes the per-crate rules (`"workspace"` for the root
/// package), and `is_test_file` marks whole-file test exemption (files
/// under a `tests/` directory — they compile with `cfg(test)`).
pub fn check_file(file: &str, crate_name: &str, src: &str, is_test_file: bool) -> FileReport {
    let lexed = lex(src);
    let mut report = FileReport::default();

    let test_lines = if is_test_file { None } else { Some(test_line_mask(&lexed.tokens)) };
    let in_test = |line: u32| match &test_lines {
        None => true,
        Some(mask) => mask.get(line as usize).copied().unwrap_or(false),
    };

    let mut raw: Vec<Finding> = Vec::new();
    let pragmas = collect_pragmas(file, &lexed.comments, &lexed.tokens, &mut raw);
    let waived = |rule: &str, line: u32| {
        pragmas.iter().any(|p| p.rule == rule && p.lines.contains(&line))
    };

    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        let prev = i.checked_sub(1).and_then(|j| toks.get(j));
        let next = toks.get(i + 1);
        let prev_is = |s: &str| prev.map(|p| p.is_punct(s)).unwrap_or(false);
        let next_is = |s: &str| next.map(|p| p.is_punct(s)).unwrap_or(false);

        match t.kind {
            TokKind::Ident => {
                let name = t.text.as_str();
                if (name == "HashMap" || name == "HashSet")
                    && DIGEST_FEEDING_CRATES.contains(&crate_name)
                {
                    raw.push(Finding {
                        file: file.to_string(),
                        line: t.line,
                        rule: "D001",
                        message: format!(
                            "std::collections::{name} in digest-feeding crate `{crate_name}`: \
                             iteration order is per-process random; use BTree{} or sort before \
                             iterating",
                            &name[4..]
                        ),
                    });
                }
                if (name == "Instant" || name == "SystemTime")
                    && !WALL_CLOCK_CRATES.contains(&crate_name)
                {
                    raw.push(Finding {
                        file: file.to_string(),
                        line: t.line,
                        rule: "D002",
                        message: format!(
                            "wall-clock type `{name}` outside the profiling allowlist: \
                             simulation code must use SimTime; profiling sites need an \
                             explicit pragma"
                        ),
                    });
                }
                if ENTROPY_IDENTS.contains(&name) || (name == "rand" && next_is("::")) {
                    raw.push(Finding {
                        file: file.to_string(),
                        line: t.line,
                        rule: "D003",
                        message: format!(
                            "ambient randomness `{name}`: all entropy must flow from \
                             simcore::Rng so a seed reproduces the run"
                        ),
                    });
                }
                if (name == "unwrap" || name == "expect") && prev_is(".") && next_is("(") {
                    raw.push(Finding {
                        file: file.to_string(),
                        line: t.line,
                        rule: "P001",
                        message: format!(
                            ".{name}() in non-test code: the simulation core is panic-free \
                             by contract; propagate an error or handle the None/Err arm"
                        ),
                    });
                }
                if (name == "panic" || name == "todo" || name == "unimplemented")
                    && next_is("!")
                {
                    raw.push(Finding {
                        file: file.to_string(),
                        line: t.line,
                        rule: "P001",
                        message: format!(
                            "{name}! in non-test code: the simulation core is panic-free by \
                             contract; return an error instead"
                        ),
                    });
                }
                if name == "devices"
                    && next_is("[")
                    && DIGEST_FEEDING_CRATES.contains(&crate_name)
                {
                    raw.push(Finding {
                        file: file.to_string(),
                        line: t.line,
                        rule: "D004",
                        message: "indexed `devices[…]` access in a digest-feeding crate: \
                                  the population is a struct-of-arrays DeviceStore; use its \
                                  accessors (row/set_row/mark_failed/…) so the cohort census \
                                  and stuck index stay in sync with the aggregate sampler"
                            .to_string(),
                    });
                }
                if name == "partial_cmp" && prev_is(".") {
                    raw.push(Finding {
                        file: file.to_string(),
                        line: t.line,
                        rule: "F001",
                        message: ".partial_cmp() in non-test code: use f64::total_cmp so NaN \
                                  cannot poison the ordering (PR 1 convention)"
                            .to_string(),
                    });
                }
            }
            TokKind::Punct if t.text == "==" || t.text == "!=" => {
                let float_side = prev.map(|p| p.kind == TokKind::Float).unwrap_or(false)
                    || next.map(|p| p.kind == TokKind::Float).unwrap_or(false);
                if float_side {
                    raw.push(Finding {
                        file: file.to_string(),
                        line: t.line,
                        rule: "F001",
                        message: format!(
                            "float literal compared with `{}`: exact float equality is \
                             fragile; compare with a tolerance or use total_cmp",
                            t.text
                        ),
                    });
                }
            }
            _ => {}
        }
    }

    // Flow-aware v2 rules share one parse of the token stream.
    let parsed = crate::parse::parse(toks);
    let (mut lineage_findings, sites) = lineage::analyze(file, toks, &parsed);
    raw.append(&mut lineage_findings);
    if DIGEST_FEEDING_CRATES.contains(&crate_name) {
        raw.append(&mut taint::analyze(file, toks, &parsed));
    }

    let mut used = vec![false; pragmas.len()];
    for f in raw {
        if in_test(f.line) {
            continue;
        }
        if let Some(i) =
            pragmas.iter().position(|p| p.rule == f.rule && p.lines.contains(&f.line))
        {
            used[i] = true;
            report.allowed += 1;
            continue;
        }
        report.findings.push(f);
    }

    // R004: a pragma that waived nothing is stale — the ledger only stays
    // honest if every entry still earns its keep. Test code is exempt as
    // everywhere else; `allow(R004, …)` meta-pragmas can waive an entry
    // that is intentionally kept (e.g. around conditionally-compiled code)
    // and are never themselves reported stale.
    if !is_test_file {
        for (p, was_used) in pragmas.iter().zip(&used) {
            if *was_used || p.rule == "R004" || in_test(p.at) {
                continue;
            }
            if waived("R004", p.at) {
                report.allowed += 1;
                continue;
            }
            report.findings.push(Finding {
                file: file.to_string(),
                line: p.at,
                rule: "R004",
                message: format!(
                    "stale pragma: `allow({}, {})` waives nothing; delete it or fix the \
                     rule id/placement",
                    p.rule, p.reason
                ),
            });
        }
    }

    report.sites = sites.into_iter().filter(|s| !in_test(s.line)).collect();
    report.findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    report
}

/// Builds a per-line mask of test code: lines covered by an item carrying
/// `#[test]` / `#[cfg(test)]` / `#[cfg(any(test, …))]`.
///
/// Outer attributes only — inner attributes (`#![…]`) configure the
/// enclosing item and never mark a region. `#[cfg_attr(test, …)]` is a
/// conditional attribute, not a test marker, and is deliberately ignored.
fn test_line_mask(toks: &[Token]) -> Vec<bool> {
    let max_line = toks.last().map(|t| t.line as usize).unwrap_or(0);
    let mut mask = vec![false; max_line + 2];
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct("#")
            && toks.get(i + 1).map(|t| t.is_punct("[")).unwrap_or(false))
        {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching `]`.
        let attr_start = i;
        let mut j = i + 2;
        let mut depth = 1i32;
        let mut attr_idents: Vec<&str> = Vec::new();
        while j < toks.len() && depth > 0 {
            match &toks[j] {
                t if t.is_punct("[") => depth += 1,
                t if t.is_punct("]") => depth -= 1,
                t if t.kind == TokKind::Ident => attr_idents.push(t.text.as_str()),
                _ => {}
            }
            j += 1;
        }
        let is_test_marker = match attr_idents.first() {
            Some(&"test") => true,
            Some(&"cfg") => attr_idents.contains(&"test"),
            _ => false,
        };
        if !is_test_marker {
            i = j;
            continue;
        }
        // Find the end of the annotated item: the matching `}` of its first
        // top-level brace block, or a `;` before any brace opens.
        let mut k = j;
        let mut brace = 0i32;
        let mut end = None;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct("{") {
                brace += 1;
            } else if t.is_punct("}") {
                brace -= 1;
                if brace == 0 {
                    end = Some(k);
                    break;
                }
            } else if t.is_punct(";") && brace == 0 {
                end = Some(k);
                break;
            }
            k += 1;
        }
        let end = end.unwrap_or(toks.len() - 1);
        let (from, to) = (toks[attr_start].line as usize, toks[end].line as usize);
        for line in from..=to.min(mask.len() - 1) {
            mask[line] = true;
        }
        i = end + 1;
    }
    mask
}

/// Parses `simlint:` pragmas out of line comments. Malformed pragmas are
/// appended to `findings` as `SL000`.
fn collect_pragmas(
    file: &str,
    comments: &[LineComment],
    toks: &[Token],
    findings: &mut Vec<Finding>,
) -> Vec<Pragma> {
    let mut out = Vec::new();
    for c in comments {
        // Only comments of the exact form `// simlint: …` are pragma
        // candidates. Prose that merely *mentions* `simlint:` (docs, this
        // comment) must not parse — but a typo'd pragma still fails loudly
        // as SL000 rather than silently not waiving anything.
        let stripped = c.text.trim_start_matches('/').trim_start();
        let Some(body) = stripped.strip_prefix("simlint:") else { continue };
        let body = body.trim();
        let parsed = parse_allow(body);
        match parsed {
            Ok((rule, reason)) => {
                let lines = if c.standalone {
                    // A standalone pragma waives the next code line; chains
                    // of standalone pragmas all reach the same target line.
                    match toks.iter().find(|t| t.line > c.line).map(|t| t.line) {
                        Some(target) => vec![target],
                        None => Vec::new(),
                    }
                } else {
                    vec![c.line]
                };
                out.push(Pragma { rule, reason, at: c.line, lines });
            }
            Err(why) => findings.push(Finding {
                file: file.to_string(),
                line: c.line,
                rule: "SL000",
                message: format!("malformed simlint pragma ({why}); expected \
                                  `// simlint: allow(RULE, reason)`"),
            }),
        }
    }
    out
}

/// Parses the `allow(RULE, reason)` body of a pragma.
fn parse_allow(body: &str) -> Result<(String, String), &'static str> {
    let rest = body.strip_prefix("allow").ok_or("missing `allow`")?.trim_start();
    let rest = rest.strip_prefix('(').ok_or("missing `(`")?;
    let inner = rest.strip_suffix(')').ok_or("missing closing `)`")?;
    let (rule, reason) = inner.split_once(',').ok_or("missing `, reason`")?;
    let rule = rule.trim();
    let reason = reason.trim();
    if !RULE_IDS.contains(&rule) {
        return Err("unknown rule id");
    }
    if reason.is_empty() {
        return Err("empty reason");
    }
    Ok((rule.to_string(), reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        check_file("t.rs", "simcore", src, false).findings
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "fn prod() { }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let x: Option<u8> = None; x.unwrap(); }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn test_attr_fn_is_exempt_but_code_after_is_not() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn prod() { y.unwrap(); }\n";
        let f = lint(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn cfg_attr_test_is_not_a_test_marker() {
        let src = "#[cfg_attr(test, allow(dead_code))]\nfn prod() { x.unwrap(); }\n";
        assert_eq!(lint(src).len(), 1);
    }

    #[test]
    fn standalone_pragma_waives_next_line_only() {
        let src = "// simlint: allow(P001, checked by construction above)\nx.unwrap();\ny.unwrap();\n";
        let f = lint(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn trailing_pragma_waives_its_line() {
        let src = "x.unwrap(); // simlint: allow(P001, infallible by construction)\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn pragma_without_reason_is_a_finding() {
        let src = "// simlint: allow(P001)\nlet ok = 1;\n";
        let f = lint(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "SL000");
    }

    #[test]
    fn unwrap_or_does_not_fire() {
        let src = "let v = o.unwrap_or(0); let w = o.unwrap_or_else(f); let u = o.unwrap_or_default();\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn fn_partial_cmp_definition_does_not_fire() {
        let src = "impl PartialOrd for T { fn partial_cmp(&self, o: &T) -> Option<Ordering> { None } }\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn d002_allows_bench_crate() {
        let src = "let t0 = Instant::now();\n";
        assert!(check_file("b.rs", "bench", src, false).findings.is_empty());
        assert_eq!(lint(src).len(), 1);
    }

    #[test]
    fn serve_crate_may_read_wall_clock_but_still_feeds_digests() {
        // Deadlines and admission timing are daemon concerns, so D002 is
        // waived for `serve` — but its results land in the digest cache,
        // so the determinism rules (D001 here) still apply in full.
        let clock = "let deadline = Instant::now() + timeout;\n";
        assert!(check_file("s.rs", "serve", clock, false).findings.is_empty());
        let map = "use std::collections::HashMap;\n";
        let f = check_file("s.rs", "serve", map, false).findings;
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "D001");
    }

    #[test]
    fn d004_fires_only_on_subscripted_devices() {
        let bad = "let d = arm.devices[i];\n";
        let ok = "let n = arm.devices.len();\nlet devices = 3;\nlet h = homes[i];\n";
        let f = lint(bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "D004");
        assert!(lint(ok).is_empty());
    }

    #[test]
    fn float_eq_fires_only_on_float_literals() {
        let bad = "if x == 1.0 { }\n";
        let ok = "if n == 10 { }\nif s == other { }\nfor i in 0..10 { }\n";
        assert_eq!(lint(bad).len(), 1);
        assert!(lint(ok).is_empty());
    }
}
