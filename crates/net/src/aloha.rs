//! Pure-ALOHA collision analysis for transmit-only populations.
//!
//! The paper's initial devices are transmit-only (§4.1): no listening, no
//! acknowledgements, no retries — pure ALOHA. A packet survives if no
//! overlapping transmission on the same channel/SF arrives within one
//! airtime on either side, unless the receiver *captures* the stronger
//! packet. These formulas bound how far "just deploy more sensors" scales
//! before the channel itself becomes the obsolescence risk.

use simcore::rng::Rng;

/// Offered load `G`: expected transmissions per airtime across the
/// population (`n` devices, each with `airtime_s` every `interval_s`).
pub fn offered_load(n: u64, airtime_s: f64, interval_s: f64) -> f64 {
    assert!(airtime_s > 0.0, "airtime must be positive");
    assert!(interval_s > 0.0, "interval must be positive");
    n as f64 * airtime_s / interval_s
}

/// Pure-ALOHA delivery probability without capture: `e^(-2G)`.
pub fn delivery_prob(g: f64) -> f64 {
    (-2.0 * g.max(0.0)).exp()
}

/// Pure-ALOHA delivery probability with capture: a colliding packet still
/// survives with probability `capture_prob` (the chance its power exceeds
/// the interferer by the capture threshold — LoRa demodulators routinely
/// capture ≥ 6 dB-stronger packets).
pub fn delivery_prob_with_capture(g: f64, capture_prob: f64) -> f64 {
    let p_clear = delivery_prob(g);
    let c = capture_prob.clamp(0.0, 1.0);
    p_clear + (1.0 - p_clear) * c
}

/// Channel throughput `S = G·e^(-2G)`, maximized at `G = 0.5` with
/// `S ≈ 0.184`.
pub fn throughput(g: f64) -> f64 {
    g.max(0.0) * delivery_prob(g)
}

/// The maximum population sustaining at least `min_delivery` delivery
/// probability (no capture), inverted from `e^(-2G) = min_delivery`.
pub fn max_population(airtime_s: f64, interval_s: f64, min_delivery: f64) -> u64 {
    assert!(
        (0.0..1.0).contains(&min_delivery) && min_delivery > 0.0,
        "delivery target must be in (0,1)"
    );
    let g_max = -min_delivery.ln() / 2.0;
    let per_device = airtime_s / interval_s;
    (g_max / per_device).floor() as u64
}

/// Monte-Carlo validation: simulates `n` devices transmitting at uniformly
/// random phases over `interval_s` and measures the collision-free fraction
/// for a tagged device over `trials` rounds.
pub fn simulate_delivery(
    n: u64,
    airtime_s: f64,
    interval_s: f64,
    rng: &mut Rng,
    trials: usize,
) -> f64 {
    assert!(n >= 1, "need at least the tagged device");
    let mut ok = 0usize;
    for _ in 0..trials {
        let t0 = rng.next_f64() * interval_s;
        let mut clear = true;
        for _ in 0..(n - 1) {
            let t = rng.next_f64() * interval_s;
            if (t - t0).abs() < airtime_s {
                clear = false;
                break;
            }
        }
        if clear {
            ok += 1;
        }
    }
    ok as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_at_known_loads() {
        assert!((delivery_prob(0.0) - 1.0).abs() < 1e-12);
        assert!((delivery_prob(0.5) - (-1.0f64).exp()).abs() < 1e-12);
        assert!(delivery_prob(-1.0) == 1.0);
    }

    #[test]
    fn throughput_peaks_at_half() {
        let peak = throughput(0.5);
        assert!((peak - 0.5 * (-1.0f64).exp()).abs() < 1e-12);
        assert!(throughput(0.4) < peak);
        assert!(throughput(0.6) < peak);
    }

    #[test]
    fn capture_improves_delivery() {
        let g = 0.5;
        let plain = delivery_prob(g);
        let cap = delivery_prob_with_capture(g, 0.5);
        assert!(cap > plain);
        assert!((cap - (plain + (1.0 - plain) * 0.5)).abs() < 1e-12);
        assert_eq!(delivery_prob_with_capture(g, 0.0), plain);
        assert_eq!(delivery_prob_with_capture(g, 1.0), 1.0);
    }

    #[test]
    fn offered_load_arithmetic() {
        // 10,000 devices, 62 ms airtime, hourly: G ≈ 0.172.
        let g = offered_load(10_000, 0.0617, 3_600.0);
        assert!((g - 0.171_4).abs() < 0.001, "g {g}");
    }

    #[test]
    fn max_population_inverts() {
        let airtime = 0.0617;
        let interval = 3_600.0;
        let n = max_population(airtime, interval, 0.9);
        // Check the bound is tight: n gives >= 0.9, n+1 gives < 0.9.
        let g_n = offered_load(n, airtime, interval);
        let g_n1 = offered_load(n + 1, airtime, interval);
        assert!(delivery_prob(g_n) >= 0.9);
        assert!(delivery_prob(g_n1) < 0.9);
    }

    #[test]
    fn simulation_matches_analytic() {
        // Make per-device load heavy so G is meaningful with few devices.
        let n = 50;
        let airtime = 0.5;
        let interval = 100.0;
        let g = offered_load(n, airtime, interval);
        let mut rng = Rng::seed_from(17);
        let sim = simulate_delivery(n, airtime, interval, &mut rng, 40_000);
        // The tagged-device sim has n-1 interferers; analytic uses n. Close
        // enough at this n for a 2% tolerance.
        let analytic = delivery_prob(g);
        assert!((sim - analytic).abs() < 0.02, "sim {sim} analytic {analytic}");
    }

    #[test]
    #[should_panic(expected = "delivery target")]
    fn max_population_rejects_bad_target() {
        max_population(0.1, 100.0, 1.0);
    }
}
