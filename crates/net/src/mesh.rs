//! Multi-hop mesh coverage: extending gateways with device relays.
//!
//! The paper's initial devices are transmit-only, so its arm is single-hop
//! by construction — but §3.1's heterogeneity point cuts both ways: richer
//! devices can relay for poorer ones, trading device energy for gateway
//! density. This module resolves multi-hop coverage over the same
//! placement-static shadowing as [`crate::coverage`] and measures what the
//! relay economy costs: who carries whose traffic, and how much coverage
//! each additional hop buys.
//!
//! Both link passes (device→gateway and device↔device) are grid-backed
//! and keyed per unordered pair, mirroring [`crate::coverage::resolve`]:
//! a pair's shadowing stream depends only on its indices, never on which
//! other pairs exist or the order they are enumerated, so culling
//! out-of-range pairs through the [`SpatialGrid`] is bit-identical to
//! the exhaustive pairwise oracle [`resolve_mesh_pairwise`]. (The seed
//! version drew device↔device shadowing sequentially from a per-`a`
//! stream over `b` — inserting or removing one device perturbed every
//! later pair's draw; per-pair keying fixes that CRN hazard outright.)

use simcore::rng::Rng;

use crate::coverage::{Fnv, RadioParams};
use crate::grid::SpatialGrid;
use crate::link::Link;
use crate::topology::Point;

/// The resolved multi-hop structure.
#[derive(Clone, Debug)]
pub struct MeshCoverage {
    /// Hop count to the nearest gateway per device (`None` = unreachable;
    /// 1 = direct).
    pub hops: Vec<Option<u8>>,
    /// Uplink parent per device: `Parent::Gateway(g)` or
    /// `Parent::Device(d)`; `None` for unreachable devices.
    pub parent: Vec<Option<Parent>>,
    /// Number of descendant devices whose traffic each device relays.
    pub relay_load: Vec<u32>,
}

/// A device's chosen uplink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Parent {
    /// Direct to a gateway.
    Gateway(usize),
    /// Through another device.
    Device(usize),
}

/// Margin of device→gateway pair (di, gi) if usable; one keyed draw.
fn eval_gw_pair(
    d: &Point,
    g: &Point,
    di: usize,
    gi: usize,
    params: &RadioParams,
    root: &Rng,
) -> Option<f64> {
    let mut pair_rng = root.split("mesh-gw-pair", di as u64).split("gw", gi as u64);
    let shadow = params.pathloss.sample_shadowing(&mut pair_rng);
    let loss = params.pathloss.loss_with_shadowing(d.distance(g), shadow);
    let link = Link { tx: params.tx, loss, rx_model: params.rx_model };
    link.is_usable(params.usable_margin_db).then(|| link.margin().0)
}

/// Margin of device↔device pair `a < b` if usable; one keyed draw per
/// unordered pair keeps the link symmetric by construction.
fn eval_dev_pair(
    devices: &[Point],
    a: usize,
    b: usize,
    params: &RadioParams,
    root: &Rng,
) -> Option<f64> {
    debug_assert!(a < b, "device pairs are keyed unordered, a < b");
    let mut pair_rng = root.split("mesh-dev-pair", a as u64).split("dev", b as u64);
    let shadow = params.pathloss.sample_shadowing(&mut pair_rng);
    let loss = params
        .pathloss
        // simlint: allow(D004, local radio-position slice, not the fleet DeviceStore)
        .loss_with_shadowing(devices[a].distance(&devices[b]), shadow);
    let link = Link { tx: params.tx, loss, rx_model: params.rx_model };
    link.is_usable(params.usable_margin_db).then(|| link.margin().0)
}

/// Resolves mesh coverage with at most `max_hops` hops.
///
/// Links (device↔gateway and device↔device) are sampled once with
/// placement-static shadowing; parents are chosen breadth-first (fewest
/// hops, then strongest link), so routes are shortest-path trees.
///
/// Candidate pairs come from [`SpatialGrid`] queries at the provable
/// [`RadioParams::cull_radius_m`], so cost is O((n + m) · candidates)
/// instead of O(n² + n·m).
pub fn resolve_mesh(
    devices: &[Point],
    gateways: &[Point],
    params: &RadioParams,
    max_hops: u8,
    rng: &mut Rng,
) -> MeshCoverage {
    assert!(max_hops >= 1, "need at least one hop");
    let n = devices.len();
    let cull = params.cull_radius_m();
    let mut candidates: Vec<u32> = Vec::new();

    // Usable device->gateway links.
    let gw_grid = SpatialGrid::build(gateways, cull);
    let mut gw_links: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (di, d) in devices.iter().enumerate() {
        gw_grid.within_into(*d, cull, &mut candidates);
        for &gi in &candidates {
            let gi = gi as usize;
            if let Some(m) = eval_gw_pair(d, &gateways[gi], di, gi, params, rng) {
                gw_links[di].push((gi, m));
            }
        }
    }

    // Usable device->device links (symmetric by construction: one draw per
    // unordered pair).
    let dev_grid = SpatialGrid::build(devices, cull);
    let mut dev_links: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (a, d) in devices.iter().enumerate() {
        dev_grid.within_into(*d, cull, &mut candidates);
        for &b in &candidates {
            let b = b as usize;
            if b <= a {
                continue;
            }
            if let Some(m) = eval_dev_pair(devices, a, b, params, rng) {
                dev_links[a].push((b, m));
                dev_links[b].push((a, m));
            }
        }
    }
    mesh_from_links(n, &gw_links, &dev_links, max_hops)
}

/// The exhaustive pairwise reference oracle for [`resolve_mesh`] — same
/// per-pair streams, every pair evaluated. Differential-harness use only.
#[cfg(feature = "reference-mode")]
pub fn resolve_mesh_pairwise(
    devices: &[Point],
    gateways: &[Point],
    params: &RadioParams,
    max_hops: u8,
    rng: &mut Rng,
) -> MeshCoverage {
    assert!(max_hops >= 1, "need at least one hop");
    let n = devices.len();
    let mut gw_links: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (di, d) in devices.iter().enumerate() {
        for (gi, g) in gateways.iter().enumerate() {
            if let Some(m) = eval_gw_pair(d, g, di, gi, params, rng) {
                gw_links[di].push((gi, m));
            }
        }
    }
    let mut dev_links: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for a in 0..n {
        for b in (a + 1)..n {
            if let Some(m) = eval_dev_pair(devices, a, b, params, rng) {
                dev_links[a].push((b, m));
                dev_links[b].push((a, m));
            }
        }
    }
    mesh_from_links(n, &gw_links, &dev_links, max_hops)
}

/// BFS from the gateways over resolved links — shared by the grid path
/// and the oracle so structure construction is identical code.
fn mesh_from_links(
    n: usize,
    gw_links: &[Vec<(usize, f64)>],
    dev_links: &[Vec<(usize, f64)>],
    max_hops: u8,
) -> MeshCoverage {
    let mut hops: Vec<Option<u8>> = vec![None; n];
    let mut parent: Vec<Option<Parent>> = vec![None; n];
    let mut frontier: Vec<usize> = Vec::new();
    for di in 0..n {
        if let Some(&(gi, _)) = gw_links[di]
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
        {
            hops[di] = Some(1);
            parent[di] = Some(Parent::Gateway(gi));
            frontier.push(di);
        }
    }
    let mut depth = 1u8;
    while depth < max_hops && !frontier.is_empty() {
        let mut next = Vec::new();
        // Deterministic order: ascending device index.
        for &u in &frontier {
            for &(v, margin) in &dev_links[u] {
                if hops[v].is_none() {
                    hops[v] = Some(depth + 1);
                    parent[v] = Some(Parent::Device(u));
                    next.push((v, margin));
                }
            }
        }
        next.sort_by_key(|&(v, _)| v);
        frontier = next.into_iter().map(|(v, _)| v).collect();
        depth += 1;
    }

    // Relay load: count descendants per device.
    let mut relay_load = vec![0u32; n];
    for di in 0..n {
        let mut cur = parent[di];
        let mut guard = 0;
        while let Some(Parent::Device(p)) = cur {
            relay_load[p] += 1;
            cur = parent[p];
            guard += 1;
            assert!(guard <= n, "parent chain must be acyclic");
        }
    }
    MeshCoverage { hops, parent, relay_load }
}

impl MeshCoverage {
    /// Fraction of devices with a route to some gateway.
    pub fn covered_fraction(&self) -> f64 {
        if self.hops.is_empty() {
            return 0.0;
        }
        self.hops.iter().filter(|h| h.is_some()).count() as f64 / self.hops.len() as f64
    }

    /// Mean hops among covered devices.
    pub fn mean_hops(&self) -> f64 {
        let covered: Vec<u8> = self.hops.iter().flatten().copied().collect();
        if covered.is_empty() {
            return 0.0;
        }
        covered.iter().map(|&h| h as f64).sum::<f64>() / covered.len() as f64
    }

    /// The heaviest relay burden on any single device.
    pub fn max_relay_load(&self) -> u32 {
        self.relay_load.iter().copied().max().unwrap_or(0)
    }

    /// Mean TX multiplier per covered device: own packet plus one relay
    /// transmission per descendant, averaged — the energy price of mesh.
    pub fn mean_tx_multiplier(&self) -> f64 {
        let covered: Vec<usize> = (0..self.hops.len())
            .filter(|&i| self.hops[i].is_some())
            .collect();
        if covered.is_empty() {
            return 0.0;
        }
        covered
            .iter()
            .map(|&i| 1.0 + self.relay_load[i] as f64)
            .sum::<f64>()
            / covered.len() as f64
    }

    /// FNV-1a 64-bit digest of the full mesh structure (hops, parents,
    /// relay loads) for differential and bench cross-checks.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.hops.len() as u64);
        for hop in &self.hops {
            h.write_u64(hop.map_or(u64::MAX, u64::from));
        }
        for p in &self.parent {
            match p {
                None => h.write_u64(0),
                Some(Parent::Gateway(g)) => {
                    h.write_u64(1);
                    h.write_u64(*g as u64);
                }
                Some(Parent::Device(d)) => {
                    h.write_u64(2);
                    h.write_u64(*d as u64);
                }
            }
        }
        for &l in &self.relay_load {
            h.write_u64(u64::from(l));
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ieee802154;
    use crate::link::ReceptionModel;
    use crate::pathloss::LogDistance;
    use crate::units::Dbm;

    fn params() -> RadioParams {
        RadioParams {
            tx: Dbm(10.0),
            rx_model: ReceptionModel::at_sensitivity(ieee802154::SENSITIVITY),
            pathloss: LogDistance::urban_2450(),
            usable_margin_db: 3.0,
        }
    }

    /// A chain: gateway at origin, devices strung east — each reliably
    /// hears its neighbors (60 m links have ~8 dB median margin at
    /// 2.4 GHz) but the tail is far beyond direct gateway reach.
    fn chain(n: usize, spacing: f64) -> (Vec<Point>, Vec<Point>) {
        let devices = (1..=n)
            .map(|i| Point::new(i as f64 * spacing, 0.0))
            .collect();
        (devices, vec![Point::new(0.0, 0.0)])
    }

    #[test]
    fn single_hop_matches_direct_coverage() {
        let (devices, gateways) = chain(5, 60.0);
        let mut r1 = Rng::seed_from(1);
        let mesh = resolve_mesh(&devices, &gateways, &params(), 1, &mut r1);
        for (i, h) in mesh.hops.iter().enumerate() {
            if let Some(h) = h {
                assert_eq!(*h, 1, "device {i} at one hop");
                assert!(matches!(mesh.parent[i], Some(Parent::Gateway(0))));
            }
        }
        assert_eq!(mesh.max_relay_load(), 0);
    }

    #[test]
    fn more_hops_cover_more_of_a_chain() {
        let (devices, gateways) = chain(8, 60.0);
        let run = |hops: u8| {
            let mut rng = Rng::seed_from(7);
            resolve_mesh(&devices, &gateways, &params(), hops, &mut rng).covered_fraction()
        };
        let one = run(1);
        let four = run(4);
        let eight = run(8);
        assert!(four > one, "4 hops {four} vs 1 hop {one}");
        assert!(eight >= four);
        assert!(eight > 0.8, "an 8-hop chain should be nearly fully covered: {eight}");
    }

    #[test]
    fn relay_load_concentrates_upstream() {
        let (devices, gateways) = chain(6, 60.0);
        let mut rng = Rng::seed_from(3);
        let mesh = resolve_mesh(&devices, &gateways, &params(), 8, &mut rng);
        // In a chain, the first device relays for everyone behind it.
        if mesh.covered_fraction() > 0.9 {
            let first = mesh.relay_load[0];
            let last = *mesh.relay_load.last().unwrap();
            assert!(first > last, "first {first} last {last}");
            assert!(mesh.mean_tx_multiplier() > 1.5);
        }
    }

    #[test]
    fn hops_are_monotone_along_routes() {
        let (devices, gateways) = chain(8, 60.0);
        let mut rng = Rng::seed_from(4);
        let mesh = resolve_mesh(&devices, &gateways, &params(), 8, &mut rng);
        for (i, p) in mesh.parent.iter().enumerate() {
            if let Some(Parent::Device(u)) = p {
                assert_eq!(
                    mesh.hops[i].unwrap(),
                    mesh.hops[*u].unwrap() + 1,
                    "child {i} of {u}"
                );
            }
        }
    }

    #[test]
    fn unreachable_island_stays_unreachable() {
        let devices = vec![Point::new(50_000.0, 0.0)];
        let gateways = vec![Point::new(0.0, 0.0)];
        let mut rng = Rng::seed_from(5);
        let mesh = resolve_mesh(&devices, &gateways, &params(), 8, &mut rng);
        assert_eq!(mesh.hops[0], None);
        assert_eq!(mesh.covered_fraction(), 0.0);
        assert_eq!(mesh.mean_hops(), 0.0);
        assert_eq!(mesh.mean_tx_multiplier(), 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let (devices, gateways) = chain(6, 60.0);
        let mut r1 = Rng::seed_from(9);
        let mut r2 = Rng::seed_from(9);
        let a = resolve_mesh(&devices, &gateways, &params(), 4, &mut r1);
        let b = resolve_mesh(&devices, &gateways, &params(), 4, &mut r2);
        assert_eq!(a.hops, b.hops);
        assert_eq!(a.relay_load, b.relay_load);
        assert_eq!(a.digest(), b.digest());
    }

    /// The CRN fix this PR ships: removing a far, irrelevant device must
    /// not change any other device's mesh outcome. Under the seed
    /// version's sequential per-`a` streams this fails.
    #[test]
    fn removing_far_device_leaves_others_unchanged() {
        let (mut devices, gateways) = chain(6, 60.0);
        devices.push(Point::new(500_000.0, 500_000.0)); // hopeless outlier
        let mut r1 = Rng::seed_from(11);
        let with_outlier = resolve_mesh(&devices, &gateways, &params(), 8, &mut r1);
        devices.pop();
        let mut r2 = Rng::seed_from(11);
        let without = resolve_mesh(&devices, &gateways, &params(), 8, &mut r2);
        assert_eq!(&with_outlier.hops[..6], &without.hops[..]);
        assert_eq!(&with_outlier.parent[..6], &without.parent[..]);
        assert_eq!(with_outlier.hops[6], None);
    }

    #[cfg(feature = "reference-mode")]
    #[test]
    fn grid_matches_pairwise_oracle() {
        use crate::topology::uniform_scatter;
        let mut scatter_rng = Rng::seed_from(41);
        let devices = uniform_scatter(150, 1_500.0, 1_500.0, &mut scatter_rng);
        let gateways = uniform_scatter(4, 1_500.0, 1_500.0, &mut scatter_rng);
        let mut r1 = Rng::seed_from(13);
        let mut r2 = Rng::seed_from(13);
        let grid = resolve_mesh(&devices, &gateways, &params(), 4, &mut r1);
        let pairwise = resolve_mesh_pairwise(&devices, &gateways, &params(), 4, &mut r2);
        assert_eq!(grid.hops, pairwise.hops);
        assert_eq!(grid.parent, pairwise.parent);
        assert_eq!(grid.relay_load, pairwise.relay_load);
        assert_eq!(grid.digest(), pairwise.digest());
    }

    #[test]
    #[should_panic(expected = "hop")]
    fn zero_hops_panics() {
        let mut rng = Rng::seed_from(1);
        resolve_mesh(&[], &[], &params(), 0, &mut rng);
    }
}
