//! Link-level packet reception: budget → margin → reception probability.
//!
//! Real receivers do not switch from perfect to deaf at the sensitivity
//! line; packet reception rate (PRR) falls along a waterfall a few dB wide.
//! [`ReceptionModel`] captures that with a logistic curve centred at the
//! sensitivity point, which matches measured O-QPSK and LoRa waterfalls
//! well enough for deployment-scale questions ("which gateways hear this
//! device, and how reliably?").

use simcore::rng::Rng;

use crate::units::{Db, Dbm};

/// Logistic PRR waterfall around a sensitivity threshold.
#[derive(Clone, Copy, Debug)]
pub struct ReceptionModel {
    /// Received power at which PRR = 50 %.
    pub p50: Dbm,
    /// Waterfall steepness: dB from 50 % to ~73 % (logistic scale).
    pub steepness_db: f64,
}

impl ReceptionModel {
    /// Creates a model with PRR = 50 % at `p50` and the given steepness.
    ///
    /// # Panics
    ///
    /// Panics unless `steepness_db` is positive and finite.
    pub fn new(p50: Dbm, steepness_db: f64) -> Self {
        assert!(
            steepness_db > 0.0 && steepness_db.is_finite(),
            "steepness must be positive"
        );
        ReceptionModel { p50, steepness_db }
    }

    /// A typical narrow waterfall (~1.5 dB scale) at the given sensitivity.
    pub fn at_sensitivity(sensitivity: Dbm) -> Self {
        ReceptionModel::new(sensitivity, 1.5)
    }

    /// Packet reception probability at received power `rx`.
    pub fn prr(&self, rx: Dbm) -> f64 {
        let x = (rx.value() - self.p50.value()) / self.steepness_db;
        1.0 / (1.0 + (-x).exp())
    }

    /// Samples whether a packet at received power `rx` is decoded.
    pub fn receives(&self, rx: Dbm, rng: &mut Rng) -> bool {
        rng.chance(self.prr(rx))
    }

    /// The link margin of a received power over the 50 % point.
    pub fn margin(&self, rx: Dbm) -> Db {
        rx - self.p50
    }
}

/// A static point-to-point link: budget plus waterfall.
#[derive(Clone, Copy, Debug)]
pub struct Link {
    /// Transmit power.
    pub tx: Dbm,
    /// Total path loss including shadowing (static per placement).
    pub loss: Db,
    /// Receiver model.
    pub rx_model: ReceptionModel,
}

impl Link {
    /// Received power.
    pub fn rx_power(&self) -> Dbm {
        self.tx - self.loss
    }

    /// Long-run packet reception rate on this link.
    pub fn prr(&self) -> f64 {
        self.rx_model.prr(self.rx_power())
    }

    /// Link margin above the 50 % point (negative = below waterfall).
    pub fn margin(&self) -> Db {
        self.rx_model.margin(self.rx_power())
    }

    /// True if the link clears the waterfall with at least `margin_db` to
    /// spare — the "usable link" criterion for coverage maps.
    pub fn is_usable(&self, margin_db: f64) -> bool {
        self.margin().0 >= margin_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prr_half_at_p50() {
        let m = ReceptionModel::at_sensitivity(Dbm(-100.0));
        assert!((m.prr(Dbm(-100.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prr_monotone_in_power() {
        let m = ReceptionModel::at_sensitivity(Dbm(-100.0));
        assert!(m.prr(Dbm(-95.0)) > 0.95);
        assert!(m.prr(Dbm(-105.0)) < 0.05);
        assert!(m.prr(Dbm(-90.0)) > m.prr(Dbm(-98.0)));
    }

    #[test]
    fn receives_matches_prr() {
        let m = ReceptionModel::at_sensitivity(Dbm(-100.0));
        let mut rng = Rng::seed_from(5);
        let n = 100_000;
        let got = (0..n).filter(|_| m.receives(Dbm(-100.5), &mut rng)).count() as f64 / n as f64;
        let want = m.prr(Dbm(-100.5));
        assert!((got - want).abs() < 0.005, "got {got} want {want}");
    }

    #[test]
    fn link_budget_chain() {
        let link = Link {
            tx: Dbm(14.0),
            loss: Db(110.0),
            rx_model: ReceptionModel::at_sensitivity(Dbm(-100.0)),
        };
        assert!((link.rx_power().value() + 96.0).abs() < 1e-12);
        assert!((link.margin().0 - 4.0).abs() < 1e-12);
        assert!(link.is_usable(3.0));
        assert!(!link.is_usable(5.0));
        assert!(link.prr() > 0.9);
    }

    #[test]
    #[should_panic(expected = "steepness")]
    fn rejects_bad_steepness() {
        ReceptionModel::new(Dbm(-100.0), 0.0);
    }
}
