//! Interference and capture: when collisions are not fatal.
//!
//! LoRa's spreading factors are (imperfectly) orthogonal: a receiver
//! locked onto an SF9 packet barely notices SF7 traffic, and a packet that
//! arrives several dB stronger than a same-SF interferer *captures* the
//! demodulator. Capture is a first-order effect on transmit-only network
//! scalability (design ablation #3 in DESIGN.md); this module provides the
//! standard rejection-threshold model and Monte-Carlo capture-probability
//! estimation for realistic power distributions.

use simcore::rng::Rng;

use crate::grid::SpatialGrid;
use crate::lora::SpreadingFactor;
use crate::topology::Point;
use crate::units::Db;

/// Same-SF capture threshold: a packet survives a same-SF collision if it
/// is at least this much stronger (standard value ≈ 6 dB for LoRa; use
/// +∞-like values for pure ALOHA without capture).
pub const CO_SF_CAPTURE_DB: f64 = 6.0;

/// Rejection threshold (dB) for an interferer at `interferer` SF while the
/// receiver demodulates `wanted`: the wanted packet survives if
/// `P_wanted - P_interferer > threshold`. Diagonal entries are the co-SF
/// capture threshold; off-diagonal values are the (negative) inter-SF
/// rejection gains from the LoRa cross-correlation literature (Goursaud &
/// Gorce 2015 / Croce et al. 2018, rounded).
pub fn rejection_threshold_db(wanted: SpreadingFactor, interferer: SpreadingFactor) -> Db {
    if wanted == interferer {
        return Db(CO_SF_CAPTURE_DB);
    }
    // Inter-SF isolation grows with SF distance; a nearby SF still needs
    // the interferer to be much stronger to do damage.
    let table = [
        // Rows: wanted SF7..SF12; columns: interferer SF7..SF12.
        [6.0, -8.0, -9.0, -9.0, -9.0, -9.0],
        [-11.0, 6.0, -11.0, -12.0, -13.0, -13.0],
        [-15.0, -13.0, 6.0, -13.0, -14.0, -15.0],
        [-19.0, -18.0, -17.0, 6.0, -17.0, -18.0],
        [-22.0, -22.0, -21.0, -20.0, 6.0, -20.0],
        [-25.0, -25.0, -25.0, -24.0, -23.0, 6.0],
    ];
    let idx = |sf: SpreadingFactor| (sf.value() - 7) as usize;
    Db(table[idx(wanted)][idx(interferer)])
}

/// Whether a wanted packet at `p_wanted` survives one interferer at
/// `p_interferer` (both dBm, any SFs).
pub fn survives_interferer(
    wanted: SpreadingFactor,
    p_wanted_dbm: f64,
    interferer: SpreadingFactor,
    p_interferer_dbm: f64,
) -> bool {
    p_wanted_dbm - p_interferer_dbm > rejection_threshold_db(wanted, interferer).0
}

/// Monte-Carlo co-SF capture probability when both packets' received
/// powers are drawn i.i.d. from a lognormal shadowing spread of
/// `sigma_db` around a common mean (the dense-urban same-cell case).
///
/// With i.i.d. normal powers the difference is Normal(0, σ√2), so the
/// analytic value is `Q(threshold / (σ√2))`; the Monte-Carlo form exists
/// to compose with non-identical power distributions in callers.
pub fn co_sf_capture_probability(sigma_db: f64, rng: &mut Rng, trials: usize) -> f64 {
    assert!(sigma_db >= 0.0, "sigma must be >= 0");
    assert!(trials > 0, "need at least one trial");
    let mut wins = 0usize;
    for _ in 0..trials {
        let a = simcore::dist::standard_normal(rng) * sigma_db;
        let b = simcore::dist::standard_normal(rng) * sigma_db;
        if a - b > CO_SF_CAPTURE_DB {
            wins += 1;
        }
    }
    wins as f64 / trials as f64
}

/// For each device, the ascending indices of *other* devices within
/// `radius_m` — the population whose same-SF transmissions can collide
/// with it at a shared gateway. Grid-backed: O(n · neighbors) instead of
/// the O(n²) all-pairs scan, which is what makes per-device interference
/// degree computable for a 320k-pole city.
///
/// Purely geometric and deterministic; no RNG is consumed, so the result
/// is a stable input to capture-probability estimation downstream.
pub fn co_sf_neighborhoods(devices: &[Point], radius_m: f64) -> Vec<Vec<u32>> {
    let grid = SpatialGrid::build(devices, radius_m.max(1.0));
    let mut out = Vec::with_capacity(devices.len());
    let mut buf: Vec<u32> = Vec::new();
    for (i, d) in devices.iter().enumerate() {
        grid.within_into(*d, radius_m, &mut buf);
        out.push(buf.iter().copied().filter(|&j| j as usize != i).collect());
    }
    out
}

/// The exhaustive pairwise reference for [`co_sf_neighborhoods`] —
/// differential-harness use only.
#[cfg(feature = "reference-mode")]
pub fn co_sf_neighborhoods_pairwise(devices: &[Point], radius_m: f64) -> Vec<Vec<u32>> {
    devices
        .iter()
        .enumerate()
        .map(|(i, d)| {
            devices
                .iter()
                .enumerate()
                .filter(|&(j, o)| j != i && d.distance(o) <= radius_m)
                .map(|(j, _)| j as u32)
                .collect()
        })
        .collect()
}

/// Mean interference degree over a neighborhood set — the scalar that
/// feeds collision-rate estimates.
pub fn mean_degree(neighborhoods: &[Vec<u32>]) -> f64 {
    if neighborhoods.is_empty() {
        return 0.0;
    }
    neighborhoods.iter().map(Vec::len).sum::<usize>() as f64 / neighborhoods.len() as f64
}

/// The standard normal upper-tail probability Q(x), via `erfc`.
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / core::f64::consts::SQRT_2)
}

/// Complementary error function (Abramowitz–Stegun 7.1.26, |err| < 1.5e-7).
pub fn erfc(x: f64) -> f64 {
    let sign_neg = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736 + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let y = poly * (-x * x).exp();
    if sign_neg {
        2.0 - y
    } else {
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_is_capture_threshold() {
        for sf in SpreadingFactor::ALL {
            assert_eq!(rejection_threshold_db(sf, sf).0, CO_SF_CAPTURE_DB);
        }
    }

    #[test]
    fn inter_sf_isolation_is_negative() {
        for a in SpreadingFactor::ALL {
            for b in SpreadingFactor::ALL {
                if a != b {
                    assert!(
                        rejection_threshold_db(a, b).0 < 0.0,
                        "{a:?} vs {b:?} should tolerate stronger interferers"
                    );
                }
            }
        }
    }

    #[test]
    fn higher_sf_tolerates_more() {
        // SF12's rejection of SF7 interference exceeds SF8's.
        let sf12 = rejection_threshold_db(SpreadingFactor::Sf12, SpreadingFactor::Sf7).0;
        let sf8 = rejection_threshold_db(SpreadingFactor::Sf8, SpreadingFactor::Sf7).0;
        assert!(sf12 < sf8);
    }

    #[test]
    fn survives_interferer_logic() {
        use SpreadingFactor::{Sf7, Sf9};
        // Co-SF: need > 6 dB advantage.
        assert!(survives_interferer(Sf7, -90.0, Sf7, -97.0));
        assert!(!survives_interferer(Sf7, -90.0, Sf7, -95.0));
        // Inter-SF: survives even a 10 dB *stronger* interferer.
        assert!(survives_interferer(Sf9, -100.0, Sf7, -90.0));
    }

    #[test]
    fn capture_probability_matches_analytic() {
        let sigma = 6.0;
        let mut rng = Rng::seed_from(3);
        let mc = co_sf_capture_probability(sigma, &mut rng, 200_000);
        let analytic = q_function(CO_SF_CAPTURE_DB / (sigma * core::f64::consts::SQRT_2));
        assert!((mc - analytic).abs() < 0.005, "mc {mc} analytic {analytic}");
        // ~24% for 6 dB shadowing: capture materially helps dense networks.
        assert!(analytic > 0.15 && analytic < 0.35);
    }

    #[test]
    fn zero_sigma_never_captures() {
        let mut rng = Rng::seed_from(4);
        assert_eq!(co_sf_capture_probability(0.0, &mut rng, 1_000), 0.0);
    }

    #[test]
    fn erfc_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!(erfc(5.0) < 1e-10);
    }

    #[test]
    fn neighborhoods_exclude_self_and_are_ascending() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(50.0, 0.0),
            Point::new(120.0, 0.0),
            Point::new(10_000.0, 0.0),
        ];
        let n = co_sf_neighborhoods(&pts, 100.0);
        assert_eq!(n[0], vec![1]);
        assert_eq!(n[1], vec![0, 2]);
        assert_eq!(n[2], vec![1]);
        assert!(n[3].is_empty());
        assert!((mean_degree(&n) - 1.0).abs() < 1e-12);
        assert_eq!(mean_degree(&[]), 0.0);
    }

    #[cfg(feature = "reference-mode")]
    #[test]
    fn neighborhoods_match_pairwise() {
        use crate::topology::uniform_scatter;
        let mut rng = Rng::seed_from(61);
        let pts = uniform_scatter(500, 3_000.0, 3_000.0, &mut rng);
        assert_eq!(
            co_sf_neighborhoods(&pts, 250.0),
            co_sf_neighborhoods_pairwise(&pts, 250.0)
        );
    }

    #[test]
    fn q_function_symmetry() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        assert!((q_function(1.0) + q_function(-1.0) - 1.0).abs() < 1e-6);
        assert!((q_function(1.96) - 0.025).abs() < 1e-3);
    }
}
