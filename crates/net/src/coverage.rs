//! Coverage resolution: which gateways hear which devices (Figure 1).
//!
//! The paper's hierarchy observation: *"Smart devices rely on one or two
//! gateways, while gateways may support thousands of devices."* Given
//! device and gateway positions, a propagation model, and a radio budget,
//! [`resolve`] computes the reliance structure and its statistics:
//! coverage fraction, per-device gateway redundancy, and per-gateway load.

use simcore::rng::Rng;

use crate::link::{Link, ReceptionModel};
use crate::pathloss::LogDistance;
use crate::topology::Point;
use crate::units::Dbm;

/// Radio parameters used to resolve coverage.
#[derive(Clone, Copy, Debug)]
pub struct RadioParams {
    /// Device transmit power.
    pub tx: Dbm,
    /// Receiver model at the gateway.
    pub rx_model: ReceptionModel,
    /// Propagation model.
    pub pathloss: LogDistance,
    /// Minimum margin (dB) above the 50 % point to call a link usable.
    pub usable_margin_db: f64,
}

/// The resolved device→gateway reliance structure.
#[derive(Clone, Debug)]
pub struct Coverage {
    /// For each device, the indices of gateways with usable links,
    /// strongest first.
    pub device_gateways: Vec<Vec<usize>>,
    /// For each gateway, how many devices rely on it (usable links).
    pub gateway_load: Vec<usize>,
}

/// Resolves coverage between `devices` and `gateways`.
///
/// Shadowing is sampled once per device-gateway pair (placement-static), so
/// the result is a deployment lottery: rerunning with another seed yields a
/// different but statistically identical city.
pub fn resolve(
    devices: &[Point],
    gateways: &[Point],
    params: &RadioParams,
    rng: &mut Rng,
) -> Coverage {
    let mut device_gateways = Vec::with_capacity(devices.len());
    let mut gateway_load = vec![0usize; gateways.len()];
    for (di, d) in devices.iter().enumerate() {
        // Per-pair stream keyed by device index keeps results stable under
        // gateway-set changes for already-present pairs.
        let mut pair_rng = rng.split("coverage-device", di as u64);
        let mut usable: Vec<(f64, usize)> = Vec::new();
        for (gi, g) in gateways.iter().enumerate() {
            let shadow = params.pathloss.sample_shadowing(&mut pair_rng);
            let loss = params.pathloss.loss_with_shadowing(d.distance(g), shadow);
            let link = Link { tx: params.tx, loss, rx_model: params.rx_model };
            if link.is_usable(params.usable_margin_db) {
                usable.push((link.margin().0, gi));
            }
        }
        usable.sort_by(|a, b| b.0.total_cmp(&a.0));
        for &(_, gi) in &usable {
            gateway_load[gi] += 1;
        }
        device_gateways.push(usable.into_iter().map(|(_, gi)| gi).collect());
    }
    Coverage { device_gateways, gateway_load }
}

impl Coverage {
    /// Fraction of devices with at least one usable gateway.
    pub fn covered_fraction(&self) -> f64 {
        if self.device_gateways.is_empty() {
            return 0.0;
        }
        let covered = self.device_gateways.iter().filter(|g| !g.is_empty()).count();
        covered as f64 / self.device_gateways.len() as f64
    }

    /// Mean number of usable gateways per covered device (the Figure-1
    /// "one or two gateways" statistic).
    pub fn mean_redundancy(&self) -> f64 {
        let covered: Vec<usize> = self
            .device_gateways
            .iter()
            .filter(|g| !g.is_empty())
            .map(Vec::len)
            .collect();
        if covered.is_empty() {
            return 0.0;
        }
        covered.iter().sum::<usize>() as f64 / covered.len() as f64
    }

    /// Fraction of covered devices relying on exactly one gateway — the
    /// single-point-of-reliance population.
    pub fn single_homed_fraction(&self) -> f64 {
        let covered: Vec<&Vec<usize>> =
            self.device_gateways.iter().filter(|g| !g.is_empty()).collect();
        if covered.is_empty() {
            return 0.0;
        }
        covered.iter().filter(|g| g.len() == 1).count() as f64 / covered.len() as f64
    }

    /// The largest per-gateway device load.
    pub fn max_gateway_load(&self) -> usize {
        self.gateway_load.iter().copied().max().unwrap_or(0)
    }

    /// Devices left uncovered if the given gateway dies (those whose only
    /// usable gateway it was).
    pub fn stranded_by_gateway(&self, gateway: usize) -> usize {
        self.device_gateways
            .iter()
            .filter(|gs| gs.len() == 1 && gs[0] == gateway)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lora::SpreadingFactor;

    fn params() -> RadioParams {
        RadioParams {
            tx: Dbm(14.0),
            rx_model: ReceptionModel::at_sensitivity(
                SpreadingFactor::Sf10.sensitivity_125khz(),
            ),
            pathloss: LogDistance::urban_915(),
            usable_margin_db: 3.0,
        }
    }

    #[test]
    fn near_devices_covered_far_devices_not() {
        let gateways = vec![Point::new(0.0, 0.0)];
        let devices = vec![
            Point::new(10.0, 0.0),      // 10 m: trivially covered.
            Point::new(100_000.0, 0.0), // 100 km: hopeless.
        ];
        let mut rng = Rng::seed_from(1);
        let cov = resolve(&devices, &gateways, &params(), &mut rng);
        assert_eq!(cov.device_gateways[0], vec![0]);
        assert!(cov.device_gateways[1].is_empty());
        assert!((cov.covered_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(cov.gateway_load[0], 1);
    }

    #[test]
    fn redundancy_counts_multiple_gateways() {
        let gateways = vec![Point::new(-20.0, 0.0), Point::new(20.0, 0.0)];
        let devices = vec![Point::new(0.0, 0.0)];
        let mut rng = Rng::seed_from(2);
        let cov = resolve(&devices, &gateways, &params(), &mut rng);
        assert_eq!(cov.device_gateways[0].len(), 2);
        assert!((cov.mean_redundancy() - 2.0).abs() < 1e-12);
        assert_eq!(cov.single_homed_fraction(), 0.0);
        assert_eq!(cov.max_gateway_load(), 1);
    }

    #[test]
    fn strongest_gateway_listed_first() {
        let gateways = vec![Point::new(500.0, 0.0), Point::new(30.0, 0.0)];
        let devices = vec![Point::new(0.0, 0.0)];
        let mut rng = Rng::seed_from(3);
        let cov = resolve(&devices, &gateways, &params(), &mut rng);
        // The 30 m gateway (index 1) should nearly always be first.
        assert_eq!(cov.device_gateways[0][0], 1);
    }

    #[test]
    fn stranded_by_gateway_counts_single_homed() {
        // Gateways 100 km apart: shadowing cannot bridge the gap, so each
        // device is single-homed by construction.
        let gateways = vec![Point::new(0.0, 0.0), Point::new(100_000.0, 0.0)];
        let devices = vec![
            Point::new(5.0, 0.0),
            Point::new(99_995.0, 0.0),
            Point::new(15.0, 0.0),
        ];
        let mut rng = Rng::seed_from(4);
        let cov = resolve(&devices, &gateways, &params(), &mut rng);
        // Devices 0 and 2 are only near gateway 0; device 1 only near 1.
        assert_eq!(cov.stranded_by_gateway(0), 2);
        assert_eq!(cov.stranded_by_gateway(1), 1);
    }

    #[test]
    fn empty_inputs() {
        let mut rng = Rng::seed_from(5);
        let cov = resolve(&[], &[], &params(), &mut rng);
        assert_eq!(cov.covered_fraction(), 0.0);
        assert_eq!(cov.mean_redundancy(), 0.0);
        assert_eq!(cov.max_gateway_load(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let gateways = vec![Point::new(0.0, 0.0)];
        let devices: Vec<Point> = (0..50).map(|i| Point::new(i as f64 * 40.0, 10.0)).collect();
        let mut r1 = Rng::seed_from(6);
        let mut r2 = Rng::seed_from(6);
        let c1 = resolve(&devices, &gateways, &params(), &mut r1);
        let c2 = resolve(&devices, &gateways, &params(), &mut r2);
        assert_eq!(c1.device_gateways, c2.device_gateways);
    }
}
