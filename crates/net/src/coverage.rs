//! Coverage resolution: which gateways hear which devices (Figure 1).
//!
//! The paper's hierarchy observation: *"Smart devices rely on one or two
//! gateways, while gateways may support thousands of devices."* Given
//! device and gateway positions, a propagation model, and a radio budget,
//! [`resolve`] computes the reliance structure and its statistics:
//! coverage fraction, per-device gateway redundancy, and per-gateway load.
//!
//! # Scaling and bit-identity
//!
//! [`resolve`] is grid-backed: gateways are indexed once in a
//! [`SpatialGrid`] and each device only evaluates candidates within
//! [`RadioParams::cull_radius_m`] — the distance beyond which *no
//! realizable shadowing draw* (truncated at ±4σ, see
//! [`crate::pathloss::SHADOW_TRUNCATE_SIGMA`]) can produce a usable link.
//! Because shadowing is keyed per unordered pair (`split("cov-pair",
//! di).split("gw", gi)`), culling a hopeless pair cannot shift any
//! surviving pair's draw, so the grid path is bit-identical to the
//! pairwise oracle [`resolve_pairwise`] (kept behind the `reference-mode`
//! feature); `tests/grid_differential.rs` proves it across seeds ×
//! densities × radio parameter sets.

use simcore::rng::Rng;

use crate::grid::SpatialGrid;
use crate::link::{Link, ReceptionModel};
use crate::pathloss::LogDistance;
use crate::topology::Point;
use crate::units::{Db, Dbm};

/// Radio parameters used to resolve coverage.
#[derive(Clone, Copy, Debug)]
pub struct RadioParams {
    /// Device transmit power.
    pub tx: Dbm,
    /// Receiver model at the gateway.
    pub rx_model: ReceptionModel,
    /// Propagation model.
    pub pathloss: LogDistance,
    /// Minimum margin (dB) above the 50 % point to call a link usable.
    pub usable_margin_db: f64,
}

impl RadioParams {
    /// The largest path loss (dB) a link can sustain and still be usable:
    /// `tx − p50 − usable_margin`. [`Link::is_usable`] holds iff the
    /// realized loss is at most this budget.
    pub fn max_usable_loss_db(&self) -> f64 {
        self.tx.0 - self.rx_model.p50.0 - self.usable_margin_db
    }

    /// The provable link cull radius (m): beyond this distance the median
    /// loss exceeds the usable budget even under the deepest realizable
    /// constructive shadow (−4σ), so the pair can be skipped without
    /// evaluating it — under per-pair RNG keying this changes nothing.
    ///
    /// Derivation: usable ⇔ `median_loss(d) + shadow ≤ budget` and
    /// `shadow ≥ −max_shadow_db`, so any usable pair has `median_loss(d)
    /// ≤ budget + max_shadow_db`; inverting the monotone median-loss
    /// curve bounds `d`. A `1 + 1e-6` relative nudge (≈ `1.26e-5·n` dB of
    /// loss slack, orders of magnitude above 1-ulp rounding) keeps the
    /// bound safe under floating-point inversion error, and the radius is
    /// floored at the model's reference distance `d0`.
    pub fn cull_radius_m(&self) -> f64 {
        let budget = Db(self.max_usable_loss_db() + self.pathloss.max_shadow_db());
        let r = self.pathloss.median_range_m(budget);
        (r * (1.0 + 1e-6)).max(self.pathloss.d0_m)
    }
}

/// The resolved device→gateway reliance structure.
#[derive(Clone, Debug)]
pub struct Coverage {
    /// For each device, the indices of gateways with usable links,
    /// strongest first.
    pub device_gateways: Vec<Vec<usize>>,
    /// For each gateway, how many devices rely on it (usable links).
    pub gateway_load: Vec<usize>,
}

/// The margin (dB) of pair (di, gi) if usable, drawn from its own keyed
/// RNG stream — the single evaluation path shared by the grid resolver
/// and the pairwise oracle, so both realize identical draws.
fn eval_pair(
    d: &Point,
    g: &Point,
    di: usize,
    gi: usize,
    params: &RadioParams,
    root: &Rng,
) -> Option<f64> {
    let mut pair_rng = root.split("cov-pair", di as u64).split("gw", gi as u64);
    let shadow = params.pathloss.sample_shadowing(&mut pair_rng);
    let loss = params.pathloss.loss_with_shadowing(d.distance(g), shadow);
    let link = Link { tx: params.tx, loss, rx_model: params.rx_model };
    link.is_usable(params.usable_margin_db).then(|| link.margin().0)
}

fn finish_device(
    mut usable: Vec<(f64, usize)>,
    gateway_load: &mut [usize],
) -> Vec<usize> {
    // Stable sort + ascending-gi insertion order ⇒ deterministic ties.
    usable.sort_by(|a, b| b.0.total_cmp(&a.0));
    for &(_, gi) in &usable {
        gateway_load[gi] += 1;
    }
    usable.into_iter().map(|(_, gi)| gi).collect()
}

/// Resolves coverage between `devices` and `gateways` through a spatial
/// grid over the gateways — O(devices · candidates-in-range) instead of
/// O(devices · gateways).
///
/// Shadowing is sampled once per device-gateway pair (placement-static)
/// from a stream keyed only by the pair's indices, so the result is a
/// deployment lottery that is insensitive to which *other* pairs exist:
/// rerunning with another seed yields a different but statistically
/// identical city, and adding or culling far pairs never perturbs
/// surviving links.
pub fn resolve(
    devices: &[Point],
    gateways: &[Point],
    params: &RadioParams,
    rng: &mut Rng,
) -> Coverage {
    let cull = params.cull_radius_m();
    let grid = SpatialGrid::build(gateways, cull);
    let mut device_gateways = Vec::with_capacity(devices.len());
    let mut gateway_load = vec![0usize; gateways.len()];
    let mut candidates: Vec<u32> = Vec::new();
    for (di, d) in devices.iter().enumerate() {
        grid.within_into(*d, cull, &mut candidates);
        let mut usable: Vec<(f64, usize)> = Vec::new();
        for &gi in &candidates {
            let gi = gi as usize;
            if let Some(margin) = eval_pair(d, &gateways[gi], di, gi, params, rng) {
                usable.push((margin, gi));
            }
        }
        device_gateways.push(finish_device(usable, &mut gateway_load));
    }
    Coverage { device_gateways, gateway_load }
}

/// The pairwise reference oracle: evaluates every device×gateway pair
/// with the same per-pair streams as [`resolve`]. Kept only so the
/// differential harness can prove the grid path changes nothing; O(n·m).
#[cfg(feature = "reference-mode")]
pub fn resolve_pairwise(
    devices: &[Point],
    gateways: &[Point],
    params: &RadioParams,
    rng: &mut Rng,
) -> Coverage {
    let mut device_gateways = Vec::with_capacity(devices.len());
    let mut gateway_load = vec![0usize; gateways.len()];
    for (di, d) in devices.iter().enumerate() {
        let mut usable: Vec<(f64, usize)> = Vec::new();
        for (gi, g) in gateways.iter().enumerate() {
            if let Some(margin) = eval_pair(d, g, di, gi, params, rng) {
                usable.push((margin, gi));
            }
        }
        device_gateways.push(finish_device(usable, &mut gateway_load));
    }
    Coverage { device_gateways, gateway_load }
}

impl Coverage {
    /// Fraction of devices with at least one usable gateway.
    pub fn covered_fraction(&self) -> f64 {
        if self.device_gateways.is_empty() {
            return 0.0;
        }
        let covered = self.device_gateways.iter().filter(|g| !g.is_empty()).count();
        covered as f64 / self.device_gateways.len() as f64
    }

    /// Mean number of usable gateways per covered device (the Figure-1
    /// "one or two gateways" statistic).
    pub fn mean_redundancy(&self) -> f64 {
        let covered: Vec<usize> = self
            .device_gateways
            .iter()
            .filter(|g| !g.is_empty())
            .map(Vec::len)
            .collect();
        if covered.is_empty() {
            return 0.0;
        }
        covered.iter().sum::<usize>() as f64 / covered.len() as f64
    }

    /// Fraction of covered devices relying on exactly one gateway — the
    /// single-point-of-reliance population.
    pub fn single_homed_fraction(&self) -> f64 {
        let covered: Vec<&Vec<usize>> =
            self.device_gateways.iter().filter(|g| !g.is_empty()).collect();
        if covered.is_empty() {
            return 0.0;
        }
        covered.iter().filter(|g| g.len() == 1).count() as f64 / covered.len() as f64
    }

    /// The largest per-gateway device load.
    pub fn max_gateway_load(&self) -> usize {
        self.gateway_load.iter().copied().max().unwrap_or(0)
    }

    /// Devices left uncovered if the given gateway dies (those whose only
    /// usable gateway it was).
    pub fn stranded_by_gateway(&self, gateway: usize) -> usize {
        self.device_gateways
            .iter()
            .filter(|gs| gs.len() == 1 && gs[0] == gateway)
            .count()
    }

    /// FNV-1a 64-bit digest of the full reliance structure — the
    /// bit-identity currency of the grid differential harness and the
    /// throughput bench's grid-vs-pairwise cross-check.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.device_gateways.len() as u64);
        for gs in &self.device_gateways {
            h.write_u64(gs.len() as u64);
            for &gi in gs {
                h.write_u64(gi as u64);
            }
        }
        h.write_u64(self.gateway_load.len() as u64);
        for &load in &self.gateway_load {
            h.write_u64(load as u64);
        }
        h.finish()
    }
}

/// Minimal FNV-1a 64-bit hasher (dependency-free, matches telemetry's).
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lora::SpreadingFactor;

    fn params() -> RadioParams {
        RadioParams {
            tx: Dbm(14.0),
            rx_model: ReceptionModel::at_sensitivity(
                SpreadingFactor::Sf10.sensitivity_125khz(),
            ),
            pathloss: LogDistance::urban_915(),
            usable_margin_db: 3.0,
        }
    }

    #[test]
    fn near_devices_covered_far_devices_not() {
        let gateways = vec![Point::new(0.0, 0.0)];
        let devices = vec![
            Point::new(10.0, 0.0),      // 10 m: trivially covered.
            Point::new(100_000.0, 0.0), // 100 km: hopeless.
        ];
        let mut rng = Rng::seed_from(1);
        let cov = resolve(&devices, &gateways, &params(), &mut rng);
        assert_eq!(cov.device_gateways[0], vec![0]);
        assert!(cov.device_gateways[1].is_empty());
        assert!((cov.covered_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(cov.gateway_load[0], 1);
    }

    #[test]
    fn redundancy_counts_multiple_gateways() {
        let gateways = vec![Point::new(-20.0, 0.0), Point::new(20.0, 0.0)];
        let devices = vec![Point::new(0.0, 0.0)];
        let mut rng = Rng::seed_from(2);
        let cov = resolve(&devices, &gateways, &params(), &mut rng);
        assert_eq!(cov.device_gateways[0].len(), 2);
        assert!((cov.mean_redundancy() - 2.0).abs() < 1e-12);
        assert_eq!(cov.single_homed_fraction(), 0.0);
        assert_eq!(cov.max_gateway_load(), 1);
    }

    #[test]
    fn strongest_gateway_listed_first() {
        let gateways = vec![Point::new(500.0, 0.0), Point::new(30.0, 0.0)];
        let devices = vec![Point::new(0.0, 0.0)];
        let mut rng = Rng::seed_from(3);
        let cov = resolve(&devices, &gateways, &params(), &mut rng);
        // The 30 m gateway (index 1) should nearly always be first.
        assert_eq!(cov.device_gateways[0][0], 1);
    }

    #[test]
    fn stranded_by_gateway_counts_single_homed() {
        // Gateways 100 km apart: shadowing cannot bridge the gap, so each
        // device is single-homed by construction.
        let gateways = vec![Point::new(0.0, 0.0), Point::new(100_000.0, 0.0)];
        let devices = vec![
            Point::new(5.0, 0.0),
            Point::new(99_995.0, 0.0),
            Point::new(15.0, 0.0),
        ];
        let mut rng = Rng::seed_from(4);
        let cov = resolve(&devices, &gateways, &params(), &mut rng);
        // Devices 0 and 2 are only near gateway 0; device 1 only near 1.
        assert_eq!(cov.stranded_by_gateway(0), 2);
        assert_eq!(cov.stranded_by_gateway(1), 1);
    }

    #[test]
    fn empty_inputs() {
        let mut rng = Rng::seed_from(5);
        let cov = resolve(&[], &[], &params(), &mut rng);
        assert_eq!(cov.covered_fraction(), 0.0);
        assert_eq!(cov.mean_redundancy(), 0.0);
        assert_eq!(cov.max_gateway_load(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let gateways = vec![Point::new(0.0, 0.0)];
        let devices: Vec<Point> = (0..50).map(|i| Point::new(i as f64 * 40.0, 10.0)).collect();
        let mut r1 = Rng::seed_from(6);
        let mut r2 = Rng::seed_from(6);
        let c1 = resolve(&devices, &gateways, &params(), &mut r1);
        let c2 = resolve(&devices, &gateways, &params(), &mut r2);
        assert_eq!(c1.device_gateways, c2.device_gateways);
        assert_eq!(c1.digest(), c2.digest());
    }

    #[test]
    fn cull_radius_exceeds_median_range() {
        let p = params();
        let median = p.pathloss.median_range_m(Db(p.max_usable_loss_db()));
        let cull = p.cull_radius_m();
        assert!(cull > median, "cull {cull} median {median}");
        // The guard band is 4σ = 24 dB at σ 6, n 2.9 ⇒ ×10^(24/29) ≈ 6.7.
        assert!((cull / median - 10f64.powf(24.0 / 29.0)).abs() < 0.01);
    }

    #[cfg(feature = "reference-mode")]
    #[test]
    fn grid_matches_pairwise_oracle() {
        use crate::topology::uniform_scatter;
        let mut scatter_rng = Rng::seed_from(77);
        let devices = uniform_scatter(400, 4_000.0, 4_000.0, &mut scatter_rng);
        let gateways = uniform_scatter(25, 4_000.0, 4_000.0, &mut scatter_rng);
        let mut r1 = Rng::seed_from(8);
        let mut r2 = Rng::seed_from(8);
        let grid = resolve(&devices, &gateways, &params(), &mut r1);
        let pairwise = resolve_pairwise(&devices, &gateways, &params(), &mut r2);
        assert_eq!(grid.device_gateways, pairwise.device_gateways);
        assert_eq!(grid.gateway_load, pairwise.gateway_load);
        assert_eq!(grid.digest(), pairwise.digest());
    }
}
