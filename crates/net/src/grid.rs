//! Flat spatial grid index: O(1) neighbor queries over city-scale point sets.
//!
//! The paper's motivating deployment is 320,000 smart poles across Los
//! Angeles; resolving its Figure-1 reliance structure pairwise is an
//! O(n·m) wall. [`SpatialGrid`] is the standard flat-grid answer (dense
//! cell buckets over point handles, the `flat_spatial` pattern): points
//! are bucketed once into square cells of side `cell_m`, and a radius
//! query scans only the 3×3 (or fewer) cell neighborhood the disc
//! overlaps — O(1) in the city size for query radii at most the cell
//! side.
//!
//! Two properties matter more than raw speed here:
//!
//! * **Determinism.** [`within_into`](SpatialGrid::within_into) returns
//!   candidates in ascending point-index order for equal inputs, always —
//!   the resolvers' tie-breaking and insertion orders (and therefore the
//!   run digests) depend on it.
//! * **Exactness under culling.** Query results are distance-filtered, so
//!   a query at the pathloss cull radius (see
//!   [`crate::coverage::RadioParams::cull_radius_m`]) returns *every*
//!   pair that could possibly form a usable link under any realizable
//!   shadowing draw. The grid-backed resolvers are therefore bit-identical
//!   to their pairwise reference oracles, which `tests/grid_differential.rs`
//!   proves across seeds × densities × radio parameter sets.

use crate::topology::Point;

/// Hard ceiling on allocated cells; beyond it the cell side is grown so
/// huge sparse extents cannot exhaust memory. 4M cells ≈ 36 MB of `u32`
/// bookkeeping at the limit — far beyond any city this crate models.
const MAX_CELLS: usize = 1 << 22;

/// A dense-bucket spatial grid over an immutable point set.
///
/// Build once with [`build`](SpatialGrid::build), query many times. The
/// grid stores a copy of the points (16 bytes each) so query results can
/// be distance-filtered without the caller re-supplying the slice.
#[derive(Clone, Debug)]
pub struct SpatialGrid {
    points: Vec<Point>,
    min_x: f64,
    min_y: f64,
    cell_m: f64,
    nx: usize,
    ny: usize,
    /// CSR layout: `starts[c]..starts[c + 1]` indexes `entries` for cell
    /// `c`; entries within a cell are ascending point indices.
    starts: Vec<u32>,
    entries: Vec<u32>,
}

impl SpatialGrid {
    /// Buckets `points` into square cells of side (at least) `cell_m`.
    ///
    /// The cell side is grown automatically if the bounding box would
    /// otherwise need more than [`MAX_CELLS`] cells, so degenerate inputs
    /// (a tiny radius over a continent) stay bounded. An empty point set
    /// builds an empty grid whose queries return nothing.
    ///
    /// # Panics
    ///
    /// Panics if `cell_m` is not positive and finite, or any coordinate
    /// is non-finite — the deterministic digest discipline upstream
    /// cannot tolerate NaN geometry.
    pub fn build(points: &[Point], cell_m: f64) -> SpatialGrid {
        assert!(cell_m > 0.0 && cell_m.is_finite(), "cell size must be positive and finite");
        assert!(
            points.len() <= u32::MAX as usize,
            "grid indexes points with u32 handles"
        );
        if points.is_empty() {
            return SpatialGrid {
                points: Vec::new(),
                min_x: 0.0,
                min_y: 0.0,
                cell_m,
                nx: 0,
                ny: 0,
                starts: vec![0],
                entries: Vec::new(),
            };
        }
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for p in points {
            assert!(p.x.is_finite() && p.y.is_finite(), "grid points must be finite");
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        // Grow the cell side until the bounding box fits the cell budget.
        // Deterministic: a pure function of the bbox and the requested
        // side, independent of point order.
        let mut cell = cell_m;
        let (mut nx, mut ny) = Self::dims(min_x, min_y, max_x, max_y, cell);
        while nx.saturating_mul(ny) > MAX_CELLS {
            cell *= 2.0;
            let d = Self::dims(min_x, min_y, max_x, max_y, cell);
            nx = d.0;
            ny = d.1;
        }

        // Counting sort into CSR buckets. Filling in ascending point
        // order makes every bucket's entry list ascending by construction.
        let cells = nx * ny;
        let mut starts = vec![0u32; cells + 1];
        let index_of = |p: &Point| -> usize {
            let cx = Self::axis_cell(p.x, min_x, cell, nx);
            let cy = Self::axis_cell(p.y, min_y, cell, ny);
            cy * nx + cx
        };
        for p in points {
            starts[index_of(p) + 1] += 1;
        }
        for c in 0..cells {
            starts[c + 1] += starts[c];
        }
        let mut cursor: Vec<u32> = starts[..cells].to_vec();
        let mut entries = vec![0u32; points.len()];
        for (i, p) in points.iter().enumerate() {
            let c = index_of(p);
            entries[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        SpatialGrid {
            points: points.to_vec(),
            min_x,
            min_y,
            cell_m: cell,
            nx,
            ny,
            starts,
            entries,
        }
    }

    fn dims(min_x: f64, min_y: f64, max_x: f64, max_y: f64, cell: f64) -> (usize, usize) {
        let nx = ((max_x - min_x) / cell).floor() as usize + 1;
        let ny = ((max_y - min_y) / cell).floor() as usize + 1;
        (nx, ny)
    }

    /// The cell coordinate of `v` along one axis, clamped into range (the
    /// max-coordinate point lands exactly on the boundary).
    fn axis_cell(v: f64, min: f64, cell: f64, n: usize) -> usize {
        let c = ((v - min) / cell).floor();
        if c <= 0.0 {
            0
        } else {
            (c as usize).min(n - 1)
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid indexes no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The effective cell side in meters (the requested side, grown if
    /// the cell budget demanded it).
    pub fn cell_m(&self) -> f64 {
        self.cell_m
    }

    /// Allocated cell count (diagnostics).
    pub fn cells(&self) -> usize {
        self.nx * self.ny
    }

    /// Collects the indices of all points within `radius_m` of `center`
    /// (inclusive boundary) into `out`, in ascending index order. `out`
    /// is cleared first; reuse one buffer across queries to stay
    /// allocation-free in hot loops.
    ///
    /// # Panics
    ///
    /// Panics if `radius_m` is negative or non-finite.
    pub fn within_into(&self, center: Point, radius_m: f64, out: &mut Vec<u32>) {
        assert!(radius_m >= 0.0 && radius_m.is_finite(), "radius must be >= 0 and finite");
        out.clear();
        if self.points.is_empty() {
            return;
        }
        let cx0 = Self::axis_cell(center.x - radius_m, self.min_x, self.cell_m, self.nx);
        let cx1 = Self::axis_cell(center.x + radius_m, self.min_x, self.cell_m, self.nx);
        let cy0 = Self::axis_cell(center.y - radius_m, self.min_y, self.cell_m, self.ny);
        let cy1 = Self::axis_cell(center.y + radius_m, self.min_y, self.cell_m, self.ny);
        let r2 = radius_m * radius_m;
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                let c = cy * self.nx + cx;
                let lo = self.starts[c] as usize;
                let hi = self.starts[c + 1] as usize;
                for &i in &self.entries[lo..hi] {
                    let p = self.points[i as usize];
                    let dx = p.x - center.x;
                    let dy = p.y - center.y;
                    if dx * dx + dy * dy <= r2 {
                        out.push(i);
                    }
                }
            }
        }
        // Buckets are scanned row-major, so results arrive cell-sorted,
        // not index-sorted; restore the ascending-index contract. The
        // candidate set is small (a 3x3 cell neighborhood), so this sort
        // is cheap relative to the pairwise scan it replaces.
        out.sort_unstable();
    }

    /// Allocating convenience form of [`within_into`](Self::within_into).
    pub fn within(&self, center: Point, radius_m: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.within_into(center, radius_m, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::uniform_scatter;
    use simcore::rng::Rng;

    /// Brute-force oracle: every index within `r` of `center`, ascending.
    fn brute(points: &[Point], center: Point, r: f64) -> Vec<u32> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(&center) <= r)
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn empty_grid_returns_nothing() {
        let g = SpatialGrid::build(&[], 100.0);
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert!(g.within(Point::new(0.0, 0.0), 1e9).is_empty());
    }

    #[test]
    fn matches_brute_force_on_uniform_clouds() {
        let mut rng = Rng::seed_from(11);
        for n in [1usize, 7, 100, 800] {
            let pts = uniform_scatter(n, 5_000.0, 3_000.0, &mut rng);
            let g = SpatialGrid::build(&pts, 400.0);
            for qi in 0..40 {
                let c = Point::new(
                    rng.next_f64() * 6_000.0 - 500.0,
                    rng.next_f64() * 4_000.0 - 500.0,
                );
                for r in [0.0, 50.0, 400.0, 1_200.0] {
                    assert_eq!(
                        g.within(c, r),
                        brute(&pts, c, r),
                        "n {n} query {qi} radius {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_brute_force_on_clustered_and_collinear_clouds() {
        let mut rng = Rng::seed_from(23);
        // Three tight clusters with wide gaps.
        let mut pts = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10_000.0, 0.0), (10_000.0, 10_000.0)] {
            for _ in 0..60 {
                pts.push(Point::new(cx + rng.next_f64() * 40.0, cy + rng.next_f64() * 40.0));
            }
        }
        // A collinear run (degenerate bbox height).
        let line: Vec<Point> = (0..50).map(|i| Point::new(i as f64 * 25.0, 7.5)).collect();
        for (label, cloud) in [("clusters", &pts), ("line", &line)] {
            let g = SpatialGrid::build(cloud, 300.0);
            for _ in 0..30 {
                let c = Point::new(rng.next_f64() * 12_000.0, rng.next_f64() * 12_000.0);
                for r in [10.0, 300.0, 5_000.0] {
                    assert_eq!(g.within(c, r), brute(cloud, c, r), "{label} r {r}");
                }
            }
        }
    }

    #[test]
    fn all_points_in_one_cell() {
        let pts: Vec<Point> = (0..20).map(|i| Point::new(i as f64 * 0.1, 0.05)).collect();
        let g = SpatialGrid::build(&pts, 1_000.0);
        assert_eq!(g.cells(), 1);
        assert_eq!(g.within(Point::new(1.0, 0.0), 3.0), brute(&pts, Point::new(1.0, 0.0), 3.0));
        // A query whose bounding square pokes outside the lone cell.
        assert_eq!(
            g.within(Point::new(-50.0, -50.0), 80.0),
            brute(&pts, Point::new(-50.0, -50.0), 80.0)
        );
    }

    #[test]
    fn results_are_ascending_and_boundary_inclusive() {
        let pts = vec![
            Point::new(3.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(4.0, 0.0),
        ];
        let g = SpatialGrid::build(&pts, 2.0);
        // Radius exactly reaching index 2 at distance 5.
        let got = g.within(Point::new(0.0, 0.0), 5.0);
        assert_eq!(got, vec![0, 1, 2, 3]);
        for w in got.windows(2) {
            assert!(w[0] < w[1], "ascending-index contract");
        }
        assert_eq!(g.within(Point::new(0.0, 0.0), 4.999), vec![0, 1, 3]);
    }

    #[test]
    fn identical_inputs_identical_query_order() {
        let mut rng = Rng::seed_from(5);
        let pts = uniform_scatter(300, 2_000.0, 2_000.0, &mut rng);
        let a = SpatialGrid::build(&pts, 150.0);
        let b = SpatialGrid::build(&pts, 150.0);
        let c = Point::new(777.0, 901.0);
        assert_eq!(a.within(c, 600.0), b.within(c, 600.0));
    }

    #[test]
    fn cell_budget_grows_cell_side() {
        // 1 m cells over a 10_000 km extent would want 1e14 cells.
        let pts = vec![Point::new(0.0, 0.0), Point::new(1e10, 1e10)];
        let g = SpatialGrid::build(&pts, 1.0);
        assert!(g.cells() <= MAX_CELLS);
        assert!(g.cell_m() > 1.0);
        assert_eq!(g.within(Point::new(0.0, 0.0), 10.0), vec![0]);
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn rejects_bad_cell() {
        SpatialGrid::build(&[], 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_points() {
        SpatialGrid::build(&[Point::new(f64::NAN, 0.0)], 10.0);
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn rejects_negative_radius() {
        let g = SpatialGrid::build(&[Point::new(0.0, 0.0)], 10.0);
        let _ = g.within(Point::new(0.0, 0.0), -1.0);
    }
}
