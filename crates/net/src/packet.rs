//! Packet and frame types shared by the PHY/MAC models.

use core::fmt;

/// The radio technologies deployed in the paper's experiment (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RadioTech {
    /// IEEE 802.15.4 at 2.4 GHz, 250 kb/s O-QPSK.
    Ieee802154,
    /// LoRa at 915 MHz (US) — spreading factor chosen per device.
    LoRa,
}

impl fmt::Display for RadioTech {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RadioTech::Ieee802154 => f.write_str("802.15.4"),
            RadioTech::LoRa => f.write_str("LoRa"),
        }
    }
}

/// An application payload, bounded to what one data credit covers when sent
/// over the federated network (24 bytes, §4.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Payload {
    len: u16,
}

impl Payload {
    /// The paper's data-credit unit payload: 24 bytes.
    pub const CREDIT_UNIT: Payload = Payload { len: 24 };

    /// Creates a payload of `len` bytes.
    pub const fn new(len: u16) -> Payload {
        Payload { len }
    }

    /// Payload length in bytes.
    pub const fn len(self) -> u16 {
        self.len
    }

    /// Returns true for a zero-byte payload.
    pub const fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// One sensor reading in flight: who sent it, with what, when.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Reading {
    /// Originating device id (fleet-level index).
    pub device: u32,
    /// Radio used.
    pub tech: RadioTech,
    /// Application payload.
    pub payload: Payload,
    /// Sequence number at the device.
    pub seq: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credit_unit_is_24_bytes() {
        assert_eq!(Payload::CREDIT_UNIT.len(), 24);
        assert!(!Payload::CREDIT_UNIT.is_empty());
        assert!(Payload::new(0).is_empty());
    }

    #[test]
    fn tech_displays() {
        assert_eq!(RadioTech::Ieee802154.to_string(), "802.15.4");
        assert_eq!(RadioTech::LoRa.to_string(), "LoRa");
    }

    #[test]
    fn reading_carries_fields() {
        let r = Reading {
            device: 3,
            tech: RadioTech::LoRa,
            payload: Payload::CREDIT_UNIT,
            seq: 42,
        };
        assert_eq!(r.device, 3);
        assert_eq!(r.seq, 42);
    }
}
