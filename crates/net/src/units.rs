//! Radio units: dBm/milliwatt conversions and link-budget arithmetic.
//!
//! Link budgets are additions in decibel space; keeping power levels in a
//! dedicated [`Dbm`] type prevents the classic watt/dBm mix-up bugs.

use core::fmt;
use core::ops::{Add, Sub};

/// A power level in dBm.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Dbm(pub f64);

/// A gain or loss in dB.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Db(pub f64);

impl Dbm {
    /// Converts milliwatts to dBm.
    ///
    /// # Panics
    ///
    /// Panics if `mw` is not positive and finite.
    pub fn from_mw(mw: f64) -> Dbm {
        assert!(mw > 0.0 && mw.is_finite(), "power must be positive");
        Dbm(10.0 * mw.log10())
    }

    /// Converts to milliwatts.
    pub fn to_mw(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Converts to watts.
    pub fn to_w(self) -> f64 {
        self.to_mw() / 1_000.0
    }

    /// The raw dBm value.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}

impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}

impl Sub<Dbm> for Dbm {
    /// The difference between two levels is a gain/loss in dB.
    type Output = Db;
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dBm", self.0)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dB", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mw_dbm_roundtrip() {
        assert!((Dbm::from_mw(1.0).value() - 0.0).abs() < 1e-12);
        assert!((Dbm::from_mw(100.0).value() - 20.0).abs() < 1e-12);
        assert!((Dbm(14.0).to_mw() - 25.1188).abs() < 0.001);
        assert!((Dbm(0.0).to_w() - 0.001).abs() < 1e-12);
        let p = 17.3;
        assert!((Dbm::from_mw(Dbm(p).to_mw()).value() - p).abs() < 1e-9);
    }

    #[test]
    fn budget_arithmetic() {
        // 14 dBm TX - 120 dB path + 3 dB antenna = -103 dBm RX.
        let rx = Dbm(14.0) - Db(120.0) + Db(3.0);
        assert!((rx.value() + 103.0).abs() < 1e-12);
        let margin = rx - Dbm(-110.0);
        assert!((margin.0 - 7.0).abs() < 1e-12);
    }

    #[test]
    fn db_arithmetic() {
        let total = Db(3.0) + Db(2.0) - Db(1.0);
        assert!((total.0 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(Dbm(-103.25).to_string(), "-103.2 dBm");
        assert_eq!(Db(7.0).to_string(), "7.0 dB");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn from_mw_rejects_zero() {
        Dbm::from_mw(0.0);
    }
}
