//! `net` — wireless PHY/MAC models and deployment geometry.
//!
//! The edge tier of *Century-Scale Smart Infrastructure* (HotOS ’21)
//! communicates over 802.15.4 and LoRa (§4.1). This crate provides the
//! physical-layer substrate the fleet simulation stands on:
//!
//! * [`units`] — dBm/dB arithmetic.
//! * [`pathloss`] — log-distance propagation with placement-static
//!   shadowing.
//! * [`link`] — logistic PRR waterfalls and link budgets.
//! * [`ieee802154`] — O-QPSK airtime, sensitivity, CSMA-CA.
//! * [`lora`] — the exact Semtech airtime formula, per-SF sensitivities,
//!   duty-cycle law.
//! * [`aloha`] — pure-ALOHA collision math for transmit-only populations,
//!   with capture.
//! * [`interference`] — SF orthogonality and capture-probability models.
//! * [`sfselect`] — deployment-time static SF assignment (transmit-only
//!   devices cannot run ADR).
//! * [`mesh`] — multi-hop relay coverage and its energy price.
//! * [`placement`] — greedy minimum-gateway placement (set cover).
//! * [`packet`] — shared frame/payload types (the 24-byte credit unit).
//! * [`topology`] — Manhattan-grid city and scatter generators.
//! * [`coverage`] — who-hears-whom resolution and Figure-1 reliance
//!   statistics.
//! * [`grid`] — flat spatial grid index: O(1) deterministic radius
//!   queries that let the resolvers above scale to 320k-pole cities.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod aloha;
pub mod coverage;
pub mod grid;
pub mod ieee802154;
pub mod interference;
pub mod link;
pub mod lora;
pub mod mesh;
pub mod packet;
pub mod placement;
pub mod pathloss;
pub mod sfselect;
pub mod topology;
pub mod units;

pub use coverage::{Coverage, RadioParams};
pub use grid::SpatialGrid;
pub use lora::{LoraConfig, SpreadingFactor};
pub use packet::{Payload, RadioTech};
pub use topology::{ManhattanCity, Point};
pub use units::{Db, Dbm};
