//! Gateway placement: covering a city with as few gateways as possible.
//!
//! Deploying the owned arm (§4.2) starts with a planning question: given
//! candidate mounting sites (poles with power and backhaul access), which
//! subset covers the sensor population? Minimum set cover is NP-hard; the
//! greedy algorithm is the standard practical answer with a proven
//! `ln(n)+1` approximation bound. Placement-static shadowing is resolved
//! once per (device, candidate) pair so the plan is evaluated on the same
//! radio lottery a real site survey would sample.

use simcore::rng::Rng;

use crate::coverage::{Fnv, RadioParams};
use crate::grid::SpatialGrid;
use crate::link::Link;
use crate::topology::Point;

/// A placement plan: chosen candidate indices and the coverage they achieve.
#[derive(Clone, Debug)]
pub struct Placement {
    /// Indices into the candidate list, in selection order.
    pub chosen: Vec<usize>,
    /// Fraction of devices covered by the chosen set.
    pub covered_fraction: f64,
    /// Devices left uncovered (indices).
    pub uncovered: Vec<usize>,
}

impl Placement {
    /// FNV-1a 64-bit digest of the plan (selection order, coverage bitmap)
    /// for differential and bench cross-checks.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.chosen.len() as u64);
        for &ci in &self.chosen {
            h.write_u64(ci as u64);
        }
        h.write_u64(self.covered_fraction.to_bits());
        h.write_u64(self.uncovered.len() as u64);
        for &di in &self.uncovered {
            h.write_u64(di as u64);
        }
        h.finish()
    }
}

/// Whether candidate `ci` hears device `di`; one draw from the pair's own
/// keyed stream — shared by the grid path and the pairwise oracle.
fn hears_pair(
    d: &Point,
    c: &Point,
    di: usize,
    ci: usize,
    params: &RadioParams,
    root: &Rng,
) -> bool {
    let mut pair_rng = root.split("place-pair", di as u64).split("cand", ci as u64);
    let shadow = params.pathloss.sample_shadowing(&mut pair_rng);
    let loss = params.pathloss.loss_with_shadowing(d.distance(c), shadow);
    let link = Link { tx: params.tx, loss, rx_model: params.rx_model };
    link.is_usable(params.usable_margin_db)
}

/// Greedily selects candidate sites until `target_coverage` of devices is
/// reached or no candidate adds coverage.
///
/// Audibility is resolved through a [`SpatialGrid`] over the candidate
/// sites at the provable [`RadioParams::cull_radius_m`], with per-pair
/// keyed shadowing — bit-identical to [`greedy_placement_pairwise`], in
/// O(devices · candidates-in-range) instead of O(devices · candidates).
///
/// # Panics
///
/// Panics unless `target_coverage` is in `(0, 1]`.
pub fn greedy_placement(
    devices: &[Point],
    candidates: &[Point],
    params: &RadioParams,
    target_coverage: f64,
    rng: &mut Rng,
) -> Placement {
    assert!(
        target_coverage > 0.0 && target_coverage <= 1.0,
        "target coverage must be in (0, 1]"
    );
    let cull = params.cull_radius_m();
    let grid = SpatialGrid::build(candidates, cull);
    let mut hears: Vec<Vec<usize>> = vec![Vec::new(); candidates.len()];
    let mut in_range: Vec<u32> = Vec::new();
    for (di, d) in devices.iter().enumerate() {
        grid.within_into(*d, cull, &mut in_range);
        for &ci in &in_range {
            let ci = ci as usize;
            if hears_pair(d, &candidates[ci], di, ci, params, rng) {
                hears[ci].push(di);
            }
        }
    }
    greedy_cover(devices.len(), &hears, target_coverage)
}

/// The exhaustive pairwise reference oracle for [`greedy_placement`] —
/// same per-pair streams, every pair evaluated. Differential use only.
#[cfg(feature = "reference-mode")]
pub fn greedy_placement_pairwise(
    devices: &[Point],
    candidates: &[Point],
    params: &RadioParams,
    target_coverage: f64,
    rng: &mut Rng,
) -> Placement {
    assert!(
        target_coverage > 0.0 && target_coverage <= 1.0,
        "target coverage must be in (0, 1]"
    );
    let mut hears: Vec<Vec<usize>> = vec![Vec::new(); candidates.len()];
    for (di, d) in devices.iter().enumerate() {
        for (ci, c) in candidates.iter().enumerate() {
            if hears_pair(d, c, di, ci, params, rng) {
                hears[ci].push(di);
            }
        }
    }
    greedy_cover(devices.len(), &hears, target_coverage)
}

/// The greedy set-cover core over resolved audibility sets — shared by
/// the grid path and the oracle.
fn greedy_cover(n: usize, hears: &[Vec<usize>], target_coverage: f64) -> Placement {
    let mut covered = vec![false; n];
    let mut covered_count = 0usize;
    let mut chosen = Vec::new();
    let mut used = vec![false; hears.len()];
    let needed = (target_coverage * n as f64).ceil() as usize;
    while covered_count < needed {
        // Pick the candidate covering the most new devices (ties: lowest
        // index, for determinism).
        let mut best: Option<(usize, usize)> = None;
        for (ci, ds) in hears.iter().enumerate() {
            if used[ci] {
                continue;
            }
            let gain = ds.iter().filter(|&&d| !covered[d]).count();
            if gain > 0 && best.is_none_or(|(_, bg)| gain > bg) {
                best = Some((ci, gain));
            }
        }
        let Some((ci, _)) = best else {
            break; // No candidate adds coverage.
        };
        used[ci] = true;
        chosen.push(ci);
        for &d in &hears[ci] {
            if !covered[d] {
                covered[d] = true;
                covered_count += 1;
            }
        }
    }
    Placement {
        chosen,
        covered_fraction: if n == 0 { 1.0 } else { covered_count as f64 / n as f64 },
        uncovered: (0..n).filter(|&d| !covered[d]).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ieee802154;
    use crate::link::ReceptionModel;
    use crate::pathloss::LogDistance;
    use crate::topology::{AssetKind, ManhattanCity};
    use crate::units::Dbm;

    fn params() -> RadioParams {
        RadioParams {
            tx: Dbm(12.0),
            rx_model: ReceptionModel::at_sensitivity(ieee802154::SENSITIVITY),
            pathloss: LogDistance::urban_2450(),
            usable_margin_db: 3.0,
        }
    }

    fn city_scene() -> (Vec<Point>, Vec<Point>) {
        let city = ManhattanCity::new(6, 6);
        let devices: Vec<Point> = city
            .assets()
            .into_iter()
            .filter(|a| a.kind == AssetKind::Streetlight)
            .map(|a| a.at)
            .collect();
        // Candidates: every intersection (power + conduit available).
        let candidates: Vec<Point> = city
            .assets()
            .into_iter()
            .filter(|a| a.kind == AssetKind::Intersection)
            .map(|a| a.at)
            .collect();
        (devices, candidates)
    }

    #[test]
    fn reaches_target_with_fewer_sites_than_grid() {
        let (devices, candidates) = city_scene();
        let mut rng = Rng::seed_from(1);
        let plan = greedy_placement(&devices, &candidates, &params(), 0.9, &mut rng);
        assert!(plan.covered_fraction >= 0.9, "covered {}", plan.covered_fraction);
        // A 600x600 m district at ~115 m radio reach wants >= 9 grid cells;
        // greedy should do it with a modest subset of the 49 candidates.
        assert!(
            plan.chosen.len() < candidates.len() / 2,
            "chose {} of {}",
            plan.chosen.len(),
            candidates.len()
        );
    }

    #[test]
    fn higher_targets_need_more_sites() {
        let (devices, candidates) = city_scene();
        let run = |target: f64| {
            let mut rng = Rng::seed_from(2);
            greedy_placement(&devices, &candidates, &params(), target, &mut rng)
                .chosen
                .len()
        };
        assert!(run(0.95) >= run(0.5));
    }

    #[test]
    fn greedy_is_deterministic() {
        let (devices, candidates) = city_scene();
        let mut r1 = Rng::seed_from(3);
        let mut r2 = Rng::seed_from(3);
        let a = greedy_placement(&devices, &candidates, &params(), 0.9, &mut r1);
        let b = greedy_placement(&devices, &candidates, &params(), 0.9, &mut r2);
        assert_eq!(a.chosen, b.chosen);
    }

    #[test]
    fn unreachable_devices_reported() {
        let devices = vec![Point::new(0.0, 0.0), Point::new(90_000.0, 0.0)];
        let candidates = vec![Point::new(10.0, 0.0)];
        let mut rng = Rng::seed_from(4);
        let plan = greedy_placement(&devices, &candidates, &params(), 1.0, &mut rng);
        assert_eq!(plan.uncovered, vec![1]);
        assert!((plan.covered_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_device_set_is_trivially_covered() {
        let mut rng = Rng::seed_from(5);
        let plan = greedy_placement(&[], &[Point::new(0.0, 0.0)], &params(), 1.0, &mut rng);
        assert_eq!(plan.covered_fraction, 1.0);
        assert!(plan.chosen.is_empty());
    }

    #[test]
    #[should_panic(expected = "target coverage")]
    fn rejects_zero_target() {
        let mut rng = Rng::seed_from(6);
        greedy_placement(&[], &[], &params(), 0.0, &mut rng);
    }

    #[cfg(feature = "reference-mode")]
    #[test]
    fn grid_matches_pairwise_oracle() {
        let (devices, candidates) = city_scene();
        let mut r1 = Rng::seed_from(17);
        let mut r2 = Rng::seed_from(17);
        let grid = greedy_placement(&devices, &candidates, &params(), 0.9, &mut r1);
        let pairwise = greedy_placement_pairwise(&devices, &candidates, &params(), 0.9, &mut r2);
        assert_eq!(grid.chosen, pairwise.chosen);
        assert_eq!(grid.uncovered, pairwise.uncovered);
        assert_eq!(grid.digest(), pairwise.digest());
    }
}
