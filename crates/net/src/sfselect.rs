//! Static spreading-factor selection for transmit-only devices.
//!
//! A transmit-only sensor cannot run ADR (it never listens), so its SF is
//! chosen once, at deployment, from a site survey: the **fastest SF whose
//! link budget closes with margin**. Faster SFs cost less energy and less
//! airtime (collisions!), but reach less far. This is the deployment-time
//! decision every one of the paper's LoRa sensors embeds for life — another
//! place where a day-one choice must hold for decades.

use crate::lora::{LoraConfig, SpreadingFactor};
use crate::units::{Db, Dbm};

/// Why an SF could not be assigned.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SfSelectError {
    /// Even SF12 cannot close this link with the requested margin.
    LinkCannotClose {
        /// Received power at the gateway.
        rx: Dbm,
        /// The margin that was required.
        min_margin_db: f64,
    },
    /// A survey-wide statistic was requested over an empty survey.
    EmptySurvey,
    /// No device in the survey could close its link at any SF.
    NoneReachable {
        /// How many links were surveyed (all unreachable).
        surveyed: usize,
    },
}

impl core::fmt::Display for SfSelectError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SfSelectError::LinkCannotClose { rx, min_margin_db } => write!(
                f,
                "no SF closes the link: rx {rx:?} with {min_margin_db} dB margin required"
            ),
            SfSelectError::EmptySurvey => f.write_str("survey contains no links"),
            SfSelectError::NoneReachable { surveyed } => {
                write!(f, "none of the {surveyed} surveyed links is reachable")
            }
        }
    }
}

impl std::error::Error for SfSelectError {}

/// The assignment outcome for one device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SfAssignment {
    /// The chosen spreading factor.
    pub sf: SpreadingFactor,
    /// Link margin at that SF (dB above sensitivity).
    pub margin: Db,
    /// Airtime of a `payload_bytes` packet at the chosen SF, seconds.
    pub airtime_s: f64,
}

/// Chooses the fastest SF that closes a link of total loss `path_loss`
/// from a transmitter at `tx`, requiring at least `min_margin_db` of slack
/// (fade margin for decades of foliage growth and new construction).
///
/// Returns [`SfSelectError::LinkCannotClose`] if even SF12 cannot close
/// the link.
pub fn select_sf(
    tx: Dbm,
    path_loss: Db,
    min_margin_db: f64,
    payload_bytes: u32,
) -> Result<SfAssignment, SfSelectError> {
    let rx = tx - path_loss;
    for sf in SpreadingFactor::ALL {
        let margin = rx - sf.sensitivity_125khz();
        if margin.0 >= min_margin_db {
            return Ok(SfAssignment {
                sf,
                margin,
                airtime_s: LoraConfig::uplink(sf).airtime_s(payload_bytes),
            });
        }
    }
    Err(SfSelectError::LinkCannotClose { rx, min_margin_db })
}

/// Distribution of SF assignments over a set of link losses — the site
/// survey's summary output. Returns counts per SF plus unreachable count.
pub fn survey(
    tx: Dbm,
    losses: &[Db],
    min_margin_db: f64,
    payload_bytes: u32,
) -> ([usize; 6], usize) {
    let mut counts = [0usize; 6];
    let mut unreachable = 0;
    for &loss in losses {
        match select_sf(tx, loss, min_margin_db, payload_bytes) {
            Ok(a) => counts[(a.sf.value() - 7) as usize] += 1,
            Err(_) => unreachable += 1,
        }
    }
    (counts, unreachable)
}

/// Mean per-packet airtime over a survey (collision-footprint planning).
///
/// Returns [`SfSelectError::EmptySurvey`] for an empty loss set and
/// [`SfSelectError::NoneReachable`] when no surveyed link closes.
pub fn mean_airtime_s(
    tx: Dbm,
    losses: &[Db],
    min_margin_db: f64,
    payload_bytes: u32,
) -> Result<f64, SfSelectError> {
    if losses.is_empty() {
        return Err(SfSelectError::EmptySurvey);
    }
    let mut total = 0.0;
    let mut n = 0usize;
    for &loss in losses {
        if let Ok(a) = select_sf(tx, loss, min_margin_db, payload_bytes) {
            total += a.airtime_s;
            n += 1;
        }
    }
    if n == 0 {
        Err(SfSelectError::NoneReachable { surveyed: losses.len() })
    } else {
        Ok(total / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_link_gets_fastest_sf() {
        let a = select_sf(Dbm(14.0), Db(100.0), 10.0, 24).expect("closes");
        assert_eq!(a.sf, SpreadingFactor::Sf7);
        // rx = -86, SF7 sensitivity -123 -> 37 dB margin.
        assert!((a.margin.0 - 37.0).abs() < 1e-9);
    }

    #[test]
    fn marginal_link_escalates_sf() {
        // rx = 14 - 140 = -126; SF7 (-123) fails, SF8 (-126) has 0 margin,
        // with 3 dB required the first fit is SF9 (-129 -> 3 dB).
        let a = select_sf(Dbm(14.0), Db(140.0), 3.0, 24).expect("closes");
        assert_eq!(a.sf, SpreadingFactor::Sf9);
        assert!((a.margin.0 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn hopeless_link_is_typed_error() {
        match select_sf(Dbm(14.0), Db(170.0), 3.0, 24) {
            Err(SfSelectError::LinkCannotClose { rx, min_margin_db }) => {
                assert!((rx.0 - (14.0 - 170.0)).abs() < 1e-9);
                assert!((min_margin_db - 3.0).abs() < 1e-9);
            }
            other => panic!("expected LinkCannotClose, got {other:?}"),
        }
    }

    #[test]
    fn airtime_grows_with_assigned_sf() {
        let near = select_sf(Dbm(14.0), Db(100.0), 3.0, 24).expect("closes");
        let far = select_sf(Dbm(14.0), Db(145.0), 3.0, 24).expect("closes");
        assert!(far.sf > near.sf);
        assert!(far.airtime_s > near.airtime_s * 2.0);
    }

    #[test]
    fn survey_partitions_population() {
        let losses: Vec<Db> = (0..100).map(|i| Db(100.0 + i as f64 * 0.6)).collect();
        let (counts, unreachable) = survey(Dbm(14.0), &losses, 3.0, 24);
        assert_eq!(counts.iter().sum::<usize>() + unreachable, 100);
        // Spread over several SFs with both ends populated.
        assert!(counts[0] > 0, "some devices at SF7");
        assert!(counts.iter().filter(|&&c| c > 0).count() >= 3);
    }

    #[test]
    fn empty_survey_is_well_defined() {
        // Regression: empty input must produce typed errors, not panics.
        let (counts, unreachable) = survey(Dbm(14.0), &[], 3.0, 24);
        assert_eq!(counts, [0; 6]);
        assert_eq!(unreachable, 0);
        assert_eq!(
            mean_airtime_s(Dbm(14.0), &[], 3.0, 24),
            Err(SfSelectError::EmptySurvey)
        );
    }

    #[test]
    fn higher_margin_requirement_pushes_sf_up() {
        let lax = select_sf(Dbm(14.0), Db(135.0), 2.0, 24).expect("closes");
        let strict = select_sf(Dbm(14.0), Db(135.0), 12.0, 24).expect("closes");
        assert!(strict.sf > lax.sf);
    }

    #[test]
    fn mean_airtime_over_survey() {
        let losses = [Db(100.0), Db(145.0)];
        let mean = mean_airtime_s(Dbm(14.0), &losses, 3.0, 24).expect("reachable");
        let a = select_sf(Dbm(14.0), Db(100.0), 3.0, 24).expect("closes").airtime_s;
        let b = select_sf(Dbm(14.0), Db(145.0), 3.0, 24).expect("closes").airtime_s;
        assert!((mean - 0.5 * (a + b)).abs() < 1e-12);
        assert_eq!(
            mean_airtime_s(Dbm(14.0), &[Db(200.0)], 3.0, 24),
            Err(SfSelectError::NoneReachable { surveyed: 1 })
        );
    }

    #[test]
    fn error_display_is_informative() {
        let e = SfSelectError::NoneReachable { surveyed: 4 };
        assert!(e.to_string().contains('4'));
        assert!(SfSelectError::EmptySurvey.to_string().contains("survey"));
    }
}
