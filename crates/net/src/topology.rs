//! Deployment geometry: where the city puts its sensors and gateways.
//!
//! The paper's motivating census is Los Angeles: 320,000 utility poles,
//! 61,315 intersections, 210,000 streetlights. [`ManhattanCity`] generates
//! a grid city whose asset mix follows those urban ratios; scatter helpers
//! generate unstructured deployments. All geometry lives on a flat plane in
//! meters — adequate at city scale.

use simcore::dist::Poisson;
use simcore::rng::Rng;

/// A point on the deployment plane, in meters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// East coordinate (m).
    pub x: f64,
    /// North coordinate (m).
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// What kind of street furniture hosts a sensor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AssetKind {
    /// Utility pole.
    UtilityPole,
    /// Signalized intersection.
    Intersection,
    /// Streetlight.
    Streetlight,
}

/// One mounting asset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Asset {
    /// Location.
    pub at: Point,
    /// Asset type.
    pub kind: AssetKind,
}

/// Uniformly scatters `n` points over a `w × h` rectangle.
pub fn uniform_scatter(n: usize, w: f64, h: f64, rng: &mut Rng) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.next_f64() * w, rng.next_f64() * h))
        .collect()
}

/// Samples a homogeneous Poisson point process of intensity
/// `per_km2` points/km² over a `w × h` meter rectangle.
pub fn poisson_scatter(per_km2: f64, w: f64, h: f64, rng: &mut Rng) -> Vec<Point> {
    assert!(per_km2 >= 0.0 && per_km2.is_finite(), "intensity must be >= 0");
    let area_km2 = w * h / 1e6;
    let mean = per_km2 * area_km2;
    if mean <= 0.0 {
        return Vec::new();
    }
    // `mean` is positive and finite here (asserted intensity, finite
    // area), so the constructor cannot fail; degrade to an empty scatter
    // rather than panic if that ever changes.
    let n = match Poisson::new(mean) {
        Ok(p) => p.sample(rng) as usize,
        Err(_) => return Vec::new(),
    };
    uniform_scatter(n, w, h, rng)
}

/// A Manhattan-grid city: `bx × by` blocks of `block_m` meters.
///
/// Assets are laid out structurally:
/// * an intersection at every interior grid crossing;
/// * streetlights along every street edge at `light_spacing_m`;
/// * utility poles along every street edge at `pole_spacing_m`, offset by
///   half a spacing from the lights.
#[derive(Clone, Debug)]
pub struct ManhattanCity {
    /// Blocks east-west.
    pub bx: u32,
    /// Blocks north-south.
    pub by: u32,
    /// Block edge length (m).
    pub block_m: f64,
    /// Streetlight spacing along edges (m).
    pub light_spacing_m: f64,
    /// Utility-pole spacing along edges (m).
    pub pole_spacing_m: f64,
}

impl ManhattanCity {
    /// A city of `bx × by` blocks with US-typical 100 m blocks, 50 m light
    /// spacing and 33 m pole spacing (poles outnumber lights ~1.5:1, the
    /// LA-census regime).
    ///
    /// # Panics
    ///
    /// Panics on zero blocks or non-positive spacings.
    pub fn new(bx: u32, by: u32) -> Self {
        let c = ManhattanCity {
            bx,
            by,
            block_m: 100.0,
            light_spacing_m: 50.0,
            pole_spacing_m: 33.0,
        };
        c.validate();
        c
    }

    fn validate(&self) {
        assert!(self.bx > 0 && self.by > 0, "need at least one block");
        assert!(
            self.block_m > 0.0 && self.light_spacing_m > 0.0 && self.pole_spacing_m > 0.0,
            "spacings must be positive"
        );
    }

    /// City extent in meters, `(width, height)`.
    pub fn extent(&self) -> (f64, f64) {
        (self.bx as f64 * self.block_m, self.by as f64 * self.block_m)
    }

    /// Generates all mounting assets.
    pub fn assets(&self) -> Vec<Asset> {
        self.validate();
        let mut out = Vec::new();
        // Intersections at every grid crossing (including the boundary).
        for ix in 0..=self.bx {
            for iy in 0..=self.by {
                out.push(Asset {
                    at: Point::new(ix as f64 * self.block_m, iy as f64 * self.block_m),
                    kind: AssetKind::Intersection,
                });
            }
        }
        // Furniture along horizontal and vertical street edges.
        self.along_edges(self.light_spacing_m, 0.0, AssetKind::Streetlight, &mut out);
        self.along_edges(self.pole_spacing_m, 0.5, AssetKind::UtilityPole, &mut out);
        out
    }

    fn along_edges(
        &self,
        spacing: f64,
        phase: f64,
        kind: AssetKind,
        out: &mut Vec<Asset>,
    ) {
        let per_edge = (self.block_m / spacing).floor() as u32;
        let offset = phase * spacing;
        // Horizontal streets.
        for iy in 0..=self.by {
            let y = iy as f64 * self.block_m;
            for ix in 0..self.bx {
                let x0 = ix as f64 * self.block_m;
                for k in 0..per_edge {
                    let x = x0 + offset + (k as f64 + 0.5) * spacing;
                    if x < x0 + self.block_m {
                        out.push(Asset { at: Point::new(x, y), kind });
                    }
                }
            }
        }
        // Vertical streets.
        for ix in 0..=self.bx {
            let x = ix as f64 * self.block_m;
            for iy in 0..self.by {
                let y0 = iy as f64 * self.block_m;
                for k in 0..per_edge {
                    let y = y0 + offset + (k as f64 + 0.5) * spacing;
                    if y < y0 + self.block_m {
                        out.push(Asset { at: Point::new(x, y), kind });
                    }
                }
            }
        }
    }

    /// Places gateways on a regular grid with `spacing_m` between them,
    /// centered in their cells.
    pub fn gateway_grid(&self, spacing_m: f64) -> Vec<Point> {
        assert!(spacing_m > 0.0, "spacing must be positive");
        let (w, h) = self.extent();
        let nx = (w / spacing_m).ceil().max(1.0) as u32;
        let ny = (h / spacing_m).ceil().max(1.0) as u32;
        let mut out = Vec::with_capacity((nx * ny) as usize);
        for ix in 0..nx {
            for iy in 0..ny {
                out.push(Point::new(
                    (ix as f64 + 0.5) * w / nx as f64,
                    (iy as f64 + 0.5) * h / ny as f64,
                ));
            }
        }
        out
    }

    /// Asset counts by kind: `(poles, intersections, lights)`.
    pub fn census(&self) -> (usize, usize, usize) {
        let assets = self.assets();
        let count = |k: AssetKind| assets.iter().filter(|a| a.kind == k).count();
        (
            count(AssetKind::UtilityPole),
            count(AssetKind::Intersection),
            count(AssetKind::Streetlight),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_math() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_scatter_bounds() {
        let mut rng = Rng::seed_from(1);
        let pts = uniform_scatter(1_000, 500.0, 200.0, &mut rng);
        assert_eq!(pts.len(), 1_000);
        for p in &pts {
            assert!((0.0..500.0).contains(&p.x));
            assert!((0.0..200.0).contains(&p.y));
        }
    }

    #[test]
    fn poisson_scatter_intensity() {
        let mut rng = Rng::seed_from(2);
        // 100/km² over 10 km² -> ~1000 points.
        let pts = poisson_scatter(100.0, 5_000.0, 2_000.0, &mut rng);
        assert!(pts.len() > 850 && pts.len() < 1_150, "n {}", pts.len());
        assert!(poisson_scatter(0.0, 1_000.0, 1_000.0, &mut rng).is_empty());
    }

    #[test]
    fn city_intersection_count() {
        let c = ManhattanCity::new(10, 10);
        let (_, intersections, _) = c.census();
        assert_eq!(intersections, 11 * 11);
    }

    #[test]
    fn city_asset_ratios_match_la_shape() {
        // LA ratios: poles/intersections ≈ 5.2, lights/intersections ≈ 3.4.
        // The default grid should land in the same regime (structural, not
        // exact): more poles than lights, more lights than intersections.
        let c = ManhattanCity::new(20, 20);
        let (poles, intersections, lights) = c.census();
        assert!(poles > lights, "poles {poles} lights {lights}");
        assert!(lights > intersections, "lights {lights} intersections {intersections}");
        let pr = poles as f64 / intersections as f64;
        let lr = lights as f64 / intersections as f64;
        assert!(pr > 2.0 && pr < 8.0, "pole ratio {pr}");
        assert!(lr > 1.5 && lr < 6.0, "light ratio {lr}");
    }

    #[test]
    fn assets_inside_extent() {
        let c = ManhattanCity::new(5, 3);
        let (w, h) = c.extent();
        for a in c.assets() {
            assert!(a.at.x >= 0.0 && a.at.x <= w);
            assert!(a.at.y >= 0.0 && a.at.y <= h);
        }
    }

    #[test]
    fn gateway_grid_covers_city() {
        let c = ManhattanCity::new(10, 10);
        let gws = c.gateway_grid(300.0);
        // 1000 m / 300 m -> 4 per axis.
        assert_eq!(gws.len(), 16);
        let (w, h) = c.extent();
        for g in &gws {
            assert!(g.x > 0.0 && g.x < w && g.y > 0.0 && g.y < h);
        }
    }

    #[test]
    fn deterministic_generation() {
        let c = ManhattanCity::new(4, 4);
        assert_eq!(c.assets(), c.assets());
    }

    #[test]
    #[should_panic(expected = "block")]
    fn rejects_zero_blocks() {
        ManhattanCity::new(0, 5);
    }
}
