//! LoRa PHY: airtime, sensitivity, and regulatory duty cycle.
//!
//! The airtime computation implements the Semtech formula (AN1200.13 /
//! SX1276 datasheet §4.1.1.6) exactly; per-SF sensitivities and required
//! SNRs follow the SX1276 datasheet. These numbers drive both the energy
//! cost of a transmission (via the `energy` crate) and the collision
//! footprint on the shared channel (via [`crate::aloha`]).

use crate::units::{Db, Dbm};

/// LoRa spreading factors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpreadingFactor {
    /// SF7 — fastest, shortest range.
    Sf7,
    /// SF8.
    Sf8,
    /// SF9.
    Sf9,
    /// SF10.
    Sf10,
    /// SF11.
    Sf11,
    /// SF12 — slowest, longest range.
    Sf12,
}

impl SpreadingFactor {
    /// All factors, fastest first.
    pub const ALL: [SpreadingFactor; 6] = [
        SpreadingFactor::Sf7,
        SpreadingFactor::Sf8,
        SpreadingFactor::Sf9,
        SpreadingFactor::Sf10,
        SpreadingFactor::Sf11,
        SpreadingFactor::Sf12,
    ];

    /// The numeric spreading factor (7–12).
    pub const fn value(self) -> u32 {
        match self {
            SpreadingFactor::Sf7 => 7,
            SpreadingFactor::Sf8 => 8,
            SpreadingFactor::Sf9 => 9,
            SpreadingFactor::Sf10 => 10,
            SpreadingFactor::Sf11 => 11,
            SpreadingFactor::Sf12 => 12,
        }
    }

    /// Receiver sensitivity at 125 kHz bandwidth (SX1276 datasheet).
    pub const fn sensitivity_125khz(self) -> Dbm {
        match self {
            SpreadingFactor::Sf7 => Dbm(-123.0),
            SpreadingFactor::Sf8 => Dbm(-126.0),
            SpreadingFactor::Sf9 => Dbm(-129.0),
            SpreadingFactor::Sf10 => Dbm(-132.0),
            SpreadingFactor::Sf11 => Dbm(-134.5),
            SpreadingFactor::Sf12 => Dbm(-137.0),
        }
    }

    /// Minimum demodulation SNR (dB) — negative thanks to spreading gain.
    pub const fn required_snr_db(self) -> f64 {
        match self {
            SpreadingFactor::Sf7 => -7.5,
            SpreadingFactor::Sf8 => -10.0,
            SpreadingFactor::Sf9 => -12.5,
            SpreadingFactor::Sf10 => -15.0,
            SpreadingFactor::Sf11 => -17.5,
            SpreadingFactor::Sf12 => -20.0,
        }
    }
}

/// A LoRa PHY configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoraConfig {
    /// Spreading factor.
    pub sf: SpreadingFactor,
    /// Bandwidth in Hz (125 kHz typical for uplinks).
    pub bandwidth_hz: u32,
    /// Coding rate denominator offset: 1 → 4/5 … 4 → 4/8.
    pub coding_rate: u8,
    /// Preamble symbol count (8 for LoRaWAN).
    pub preamble_symbols: u32,
    /// Explicit header present (LoRaWAN uplinks: yes).
    pub explicit_header: bool,
    /// CRC appended (LoRaWAN uplinks: yes).
    pub crc: bool,
}

impl LoraConfig {
    /// LoRaWAN-style uplink defaults at the given SF: 125 kHz, CR 4/5,
    /// 8-symbol preamble, explicit header, CRC on.
    pub fn uplink(sf: SpreadingFactor) -> Self {
        LoraConfig {
            sf,
            bandwidth_hz: 125_000,
            coding_rate: 1,
            preamble_symbols: 8,
            explicit_header: true,
            crc: true,
        }
    }

    /// Symbol duration in seconds.
    pub fn symbol_time_s(&self) -> f64 {
        (1u64 << self.sf.value()) as f64 / self.bandwidth_hz as f64
    }

    /// Whether low-data-rate optimization is mandated (symbol time > 16 ms:
    /// SF11/SF12 at 125 kHz).
    pub fn low_data_rate_optimization(&self) -> bool {
        self.symbol_time_s() > 0.016
    }

    /// Time on air for a `payload_bytes` PHY payload, in seconds
    /// (Semtech AN1200.13).
    ///
    /// # Panics
    ///
    /// Panics if `coding_rate` is outside 1–4.
    pub fn airtime_s(&self, payload_bytes: u32) -> f64 {
        assert!((1..=4).contains(&self.coding_rate), "coding rate must be 1..=4");
        let t_sym = self.symbol_time_s();
        let t_preamble = (self.preamble_symbols as f64 + 4.25) * t_sym;
        let sf = self.sf.value() as f64;
        let de = if self.low_data_rate_optimization() { 1.0 } else { 0.0 };
        let ih = if self.explicit_header { 0.0 } else { 1.0 };
        let crc = if self.crc { 1.0 } else { 0.0 };
        let numerator = 8.0 * payload_bytes as f64 - 4.0 * sf + 28.0 + 16.0 * crc - 20.0 * ih;
        let denominator = 4.0 * (sf - 2.0 * de);
        let symbols = 8.0 + ((numerator / denominator).ceil() * (self.coding_rate as f64 + 4.0)).max(0.0);
        t_preamble + symbols * t_sym
    }

    /// Equivalent PHY bit rate in b/s: `SF · BW / 2^SF · CR`.
    pub fn bitrate_bps(&self) -> f64 {
        let sf = self.sf.value() as f64;
        sf * self.bandwidth_hz as f64 / (1u64 << self.sf.value()) as f64 * 4.0
            / (4.0 + self.coding_rate as f64)
    }
}

/// Regulatory duty-cycle limits for sub-GHz bands.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DutyCycle {
    /// EU 868 MHz: 1 % per sub-band.
    Eu868,
    /// US 915 MHz: no duty cycle, but 400 ms max dwell per channel.
    Us915,
}

impl DutyCycle {
    /// Minimum interval between packets of airtime `airtime_s`, in seconds.
    pub fn min_interval_s(&self, airtime_s: f64) -> f64 {
        match self {
            // 1 % duty cycle: wait 99x the airtime.
            DutyCycle::Eu868 => airtime_s * 99.0,
            // Dwell limit only; frequency hopping makes back-to-back legal.
            DutyCycle::Us915 => 0.0,
        }
    }

    /// Whether a single transmission of `airtime_s` is legal at all.
    pub fn transmission_legal(&self, airtime_s: f64) -> bool {
        match self {
            DutyCycle::Eu868 => true,
            DutyCycle::Us915 => airtime_s <= 0.400,
        }
    }
}

/// The maximum link budget (TX power minus sensitivity) for a configuration
/// at the given transmit power.
pub fn max_coupling_loss(tx: Dbm, sf: SpreadingFactor) -> Db {
    tx - sf.sensitivity_125khz()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airtime_sf7_24byte_reference() {
        // Hand-computed from the Semtech formula: SF7/125k, CR 4/5, 8-sym
        // preamble, explicit header, CRC, 24-byte payload:
        //   t_sym = 1.024 ms; preamble = 12.544 ms;
        //   ceil((192-28+28+16)/28)=8 -> 8*5=40; (8+40)*1.024 = 49.152 ms;
        //   total = 61.696 ms.
        let cfg = LoraConfig::uplink(SpreadingFactor::Sf7);
        let t = cfg.airtime_s(24);
        assert!((t - 0.061_696).abs() < 1e-6, "t {t}");
    }

    #[test]
    fn airtime_sf12_24byte_reference() {
        // SF12/125k with LDRO: t_sym = 32.768 ms; preamble = 401.408 ms;
        // ceil((192-48+28+16)/40)=5 -> 25; (8+25)*32.768 = 1081.344 ms;
        // total = 1482.752 ms.
        let cfg = LoraConfig::uplink(SpreadingFactor::Sf12);
        let t = cfg.airtime_s(24);
        assert!((t - 1.482_752).abs() < 1e-6, "t {t}");
    }

    #[test]
    fn airtime_monotone_in_payload_and_sf() {
        let cfg7 = LoraConfig::uplink(SpreadingFactor::Sf7);
        assert!(cfg7.airtime_s(48) > cfg7.airtime_s(24));
        let mut last = 0.0;
        for sf in SpreadingFactor::ALL {
            let t = LoraConfig::uplink(sf).airtime_s(24);
            assert!(t > last, "sf {sf:?}");
            last = t;
        }
    }

    #[test]
    fn ldro_only_sf11_sf12_at_125k() {
        for sf in SpreadingFactor::ALL {
            let cfg = LoraConfig::uplink(sf);
            let expect = sf.value() >= 11;
            assert_eq!(cfg.low_data_rate_optimization(), expect, "sf {sf:?}");
        }
    }

    #[test]
    fn sensitivity_improves_with_sf() {
        let mut last = 0.0;
        for sf in SpreadingFactor::ALL {
            let s = sf.sensitivity_125khz().value();
            assert!(s < last, "sf {sf:?}");
            last = s;
        }
        assert_eq!(SpreadingFactor::Sf12.sensitivity_125khz(), Dbm(-137.0));
    }

    #[test]
    fn coupling_loss_vs_range() {
        // 14 dBm TX at SF12: 151 dB budget.
        let mcl = max_coupling_loss(Dbm(14.0), SpreadingFactor::Sf12);
        assert!((mcl.0 - 151.0).abs() < 1e-9);
    }

    #[test]
    fn bitrate_sane() {
        // SF7/125k CR4/5 ≈ 5.47 kb/s; SF12 ≈ 293 b/s.
        let b7 = LoraConfig::uplink(SpreadingFactor::Sf7).bitrate_bps();
        let b12 = LoraConfig::uplink(SpreadingFactor::Sf12).bitrate_bps();
        assert!((b7 - 5_468.75).abs() < 1.0, "b7 {b7}");
        assert!((b12 - 292.97).abs() < 0.5, "b12 {b12}");
    }

    #[test]
    fn eu_duty_cycle_spacing() {
        let cfg = LoraConfig::uplink(SpreadingFactor::Sf12);
        let t = cfg.airtime_s(24);
        let gap = DutyCycle::Eu868.min_interval_s(t);
        // SF12 24-byte packets legal at most every ~147 s in the EU.
        assert!((gap - t * 99.0).abs() < 1e-9);
        assert!(gap > 140.0);
        assert_eq!(DutyCycle::Us915.min_interval_s(t), 0.0);
    }

    #[test]
    fn us_dwell_limit_blocks_sf12_large() {
        // SF11+ with 24-byte payloads exceeds the 400 ms US dwell limit.
        let t11 = LoraConfig::uplink(SpreadingFactor::Sf11).airtime_s(24);
        assert!(!DutyCycle::Us915.transmission_legal(t11), "t11 {t11}");
        let t10 = LoraConfig::uplink(SpreadingFactor::Sf10).airtime_s(24);
        assert!(DutyCycle::Us915.transmission_legal(t10), "t10 {t10}");
    }

    #[test]
    #[should_panic(expected = "coding rate")]
    fn rejects_bad_coding_rate() {
        let mut cfg = LoraConfig::uplink(SpreadingFactor::Sf7);
        cfg.coding_rate = 5;
        cfg.airtime_s(10);
    }
}
