//! IEEE 802.15.4 PHY/MAC: airtime, sensitivity, and CSMA-CA behaviour.
//!
//! The paper's "owned infrastructure" arm uses 802.15.4 (2.4 GHz O-QPSK,
//! 250 kb/s). The models here cover what the fleet simulation needs:
//! frame airtime, receiver sensitivity, and the success probability of
//! unslotted CSMA-CA under contention.

use simcore::rng::Rng;

use crate::units::Dbm;

/// PHY bit rate, b/s (2.4 GHz O-QPSK).
pub const BIT_RATE_BPS: f64 = 250_000.0;

/// PHY overhead: 4 B preamble + 1 B SFD + 1 B PHR.
pub const PHY_OVERHEAD_BYTES: u32 = 6;

/// Typical MAC overhead for a short-address data frame:
/// FCF 2 + seq 1 + PAN 2 + dst 2 + src 2 + FCS 2 = 11 bytes.
pub const MAC_OVERHEAD_BYTES: u32 = 11;

/// Maximum PHY payload (aMaxPHYPacketSize).
pub const MAX_FRAME_BYTES: u32 = 127;

/// A practical receiver sensitivity (the standard mandates only −85 dBm;
/// current radios reach −95 to −100).
pub const SENSITIVITY: Dbm = Dbm(-95.0);

/// Airtime of a data frame carrying `payload_bytes` of MAC payload, in
/// seconds.
///
/// # Panics
///
/// Panics if the frame would exceed [`MAX_FRAME_BYTES`].
pub fn airtime_s(payload_bytes: u32) -> f64 {
    let mac_frame = payload_bytes + MAC_OVERHEAD_BYTES;
    assert!(
        mac_frame <= MAX_FRAME_BYTES,
        "frame of {mac_frame} bytes exceeds 802.15.4 maximum"
    );
    ((mac_frame + PHY_OVERHEAD_BYTES) * 8) as f64 / BIT_RATE_BPS
}

/// Unslotted CSMA-CA parameters (IEEE 802.15.4-2015 defaults).
#[derive(Clone, Copy, Debug)]
pub struct CsmaParams {
    /// macMinBE: initial backoff exponent.
    pub min_be: u32,
    /// macMaxBE: maximum backoff exponent.
    pub max_be: u32,
    /// macMaxCSMABackoffs: attempts before declaring channel-access failure.
    pub max_backoffs: u32,
}

impl Default for CsmaParams {
    fn default() -> Self {
        CsmaParams { min_be: 3, max_be: 5, max_backoffs: 4 }
    }
}

/// Outcome of one CSMA-CA channel-access attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CsmaOutcome {
    /// Channel acquired after the given number of backoffs.
    Granted {
        /// Clear-channel assessments performed before success.
        backoffs: u32,
    },
    /// All backoff attempts found the channel busy.
    Failure,
}

/// Simulates one unslotted CSMA-CA attempt against a channel that is busy
/// with probability `busy_prob` at each clear-channel assessment.
pub fn csma_attempt(params: &CsmaParams, busy_prob: f64, rng: &mut Rng) -> CsmaOutcome {
    let p = busy_prob.clamp(0.0, 1.0);
    for attempt in 0..=params.max_backoffs {
        if !rng.chance(p) {
            return CsmaOutcome::Granted { backoffs: attempt };
        }
    }
    CsmaOutcome::Failure
}

/// Analytic channel-access success probability after up to
/// `max_backoffs + 1` CCAs on a channel busy with probability `b`:
/// `1 - b^(max_backoffs + 1)`.
pub fn csma_success_prob(params: &CsmaParams, busy_prob: f64) -> f64 {
    let b = busy_prob.clamp(0.0, 1.0);
    1.0 - b.powi(params.max_backoffs as i32 + 1)
}

/// Channel busy probability induced by `n` transmit-only devices each
/// sending a frame of `airtime` seconds every `interval` seconds (offered
/// load, assuming independence).
pub fn offered_busy_prob(n: u64, airtime_s: f64, interval_s: f64) -> f64 {
    if interval_s <= 0.0 {
        return 1.0;
    }
    (n as f64 * airtime_s / interval_s).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airtime_reference_values() {
        // 24-byte payload: (24+11+6)*8/250k = 1.312 ms.
        assert!((airtime_s(24) - 0.001_312).abs() < 1e-9);
        // Empty payload: 17 bytes on air = 544 us.
        assert!((airtime_s(0) - 0.000_544).abs() < 1e-9);
    }

    #[test]
    fn airtime_max_frame_ok() {
        // Largest legal MAC payload with our overhead: 116 bytes.
        let t = airtime_s(MAX_FRAME_BYTES - MAC_OVERHEAD_BYTES);
        assert!((t - (133.0 * 8.0 / 250_000.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn airtime_rejects_oversize() {
        airtime_s(117);
    }

    #[test]
    fn csma_clear_channel_always_grants() {
        let mut rng = Rng::seed_from(1);
        for _ in 0..100 {
            match csma_attempt(&CsmaParams::default(), 0.0, &mut rng) {
                CsmaOutcome::Granted { backoffs } => assert_eq!(backoffs, 0),
                CsmaOutcome::Failure => panic!("clear channel must grant"),
            }
        }
    }

    #[test]
    fn csma_jammed_channel_always_fails() {
        let mut rng = Rng::seed_from(2);
        for _ in 0..100 {
            assert_eq!(
                csma_attempt(&CsmaParams::default(), 1.0, &mut rng),
                CsmaOutcome::Failure
            );
        }
    }

    #[test]
    fn csma_simulation_matches_analytic() {
        let params = CsmaParams::default();
        let busy = 0.6;
        let mut rng = Rng::seed_from(3);
        let n = 100_000;
        let ok = (0..n)
            .filter(|_| matches!(csma_attempt(&params, busy, &mut rng), CsmaOutcome::Granted { .. }))
            .count() as f64
            / n as f64;
        let analytic = csma_success_prob(&params, busy);
        assert!((ok - analytic).abs() < 0.005, "sim {ok} analytic {analytic}");
        // 1 - 0.6^5 = 0.92224.
        assert!((analytic - 0.922_24).abs() < 1e-9);
    }

    #[test]
    fn offered_load_scales_linearly_then_saturates() {
        let t = airtime_s(24);
        // 1000 devices hourly: busy ~ 1000*1.312ms/3600s ≈ 0.036%.
        let b = offered_busy_prob(1_000, t, 3_600.0);
        assert!((b - 1_000.0 * t / 3_600.0).abs() < 1e-12);
        assert!(b < 0.001);
        assert_eq!(offered_busy_prob(10_000_000, t, 1.0), 1.0);
        assert_eq!(offered_busy_prob(1, t, 0.0), 1.0);
    }

    #[test]
    fn sensitivity_constant() {
        assert_eq!(SENSITIVITY, Dbm(-95.0));
    }
}
