//! Propagation: log-distance path loss with lognormal shadowing.
//!
//! Urban street-level links (pole to pole, sensor to rooftop gateway) are
//! well described by the log-distance model
//! `PL(d) = PL(d0) + 10·n·log10(d/d0) + X_σ`, with exponent `n` between 2
//! (free space) and ~4 (cluttered urban), and a per-link shadowing term
//! `X_σ` that is static for a given device placement — exactly the property
//! that makes *deployment-time* coverage lotteries matter for devices that
//! are never touched again.

use simcore::rng::Rng;

use crate::units::Db;

/// Shadowing draws are truncated to ±[`SHADOW_TRUNCATE_SIGMA`] standard
/// deviations. Measured shadowing has bounded support (a street canyon
/// cannot conjure arbitrarily deep fades), and a hard bound is what lets
/// the spatial grid cull far pairs *provably*: a pair farther than the
/// median range of `budget + truncation·σ` cannot be usable under any
/// realizable draw, so skipping it cannot change any result. At ±4σ the
/// truncation touches ~6 in 100,000 draws (clamping, not rejection, so
/// one draw still consumes exactly one normal variate — CRN-stable).
pub const SHADOW_TRUNCATE_SIGMA: f64 = 4.0;

/// Free-space path loss at distance `d_m` meters and frequency `freq_mhz`.
pub fn free_space(d_m: f64, freq_mhz: f64) -> Db {
    assert!(d_m > 0.0 && freq_mhz > 0.0, "distance and frequency must be positive");
    Db(20.0 * d_m.log10() + 20.0 * freq_mhz.log10() - 27.55)
}

/// A log-distance path-loss model.
#[derive(Clone, Copy, Debug)]
pub struct LogDistance {
    /// Reference loss at `d0` (dB).
    pub pl0_db: f64,
    /// Reference distance (m).
    pub d0_m: f64,
    /// Path-loss exponent.
    pub exponent: f64,
    /// Shadowing standard deviation (dB).
    pub shadow_sigma_db: f64,
}

impl LogDistance {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `d0`, exponent, or negative sigma.
    pub fn new(pl0_db: f64, d0_m: f64, exponent: f64, shadow_sigma_db: f64) -> Self {
        assert!(d0_m > 0.0, "reference distance must be positive");
        assert!(exponent > 0.0, "exponent must be positive");
        assert!(shadow_sigma_db >= 0.0, "sigma must be >= 0");
        LogDistance { pl0_db, d0_m, exponent, shadow_sigma_db }
    }

    /// Urban street canyon at 915 MHz: free-space anchor at 1 m
    /// (≈31.7 dB), exponent 2.9, shadowing σ 6 dB.
    pub fn urban_915() -> Self {
        LogDistance::new(free_space(1.0, 915.0).0, 1.0, 2.9, 6.0)
    }

    /// Urban 2.4 GHz (802.15.4): anchor ≈40.2 dB at 1 m, exponent 3.0,
    /// σ 7 dB (2.4 GHz suffers more clutter).
    pub fn urban_2450() -> Self {
        LogDistance::new(free_space(1.0, 2450.0).0, 1.0, 3.0, 7.0)
    }

    /// Median (no-shadowing) path loss at distance `d_m`.
    ///
    /// Distances inside the reference distance clamp to `d0`.
    pub fn median_loss(&self, d_m: f64) -> Db {
        let d = d_m.max(self.d0_m);
        Db(self.pl0_db + 10.0 * self.exponent * (d / self.d0_m).log10())
    }

    /// Samples a per-link static shadowing offset (dB, zero-mean),
    /// truncated to ±[`SHADOW_TRUNCATE_SIGMA`]·σ (see the constant's
    /// docs for why the bound exists). Always consumes exactly one
    /// standard-normal draw from `rng`.
    pub fn sample_shadowing(&self, rng: &mut Rng) -> Db {
        let z = simcore::dist::standard_normal(rng)
            .clamp(-SHADOW_TRUNCATE_SIGMA, SHADOW_TRUNCATE_SIGMA);
        Db(z * self.shadow_sigma_db)
    }

    /// The largest shadowing magnitude [`sample_shadowing`](Self::sample_shadowing)
    /// can return (dB). The cull-radius guard band in
    /// [`crate::coverage::RadioParams::cull_radius_m`] is built on this.
    pub fn max_shadow_db(&self) -> f64 {
        SHADOW_TRUNCATE_SIGMA * self.shadow_sigma_db
    }

    /// Total loss for a link with a previously sampled shadowing offset.
    pub fn loss_with_shadowing(&self, d_m: f64, shadowing: Db) -> Db {
        self.median_loss(d_m) + shadowing
    }

    /// The distance at which the median loss equals `budget_db` — the
    /// median coverage radius for a given link budget.
    pub fn median_range_m(&self, budget: Db) -> f64 {
        let exp10 = (budget.0 - self.pl0_db) / (10.0 * self.exponent);
        self.d0_m * 10f64.powf(exp10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_space_known_values() {
        // 1 km at 915 MHz ≈ 91.7 dB.
        let pl = free_space(1_000.0, 915.0);
        assert!((pl.0 - 91.68).abs() < 0.05, "pl {}", pl.0);
        // 1 m at 2.45 GHz ≈ 40.2 dB.
        assert!((free_space(1.0, 2_450.0).0 - 40.23).abs() < 0.05);
    }

    #[test]
    fn log_distance_slope() {
        let m = LogDistance::urban_915();
        let l100 = m.median_loss(100.0).0;
        let l1000 = m.median_loss(1_000.0).0;
        // One decade of distance adds 10·n dB.
        assert!((l1000 - l100 - 29.0).abs() < 1e-9);
    }

    #[test]
    fn clamps_inside_reference() {
        let m = LogDistance::urban_915();
        assert_eq!(m.median_loss(0.1).0, m.median_loss(1.0).0);
    }

    #[test]
    fn range_inverts_loss() {
        let m = LogDistance::urban_915();
        let budget = Db(120.0);
        let r = m.median_range_m(budget);
        let back = m.median_loss(r);
        assert!((back.0 - 120.0).abs() < 1e-9, "range {r} loss {}", back.0);
    }

    #[test]
    fn shadowing_statistics() {
        let m = LogDistance::urban_915();
        let mut rng = Rng::seed_from(31);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| m.sample_shadowing(&mut rng).0).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let sd = (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((sd - 6.0).abs() < 0.1, "sd {sd}");
    }

    #[test]
    fn shadowing_is_truncated() {
        let m = LogDistance::new(40.0, 1.0, 3.0, 7.0);
        let mut rng = Rng::seed_from(97);
        for _ in 0..200_000 {
            let x = m.sample_shadowing(&mut rng).0;
            assert!(x.abs() <= m.max_shadow_db() + 1e-12, "draw {x} exceeds bound");
        }
        assert!((m.max_shadow_db() - 28.0).abs() < 1e-12);
    }

    #[test]
    fn loss_with_shadowing_adds() {
        let m = LogDistance::urban_915();
        let total = m.loss_with_shadowing(200.0, Db(4.5));
        assert!((total.0 - m.median_loss(200.0).0 - 4.5).abs() < 1e-12);
    }

    #[test]
    fn ghz24_loses_more_than_915() {
        let a = LogDistance::urban_915().median_loss(300.0);
        let b = LogDistance::urban_2450().median_loss(300.0);
        assert!(b.0 > a.0 + 5.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_distance() {
        free_space(0.0, 915.0);
    }
}
