//! The paper's takeaways as a machine-checkable scenario audit.
//!
//! Each §3 *Takeaway* becomes a [`Principle`]; [`audit`] checks a
//! [`DesignPosture`] against all of them and reports violations. The audit
//! is the toolkit's answer to "is this deployment century-ready?" — the
//! same checklist a reviewer would walk, but executable and testable.

/// The architectural principles of §3, in paper order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Principle {
    /// §3.1: "individual devices should expect no human attention during
    /// their operational lifetime."
    NoHumanAttention,
    /// §3.1: "Devices should rely on properties of infrastructure, but not
    /// specific instances of infrastructure."
    PropertiesNotInstances,
    /// §3.2: "Gateways should primarily act only as routers, and defer
    /// decision-making to other system components."
    GatewaysRouteOnly,
    /// §3.2: gateways serve all devices regardless of manufacturer.
    VendorNeutralGateways,
    /// §3.3: "Backhauls must provide reliability and service guarantees
    /// that last or exceed the time that would be required for users to
    /// replace them."
    BackhaulOutlastsReplacement,
    /// §3.4: stakeholders "should reserve the option of vertical
    /// integration, which is enabled by runtime-swappable gateways and
    /// backhaul."
    VerticalIntegrationOption,
}

impl Principle {
    /// All principles in paper order.
    pub const ALL: [Principle; 6] = [
        Principle::NoHumanAttention,
        Principle::PropertiesNotInstances,
        Principle::GatewaysRouteOnly,
        Principle::VendorNeutralGateways,
        Principle::BackhaulOutlastsReplacement,
        Principle::VerticalIntegrationOption,
    ];

    /// One-line description for reports.
    pub fn description(self) -> &'static str {
        match self {
            Principle::NoHumanAttention => {
                "devices expect no human attention during their lifetime"
            }
            Principle::PropertiesNotInstances => {
                "devices rely on properties of infrastructure, not instances"
            }
            Principle::GatewaysRouteOnly => "gateways act only as routers",
            Principle::VendorNeutralGateways => {
                "gateways serve all devices regardless of manufacturer"
            }
            Principle::BackhaulOutlastsReplacement => {
                "backhaul guarantees outlast user replacement time"
            }
            Principle::VerticalIntegrationOption => {
                "stakeholder retains the vertical-integration option"
            }
        }
    }
}

/// The design decisions of a deployment, as audit inputs.
#[derive(Clone, Copy, Debug)]
pub struct DesignPosture {
    /// Devices require scheduled maintenance (battery swaps, manual
    /// re-keying) to stay alive.
    pub devices_need_scheduled_maintenance: bool,
    /// Devices authenticate to one specific gateway instance (vs any
    /// standards-compliant gateway).
    pub devices_bound_to_specific_gateway: bool,
    /// Gateways make application decisions (closed-loop control, data
    /// filtering beyond a blocklist).
    pub gateways_make_application_decisions: bool,
    /// Gateways accept only one manufacturer's devices.
    pub gateways_vendor_locked: bool,
    /// Backhaul contract/guarantee duration, years.
    pub backhaul_guarantee_years: f64,
    /// Time the operator would need to migrate to a replacement backhaul,
    /// years.
    pub backhaul_replacement_years: f64,
    /// Gateways and backhaul can be swapped at runtime (commissioning
    /// process, no device changes).
    pub runtime_swappable_infrastructure: bool,
}

impl DesignPosture {
    /// The paper's own experiment posture: compliant on every axis.
    pub fn paper_experiment() -> Self {
        DesignPosture {
            devices_need_scheduled_maintenance: false,
            devices_bound_to_specific_gateway: false,
            gateways_make_application_decisions: false,
            gateways_vendor_locked: false,
            backhaul_guarantee_years: 10.0,
            backhaul_replacement_years: 2.0,
            runtime_swappable_infrastructure: true,
        }
    }

    /// A typical vendor-kit deployment (§3.2's interoperability critique).
    pub fn vendor_kit() -> Self {
        DesignPosture {
            devices_need_scheduled_maintenance: true,
            devices_bound_to_specific_gateway: true,
            gateways_make_application_decisions: true,
            gateways_vendor_locked: true,
            backhaul_guarantee_years: 2.0,
            backhaul_replacement_years: 5.0,
            runtime_swappable_infrastructure: false,
        }
    }
}

/// One audit finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// The violated principle.
    pub principle: Principle,
    /// Why this posture violates it.
    pub reason: String,
}

/// Audits a posture against all principles; returns the violations.
pub fn audit(p: &DesignPosture) -> Vec<Violation> {
    let mut v = Vec::new();
    if p.devices_need_scheduled_maintenance {
        v.push(Violation {
            principle: Principle::NoHumanAttention,
            reason: "devices require scheduled maintenance to stay alive".into(),
        });
    }
    if p.devices_bound_to_specific_gateway {
        v.push(Violation {
            principle: Principle::PropertiesNotInstances,
            reason: "devices authenticate to a specific gateway instance".into(),
        });
    }
    if p.gateways_make_application_decisions {
        v.push(Violation {
            principle: Principle::GatewaysRouteOnly,
            reason: "gateways embed application decision-making".into(),
        });
    }
    if p.gateways_vendor_locked {
        v.push(Violation {
            principle: Principle::VendorNeutralGateways,
            reason: "gateways reject other manufacturers' devices".into(),
        });
    }
    if p.backhaul_guarantee_years < p.backhaul_replacement_years {
        v.push(Violation {
            principle: Principle::BackhaulOutlastsReplacement,
            reason: format!(
                "guarantee ({:.1} y) shorter than replacement time ({:.1} y)",
                p.backhaul_guarantee_years, p.backhaul_replacement_years
            ),
        });
    }
    if !p.runtime_swappable_infrastructure {
        v.push(Violation {
            principle: Principle::VerticalIntegrationOption,
            reason: "gateways/backhaul cannot be swapped without touching devices".into(),
        });
    }
    v
}

/// Century-readiness score: fraction of principles satisfied.
pub fn readiness_score(p: &DesignPosture) -> f64 {
    let violations = audit(p).len();
    (Principle::ALL.len() - violations) as f64 / Principle::ALL.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_posture_is_clean() {
        let v = audit(&DesignPosture::paper_experiment());
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(readiness_score(&DesignPosture::paper_experiment()), 1.0);
    }

    #[test]
    fn vendor_kit_violates_everything() {
        let v = audit(&DesignPosture::vendor_kit());
        assert_eq!(v.len(), 6);
        assert_eq!(readiness_score(&DesignPosture::vendor_kit()), 0.0);
    }

    #[test]
    fn backhaul_guarantee_comparison() {
        let mut p = DesignPosture::paper_experiment();
        p.backhaul_guarantee_years = 1.0;
        p.backhaul_replacement_years = 3.0;
        let v = audit(&p);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].principle, Principle::BackhaulOutlastsReplacement);
        assert!(v[0].reason.contains("1.0 y"));
        assert!((readiness_score(&p) - 5.0 / 6.0).abs() < 1e-12);
    }

    type PostureMutation = Box<dyn Fn(&mut DesignPosture)>;

    #[test]
    fn each_flag_maps_to_one_principle() {
        let base = DesignPosture::paper_experiment();
        let cases: Vec<(PostureMutation, Principle)> = vec![
            (
                Box::new(|p: &mut DesignPosture| p.devices_need_scheduled_maintenance = true),
                Principle::NoHumanAttention,
            ),
            (
                Box::new(|p: &mut DesignPosture| p.devices_bound_to_specific_gateway = true),
                Principle::PropertiesNotInstances,
            ),
            (
                Box::new(|p: &mut DesignPosture| p.gateways_make_application_decisions = true),
                Principle::GatewaysRouteOnly,
            ),
            (
                Box::new(|p: &mut DesignPosture| p.gateways_vendor_locked = true),
                Principle::VendorNeutralGateways,
            ),
            (
                Box::new(|p: &mut DesignPosture| p.runtime_swappable_infrastructure = false),
                Principle::VerticalIntegrationOption,
            ),
        ];
        for (mutate, principle) in cases {
            let mut p = base;
            mutate(&mut p);
            let v = audit(&p);
            assert_eq!(v.len(), 1);
            assert_eq!(v[0].principle, principle);
        }
    }

    #[test]
    fn descriptions_nonempty() {
        for p in Principle::ALL {
            assert!(!p.description().is_empty());
        }
    }
}
