//! The 50-year experiment harness (§4, exhibit E9).
//!
//! Wraps [`fleet::sim::FleetSim`] with Monte-Carlo replication and
//! diary/summary extraction: one call reproduces both arms of the paper's
//! experiment across seeds and reports the uptime distribution, the
//! intervention counts, and the cost of keeping each arm alive for fifty
//! years.

use fleet::sim::{FleetConfig, FleetReport, FleetSim};
use simcore::trace::Severity;

use crate::metrics::ArmSummary;

/// Results of a replicated 50-year experiment.
#[derive(Debug)]
pub struct ExperimentOutcome {
    /// Per-arm summaries across replicates (configuration order).
    pub arms: Vec<ArmSummary>,
    /// The full report of the first replicate (for diary inspection).
    pub exemplar: FleetReport,
    /// Replicates run.
    pub replicates: usize,
}

impl ExperimentOutcome {
    /// Incidents (interventions) logged in the exemplar run's diary.
    pub fn exemplar_incidents(&self) -> usize {
        self.exemplar.diary.count(Severity::Incident)
    }
}

/// Runs `replicates` seeds of the given configuration (seeds
/// `base_seed..base_seed + replicates`).
///
/// # Panics
///
/// Panics if `replicates == 0`.
pub fn run_replicated(
    make_config: impl Fn(u64) -> FleetConfig,
    base_seed: u64,
    replicates: usize,
) -> ExperimentOutcome {
    assert!(replicates > 0, "need at least one replicate");
    let mut exemplar = None;
    let mut arms: Vec<ArmSummary> = Vec::new();
    // One event queue recycled across all seeds: per-replicate scheduler
    // allocations are paid once (digest-neutral, see FleetSim docs).
    let mut queue = simcore::event::EventQueue::new();
    for i in 0..replicates {
        let cfg = make_config(base_seed + i as u64);
        let report;
        (report, queue) = FleetSim::run_with_queue(cfg, queue);
        if arms.is_empty() {
            arms = report.arms.iter().map(|a| ArmSummary::new(a.name)).collect();
        }
        for (summary, arm) in arms.iter_mut().zip(&report.arms) {
            summary.add(arm);
        }
        if exemplar.is_none() {
            exemplar = Some(report);
        }
    }
    #[allow(clippy::expect_used)]
    // simlint: allow(P001, guarded by the replicates > 0 assert at entry)
    let exemplar = exemplar.expect("at least one replicate");
    ExperimentOutcome { arms, exemplar, replicates }
}

/// The paper's experiment, replicated.
pub fn paper_experiment(base_seed: u64, replicates: usize) -> ExperimentOutcome {
    run_replicated(FleetConfig::paper_experiment, base_seed, replicates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_aggregates_both_arms() {
        let out = paper_experiment(100, 3);
        assert_eq!(out.replicates, 3);
        assert_eq!(out.arms.len(), 2);
        for arm in &out.arms {
            assert_eq!(arm.replicates(), 3);
            assert!(arm.uptime.mean() > 0.3, "{} uptime {}", arm.name, arm.uptime.mean());
        }
        assert!(out.exemplar_incidents() > 0);
    }

    #[test]
    fn exemplar_matches_first_seed() {
        let out = paper_experiment(200, 2);
        let direct = FleetSim::run(FleetConfig::paper_experiment(200));
        assert_eq!(
            out.exemplar.arms[0].readings_delivered,
            direct.arms[0].readings_delivered
        );
    }

    #[test]
    #[should_panic(expected = "replicate")]
    fn zero_replicates_panics() {
        paper_experiment(1, 0);
    }
}
