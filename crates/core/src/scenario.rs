//! Scenario composition: city + posture + fleet, in one builder.
//!
//! A [`Scenario`] is the toolkit's top-level object: it couples a
//! deployment description (how many devices, which arms, which city) with
//! a [`crate::principles::DesignPosture`] so that a single
//! call both **audits** the design against the paper's principles and
//! **simulates** its 50-year trajectory.

use fleet::sim::{ArmConfig, FleetConfig, FleetReport, FleetSim, SamplingMode};
use reliability::system::bom;
use simcore::time::SimDuration;

use crate::presets::CityCensus;
use crate::principles::{audit, readiness_score, DesignPosture, Violation};

/// A composed deployment scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Display name.
    pub name: String,
    /// Host city census (context for labor exhibits).
    pub city: CityCensus,
    /// Design posture for the principles audit.
    pub posture: DesignPosture,
    /// The simulation configuration.
    pub fleet: FleetConfig,
}

/// Builder for [`Scenario`].
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    name: String,
    city: CityCensus,
    posture: DesignPosture,
    seed: u64,
    horizon: SimDuration,
    arms: Vec<ArmConfig>,
    env: bom::Environment,
}

impl ScenarioBuilder {
    /// Starts a scenario with paper defaults: small city, compliant
    /// posture, 50-year horizon, no arms yet.
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioBuilder {
            name: name.into(),
            city: CityCensus::small_city(),
            posture: DesignPosture::paper_experiment(),
            seed: 42,
            horizon: SimDuration::from_years(50),
            arms: Vec::new(),
            env: bom::Environment::default(),
        }
    }

    /// Sets the host city.
    pub fn city(mut self, city: CityCensus) -> Self {
        self.city = city;
        self
    }

    /// Sets the design posture.
    pub fn posture(mut self, posture: DesignPosture) -> Self {
        self.posture = posture;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the horizon.
    pub fn horizon(mut self, horizon: SimDuration) -> Self {
        self.horizon = horizon;
        self
    }

    /// Adds an experiment arm.
    pub fn arm(mut self, arm: ArmConfig) -> Self {
        self.arms.push(arm);
        self
    }

    /// Sets the physical environment.
    pub fn environment(mut self, env: bom::Environment) -> Self {
        self.env = env;
        self
    }

    /// Builds the scenario.
    ///
    /// # Panics
    ///
    /// Panics if no arms were added.
    pub fn build(self) -> Scenario {
        assert!(!self.arms.is_empty(), "a scenario needs at least one arm");
        Scenario {
            name: self.name,
            city: self.city,
            posture: self.posture,
            fleet: FleetConfig {
                seed: self.seed,
                horizon: self.horizon,
                arms: self.arms,
                env: self.env,
                sampling: SamplingMode::default(),
            },
        }
    }
}

impl Scenario {
    /// The paper's §4 experiment as a scenario.
    pub fn paper_experiment(seed: u64) -> Self {
        ScenarioBuilder::new("50-year experiment")
            .seed(seed)
            .arm(ArmConfig::paper_owned_154(10, 2))
            .arm(ArmConfig::paper_helium(10, 4))
            .build()
    }

    /// Audits the posture against the paper's principles.
    pub fn audit(&self) -> Vec<Violation> {
        audit(&self.posture)
    }

    /// Century-readiness score in `[0, 1]`.
    pub fn readiness(&self) -> f64 {
        readiness_score(&self.posture)
    }

    /// Runs the simulation once.
    pub fn run(&self) -> FleetReport {
        FleetSim::run(self.fleet.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::CityCensus;

    #[test]
    fn builder_composes() {
        let s = ScenarioBuilder::new("test")
            .city(CityCensus::los_angeles())
            .seed(7)
            .horizon(SimDuration::from_years(10))
            .arm(ArmConfig::paper_owned_154(5, 1))
            .build();
        assert_eq!(s.name, "test");
        assert_eq!(s.city.name, "Los Angeles");
        assert_eq!(s.fleet.arms.len(), 1);
        assert_eq!(s.fleet.horizon, SimDuration::from_years(10));
    }

    #[test]
    fn paper_scenario_is_compliant_and_runs() {
        let s = Scenario::paper_experiment(3);
        assert!(s.audit().is_empty());
        assert_eq!(s.readiness(), 1.0);
        let report = s.run();
        assert_eq!(report.arms.len(), 2);
        assert!(report.arms[0].weeks_total > 2_000);
    }

    #[test]
    fn vendor_posture_fails_audit() {
        let s = ScenarioBuilder::new("vendor")
            .posture(DesignPosture::vendor_kit())
            .arm(ArmConfig::paper_owned_154(5, 1))
            .build();
        assert_eq!(s.audit().len(), 6);
        assert_eq!(s.readiness(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn empty_scenario_panics() {
        ScenarioBuilder::new("empty").build();
    }
}
