//! City and deployment presets from the paper's citations.
//!
//! Every number here appears in the paper (with its original source noted),
//! so exhibits can reference a single authority.

use econ::money::Usd;

/// A city's sensor-mount census.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CityCensus {
    /// City name.
    pub name: &'static str,
    /// Utility poles in service.
    pub utility_poles: u64,
    /// Signalized intersections.
    pub intersections: u64,
    /// Streetlights.
    pub streetlights: u64,
}

impl CityCensus {
    /// Los Angeles (§1): 320,000 utility poles (NAWPC), 61,315
    /// intersections (LA GeoHub), 210,000 streetlights (LA BSL).
    pub fn los_angeles() -> Self {
        CityCensus {
            name: "Los Angeles",
            utility_poles: 320_000,
            intersections: 61_315,
            streetlights: 210_000,
        }
    }

    /// A small city at roughly 1/100 LA scale (the Chanute-sized operator
    /// the paper argues should still own infrastructure).
    pub fn small_city() -> Self {
        CityCensus {
            name: "Small City",
            utility_poles: 3_200,
            intersections: 610,
            streetlights: 2_100,
        }
    }

    /// Total candidate sensor mounts.
    pub fn total_mounts(&self) -> u64 {
        self.utility_poles + self.intersections + self.streetlights
    }
}

/// A real smart-city deployment the paper cites (§2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeploymentPreset {
    /// Deployment name.
    pub name: &'static str,
    /// Deployed node count.
    pub nodes: u64,
    /// Sensors (when reported separately from nodes).
    pub sensors: u64,
    /// Operator-predicted system lifetime before upgrade, years (the
    /// paper's 2–7-year observation), as a `(min, max)` band.
    pub upgrade_horizon_years: (u32, u32),
}

impl DeploymentPreset {
    /// San Diego (§2): 8,000 smart LEDs with 3,300 sensors.
    pub fn san_diego() -> Self {
        DeploymentPreset {
            name: "San Diego Smart Streetlights",
            nodes: 8_000,
            sensors: 3_300,
            upgrade_horizon_years: (2, 7),
        }
    }

    /// The paper's "typical today" band: 500–5,000 nodes. This preset is
    /// the geometric middle (~1,600 nodes).
    pub fn typical_today() -> Self {
        DeploymentPreset {
            name: "Typical municipal deployment",
            nodes: 1_600,
            sensors: 1_600,
            upgrade_horizon_years: (2, 7),
        }
    }
}

/// A municipal fiber network the paper cites as evidence (§3.3.1, §3.3.3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FiberCityPreset {
    /// City name.
    pub name: &'static str,
    /// Fiber plant size, km (0 = unreported).
    pub fiber_km: u32,
    /// Age of the plant when the smart-city project started, years.
    pub plant_age_years: u32,
    /// Staff operating the network (0 = unreported).
    pub staff: u32,
    /// Residents served.
    pub residents: u32,
}

impl FiberCityPreset {
    /// Barcelona (§3.3.1): "an extensive 500 km fiber optic cable network
    /// … most of this urban fiber network was more than 30 years old by
    /// the time Barcelona started implementing its IoT project."
    pub fn barcelona() -> Self {
        FiberCityPreset {
            name: "Barcelona",
            fiber_km: 500,
            plant_age_years: 30,
            staff: 0,
            residents: 1_600_000,
        }
    }

    /// San Leandro, CA (§3.3.1): gateway backhaul entirely on municipal
    /// fiber.
    pub fn san_leandro() -> Self {
        FiberCityPreset {
            name: "San Leandro",
            fiber_km: 0,
            plant_age_years: 0,
            staff: 0,
            residents: 91_000,
        }
    }

    /// Chanute, KS (§3.3.3): 9,000 residents, 2 staff, profitable fiber +
    /// WiMAX for over a decade — the paper's small-city existence proof.
    pub fn chanute() -> Self {
        FiberCityPreset {
            name: "Chanute",
            fiber_km: 0,
            plant_age_years: 10,
            staff: 2,
            residents: 9_000,
        }
    }

    /// Staff per 10,000 residents (0 when unreported).
    pub fn staff_per_10k(&self) -> f64 {
        if self.residents == 0 {
            return 0.0;
        }
        self.staff as f64 * 10_000.0 / self.residents as f64
    }
}

/// Per-unit hardware/deployment cost assumptions used across exhibits.
#[derive(Clone, Copy, Debug)]
pub struct CostPreset {
    /// Edge-device hardware unit cost.
    pub device_hardware: Usd,
    /// Truck-roll cost to install or replace one device.
    pub truck_roll: Usd,
    /// Pi-class gateway hardware.
    pub gateway_hardware: Usd,
    /// Fully-burdened technician rate per hour.
    pub labor_hourly: Usd,
}

impl Default for CostPreset {
    /// Mid-range figures consistent with §2's "millions of dollars for a
    /// few thousand sensors" observation (~$600–1,200 all-in per node).
    fn default() -> Self {
        CostPreset {
            device_hardware: Usd::from_dollars(80),
            truck_roll: Usd::from_dollars(45),
            gateway_hardware: Usd::from_dollars(150),
            labor_hourly: Usd::from_dollars(85),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn la_census_totals() {
        let la = CityCensus::los_angeles();
        assert_eq!(la.total_mounts(), 591_315);
    }

    #[test]
    fn san_diego_matches_paper() {
        let sd = DeploymentPreset::san_diego();
        assert_eq!(sd.nodes, 8_000);
        assert_eq!(sd.sensors, 3_300);
        assert_eq!(sd.upgrade_horizon_years, (2, 7));
    }

    #[test]
    fn typical_band_within_paper_range() {
        let t = DeploymentPreset::typical_today();
        assert!((500..=5_000).contains(&t.nodes));
    }

    #[test]
    fn fiber_city_citations() {
        let b = FiberCityPreset::barcelona();
        assert_eq!(b.fiber_km, 500);
        assert_eq!(b.plant_age_years, 30);
        let c = FiberCityPreset::chanute();
        assert_eq!(c.staff, 2);
        assert_eq!(c.residents, 9_000);
        // The paper's point: ~2 staff per 10k residents suffices.
        assert!((c.staff_per_10k() - 2.22).abs() < 0.01);
        assert_eq!(FiberCityPreset::san_leandro().staff_per_10k(), 0.0);
    }

    #[test]
    fn small_city_is_two_orders_below_la() {
        let la = CityCensus::los_angeles().total_mounts();
        let small = CityCensus::small_city().total_mounts();
        assert!(la / small >= 90 && la / small <= 110);
    }
}
