//! Scenario comparison: run a matrix of scenarios, render one table.
//!
//! The questions §3 raises are comparative — owned vs rented, maintained
//! vs abandoned, compliant vs vendor-locked. [`compare`] runs a list of
//! named scenarios (each deterministic per its own seed) and assembles the
//! side-by-side table an operator would actually decide from.

use fleet::sim::FleetReport;

use crate::metrics::cost_per_reading;
use crate::report::{f, n, pct, Table};
use crate::scenario::Scenario;

/// One compared row: the scenario's name, audit score, and run outcomes.
pub struct Comparison {
    /// Scenario name.
    pub name: String,
    /// Century-readiness score (principles audit).
    pub readiness: f64,
    /// The simulation report.
    pub report: FleetReport,
}

/// Runs every scenario once.
pub fn compare(scenarios: &[Scenario]) -> Vec<Comparison> {
    scenarios
        .iter()
        .map(|s| Comparison {
            name: s.name.clone(),
            readiness: s.readiness(),
            report: s.run(),
        })
        .collect()
}

/// Renders a comparison as a table: one row per (scenario, arm).
pub fn render(comparisons: &[Comparison]) -> String {
    let mut t = Table::new(
        "Scenario comparison",
        &[
            "scenario",
            "arm",
            "readiness",
            "weekly uptime",
            "data yield",
            "interventions",
            "labor (h)",
            "spend",
            "$/1k readings",
        ],
    );
    for c in comparisons {
        let incidents = c
            .report
            .diary
            .count(simcore::trace::Severity::Incident);
        for arm in &c.report.arms {
            t.row(&[
                c.name.clone(),
                arm.name.to_string(),
                pct(c.readiness),
                pct(arm.uptime()),
                pct(arm.data_yield()),
                n(incidents as u64),
                f(arm.labor.hours(), 0),
                arm.spend.to_string(),
                (cost_per_reading(arm) * 1_000).to_string(),
            ]);
        }
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use fleet::sim::ArmConfig;
    use simcore::time::SimDuration;

    fn quick(name: &str, seed: u64, replace: bool) -> Scenario {
        let mut arm = ArmConfig::paper_owned_154(5, 1);
        if !replace {
            arm.replace_devices = None;
        }
        ScenarioBuilder::new(name)
            .seed(seed)
            .horizon(SimDuration::from_years(15))
            .arm(arm)
            .build()
    }

    #[test]
    fn compares_multiple_scenarios() {
        let scenarios = vec![quick("maintained", 1, true), quick("abandoned", 1, false)];
        let out = compare(&scenarios);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].name, "maintained");
        assert!(
            out[0].report.arms[0].data_yield() >= out[1].report.arms[0].data_yield(),
            "maintenance must not lower yield"
        );
    }

    #[test]
    fn render_has_one_row_per_arm() {
        let scenarios = vec![quick("a", 2, true)];
        let out = compare(&scenarios);
        let text = render(&out);
        assert!(text.contains("Scenario comparison"));
        assert!(text.contains("owned-802.15.4"));
        assert!(text.contains('a'));
    }

    #[test]
    fn empty_comparison_renders_header_only() {
        let text = render(&[]);
        assert!(text.contains("Scenario comparison"));
    }
}
