//! End-to-end metrics over experiment runs.
//!
//! The paper's headline metric is weekly end-to-end uptime (§4); operators
//! additionally care about cost per delivered reading and labor per
//! device-decade. This module aggregates those across Monte-Carlo
//! replicates of the fleet simulation.

use econ::money::Usd;
use fleet::sim::ArmReport;
use simcore::stats::Samples;

/// Cost per delivered reading for one arm.
pub fn cost_per_reading(report: &ArmReport) -> Usd {
    if report.readings_delivered == 0 {
        return Usd::ZERO;
    }
    report.spend / report.readings_delivered as i64
}

/// Labor hours per device-decade for one arm over `horizon_years`.
pub fn labor_per_device_decade(report: &ArmReport, devices: u64, horizon_years: f64) -> f64 {
    if devices == 0 || horizon_years <= 0.0 {
        return 0.0;
    }
    report.labor.hours() / (devices as f64 * horizon_years / 10.0)
}

/// Aggregated per-arm statistics across Monte-Carlo replicates.
#[derive(Clone, Debug)]
pub struct ArmSummary {
    /// Arm display name.
    pub name: &'static str,
    /// Uptime samples across replicates.
    pub uptime: Samples,
    /// Data-yield samples across replicates.
    pub data_yield: Samples,
    /// Device-failure counts across replicates.
    pub device_failures: Samples,
    /// Gateway-repair counts across replicates.
    pub gateway_repairs: Samples,
    /// Total spend across replicates (dollars, f64 for quantiles).
    pub spend_dollars: Samples,
    /// Labor hours across replicates.
    pub labor_hours: Samples,
}

impl ArmSummary {
    /// Creates an empty summary for an arm.
    pub fn new(name: &'static str) -> Self {
        ArmSummary {
            name,
            uptime: Samples::new(),
            data_yield: Samples::new(),
            device_failures: Samples::new(),
            gateway_repairs: Samples::new(),
            spend_dollars: Samples::new(),
            labor_hours: Samples::new(),
        }
    }

    /// Folds one replicate's report into the summary.
    pub fn add(&mut self, report: &ArmReport) {
        self.add_row(&ArmRow::of(report));
    }

    /// Folds one replicate's pre-extracted scalars into the summary.
    /// `add(report)` ≡ `add_row(&ArmRow::of(report))`; push order decides
    /// the stored sample order, so fold rows in seed order to match the
    /// serial harness bit-for-bit.
    pub fn add_row(&mut self, row: &ArmRow) {
        self.uptime.add(row.uptime);
        self.data_yield.add(row.data_yield);
        self.device_failures.add(row.device_failures);
        self.gateway_repairs.add(row.gateway_repairs);
        self.spend_dollars.add(row.spend_dollars);
        self.labor_hours.add(row.labor_hours);
    }

    /// Number of replicates folded in.
    pub fn replicates(&self) -> usize {
        self.uptime.len()
    }
}

/// One replicate's contribution to an [`ArmSummary`], reduced to the six
/// aggregated scalars. Lets parallel workers ship a few floats per seed
/// instead of keeping whole `FleetReport`s alive until the aggregation
/// barrier.
#[derive(Clone, Copy, Debug)]
pub struct ArmRow {
    /// Arm display name (summary construction key).
    pub name: &'static str,
    /// Weekly end-to-end uptime fraction.
    pub uptime: f64,
    /// Delivered/expected readings fraction.
    pub data_yield: f64,
    /// Device failures (as f64 for quantile math).
    pub device_failures: f64,
    /// Gateway repairs.
    pub gateway_repairs: f64,
    /// Total spend in dollars.
    pub spend_dollars: f64,
    /// Total labor hours.
    pub labor_hours: f64,
}

impl ArmRow {
    /// Extracts the aggregated scalars from one arm report.
    pub fn of(report: &ArmReport) -> Self {
        ArmRow {
            name: report.name,
            uptime: report.uptime(),
            data_yield: report.data_yield(),
            device_failures: report.device_failures as f64,
            gateway_repairs: report.gateway_repairs as f64,
            spend_dollars: report.spend.dollars_f64(),
            labor_hours: report.labor.hours(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use econ::labor::PersonHours;

    fn report() -> ArmReport {
        ArmReport {
            name: "test",
            weeks_up: 90,
            weeks_total: 100,
            readings_delivered: 1_000,
            readings_expected: 1_200,
            device_failures: 3,
            device_replacements: 3,
            gateway_repairs: 2,
            backhaul_migrations: 0,
            labor: PersonHours::from_hours(50.0),
            spend: Usd::from_dollars(2_000),
            wallets_exhausted: 0,
            faults_injected: 0,
            lifetime_observations: Vec::new(),
        }
    }

    #[test]
    fn cost_per_reading_division() {
        assert_eq!(cost_per_reading(&report()), Usd::from_dollars(2));
        let empty = ArmReport { readings_delivered: 0, ..report() };
        assert_eq!(cost_per_reading(&empty), Usd::ZERO);
    }

    #[test]
    fn labor_per_device_decade_math() {
        // 50 hours over 10 devices × 50 years = 50 device-decades -> 1 h.
        let l = labor_per_device_decade(&report(), 10, 50.0);
        assert!((l - 1.0).abs() < 1e-12);
        assert_eq!(labor_per_device_decade(&report(), 0, 50.0), 0.0);
    }

    #[test]
    fn summary_aggregates() {
        let mut s = ArmSummary::new("arm");
        s.add(&report());
        s.add(&ArmReport { weeks_up: 50, ..report() });
        assert_eq!(s.replicates(), 2);
        assert!((s.uptime.mean() - 0.7).abs() < 1e-12);
        assert!((s.labor_hours.mean() - 50.0).abs() < 1e-12);
        assert!((s.device_failures.mean() - 3.0).abs() < 1e-12);
    }
}
