//! `century` — century-scale smart infrastructure, as a library.
//!
//! This crate is the public facade of a full reproduction of
//! *Century-Scale Smart Infrastructure* (Jagtap, Bhaskar, Pannuto —
//! HotOS ’21): the paper's architectural principles as a machine-checkable
//! audit, its city censuses and cost constants as presets, and its 50-year
//! experiment as a deterministic discrete-event simulation.
//!
//! # Quickstart
//!
//! ```
//! use century::scenario::Scenario;
//!
//! // The paper's §4 experiment: 10 energy-harvesting transmit-only
//! // sensors per arm — owned 802.15.4 gateways vs the Helium network —
//! // run for 50 simulated years.
//! let scenario = Scenario::paper_experiment(42);
//! assert!(scenario.audit().is_empty(), "the paper's design is compliant");
//!
//! let report = scenario.run();
//! for arm in &report.arms {
//!     println!("{}: weekly uptime {:.1}%", arm.name, arm.uptime() * 100.0);
//! }
//! // The diary is the §4.5 "living, public experimental diary".
//! assert!(!report.diary.is_empty());
//! ```
//!
//! # Module map
//!
//! * [`principles`] — §3's takeaways as an executable audit.
//! * [`presets`] — the paper's censuses, deployments and cost constants.
//! * [`scenario`] — the top-level builder: city + posture + fleet.
//! * [`compare`] — run a scenario matrix, render the decision table.
//! * [`experiment`] — Monte-Carlo replication of the 50-year experiment.
//! * [`metrics`] — cost-per-reading, labor-per-device-decade, summaries.
//! * [`report`] — text tables / CSV for the exhibit suite.
//!
//! The substrates live in their own crates: `simcore` (engine),
//! `energy`, `reliability`, `net`, `backhaul`, `fleet`, `econ`.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod compare;
pub mod experiment;
pub mod metrics;
pub mod presets;
pub mod principles;
pub mod report;
pub mod scenario;

pub use presets::{CityCensus, CostPreset, DeploymentPreset};
pub use principles::{audit, readiness_score, DesignPosture, Principle, Violation};
pub use scenario::{Scenario, ScenarioBuilder};
