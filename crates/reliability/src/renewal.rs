//! Renewal processes: replacement arithmetic for pipelined fleets.
//!
//! The paper's Ship-of-Theseus argument (§1, §3.4) is renewal theory in
//! disguise: each mount hosts a sequence of devices, each replaced on
//! failure (or on schedule), and the *system* lives as long as the renewal
//! process keeps running. This module provides:
//!
//! * Monte-Carlo renewal-function estimation `m(t)` = expected replacements
//!   by time `t`;
//! * the elementary-renewal steady-state rate `1/μ`;
//! * the steady-state **age distribution** of a pipelined fleet (which is
//!   *not* the lifetime distribution — inspection paradox), used to answer
//!   "how old is the average deployed device?".

use simcore::rng::Rng;
use simcore::stats::Moments;

use crate::hazard::Hazard;

/// Counts renewals (replacements) of a unit with lifetime model `h` over a
/// horizon of `t` years, for one realization.
pub fn sample_renewals<H: Hazard + ?Sized>(h: &H, rng: &mut Rng, horizon: f64) -> u64 {
    let mut t = 0.0;
    let mut n = 0;
    loop {
        t += h.sample_ttf(rng);
        if t > horizon {
            return n;
        }
        n += 1;
        // Guard against zero-lifetime pathologies.
        if n > 1_000_000 {
            return n;
        }
    }
}

/// Monte-Carlo estimate of the renewal function `m(horizon)` — expected
/// number of replacements per mount — with its standard error.
pub fn renewal_function<H: Hazard + ?Sized>(
    h: &H,
    rng: &mut Rng,
    horizon: f64,
    replicates: usize,
) -> (f64, f64) {
    assert!(replicates > 0, "need at least one replicate");
    let mut m = Moments::new();
    for _ in 0..replicates {
        m.add(sample_renewals(h, rng, horizon) as f64);
    }
    (m.mean(), m.std_err())
}

/// The long-run replacement rate per mount-year, `1/MTTF` (elementary
/// renewal theorem), estimated by Monte-Carlo over lifetimes.
pub fn steady_state_rate<H: Hazard + ?Sized>(h: &H, rng: &mut Rng, draws: usize) -> f64 {
    let mut m = Moments::new();
    for _ in 0..draws {
        m.add(h.sample_ttf(rng));
    }
    if m.mean() <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / m.mean()
    }
}

/// Samples the steady-state **age** of the in-service unit at a uniformly
/// random inspection time, using the length-biased construction: draw a
/// lifetime `L` weighted by its length (via rejection against the observed
/// max), then a uniform position within it.
///
/// Rejection is against an empirical bound refreshed from the proposal
/// distribution; adequate for the bounded-tail lifetime models used here.
pub fn sample_steady_state_age<H: Hazard + ?Sized>(h: &H, rng: &mut Rng) -> f64 {
    // Estimate a bound on lifetimes from a few draws (cheap, cached per call
    // group by callers who need many samples).
    let mut bound: f64 = 0.0;
    for _ in 0..16 {
        bound = bound.max(h.sample_ttf(rng));
    }
    bound = (bound * 4.0).max(1e-9);
    loop {
        let l = h.sample_ttf(rng);
        if l >= bound {
            // Accept outright: beyond the estimated bound the acceptance
            // ratio saturates.
            return l * rng.next_f64();
        }
        if rng.next_f64() < l / bound {
            return l * rng.next_f64();
        }
    }
}

/// Summary of a pipelined fleet at steady state (E3's headline numbers).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PipelineSummary {
    /// Mean lifetime of one device (years).
    pub device_mttf: f64,
    /// Mean in-service device age at a random inspection (years).
    pub mean_age: f64,
    /// Long-run replacements per mount-year.
    pub replacement_rate: f64,
    /// Expected replacements per mount over the horizon.
    pub replacements_per_mount: f64,
}

/// Computes the pipeline summary for a lifetime model over a horizon.
pub fn pipeline_summary<H: Hazard + ?Sized>(
    h: &H,
    rng: &mut Rng,
    horizon_years: f64,
    replicates: usize,
) -> PipelineSummary {
    let mut life = Moments::new();
    for _ in 0..replicates {
        life.add(h.sample_ttf(rng));
    }
    let mut age = Moments::new();
    for _ in 0..replicates {
        age.add(sample_steady_state_age(h, rng));
    }
    let (m, _) = renewal_function(h, rng, horizon_years, replicates);
    PipelineSummary {
        device_mttf: life.mean(),
        mean_age: age.mean(),
        replacement_rate: if life.mean() > 0.0 { 1.0 / life.mean() } else { f64::INFINITY },
        replacements_per_mount: m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hazard::{ExponentialHazard, WeibullHazard};

    fn rng() -> Rng {
        Rng::seed_from(21)
    }

    #[test]
    fn exponential_renewal_function_is_linear() {
        // For a Poisson process, m(t) = t/MTTF exactly.
        let h = ExponentialHazard::with_mttf(5.0);
        let (m, se) = renewal_function(&h, &mut rng(), 50.0, 20_000);
        assert!((m - 10.0).abs() < 3.0 * se + 0.05, "m {m} se {se}");
    }

    #[test]
    fn weibull_renewal_approaches_elementary_rate() {
        let h = WeibullHazard::new(3.0, 10.0);
        let mttf = h.mttf();
        let horizon = 200.0;
        let (m, _) = renewal_function(&h, &mut rng(), horizon, 5_000);
        let expect = horizon / mttf;
        // Within a few percent at 20 lifetimes deep.
        assert!((m - expect).abs() / expect < 0.08, "m {m} expect {expect}");
    }

    #[test]
    fn steady_state_rate_matches_mttf() {
        let h = ExponentialHazard::with_mttf(4.0);
        let r = steady_state_rate(&h, &mut rng(), 100_000);
        assert!((r - 0.25).abs() < 0.01, "rate {r}");
    }

    #[test]
    fn inspection_paradox_for_exponential() {
        // For exponential lifetimes the steady-state age is Exp(1/MTTF):
        // mean age = MTTF (not MTTF/2) — the inspection paradox.
        let h = ExponentialHazard::with_mttf(6.0);
        let mut r = rng();
        let n = 50_000;
        let mean: f64 =
            (0..n).map(|_| sample_steady_state_age(&h, &mut r)).sum::<f64>() / n as f64;
        assert!((mean - 6.0).abs() < 0.35, "mean {mean}");
    }

    #[test]
    fn steady_state_age_for_deterministic_like_weibull() {
        // Sharp Weibull (k=20): lifetimes ~ scale, so mean age ~ scale/2.
        let h = WeibullHazard::new(20.0, 10.0);
        let mut r = rng();
        let n = 50_000;
        let mean: f64 =
            (0..n).map(|_| sample_steady_state_age(&h, &mut r)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.4, "mean {mean}");
    }

    #[test]
    fn pipeline_summary_consistency() {
        let h = WeibullHazard::new(3.0, 15.0);
        let s = pipeline_summary(&h, &mut rng(), 100.0, 5_000);
        assert!((s.device_mttf - h.mttf()).abs() < 0.5);
        assert!((s.replacement_rate - 1.0 / h.mttf()).abs() < 0.01);
        assert!(s.replacements_per_mount > 5.0);
        assert!(s.mean_age > 0.0 && s.mean_age < s.device_mttf);
    }

    #[test]
    fn renewals_zero_for_long_lived_unit() {
        let h = ExponentialHazard::with_mttf(1e9);
        assert_eq!(sample_renewals(&h, &mut rng(), 50.0), 0);
    }
}
