//! Reliability block diagrams: composing components into devices.
//!
//! A device fails when its reliability structure fails. The structures
//! needed here are:
//!
//! * **Series** — any critical part failing kills the device (the common
//!   case for a small sensor node);
//! * **Parallel** — redundancy: all branches must fail;
//! * **k-of-n** — at least `k` of `n` branches must survive.
//!
//! [`bom`] provides the two archetype bills-of-material the paper contrasts
//! (battery-powered vs energy-harvesting), used by the E10 ablation.

use simcore::rng::Rng;

use crate::components::{self, Component};
use crate::fatigue::ThermalCycling;
use crate::hazard::Hazard;

/// A reliability structure over components.
pub enum Block {
    /// A single component.
    Unit(Component),
    /// Fails when **any** child fails.
    Series(Vec<Block>),
    /// Fails when **all** children fail.
    Parallel(Vec<Block>),
    /// Fails when fewer than `k` children survive.
    KOfN {
        /// Minimum number of surviving children.
        k: usize,
        /// The children.
        blocks: Vec<Block>,
    },
    /// Cold-standby redundancy: the spare is unpowered (does not age)
    /// until the primary fails; the switchover succeeds with probability
    /// `switch_reliability`.
    Standby {
        /// The operating unit.
        primary: Box<Block>,
        /// The cold spare, activated on primary failure.
        spare: Box<Block>,
        /// Probability the failover mechanism works when called.
        switch_reliability: f64,
    },
}

impl Block {
    /// Survival probability of the structure at age `t` years, assuming
    /// independent children.
    pub fn survival(&self, t: f64) -> f64 {
        match self {
            Block::Unit(c) => c.survival(t),
            Block::Series(bs) => bs.iter().map(|b| b.survival(t)).product(),
            Block::Parallel(bs) => {
                1.0 - bs.iter().map(|b| 1.0 - b.survival(t)).product::<f64>()
            }
            Block::Standby { primary, spare, switch_reliability } => {
                // No closed form for arbitrary children; estimate by
                // conditioning on the primary's failure age via numeric
                // integration over the primary's failure density.
                // S(t) = S_p(t) + ∫0..t f_p(u) · c · S_s(t-u) du.
                let sp = primary.survival(t);
                let steps = 200;
                let dt = t / steps as f64;
                let mut integral = 0.0;
                let mut last_sp = 1.0;
                for i in 0..steps {
                    let u1 = (i + 1) as f64 * dt;
                    let sp1 = primary.survival(u1);
                    let f_mass = (last_sp - sp1).max(0.0); // P(fail in (u, u+dt]).
                    let mid = (i as f64 + 0.5) * dt;
                    integral += f_mass * spare.survival(t - mid);
                    last_sp = sp1;
                }
                (sp + switch_reliability.clamp(0.0, 1.0) * integral).min(1.0)
            }
            Block::KOfN { k, blocks } => {
                // Exact via dynamic programming over heterogeneous children.
                let ps: Vec<f64> = blocks.iter().map(|b| b.survival(t)).collect();
                let n = ps.len();
                if *k == 0 {
                    return 1.0;
                }
                if *k > n {
                    return 0.0;
                }
                // dp[j] = P(exactly j alive) over processed children.
                let mut dp = vec![0.0; n + 1];
                dp[0] = 1.0;
                for (i, &p) in ps.iter().enumerate() {
                    for j in (0..=i + 1).rev() {
                        let stay = if j <= i { dp[j] * (1.0 - p) } else { 0.0 };
                        let up = if j > 0 { dp[j - 1] * p } else { 0.0 };
                        dp[j] = stay + up;
                    }
                }
                dp[*k..].iter().sum()
            }
        }
    }

    /// Samples the structure's time to failure in years.
    pub fn sample_ttf(&self, rng: &mut Rng) -> f64 {
        match self {
            Block::Unit(c) => c.sample_ttf(rng),
            Block::Series(bs) => bs
                .iter()
                .map(|b| b.sample_ttf(rng))
                .fold(f64::INFINITY, f64::min),
            Block::Parallel(bs) => bs
                .iter()
                .map(|b| b.sample_ttf(rng))
                .fold(f64::NEG_INFINITY, f64::max)
                .max(0.0),
            Block::KOfN { k, blocks } => {
                let mut ts: Vec<f64> = blocks.iter().map(|b| b.sample_ttf(rng)).collect();
                ts.sort_by(|a, b| a.total_cmp(b));
                let n = ts.len();
                if *k == 0 {
                    return f64::INFINITY;
                }
                if *k > n {
                    return 0.0;
                }
                // The system dies when the (n-k+1)-th failure occurs.
                ts[n - *k]
            }
            Block::Standby { primary, spare, switch_reliability } => {
                let t1 = primary.sample_ttf(rng);
                if !rng.chance(*switch_reliability) {
                    return t1;
                }
                // Cold spare starts fresh at switchover.
                t1 + spare.sample_ttf(rng)
            }
        }
    }

    /// Samples TTF and reports which leaf component failed first along the
    /// critical path (series chains only; inside parallel/k-of-n groups the
    /// *last relevant* failure is attributed). Returns `(ttf, name)`.
    pub fn sample_ttf_attributed(&self, rng: &mut Rng) -> (f64, &'static str) {
        match self {
            Block::Unit(c) => (c.sample_ttf(rng), c.name()),
            Block::Series(bs) => bs
                .iter()
                .map(|b| b.sample_ttf_attributed(rng))
                .min_by(|a, b| a.0.total_cmp(&b.0))
                .unwrap_or((f64::INFINITY, "empty-series")),
            Block::Parallel(bs) => bs
                .iter()
                .map(|b| b.sample_ttf_attributed(rng))
                .max_by(|a, b| a.0.total_cmp(&b.0))
                .unwrap_or((0.0, "empty-parallel")),
            Block::Standby { primary, spare, switch_reliability } => {
                let (t1, who1) = primary.sample_ttf_attributed(rng);
                if !rng.chance(*switch_reliability) {
                    return (t1, who1);
                }
                let (t2, who2) = spare.sample_ttf_attributed(rng);
                (t1 + t2, who2)
            }
            Block::KOfN { k, blocks } => {
                let mut ts: Vec<(f64, &'static str)> =
                    blocks.iter().map(|b| b.sample_ttf_attributed(rng)).collect();
                ts.sort_by(|a, b| a.0.total_cmp(&b.0));
                let n = ts.len();
                if *k == 0 {
                    return (f64::INFINITY, "k-of-n");
                }
                if *k > n {
                    return (0.0, "k-of-n");
                }
                ts[n - *k]
            }
        }
    }

    /// Number of leaf components.
    pub fn leaf_count(&self) -> usize {
        match self {
            Block::Unit(_) => 1,
            Block::Series(bs) | Block::Parallel(bs) => bs.iter().map(Block::leaf_count).sum(),
            Block::KOfN { blocks, .. } => blocks.iter().map(Block::leaf_count).sum(),
            Block::Standby { primary, spare, .. } => {
                primary.leaf_count() + spare.leaf_count()
            }
        }
    }
}

impl Hazard for Block {
    fn survival(&self, t: f64) -> f64 {
        Block::survival(self, t)
    }

    fn sample_ttf(&self, rng: &mut Rng) -> f64 {
        Block::sample_ttf(self, rng)
    }
}

/// The device archetypes contrasted by the paper (E10 ablation).
pub mod bom {
    use super::*;

    /// Environmental inputs shared by the archetypes.
    #[derive(Clone, Copy, Debug)]
    pub struct Environment {
        /// Enclosure temperature in °C (drives capacitor aging).
        pub enclosure_c: f64,
        /// Thermal-cycling climate (drives solder fatigue).
        pub climate: ThermalCycling,
        /// MTTF of external random kills (surge/vandalism), years.
        pub external_mttf_years: f64,
    }

    impl Default for Environment {
        /// A temperate outdoor pole-mount: 45 °C enclosure, default climate,
        /// 80-year external-event MTTF.
        fn default() -> Self {
            Environment {
                enclosure_c: 45.0,
                climate: ThermalCycling::default(),
                external_mttf_years: 80.0,
            }
        }
    }

    /// Battery-powered sensor node: MCU + radio + PCB + solder + primary
    /// battery + electrolytic bulk cap (battery-rail buffering) + seal +
    /// external hazards — all in series.
    pub fn battery_node(env: &Environment) -> Block {
        Block::Series(vec![
            Block::Unit(components::mcu_lowpower()),
            Block::Unit(components::radio_lowpower()),
            Block::Unit(components::pcb_substrate()),
            Block::Unit(components::solder_field(env.climate)),
            Block::Unit(components::primary_battery(12.0)),
            Block::Unit(components::electrolytic_cap(env.enclosure_c)),
            Block::Unit(components::enclosure_seal()),
            Block::Unit(components::external_random(env.external_mttf_years)),
        ])
    }

    /// Energy-harvesting node: the battery is replaced by a harvester +
    /// supercap, and the design point drops the electrolytic (low-power
    /// rails are ceramic-only) — the paper's robustness argument.
    pub fn harvesting_node(env: &Environment) -> Block {
        Block::Series(vec![
            Block::Unit(components::mcu_lowpower()),
            Block::Unit(components::radio_lowpower()),
            Block::Unit(components::pcb_substrate()),
            Block::Unit(components::solder_field(env.climate)),
            Block::Unit(components::pv_cell()),
            Block::Unit(components::supercap_buffer()),
            Block::Unit(components::ceramic_cap()),
            Block::Unit(components::enclosure_seal()),
            Block::Unit(components::external_random(env.external_mttf_years)),
        ])
    }

    /// Raspberry-Pi-class gateway: SBC + SD card + PSU + external hazards.
    /// (§4.4 relies on "the reliability of a (networked!) Raspberry
    /// Pi-class device".)
    pub fn pi_gateway(env: &Environment) -> Block {
        Block::Series(vec![
            Block::Unit(components::sbc_board()),
            Block::Unit(components::sd_card()),
            Block::Unit(components::psu_commodity(env.enclosure_c)),
            Block::Unit(components::external_random(env.external_mttf_years)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{ceramic_cap, external_random};

    fn rng() -> Rng {
        Rng::seed_from(7)
    }

    fn unit(mttf: f64) -> Block {
        Block::Unit(external_random(mttf))
    }

    #[test]
    fn series_survival_is_product() {
        let b = Block::Series(vec![unit(10.0), unit(10.0)]);
        let s1 = unit(10.0).survival(5.0);
        assert!((b.survival(5.0) - s1 * s1).abs() < 1e-12);
    }

    #[test]
    fn series_mttf_halves_for_two_identical_exponentials() {
        let b = Block::Series(vec![unit(10.0), unit(10.0)]);
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| b.sample_ttf(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn parallel_survival_formula() {
        let b = Block::Parallel(vec![unit(10.0), unit(10.0)]);
        let s = unit(10.0).survival(5.0);
        let expect = 1.0 - (1.0 - s) * (1.0 - s);
        assert!((b.survival(5.0) - expect).abs() < 1e-12);
    }

    #[test]
    fn parallel_mttf_exceeds_single() {
        let b = Block::Parallel(vec![unit(10.0), unit(10.0)]);
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| b.sample_ttf(&mut r)).sum::<f64>() / n as f64;
        // For two exponentials: MTTF = 10 + 10 - 5 = 15.
        assert!((mean - 15.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn k_of_n_boundaries() {
        let mk = |k| Block::KOfN { k, blocks: vec![unit(10.0), unit(10.0), unit(10.0)] };
        assert_eq!(mk(0).survival(5.0), 1.0);
        assert_eq!(mk(4).survival(5.0), 0.0);
        // 1-of-3 == parallel; 3-of-3 == series.
        let p = Block::Parallel(vec![unit(10.0), unit(10.0), unit(10.0)]);
        let s = Block::Series(vec![unit(10.0), unit(10.0), unit(10.0)]);
        assert!((mk(1).survival(5.0) - p.survival(5.0)).abs() < 1e-12);
        assert!((mk(3).survival(5.0) - s.survival(5.0)).abs() < 1e-12);
    }

    #[test]
    fn k_of_n_sampling_matches_analytic() {
        let b = Block::KOfN { k: 2, blocks: vec![unit(10.0), unit(10.0), unit(10.0)] };
        let mut r = rng();
        let n = 100_000;
        let t = 5.0;
        let emp = (0..n).filter(|_| b.sample_ttf(&mut r) > t).count() as f64 / n as f64;
        assert!((emp - b.survival(t)).abs() < 0.01, "emp {emp} vs {}", b.survival(t));
    }

    #[test]
    fn standby_doubles_exponential_mttf_with_perfect_switch() {
        // Cold standby of two identical exponentials: MTTF = 2/λ (an
        // Erlang-2 life), unlike hot parallel (1.5/λ).
        let b = Block::Standby {
            primary: Box::new(unit(10.0)),
            spare: Box::new(unit(10.0)),
            switch_reliability: 1.0,
        };
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| b.sample_ttf(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 20.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn standby_survival_matches_sampling() {
        let b = Block::Standby {
            primary: Box::new(unit(8.0)),
            spare: Box::new(unit(12.0)),
            switch_reliability: 0.9,
        };
        let mut r = rng();
        let n = 100_000;
        let t = 10.0;
        let emp = (0..n).filter(|_| b.sample_ttf(&mut r) > t).count() as f64 / n as f64;
        let analytic = b.survival(t);
        assert!((emp - analytic).abs() < 0.01, "emp {emp} analytic {analytic}");
    }

    #[test]
    fn failed_switch_reduces_to_primary_alone() {
        let b = Block::Standby {
            primary: Box::new(unit(10.0)),
            spare: Box::new(unit(10.0)),
            switch_reliability: 0.0,
        };
        let single = unit(10.0);
        assert!((b.survival(5.0) - single.survival(5.0)).abs() < 1e-6);
        assert_eq!(b.leaf_count(), 2);
    }

    #[test]
    fn standby_attribution_names_spare_after_switch() {
        let b = Block::Standby {
            primary: Box::new(Block::Unit(ceramic_cap())),
            spare: Box::new(Block::Unit(external_random(5.0))),
            switch_reliability: 1.0,
        };
        let mut r = rng();
        let (_, who) = b.sample_ttf_attributed(&mut r);
        assert_eq!(who, "external-random");
    }

    #[test]
    fn attribution_finds_weak_link() {
        // A 2-year part among 100-year parts should dominate attribution.
        let b = Block::Series(vec![
            Block::Unit(ceramic_cap()),
            Block::Unit(external_random(2.0)),
        ]);
        let mut r = rng();
        let hits = (0..2_000)
            .filter(|_| b.sample_ttf_attributed(&mut r).1 == "external-random")
            .count();
        assert!(hits > 1_900, "hits {hits}");
    }

    #[test]
    fn leaf_count_recurses() {
        let b = Block::Series(vec![
            unit(1.0),
            Block::Parallel(vec![unit(1.0), unit(1.0)]),
            Block::KOfN { k: 1, blocks: vec![unit(1.0)] },
        ]);
        assert_eq!(b.leaf_count(), 4);
    }

    #[test]
    fn bom_harvesting_outlives_battery() {
        let env = bom::Environment::default();
        let bat = bom::battery_node(&env);
        let har = bom::harvesting_node(&env);
        // Median comparison over a modest Monte Carlo.
        let mut r = rng();
        let n = 4_000;
        let med = |b: &Block, r: &mut Rng| {
            let mut v: Vec<f64> = (0..n).map(|_| b.sample_ttf(r)).collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[n / 2]
        };
        let mb = med(&bat, &mut r);
        let mh = med(&har, &mut r);
        assert!(
            mb < mh,
            "battery median {mb} should be below harvesting median {mh}"
        );
        // The battery node sits in the paper's 10-15 y folklore band.
        assert!(mb > 5.0 && mb < 18.0, "battery median {mb}");
    }

    #[test]
    fn bom_gateway_needs_attention_within_a_decade() {
        let env = bom::Environment::default();
        let gw = bom::pi_gateway(&env);
        let mut r = rng();
        let n = 4_000;
        let mut v: Vec<f64> = (0..n).map(|_| gw.sample_ttf(&mut r)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[n / 2];
        assert!(median > 1.0 && median < 10.0, "median {median}");
    }

    #[test]
    fn empty_series_is_immortal() {
        let b = Block::Series(vec![]);
        assert_eq!(b.survival(1e6), 1.0);
        assert_eq!(b.sample_ttf(&mut rng()), f64::INFINITY);
    }
}
