//! Hazard and survival models for component lifetimes.
//!
//! A [`Hazard`] describes a time-to-failure distribution through its
//! survival function `S(t)` and supports sampling a failure time. The
//! toolkit leans on three shapes:
//!
//! * **Exponential** — memoryless, for random external events (surge,
//!   lightning, vandalism).
//! * **Weibull** — `k < 1` infant mortality, `k > 1` wear-out. The standard
//!   model for electronic component life.
//! * **Bathtub** — competing-risk mixture of an infant-mortality Weibull, a
//!   constant random-failure floor, and a wear-out Weibull: the classic
//!   electronics lifetime curve the paper's 10–15-year folklore comes from.
//!
//! All times are in **years**, the natural unit at this timescale; callers
//! convert to [`simcore::time::SimDuration`] at the simulation boundary.

use simcore::dist;
use simcore::rng::Rng;

/// A time-to-failure model over non-negative times (in years).
pub trait Hazard {
    /// Survival function: probability the unit is still alive at age `t`.
    ///
    /// Must be 1 at `t <= 0`, non-increasing, and approach a limit in
    /// `[0, 1]` as `t → ∞`.
    fn survival(&self, t: f64) -> f64;

    /// Draws a failure time.
    fn sample_ttf(&self, rng: &mut Rng) -> f64;

    /// Probability of failing within `(age, age + dt]` given survival to
    /// `age` — the conditional failure probability used by discrete-event
    /// steppers. Returns 1 if `survival(age)` is zero.
    fn conditional_failure(&self, age: f64, dt: f64) -> f64 {
        let s0 = self.survival(age);
        if s0 <= 0.0 {
            return 1.0;
        }
        (1.0 - self.survival(age + dt) / s0).clamp(0.0, 1.0)
    }

    /// Draws a *remaining* lifetime for a unit already aged `age`, by
    /// inverse-CDF on the conditional survival. Default implementation uses
    /// bisection on `survival`, which suits any monotone model.
    fn sample_remaining(&self, rng: &mut Rng, age: f64) -> f64 {
        let s_age = self.survival(age);
        if s_age <= 0.0 {
            return 0.0;
        }
        let u = rng.next_f64_open();
        let target = s_age * u;
        // S is non-increasing; find t >= age with S(t) = target. Expand an
        // upper bracket geometrically, then bisect.
        let mut hi = (age.max(1e-9)) * 2.0 + 1.0;
        let mut iter = 0;
        while self.survival(hi) > target {
            hi *= 2.0;
            iter += 1;
            if iter > 200 {
                // Defective distribution (mass at infinity): report a very
                // long remaining life rather than looping forever.
                return f64::MAX / 4.0;
            }
        }
        let mut lo = age;
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.survival(mid) > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (0.5 * (lo + hi) - age).max(0.0)
    }
}

/// Exponential (constant-hazard) lifetime.
#[derive(Clone, Copy, Debug)]
pub struct ExponentialHazard {
    dist: dist::Exponential,
}

impl ExponentialHazard {
    /// Creates from the mean time to failure (in years).
    ///
    /// # Panics
    ///
    /// Panics if `mttf_years` is not positive and finite.
    #[allow(clippy::expect_used)]
    pub fn with_mttf(mttf_years: f64) -> Self {
        ExponentialHazard {
            // simlint: allow(P001, documented panicking constructor; see # Panics)
            dist: dist::Exponential::with_mean(mttf_years).expect("MTTF must be positive"),
        }
    }

    /// The mean time to failure in years.
    pub fn mttf(&self) -> f64 {
        self.dist.mean()
    }
}

impl Hazard for ExponentialHazard {
    fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            1.0
        } else {
            (-self.dist.lambda() * t).exp()
        }
    }

    fn sample_ttf(&self, rng: &mut Rng) -> f64 {
        self.dist.sample(rng)
    }

    fn sample_remaining(&self, rng: &mut Rng, _age: f64) -> f64 {
        // Memoryless: remaining life is a fresh draw.
        self.dist.sample(rng)
    }
}

/// Weibull lifetime with shape `k` and scale `λ` (years).
#[derive(Clone, Copy, Debug)]
pub struct WeibullHazard {
    dist: dist::Weibull,
}

impl WeibullHazard {
    /// Creates from shape and scale (years).
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    #[allow(clippy::expect_used)]
    pub fn new(shape: f64, scale_years: f64) -> Self {
        WeibullHazard {
            // simlint: allow(P001, documented panicking constructor; see # Panics)
            dist: dist::Weibull::new(shape, scale_years).expect("Weibull parameters invalid"),
        }
    }

    /// Creates a Weibull with the given shape whose **median** life is
    /// `median_years` — field data usually quote medians.
    pub fn with_median(shape: f64, median_years: f64) -> Self {
        // median = scale * ln(2)^(1/shape).
        let scale = median_years / core::f64::consts::LN_2.powf(1.0 / shape);
        Self::new(shape, scale)
    }

    /// Mean time to failure in years.
    pub fn mttf(&self) -> f64 {
        self.dist.mean()
    }

    /// The shape parameter.
    pub fn shape(&self) -> f64 {
        self.dist.shape()
    }

    /// The scale parameter in years.
    pub fn scale(&self) -> f64 {
        self.dist.scale()
    }

    /// Returns a copy with the scale divided by an acceleration factor
    /// (e.g. Arrhenius temperature acceleration): higher stress, shorter
    /// life, same shape.
    ///
    /// # Panics
    ///
    /// Panics if `af` is not positive and finite.
    pub fn accelerated(&self, af: f64) -> WeibullHazard {
        assert!(af.is_finite() && af > 0.0, "acceleration factor must be positive");
        WeibullHazard::new(self.shape(), self.scale() / af)
    }
}

impl Hazard for WeibullHazard {
    fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            1.0
        } else {
            (-(t / self.dist.scale()).powf(self.dist.shape())).exp()
        }
    }

    fn sample_ttf(&self, rng: &mut Rng) -> f64 {
        self.dist.sample(rng)
    }
}

/// Competing-risk bathtub curve: the unit fails at the **minimum** of an
/// infant-mortality draw, a random-failure draw, and a wear-out draw.
///
/// Survival is the product of the three survivals, giving the canonical
/// decreasing-then-flat-then-increasing hazard.
#[derive(Clone, Copy, Debug)]
pub struct BathtubHazard {
    infant: WeibullHazard,
    random: ExponentialHazard,
    wearout: WeibullHazard,
}

impl BathtubHazard {
    /// Creates a bathtub from its three phases.
    pub fn new(infant: WeibullHazard, random: ExponentialHazard, wearout: WeibullHazard) -> Self {
        BathtubHazard { infant, random, wearout }
    }

    /// A representative consumer-electronics bathtub:
    ///
    /// * infant mortality: Weibull(k = 0.5, λ = 200 y) — a weak early hazard
    ///   that mostly fires in the first months;
    /// * random failures: MTTF 40 y;
    /// * wear-out: Weibull(k = 4, median = `wearout_median_years`).
    pub fn consumer(wearout_median_years: f64) -> Self {
        BathtubHazard::new(
            WeibullHazard::new(0.5, 200.0),
            ExponentialHazard::with_mttf(40.0),
            WeibullHazard::with_median(4.0, wearout_median_years),
        )
    }

    /// Access the wear-out component.
    pub fn wearout(&self) -> &WeibullHazard {
        &self.wearout
    }
}

impl Hazard for BathtubHazard {
    fn survival(&self, t: f64) -> f64 {
        self.infant.survival(t) * self.random.survival(t) * self.wearout.survival(t)
    }

    fn sample_ttf(&self, rng: &mut Rng) -> f64 {
        let a = self.infant.sample_ttf(rng);
        let b = self.random.sample_ttf(rng);
        let c = self.wearout.sample_ttf(rng);
        a.min(b).min(c)
    }
}

/// Log-normal lifetime: the standard model for fatigue/diffusion wear
/// mechanisms with multiplicative degradation (e.g. corrosion depth).
#[derive(Clone, Copy, Debug)]
pub struct LogNormalHazard {
    dist: dist::LogNormal,
    mu: f64,
    sigma: f64,
}

impl LogNormalHazard {
    /// Creates from the underlying normal's `mu` and `sigma > 0` (times in
    /// years).
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters.
    #[allow(clippy::expect_used)]
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        LogNormalHazard {
            // simlint: allow(P001, documented panicking constructor; sigma validated above)
            dist: dist::LogNormal::new(mu, sigma).expect("validated above"),
            mu,
            sigma,
        }
    }

    /// Creates from the **median** life (`exp(mu)`) and `sigma`.
    pub fn with_median(median_years: f64, sigma: f64) -> Self {
        assert!(median_years > 0.0, "median must be positive");
        Self::new(median_years.ln(), sigma)
    }

    /// Complementary error function (Abramowitz–Stegun 7.1.26).
    fn erfc(x: f64) -> f64 {
        let neg = x < 0.0;
        let x = x.abs();
        let t = 1.0 / (1.0 + 0.327_591_1 * x);
        let poly = t
            * (0.254_829_592
                + t * (-0.284_496_736
                    + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
        let y = poly * (-x * x).exp();
        if neg {
            2.0 - y
        } else {
            y
        }
    }
}

impl Hazard for LogNormalHazard {
    fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 1.0;
        }
        // S(t) = Q((ln t - mu)/sigma) = erfc(z/sqrt2)/2.
        let z = (t.ln() - self.mu) / self.sigma;
        0.5 * Self::erfc(z / core::f64::consts::SQRT_2)
    }

    fn sample_ttf(&self, rng: &mut Rng) -> f64 {
        self.dist.sample(rng)
    }
}

/// A unit that never fails on its own (e.g. a passive mount) — useful as a
/// neutral element when composing systems.
#[derive(Clone, Copy, Debug, Default)]
pub struct Immortal;

impl Hazard for Immortal {
    fn survival(&self, _t: f64) -> f64 {
        1.0
    }

    fn sample_ttf(&self, _rng: &mut Rng) -> f64 {
        f64::INFINITY
    }

    fn sample_remaining(&self, _rng: &mut Rng, _age: f64) -> f64 {
        f64::INFINITY
    }
}

/// Estimates MTTF by Monte-Carlo over `n` draws.
pub fn mttf_monte_carlo<H: Hazard + ?Sized>(h: &H, rng: &mut Rng, n: usize) -> f64 {
    assert!(n > 0, "need at least one draw");
    let mut acc = 0.0;
    for _ in 0..n {
        acc += h.sample_ttf(rng);
    }
    acc / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from(99)
    }

    #[test]
    fn exponential_survival_and_mttf() {
        let h = ExponentialHazard::with_mttf(10.0);
        assert_eq!(h.survival(0.0), 1.0);
        assert!((h.survival(10.0) - (-1.0f64).exp()).abs() < 1e-12);
        let est = mttf_monte_carlo(&h, &mut rng(), 100_000);
        assert!((est - 10.0).abs() < 0.15, "est {est}");
    }

    #[test]
    fn weibull_median_constructor() {
        let h = WeibullHazard::with_median(3.0, 12.0);
        assert!((h.survival(12.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weibull_survival_monotone() {
        let h = WeibullHazard::new(2.0, 15.0);
        let mut last = 1.0;
        for i in 0..100 {
            let s = h.survival(i as f64);
            assert!(s <= last + 1e-15);
            last = s;
        }
    }

    #[test]
    fn weibull_acceleration_shortens_life() {
        let h = WeibullHazard::new(2.0, 20.0);
        let hot = h.accelerated(4.0);
        assert!((hot.scale() - 5.0).abs() < 1e-12);
        assert_eq!(hot.shape(), 2.0);
        assert!(hot.survival(5.0) < h.survival(5.0));
    }

    #[test]
    fn conditional_failure_probability() {
        let h = ExponentialHazard::with_mttf(10.0);
        // Memoryless: conditional failure in dt is the same at any age.
        let p0 = h.conditional_failure(0.0, 1.0);
        let p5 = h.conditional_failure(5.0, 1.0);
        assert!((p0 - p5).abs() < 1e-12);
        assert!((p0 - (1.0 - (-0.1f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn conditional_failure_wearout_increases_with_age() {
        let h = WeibullHazard::new(4.0, 15.0);
        let young = h.conditional_failure(1.0, 1.0);
        let old = h.conditional_failure(14.0, 1.0);
        assert!(old > young * 5.0, "young {young} old {old}");
    }

    #[test]
    fn sample_remaining_memoryless_for_exponential() {
        let h = ExponentialHazard::with_mttf(8.0);
        let mut r = rng();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| h.sample_remaining(&mut r, 100.0)).sum::<f64>() / n as f64;
        assert!((mean - 8.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn sample_remaining_weibull_consistent_with_survival() {
        // For aged wear-out units, remaining life should be much shorter
        // than fresh life.
        let h = WeibullHazard::new(4.0, 15.0);
        let mut r = rng();
        let n = 20_000;
        let fresh: f64 = (0..n).map(|_| h.sample_ttf(&mut r)).sum::<f64>() / n as f64;
        let aged: f64 = (0..n).map(|_| h.sample_remaining(&mut r, 14.0)).sum::<f64>() / n as f64;
        assert!(aged < fresh / 3.0, "fresh {fresh} aged {aged}");
        // And all draws are non-negative.
        for _ in 0..1000 {
            assert!(h.sample_remaining(&mut r, 5.0) >= 0.0);
        }
    }

    #[test]
    fn bathtub_is_min_of_phases() {
        let b = BathtubHazard::consumer(12.0);
        // Survival product form.
        let t = 6.0;
        let expect = b.infant.survival(t) * b.random.survival(t) * b.wearout.survival(t);
        assert!((b.survival(t) - expect).abs() < 1e-12);
        // Samples bounded by wear-out alone.
        let mut r = rng();
        let n = 20_000;
        let bath: f64 = (0..n).map(|_| b.sample_ttf(&mut r)).sum::<f64>() / n as f64;
        let wear: f64 = (0..n).map(|_| b.wearout.sample_ttf(&mut r)).sum::<f64>() / n as f64;
        assert!(bath < wear);
    }

    #[test]
    fn bathtub_sampling_matches_survival() {
        // Empirical survival at t should match analytic S(t).
        let b = BathtubHazard::consumer(15.0);
        let mut r = rng();
        let n = 100_000;
        let t = 10.0;
        let alive = (0..n).filter(|_| b.sample_ttf(&mut r) > t).count() as f64 / n as f64;
        assert!((alive - b.survival(t)).abs() < 0.01, "emp {alive} vs {}", b.survival(t));
    }

    #[test]
    fn lognormal_median_and_survival() {
        let h = LogNormalHazard::with_median(12.0, 0.5);
        assert!((h.survival(12.0) - 0.5).abs() < 1e-6);
        assert!(h.survival(0.0) == 1.0);
        assert!(h.survival(5.0) > 0.9);
        assert!(h.survival(40.0) < 0.05);
    }

    #[test]
    fn lognormal_sampling_matches_survival() {
        let h = LogNormalHazard::with_median(10.0, 0.4);
        let mut r = rng();
        let n = 100_000;
        let t = 14.0;
        let emp = (0..n).filter(|_| h.sample_ttf(&mut r) > t).count() as f64 / n as f64;
        assert!((emp - h.survival(t)).abs() < 0.01, "emp {emp} vs {}", h.survival(t));
    }

    #[test]
    fn immortal_never_fails() {
        let h = Immortal;
        assert_eq!(h.survival(1e9), 1.0);
        assert_eq!(h.sample_ttf(&mut rng()), f64::INFINITY);
        assert_eq!(h.conditional_failure(5.0, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "MTTF")]
    fn exponential_rejects_bad_mttf() {
        ExponentialHazard::with_mttf(0.0);
    }
}
