//! Burn-in screening: trading factory hours for field decades.
//!
//! §1 observes that low-power design points are "more robust to long-term
//! failures"; the complementary lever against *early* failures is burn-in:
//! operate units under accelerated stress before deployment so infant
//! mortality fires on the bench instead of on a pole. For a bathtub-shaped
//! hazard, screening truncates the decreasing-hazard head of the
//! distribution — survivors of the screen are conditioned on having passed
//! the riskiest age.

use crate::hazard::Hazard;
use simcore::rng::Rng;

/// A burn-in screen: `bench_hours` of operation at an acceleration factor
/// `af` (from [`crate::arrhenius::acceleration_factor`]) relative to field
/// stress.
#[derive(Clone, Copy, Debug)]
pub struct BurnIn {
    /// Hours on the bench.
    pub bench_hours: f64,
    /// Aging acceleration relative to field conditions.
    pub acceleration: f64,
}

impl BurnIn {
    /// Creates a screen.
    ///
    /// # Panics
    ///
    /// Panics on negative hours or non-positive acceleration.
    pub fn new(bench_hours: f64, acceleration: f64) -> Self {
        assert!(bench_hours >= 0.0 && bench_hours.is_finite(), "hours must be >= 0");
        assert!(
            acceleration > 0.0 && acceleration.is_finite(),
            "acceleration must be positive"
        );
        BurnIn { bench_hours, acceleration }
    }

    /// The equivalent field age screened out, in years.
    pub fn equivalent_field_years(&self) -> f64 {
        self.bench_hours * self.acceleration / 8_760.0
    }

    /// Fraction of production units that fail the screen (scrap rate) for
    /// units with the given lifetime model.
    pub fn fallout<H: Hazard + ?Sized>(&self, h: &H) -> f64 {
        1.0 - h.survival(self.equivalent_field_years())
    }

    /// Survival at field age `t` (years) for a unit that passed the screen:
    /// `S(t + τ) / S(τ)` with `τ` the screened-out equivalent age.
    pub fn screened_survival<H: Hazard + ?Sized>(&self, h: &H, t: f64) -> f64 {
        let tau = self.equivalent_field_years();
        let s_tau = h.survival(tau);
        if s_tau <= 0.0 {
            return 0.0;
        }
        h.survival(t + tau) / s_tau
    }

    /// Samples a field lifetime for a screened unit (conditional on having
    /// survived the screen).
    pub fn sample_screened_ttf<H: Hazard + ?Sized>(&self, h: &H, rng: &mut Rng) -> f64 {
        h.sample_remaining(rng, self.equivalent_field_years())
    }

    /// First-year field failure probability with and without the screen —
    /// the number a deployment warranty is written against.
    pub fn first_year_improvement<H: Hazard + ?Sized>(&self, h: &H) -> (f64, f64) {
        let unscreened = 1.0 - h.survival(1.0);
        let screened = 1.0 - self.screened_survival(h, 1.0);
        (unscreened, screened)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hazard::{BathtubHazard, ExponentialHazard, WeibullHazard};

    /// 168 bench-hours (one week) at 20x acceleration ≈ 0.38 field-years.
    fn screen() -> BurnIn {
        BurnIn::new(168.0, 20.0)
    }

    fn bathtub() -> BathtubHazard {
        // Strong infant mortality for a visible effect.
        BathtubHazard::new(
            WeibullHazard::new(0.4, 300.0),
            ExponentialHazard::with_mttf(80.0),
            WeibullHazard::with_median(4.0, 25.0),
        )
    }

    #[test]
    fn equivalent_age_arithmetic() {
        let s = screen();
        assert!((s.equivalent_field_years() - 168.0 * 20.0 / 8_760.0).abs() < 1e-12);
    }

    #[test]
    fn screening_cuts_first_year_failures() {
        let h = bathtub();
        let (before, after) = screen().first_year_improvement(&h);
        assert!(after < before * 0.7, "before {before} after {after}");
        assert!(after > 0.0, "random failures remain");
    }

    #[test]
    fn fallout_matches_infant_mass() {
        let h = bathtub();
        let s = screen();
        let fallout = s.fallout(&h);
        assert!((fallout - (1.0 - h.survival(s.equivalent_field_years()))).abs() < 1e-12);
        assert!(fallout > 0.01 && fallout < 0.30, "fallout {fallout}");
    }

    #[test]
    fn screened_survival_is_conditional() {
        let h = bathtub();
        let s = screen();
        let tau = s.equivalent_field_years();
        let direct = h.survival(10.0 + tau) / h.survival(tau);
        assert!((s.screened_survival(&h, 10.0) - direct).abs() < 1e-12);
    }

    #[test]
    fn screening_is_useless_for_memoryless_units() {
        let h = ExponentialHazard::with_mttf(50.0);
        let (before, after) = screen().first_year_improvement(&h);
        assert!((before - after).abs() < 1e-9, "exponential has no infant mortality");
    }

    #[test]
    fn screening_hurts_pure_wearout() {
        // Screening a pure wear-out part just consumes life.
        let h = WeibullHazard::new(5.0, 10.0);
        let (before, after) = BurnIn::new(8_760.0, 5.0).first_year_improvement(&h);
        assert!(after > before);
    }

    #[test]
    fn sampled_screened_lifetimes_match_survival() {
        let h = bathtub();
        let s = screen();
        let mut rng = Rng::seed_from(9);
        let n = 40_000;
        let alive_at_5 = (0..n)
            .filter(|_| s.sample_screened_ttf(&h, &mut rng) > 5.0)
            .count() as f64
            / n as f64;
        let expect = s.screened_survival(&h, 5.0);
        assert!((alive_at_5 - expect).abs() < 0.01, "{alive_at_5} vs {expect}");
    }

    #[test]
    fn zero_hour_screen_is_identity() {
        let h = bathtub();
        let s = BurnIn::new(0.0, 10.0);
        assert_eq!(s.fallout(&h), 0.0);
        assert!((s.screened_survival(&h, 7.0) - h.survival(7.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "acceleration")]
    fn rejects_zero_acceleration() {
        BurnIn::new(1.0, 0.0);
    }
}
