//! `reliability` — component and system lifetime models.
//!
//! This crate turns §1 of *Century-Scale Smart Infrastructure* (HotOS ’21)
//! — the folklore that batteries, electrolytic capacitors and PCB substrates
//! cap device life at 10–15 years, and the claim that energy-harvesting
//! design points escape it — into quantitative, testable models:
//!
//! * [`hazard`] — exponential / Weibull / bathtub lifetime models with
//!   deterministic sampling.
//! * [`arrhenius`] — temperature acceleration (the capacitor 10-degree
//!   rule).
//! * [`fatigue`] — Coffin–Manson solder thermal-cycling life.
//! * [`components`] — a parts library with documented default parameters.
//! * [`system`] — reliability block diagrams and the paper's device
//!   archetypes ([`system::bom`]).
//! * [`renewal`] — replacement processes and the pipelined-fleet age math
//!   behind the Ship-of-Theseus argument.
//! * [`mission`] — P(survive T) queries and the device-vs-structure
//!   lifetime gap.
//! * [`fit`] — Weibull maximum-likelihood fitting under right censoring,
//!   for analyzing simulated (or real) deployment diaries.
//! * [`burnin`] — burn-in screening and its warranty arithmetic.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod arrhenius;
pub mod burnin;
pub mod components;
pub mod fatigue;
pub mod fit;
pub mod hazard;
pub mod mission;
pub mod renewal;
pub mod system;

pub use components::Component;
pub use hazard::{BathtubHazard, ExponentialHazard, Hazard, WeibullHazard};
pub use system::Block;
