//! A parts library: the component hazards behind device lifetimes.
//!
//! §1 of the paper: *"Conventional wisdom holds that components such as
//! batteries, electrolytic capacitors, or even PCB substrates will hold the
//! mean lifetime of a device to around 10-15 years. Energy-harvesting
//! devices require no batteries, however, and the same manufacturing
//! processes and circuit design points that make systems low-power also
//! make them more robust to long-term failures."*
//!
//! Each constructor returns a [`Component`] — a named hazard — with
//! parameters drawn from public reliability data (IPC-6012 for PCBs,
//! capacitor datasheet endurance ratings with Arrhenius scaling, SAC solder
//! Coffin–Manson data, battery calendar-aging studies). Values are defaults,
//! not gospel; every constructor takes the environmental knobs that matter.

use simcore::rng::Rng;

use crate::arrhenius::electrolytic_life_years;
use crate::fatigue::ThermalCycling;
use crate::hazard::{BathtubHazard, ExponentialHazard, Hazard, WeibullHazard};

/// A named component with a lifetime model.
pub struct Component {
    name: &'static str,
    hazard: Box<dyn Hazard + Send + Sync>,
}

impl Component {
    /// Wraps a hazard with a display name.
    pub fn new(name: &'static str, hazard: impl Hazard + Send + Sync + 'static) -> Self {
        Component { name, hazard: Box::new(hazard) }
    }

    /// The component's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The lifetime model.
    pub fn hazard(&self) -> &(dyn Hazard + Send + Sync) {
        self.hazard.as_ref()
    }

    /// Samples a time to failure in years.
    pub fn sample_ttf(&self, rng: &mut Rng) -> f64 {
        self.hazard.sample_ttf(rng)
    }

    /// Survival probability at age `t` years.
    pub fn survival(&self, t: f64) -> f64 {
        self.hazard.survival(t)
    }
}

impl core::fmt::Debug for Component {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Component").field("name", &self.name).finish()
    }
}

/// Aluminum electrolytic capacitor.
///
/// Datasheet endurance (default 5,000 h at 105 °C) Arrhenius-scaled to the
/// enclosure temperature, then derated by 50 % for ripple/humidity and used
/// as the **median** of a Weibull(k = 3) wear-out — the dominant killer of
/// mains-side and DC-link electronics.
pub fn electrolytic_cap(enclosure_c: f64) -> Component {
    let optimistic = electrolytic_life_years(5_000.0, 105.0, enclosure_c);
    let median = (optimistic * 0.5).max(0.25);
    Component::new("electrolytic-cap", WeibullHazard::with_median(3.0, median))
}

/// Multilayer ceramic capacitor: no wear-out mechanism at these stresses;
/// rare random failures (flex cracks), MTTF ~ 300 y equivalent.
pub fn ceramic_cap() -> Component {
    Component::new("ceramic-cap", ExponentialHazard::with_mttf(300.0))
}

/// Primary lithium cell (LiSOCl2): calendar life bounded by self-discharge
/// and electrolyte depletion. Median `median_years` (default ~12 y for a
/// quality bobbin cell at moderate drain), moderate spread.
pub fn primary_battery(median_years: f64) -> Component {
    Component::new("primary-battery", WeibullHazard::with_median(3.5, median_years))
}

/// Rechargeable Li-ion pack: calendar aging dominates at IoT duty cycles;
/// median ~8 y, tighter spread (capacity fade is well-characterized).
pub fn liion_battery() -> Component {
    Component::new("liion-battery", WeibullHazard::with_median(4.0, 8.0))
}

/// FR-4 PCB substrate with plated vias (IPC-6012 class 3, the grade an
/// infrastructure deployment specifies): CAF growth and via fatigue give a
/// long wear-out, median ~50 y outdoors.
pub fn pcb_substrate() -> Component {
    Component::new("pcb-substrate", WeibullHazard::with_median(2.5, 50.0))
}

/// The board's solder-joint field under a thermal-cycling climate;
/// Coffin–Manson median with Weibull(k = 3) spread.
pub fn solder_field(climate: ThermalCycling) -> Component {
    let median = climate.median_life_years();
    Component::new("solder-field", WeibullHazard::with_median(3.0, median))
}

/// Microcontroller die: electromigration/TDDB wear-out far beyond the
/// horizon at low-power design points; weak bathtub with 25-y-median infant
/// tail folded in via the consumer curve anchored at 80 y.
pub fn mcu_lowpower() -> Component {
    Component::new("mcu", BathtubHazard::new(
        // Infant: ~1.4 % defects surface in year one, tapering fast.
        WeibullHazard::new(0.5, 5_000.0),
        // Low-power silicon FIT rates put random MTTF in the centuries.
        ExponentialHazard::with_mttf(500.0),
        WeibullHazard::with_median(4.0, 80.0),
    ))
}

/// Sub-GHz / 802.15.4-class radio IC: similar silicon to the MCU plus an
/// RF front end with ESD exposure; slightly higher random rate.
pub fn radio_lowpower() -> Component {
    Component::new("radio", BathtubHazard::new(
        WeibullHazard::new(0.5, 4_000.0),
        // RF front end sees ESD/surge events the MCU does not.
        ExponentialHazard::with_mttf(300.0),
        WeibullHazard::with_median(4.0, 70.0),
    ))
}

/// SD flash card under continuous logging — the notorious Raspberry-Pi-class
/// gateway failure mode. Median ~4 y with heavy early spread.
pub fn sd_card() -> Component {
    Component::new("sd-card", WeibullHazard::with_median(1.8, 4.0))
}

/// Commodity switch-mode power supply (the gateway's wall wart): the usual
/// electrolytic-driven bathtub, median ~7 y at enclosure temperature.
pub fn psu_commodity(enclosure_c: f64) -> Component {
    let cap_median = (electrolytic_life_years(3_000.0, 105.0, enclosure_c) * 0.5).max(0.25);
    Component::new("psu", BathtubHazard::new(
        WeibullHazard::new(0.7, 80.0),
        ExponentialHazard::with_mttf(60.0),
        WeibullHazard::with_median(3.0, cap_median.min(12.0)),
    ))
}

/// Raspberry-Pi-class single-board computer (gateway compute): dominated by
/// SD wear (modelled separately), leaving a solid silicon+passives board.
pub fn sbc_board() -> Component {
    Component::new("sbc-board", BathtubHazard::new(
        WeibullHazard::new(0.6, 300.0),
        ExponentialHazard::with_mttf(60.0),
        WeibullHazard::with_median(4.0, 30.0),
    ))
}

/// Supercapacitor energy buffer for harvesting designs: capacitance fade is
/// slow at low voltage bias (derated, low-duty charge cycling); median ~30 y.
pub fn supercap_buffer() -> Component {
    Component::new("supercap", WeibullHazard::with_median(3.0, 30.0))
}

/// Solar PV cell (small outdoor panel): encapsulant browning and
/// delamination; median ~35 y, fairly tight (field fleets age together).
pub fn pv_cell() -> Component {
    Component::new("pv-cell", WeibullHazard::with_median(3.0, 35.0))
}

/// Enclosure/conformal-coating seal for a potted, conformally-coated sensor
/// (the low-power design point also pots well: no battery to swap means no
/// service opening); median ~35 y, wide spread (installation quality).
pub fn enclosure_seal() -> Component {
    Component::new("enclosure-seal", WeibullHazard::with_median(2.5, 35.0))
}

/// External random hazards: lightning, surge, vandalism, vehicle strikes.
pub fn external_random(mttf_years: f64) -> Component {
    Component::new("external-random", ExponentialHazard::with_mttf(mttf_years))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from(42)
    }

    fn median_of(c: &Component, n: usize) -> f64 {
        let mut r = rng();
        let mut v: Vec<f64> = (0..n).map(|_| c.sample_ttf(&mut r)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[n / 2]
    }

    #[test]
    fn electrolytic_temperature_sensitivity() {
        let cool = electrolytic_cap(35.0);
        let hot = electrolytic_cap(65.0);
        // 30 °C hotter => 8x shorter optimistic life; medians follow.
        let mc = median_of(&cool, 4_000);
        let mh = median_of(&hot, 4_000);
        assert!(mc / mh > 5.0 && mc / mh < 12.0, "cool {mc} hot {mh}");
    }

    #[test]
    fn battery_median_is_10_to_15_year_folklore() {
        // The paper's conventional-wisdom range.
        let b = primary_battery(12.0);
        let m = median_of(&b, 4_000);
        assert!(m > 10.0 && m < 14.0, "median {m}");
    }

    #[test]
    fn sd_card_is_the_weak_link_of_gateways() {
        let sd = median_of(&sd_card(), 4_000);
        let sbc = median_of(&sbc_board(), 4_000);
        assert!(sd < sbc / 2.0, "sd {sd} sbc {sbc}");
    }

    #[test]
    fn low_power_silicon_outlives_horizon() {
        let m = median_of(&mcu_lowpower(), 4_000);
        assert!(m > 40.0, "median {m}");
    }

    #[test]
    fn survival_callthrough() {
        let c = ceramic_cap();
        assert!(c.survival(0.0) > 0.999);
        assert!(c.survival(300.0) < 0.5);
        assert_eq!(c.name(), "ceramic-cap");
    }

    #[test]
    fn psu_life_capped_by_caps() {
        let m = median_of(&psu_commodity(45.0), 4_000);
        assert!(m > 2.0 && m < 15.0, "median {m}");
    }

    #[test]
    fn debug_format_names_component() {
        let c = pv_cell();
        assert!(format!("{c:?}").contains("pv-cell"));
    }

    #[test]
    fn hazard_accessor_exposes_model() {
        let c = external_random(25.0);
        assert!((c.hazard().survival(25.0) - (-1.0f64).exp()).abs() < 1e-12);
    }
}
