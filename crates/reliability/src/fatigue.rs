//! Thermal-cycling fatigue of solder joints (Coffin–Manson).
//!
//! Outdoor devices see a full thermal cycle every day and a deeper one every
//! year. Solder joints fail by low-cycle fatigue after a number of cycles
//! that falls as a power law of the temperature swing — the Coffin–Manson
//! relation. Together with [`crate::arrhenius`], this is the second of the
//! two classic mechanisms behind the paper's 10–15-year electronics
//! lifetime folklore.

/// Coffin–Manson cycles-to-failure:
/// `N = n_ref * (dT_ref / dT)^exponent`.
///
/// `exponent` is typically 2.0–2.7 for SnAgCu solder; `n_ref` cycles at a
/// `dt_ref_c` swing anchor the curve (from accelerated test data).
///
/// # Panics
///
/// Panics unless all parameters are positive and finite.
pub fn cycles_to_failure(n_ref: f64, dt_ref_c: f64, dt_c: f64, exponent: f64) -> f64 {
    assert!(
        n_ref > 0.0 && dt_ref_c > 0.0 && dt_c > 0.0 && exponent > 0.0,
        "Coffin-Manson parameters must be positive"
    );
    assert!(
        n_ref.is_finite() && dt_ref_c.is_finite() && dt_c.is_finite() && exponent.is_finite(),
        "Coffin-Manson parameters must be finite"
    );
    n_ref * (dt_ref_c / dt_c).powf(exponent)
}

/// A daily thermal-cycling environment, reduced to an equivalent solder
/// life in years via Miner's linear damage rule over the daily and the
/// seasonal (annual) cycle.
#[derive(Clone, Copy, Debug)]
pub struct ThermalCycling {
    /// Daily temperature swing in °C.
    pub daily_swing_c: f64,
    /// Annual (seasonal) swing in °C, treated as one slow cycle per year.
    pub annual_swing_c: f64,
    /// Reference cycles to failure at the reference swing.
    pub n_ref: f64,
    /// Reference swing in °C.
    pub dt_ref_c: f64,
    /// Coffin–Manson exponent.
    pub exponent: f64,
}

impl Default for ThermalCycling {
    /// SnAgCu defaults: 3,000 cycles at a 75 °C accelerated swing,
    /// exponent 2.5 — mid-range of published SAC305 data.
    fn default() -> Self {
        ThermalCycling {
            daily_swing_c: 20.0,
            annual_swing_c: 40.0,
            n_ref: 3_000.0,
            dt_ref_c: 75.0,
            exponent: 2.5,
        }
    }
}

impl ThermalCycling {
    /// Median solder life in years under Miner's rule: yearly damage is
    /// `365/N(daily) + 1/N(annual)`; life is the reciprocal.
    pub fn median_life_years(&self) -> f64 {
        let n_daily = cycles_to_failure(self.n_ref, self.dt_ref_c, self.daily_swing_c, self.exponent);
        let n_annual =
            cycles_to_failure(self.n_ref, self.dt_ref_c, self.annual_swing_c, self.exponent);
        let damage_per_year = 365.0 / n_daily + 1.0 / n_annual;
        1.0 / damage_per_year
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_shape() {
        // Halving the swing multiplies life by 2^exponent.
        let n1 = cycles_to_failure(1_000.0, 50.0, 50.0, 2.0);
        let n2 = cycles_to_failure(1_000.0, 50.0, 25.0, 2.0);
        assert!((n1 - 1_000.0).abs() < 1e-9);
        assert!((n2 - 4_000.0).abs() < 1e-9);
    }

    #[test]
    fn default_outdoor_life_is_decades() {
        // 20 °C daily swings are gentle; solder should outlast the
        // electrolytics by a wide margin.
        let life = ThermalCycling::default().median_life_years();
        assert!(life > 20.0 && life < 500.0, "life {life}");
    }

    #[test]
    fn harsher_climate_shortens_life() {
        let mild = ThermalCycling { daily_swing_c: 10.0, ..Default::default() };
        let harsh = ThermalCycling { daily_swing_c: 40.0, ..Default::default() };
        assert!(harsh.median_life_years() < mild.median_life_years() / 4.0);
    }

    #[test]
    fn annual_cycle_contributes() {
        let no_annual = ThermalCycling { annual_swing_c: 1e-6, ..Default::default() };
        let with_annual = ThermalCycling::default();
        assert!(with_annual.median_life_years() < no_annual.median_life_years());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_swing() {
        cycles_to_failure(1_000.0, 50.0, 0.0, 2.0);
    }
}
