//! Mission-reliability queries: "will it last the mission?"
//!
//! The paper frames device viability against *infrastructure* missions —
//! a road's 25-year median service life, a bridge's 50 — and against the
//! consumer replacement cadence of ~50 months. This module answers the
//! standard questions: P(survive T), percentile life, and the lifetime-gap
//! ratio between a device and the structure hosting it (exhibit E1).

use simcore::rng::Rng;
use simcore::stats::Samples;

use crate::hazard::Hazard;

/// Paper constants for exhibit E1.
pub mod paper {
    /// "On average, wireless electronics devices are replaced every 50
    /// months."
    pub const DEVICE_REPLACEMENT_MONTHS: f64 = 50.0;

    /// "On average, a bridge is replaced every 50 years."
    pub const BRIDGE_SERVICE_YEARS: f64 = 50.0;

    /// Median road service life (paper cites WisDOT: 25 years).
    pub const ROAD_SERVICE_YEARS: f64 = 25.0;

    /// The headline gap: bridge years vs device months.
    pub fn lifetime_gap() -> f64 {
        BRIDGE_SERVICE_YEARS / (DEVICE_REPLACEMENT_MONTHS / 12.0)
    }
}

/// Monte-Carlo mission-reliability estimate for a lifetime model.
#[derive(Clone, Debug)]
pub struct MissionReport {
    samples: Samples,
}

impl MissionReport {
    /// Draws `n` lifetimes from `h`.
    pub fn estimate<H: Hazard + ?Sized>(h: &H, rng: &mut Rng, n: usize) -> Self {
        assert!(n > 0, "need at least one draw");
        let mut samples = Samples::new();
        for _ in 0..n {
            samples.add(h.sample_ttf(rng));
        }
        MissionReport { samples }
    }

    /// Estimated probability of surviving `t` years.
    pub fn p_survive(&self, t: f64) -> f64 {
        let alive = self.samples.values().iter().filter(|&&x| x > t).count();
        alive as f64 / self.samples.len() as f64
    }

    /// Median life in years.
    #[allow(clippy::expect_used)]
    pub fn median_life(&mut self) -> f64 {
        // simlint: allow(P001, estimate() always draws at least one sample)
        self.samples.median().expect("non-empty by construction")
    }

    /// The `q`-percentile life (e.g. `0.1` for B10 life).
    #[allow(clippy::expect_used)]
    pub fn percentile_life(&mut self, q: f64) -> f64 {
        // simlint: allow(P001, estimate() always draws at least one sample)
        self.samples.quantile(q).expect("non-empty by construction")
    }

    /// Mean life in years.
    pub fn mean_life(&self) -> f64 {
        self.samples.mean()
    }

    /// Number of Monte-Carlo draws.
    pub fn n(&self) -> usize {
        self.samples.len()
    }
}

/// The device-vs-structure lifetime gap: how many device generations the
/// hosting structure outlives (E1's ratio, ≈12× for the paper's numbers).
pub fn lifetime_gap(structure_years: f64, device_years: f64) -> f64 {
    assert!(device_years > 0.0, "device life must be positive");
    structure_years / device_years
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hazard::{ExponentialHazard, WeibullHazard};

    #[test]
    fn paper_gap_is_twelve_x() {
        let gap = paper::lifetime_gap();
        assert!((gap - 12.0).abs() < 1e-9, "gap {gap}");
    }

    #[test]
    fn gap_helper() {
        assert!((lifetime_gap(50.0, 50.0 / 12.0) - 12.0).abs() < 1e-9);
        assert!((lifetime_gap(25.0, 4.0) - 6.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gap_rejects_zero_device_life() {
        lifetime_gap(50.0, 0.0);
    }

    #[test]
    fn mission_report_exponential() {
        let h = ExponentialHazard::with_mttf(10.0);
        let mut rng = Rng::seed_from(5);
        let mut rep = MissionReport::estimate(&h, &mut rng, 100_000);
        assert!((rep.p_survive(10.0) - (-1.0f64).exp()).abs() < 0.01);
        assert!((rep.mean_life() - 10.0).abs() < 0.15);
        // Median of exponential = MTTF * ln 2.
        assert!((rep.median_life() - 10.0 * core::f64::consts::LN_2).abs() < 0.15);
        assert_eq!(rep.n(), 100_000);
    }

    #[test]
    fn percentile_life_ordering() {
        let h = WeibullHazard::new(2.0, 15.0);
        let mut rng = Rng::seed_from(6);
        let mut rep = MissionReport::estimate(&h, &mut rng, 50_000);
        let b10 = rep.percentile_life(0.1);
        let b50 = rep.percentile_life(0.5);
        let b90 = rep.percentile_life(0.9);
        assert!(b10 < b50 && b50 < b90);
    }

    #[test]
    fn sharp_lifetime_survives_mission_below_scale() {
        let h = WeibullHazard::new(8.0, 60.0);
        let mut rng = Rng::seed_from(7);
        let rep = MissionReport::estimate(&h, &mut rng, 20_000);
        assert!(rep.p_survive(30.0) > 0.95);
        assert!(rep.p_survive(90.0) < 0.05);
    }
}
