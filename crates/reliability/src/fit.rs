//! Fitting lifetime models to (censored) field data.
//!
//! A 50-year deployment produces exactly the data this module consumes:
//! failure ages for the devices that died and censoring ages for the ones
//! still alive at the horizon. [`fit_weibull`] recovers Weibull shape and
//! scale by maximum likelihood under right censoring — the standard
//! reliability-engineering workflow — so simulated fleets can be analyzed
//! with the same tools a real operator would use on the paper's diary.
//!
//! The MLE uses the classic profile-likelihood reduction: for fixed shape
//! `k`, the scale has the closed form
//! `λ̂(k) = (Σ tᵢᵏ / r)^(1/k)` (sum over **all** observations, `r` =
//! failure count), leaving a one-dimensional root-find in `k`.

use crate::hazard::WeibullHazard;
use simcore::survival::Observation;

/// Error returned when a fit cannot be performed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FitError {
    /// No uncensored failures: the likelihood has no interior maximum.
    NoFailures,
    /// Fewer than two distinct failure times: shape is unidentifiable.
    DegenerateData,
    /// The root-find failed to bracket a solution (pathological data).
    NoConvergence,
}

impl core::fmt::Display for FitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            FitError::NoFailures => "no uncensored failures in the data",
            FitError::DegenerateData => "fewer than two distinct failure times",
            FitError::NoConvergence => "profile-likelihood root-find did not converge",
        };
        f.write_str(s)
    }
}

impl std::error::Error for FitError {}

/// A fitted Weibull model with fit diagnostics.
#[derive(Clone, Copy, Debug)]
pub struct WeibullFit {
    /// Estimated shape `k`.
    pub shape: f64,
    /// Estimated scale `λ` (same unit as the input times).
    pub scale: f64,
    /// Number of observed failures used.
    pub failures: usize,
    /// Number of censored observations used.
    pub censored: usize,
    /// Maximized log-likelihood.
    pub log_likelihood: f64,
}

impl WeibullFit {
    /// The fitted model as a [`WeibullHazard`].
    pub fn hazard(&self) -> WeibullHazard {
        WeibullHazard::new(self.shape, self.scale)
    }
}

/// Profile-likelihood score function in `k`; its root is the MLE.
///
/// `d/dk log L` after substituting the closed-form scale:
/// `r/k + Σ_fail ln tᵢ − r · (Σ_all tᵢᵏ ln tᵢ) / (Σ_all tᵢᵏ) = 0`.
fn score(k: f64, fail_times: &[f64], all_times: &[f64]) -> f64 {
    let r = fail_times.len() as f64;
    let sum_ln: f64 = fail_times.iter().map(|t| t.ln()).sum();
    let mut s_k = 0.0;
    let mut s_k_ln = 0.0;
    for &t in all_times {
        let tk = t.powf(k);
        s_k += tk;
        s_k_ln += tk * t.ln();
    }
    r / k + sum_ln - r * s_k_ln / s_k
}

fn log_likelihood(k: f64, lambda: f64, fail_times: &[f64], cens_times: &[f64]) -> f64 {
    let mut ll = 0.0;
    for &t in fail_times {
        ll += k.ln() - k * lambda.ln() + (k - 1.0) * t.ln() - (t / lambda).powf(k);
    }
    for &t in cens_times {
        ll -= (t / lambda).powf(k);
    }
    ll
}

/// Fits a Weibull by maximum likelihood under right censoring.
///
/// Observations with non-finite or non-positive times are ignored.
///
/// # Examples
///
/// ```
/// use reliability::fit::fit_weibull;
/// use simcore::rng::Rng;
/// use simcore::survival::Observation;
/// use reliability::hazard::{Hazard, WeibullHazard};
///
/// let truth = WeibullHazard::new(3.0, 15.0);
/// let mut rng = Rng::seed_from(1);
/// let obs: Vec<Observation> = (0..2_000)
///     .map(|_| Observation::failed(truth.sample_ttf(&mut rng)))
///     .collect();
/// let fit = fit_weibull(&obs).unwrap();
/// assert!((fit.shape - 3.0).abs() < 0.2);
/// assert!((fit.scale - 15.0).abs() < 0.5);
/// ```
pub fn fit_weibull(observations: &[Observation]) -> Result<WeibullFit, FitError> {
    let mut fail_times = Vec::new();
    let mut cens_times = Vec::new();
    for o in observations {
        if !o.time.is_finite() || o.time <= 0.0 {
            continue;
        }
        if o.event {
            fail_times.push(o.time);
        } else {
            cens_times.push(o.time);
        }
    }
    if fail_times.is_empty() {
        return Err(FitError::NoFailures);
    }
    {
        let mut distinct = fail_times.clone();
        distinct.sort_by(|a, b| a.total_cmp(b));
        distinct.dedup();
        if distinct.len() < 2 {
            return Err(FitError::DegenerateData);
        }
    }
    let all_times: Vec<f64> = fail_times.iter().chain(&cens_times).copied().collect();

    // Bracket the root of the score function. The score is decreasing in k;
    // score(k→0⁺) → +∞ and score(k→∞) → −∞ for non-degenerate data.
    let mut lo = 1e-3;
    let mut hi = 1.0;
    let mut iter = 0;
    while score(hi, &fail_times, &all_times) > 0.0 {
        hi *= 2.0;
        iter += 1;
        if iter > 60 {
            return Err(FitError::NoConvergence);
        }
    }
    if score(lo, &fail_times, &all_times) < 0.0 {
        return Err(FitError::NoConvergence);
    }
    // Bisection: robust, and 80 iterations give ~1e-24 relative precision.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if score(mid, &fail_times, &all_times) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let k = 0.5 * (lo + hi);
    let r = fail_times.len() as f64;
    let s_k: f64 = all_times.iter().map(|t| t.powf(k)).sum();
    let lambda = (s_k / r).powf(1.0 / k);
    Ok(WeibullFit {
        shape: k,
        scale: lambda,
        failures: fail_times.len(),
        censored: cens_times.len(),
        log_likelihood: log_likelihood(k, lambda, &fail_times, &cens_times),
    })
}

/// Convenience: fit from plain failure times (no censoring).
pub fn fit_weibull_complete(times: &[f64]) -> Result<WeibullFit, FitError> {
    let obs: Vec<Observation> = times.iter().map(|&t| Observation::failed(t)).collect();
    fit_weibull(&obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hazard::Hazard;
    use simcore::rng::Rng;

    fn sample_obs(
        shape: f64,
        scale: f64,
        n: usize,
        censor_at: Option<f64>,
        seed: u64,
    ) -> Vec<Observation> {
        let h = WeibullHazard::new(shape, scale);
        let mut rng = Rng::seed_from(seed);
        (0..n)
            .map(|_| {
                let t = h.sample_ttf(&mut rng);
                match censor_at {
                    Some(c) if t > c => Observation::censored(c),
                    _ => Observation::failed(t),
                }
            })
            .collect()
    }

    #[test]
    fn recovers_parameters_complete_data() {
        for &(shape, scale) in &[(0.8, 5.0), (1.0, 10.0), (2.5, 15.0), (6.0, 20.0)] {
            let obs = sample_obs(shape, scale, 4_000, None, 42);
            let fit = fit_weibull(&obs).expect("fit succeeds");
            assert!(
                (fit.shape - shape).abs() / shape < 0.08,
                "shape {shape}: got {}",
                fit.shape
            );
            assert!(
                (fit.scale - scale).abs() / scale < 0.05,
                "scale {scale}: got {}",
                fit.scale
            );
            assert_eq!(fit.censored, 0);
        }
    }

    #[test]
    fn recovers_parameters_heavy_censoring() {
        // Censor at the 30th-ish percentile: most units still alive — the
        // 50-year-horizon situation.
        let obs = sample_obs(3.0, 15.0, 8_000, Some(12.0), 7);
        let fit = fit_weibull(&obs).expect("fit succeeds");
        assert!(fit.censored > fit.failures, "censoring should dominate");
        assert!((fit.shape - 3.0).abs() < 0.35, "shape {}", fit.shape);
        assert!((fit.scale - 15.0).abs() < 1.0, "scale {}", fit.scale);
    }

    #[test]
    fn exponential_special_case() {
        let obs = sample_obs(1.0, 8.0, 6_000, None, 11);
        let fit = fit_weibull(&obs).expect("fit succeeds");
        assert!((fit.shape - 1.0).abs() < 0.05, "shape {}", fit.shape);
        assert!((fit.hazard().mttf() - 8.0).abs() < 0.4);
    }

    #[test]
    fn no_failures_is_error() {
        let obs = vec![Observation::censored(5.0); 10];
        match fit_weibull(&obs) {
            Err(FitError::NoFailures) => {}
            other => panic!("expected NoFailures, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_data_is_error() {
        let obs = vec![Observation::failed(5.0); 10];
        match fit_weibull(&obs) {
            Err(FitError::DegenerateData) => {}
            other => panic!("expected DegenerateData, got {other:?}"),
        }
    }

    #[test]
    fn ignores_invalid_times() {
        let mut obs = sample_obs(2.0, 10.0, 2_000, None, 3);
        obs.push(Observation::failed(f64::NAN));
        obs.push(Observation::failed(-1.0));
        obs.push(Observation::failed(0.0));
        let fit = fit_weibull(&obs).expect("fit succeeds");
        assert_eq!(fit.failures, 2_000);
    }

    #[test]
    fn log_likelihood_is_maximal_at_fit() {
        let obs = sample_obs(2.0, 10.0, 2_000, Some(15.0), 5);
        let fit = fit_weibull(&obs).expect("fit succeeds");
        let fail: Vec<f64> = obs.iter().filter(|o| o.event).map(|o| o.time).collect();
        let cens: Vec<f64> = obs.iter().filter(|o| !o.event).map(|o| o.time).collect();
        let at = |k: f64, l: f64| log_likelihood(k, l, &fail, &cens);
        let best = at(fit.shape, fit.scale);
        assert!((best - fit.log_likelihood).abs() < 1e-9);
        for (dk, dl) in [(0.1, 0.0), (-0.1, 0.0), (0.0, 0.5), (0.0, -0.5)] {
            assert!(
                at(fit.shape + dk, fit.scale + dl) < best,
                "perturbation ({dk},{dl}) should lower the likelihood"
            );
        }
    }

    #[test]
    fn complete_helper_equivalent() {
        let times = [1.0, 2.0, 3.0, 4.0, 5.0, 7.0, 9.0];
        let a = fit_weibull_complete(&times).expect("fit");
        let obs: Vec<Observation> = times.iter().map(|&t| Observation::failed(t)).collect();
        let b = fit_weibull(&obs).expect("fit");
        assert_eq!(a.shape, b.shape);
        assert_eq!(a.scale, b.scale);
    }

    #[test]
    fn no_convergence_is_error() {
        // Two distinct failure times separated by one ULP pass the
        // degeneracy check, but the profile score stays positive past the
        // bracket loop's 2^60 ceiling: with N points at 1+ε and one at 1,
        // score(k) ≈ (N+1)/k − N·ε, and (N+1)/2^60 > N·ε for N = 1000.
        let mut times = vec![1.0 + f64::EPSILON; 1_000];
        times.push(1.0);
        match fit_weibull_complete(&times) {
            Err(FitError::NoConvergence) => {}
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn error_display() {
        assert!(FitError::NoFailures.to_string().contains("failures"));
        assert!(FitError::DegenerateData.to_string().contains("distinct"));
        assert!(FitError::NoConvergence.to_string().contains("converge"));
    }
}
