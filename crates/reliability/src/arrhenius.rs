//! Arrhenius temperature acceleration of component aging.
//!
//! The paper's 10–15-year device-lifetime folklore traces largely to
//! electrolytic capacitors, whose life halves for every ~10 °C of
//! temperature rise (the industry "10-degree rule", itself an Arrhenius law
//! with activation energy ≈ 0.55 eV near room temperature). Outdoor smart-
//! infrastructure enclosures run hot; this module quantifies how much life
//! that costs.

/// Boltzmann constant in eV/K.
pub const BOLTZMANN_EV: f64 = 8.617_333e-5;

/// Arrhenius acceleration factor between a use temperature and a reference
/// temperature (both °C): how many times faster aging proceeds at
/// `use_c` than at `ref_c` for a mechanism with activation energy
/// `ea_ev` (eV).
///
/// AF > 1 means faster aging (shorter life).
///
/// # Panics
///
/// Panics if either temperature is at or below absolute zero or `ea_ev` is
/// not finite and positive.
pub fn acceleration_factor(ea_ev: f64, use_c: f64, ref_c: f64) -> f64 {
    assert!(ea_ev.is_finite() && ea_ev > 0.0, "activation energy must be positive");
    let use_k = use_c + 273.15;
    let ref_k = ref_c + 273.15;
    assert!(use_k > 0.0 && ref_k > 0.0, "temperature below absolute zero");
    ((ea_ev / BOLTZMANN_EV) * (1.0 / ref_k - 1.0 / use_k)).exp()
}

/// The electrolytic-capacitor "10-degree rule": life multiplier
/// `2^((rated_c - use_c)/10)` relative to the rated life at `rated_c`.
///
/// A multiplier > 1 means *longer* life (running cooler than rated).
pub fn electrolytic_life_multiplier(rated_c: f64, use_c: f64) -> f64 {
    2f64.powf((rated_c - use_c) / 10.0)
}

/// Expected electrolytic capacitor life in years, from a datasheet rating
/// of `rated_hours` at `rated_c`, operated at `use_c`.
pub fn electrolytic_life_years(rated_hours: f64, rated_c: f64, use_c: f64) -> f64 {
    let hours = rated_hours * electrolytic_life_multiplier(rated_c, use_c);
    hours / 8_760.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn af_is_one_at_reference() {
        let af = acceleration_factor(0.9, 55.0, 55.0);
        assert!((af - 1.0).abs() < 1e-12);
    }

    #[test]
    fn af_increases_with_temperature() {
        let cool = acceleration_factor(0.9, 40.0, 25.0);
        let hot = acceleration_factor(0.9, 70.0, 25.0);
        assert!(hot > cool && cool > 1.0);
    }

    #[test]
    fn af_10c_rule_consistency() {
        // Ea ≈ 0.55 eV reproduces roughly a 2x change per 10 °C near 300 K:
        // Ea = ln2 · k · T1·T2/ΔT = 0.693 · 8.617e-5 · 298·308/10 ≈ 0.548 eV.
        let af = acceleration_factor(0.55, 35.0, 25.0);
        assert!((af - 2.0).abs() < 0.1, "af {af}");
    }

    #[test]
    fn electrolytic_rule_doubles_per_10c() {
        assert!((electrolytic_life_multiplier(105.0, 95.0) - 2.0).abs() < 1e-12);
        assert!((electrolytic_life_multiplier(105.0, 105.0) - 1.0).abs() < 1e-12);
        assert!((electrolytic_life_multiplier(105.0, 115.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn typical_cap_life_projection() {
        // A 5,000 h @ 105 °C part at a 45 °C enclosure: 5,000 * 2^6 = 320,000 h
        // ≈ 36.5 years — the optimistic bound; ripple current and humidity
        // erode it in practice, which the components module derates for.
        let years = electrolytic_life_years(5_000.0, 105.0, 45.0);
        assert!((years - 36.53).abs() < 0.1, "years {years}");
    }

    #[test]
    fn hot_enclosure_kills_caps() {
        // The same part in a 75 °C sealed curbside cabinet: 5,000 * 2^3 h ≈ 4.6 y.
        let years = electrolytic_life_years(5_000.0, 105.0, 75.0);
        assert!(years < 5.0, "years {years}");
    }

    #[test]
    #[should_panic(expected = "activation energy")]
    fn rejects_bad_ea() {
        acceleration_factor(0.0, 50.0, 25.0);
    }
}
