//! Workforce capacity and maintenance backlog dynamics.
//!
//! §3.1: *"there are a finite number of person-hours available for the
//! maintenance and upkeep of sensing systems; as the number of devices
//! grows, the available hours per device falls."* A replacement demand
//! that exceeds crew capacity does not disappear — it queues, and queued
//! devices are dark devices. This module runs the yearly backlog recursion
//! over a replacement-demand series (e.g. from [`crate::pipeline`]) and
//! reports the availability cost of under-staffing — which is how en-masse
//! deployment waves actually hurt: they overwhelm a crew sized for the
//! steady state.

use econ::labor::PersonHours;

/// A yearly-capacity workforce model.
#[derive(Clone, Copy, Debug)]
pub struct Workforce {
    /// Device replacements the crew can complete per year.
    pub capacity_per_year: f64,
    /// Person-hours per replacement (batched figure).
    pub hours_per_replacement: f64,
}

impl Workforce {
    /// Creates a workforce.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    pub fn new(capacity_per_year: f64, hours_per_replacement: f64) -> Self {
        assert!(
            capacity_per_year > 0.0 && capacity_per_year.is_finite(),
            "capacity must be positive"
        );
        assert!(
            hours_per_replacement > 0.0 && hours_per_replacement.is_finite(),
            "hours per replacement must be positive"
        );
        Workforce { capacity_per_year, hours_per_replacement }
    }

    /// A crew of `techs` working `hours_per_year` each at
    /// `hours_per_replacement` per device.
    pub fn from_crew(techs: u32, hours_per_year: f64, hours_per_replacement: f64) -> Self {
        Workforce::new(
            techs as f64 * hours_per_year / hours_per_replacement,
            hours_per_replacement,
        )
    }
}

/// Result of running demand against capacity.
#[derive(Clone, Debug, PartialEq)]
pub struct BacklogRun {
    /// Backlog (devices awaiting replacement) at the end of each year.
    pub backlog: Vec<f64>,
    /// Peak backlog.
    pub peak_backlog: f64,
    /// Device-years lost waiting in the queue (dark time).
    pub dark_device_years: f64,
    /// Total person-hours actually worked.
    pub worked: PersonHours,
    /// Fraction of years in which the crew was saturated.
    pub saturated_years: f64,
}

/// Runs the yearly backlog recursion: each year the crew serves up to its
/// capacity from `carry + demand[y]`; the rest carries over. Queued devices
/// accrue dark time (approximated as the average backlog over the year).
pub fn run_backlog(demand_per_year: &[f64], crew: &Workforce) -> BacklogRun {
    let mut carry = 0.0f64;
    let mut backlog = Vec::with_capacity(demand_per_year.len());
    let mut dark = 0.0;
    let mut worked_units = 0.0;
    let mut saturated = 0usize;
    for &d in demand_per_year {
        assert!(d >= 0.0 && d.is_finite(), "demand must be finite and >= 0");
        let offered = carry + d;
        let served = offered.min(crew.capacity_per_year);
        let end = offered - served;
        // Dark time: average of start and end backlog over the year.
        dark += 0.5 * (carry + end);
        if served >= crew.capacity_per_year - 1e-9 && end > 0.0 {
            saturated += 1;
        }
        worked_units += served;
        carry = end;
        backlog.push(end);
    }
    BacklogRun {
        peak_backlog: backlog.iter().copied().fold(0.0, f64::max),
        dark_device_years: dark,
        worked: PersonHours::from_hours(worked_units * crew.hours_per_replacement),
        saturated_years: if demand_per_year.is_empty() {
            0.0
        } else {
            saturated as f64 / demand_per_year.len() as f64
        },
        backlog,
    }
}

/// The smallest crew capacity (replacements/year) that keeps peak backlog
/// at or below `max_backlog` for the given demand, by binary search.
pub fn min_capacity_for_backlog(
    demand_per_year: &[f64],
    hours_per_replacement: f64,
    max_backlog: f64,
) -> f64 {
    assert!(max_backlog >= 0.0, "backlog bound must be >= 0");
    let total: f64 = demand_per_year.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut lo = 1e-9;
    let mut hi = demand_per_year.iter().copied().fold(0.0, f64::max).max(1e-9);
    let ok = |cap: f64| {
        let crew = Workforce::new(cap, hours_per_replacement);
        run_backlog(demand_per_year, &crew).peak_backlog <= max_backlog
    };
    if !ok(hi) {
        // A capacity equal to the peak demand always clears within the year.
        return hi;
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if ok(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_capacity_never_backlogs() {
        let crew = Workforce::new(100.0, 1.0);
        let out = run_backlog(&[50.0, 80.0, 99.0], &crew);
        assert_eq!(out.peak_backlog, 0.0);
        assert_eq!(out.dark_device_years, 0.0);
        assert_eq!(out.saturated_years, 0.0);
        assert!((out.worked.hours() - 229.0).abs() < 1e-9);
    }

    #[test]
    fn spike_builds_and_drains() {
        let crew = Workforce::new(100.0, 1.0);
        // Year 0: 300 arrive, 100 served -> 200 carry; drains by year 2.
        let out = run_backlog(&[300.0, 0.0, 0.0, 0.0], &crew);
        assert_eq!(out.backlog, vec![200.0, 100.0, 0.0, 0.0]);
        assert_eq!(out.peak_backlog, 200.0);
        // Dark time: (0+200)/2 + (200+100)/2 + (100+0)/2 = 300.
        assert!((out.dark_device_years - 300.0).abs() < 1e-9);
        assert!((out.saturated_years - 0.5).abs() < 1e-9);
    }

    #[test]
    fn crew_constructor_arithmetic() {
        // 4 techs * 1,800 h/yr / 0.5 h per replacement = 14,400/yr.
        let crew = Workforce::from_crew(4, 1_800.0, 0.5);
        assert!((crew.capacity_per_year - 14_400.0).abs() < 1e-9);
    }

    #[test]
    fn min_capacity_binary_search() {
        let demand = [300.0, 0.0, 0.0, 0.0];
        // Zero backlog requires capacity >= 300.
        let cap0 = min_capacity_for_backlog(&demand, 1.0, 0.0);
        assert!((cap0 - 300.0).abs() < 0.1, "cap {cap0}");
        // Allowing 200 backlog requires only ~100.
        let cap200 = min_capacity_for_backlog(&demand, 1.0, 200.0);
        assert!((cap200 - 100.0).abs() < 0.1, "cap {cap200}");
        assert_eq!(min_capacity_for_backlog(&[0.0, 0.0], 1.0, 0.0), 0.0);
    }

    #[test]
    fn en_masse_wave_needs_bigger_crew_than_staggered() {
        // Synthetic demands with equal totals: a wave vs a flat line.
        let wave = [0.0, 0.0, 400.0, 0.0, 0.0, 0.0, 0.0, 400.0, 0.0, 0.0];
        let flat = [80.0; 10];
        let cap_wave = min_capacity_for_backlog(&wave, 1.0, 50.0);
        let cap_flat = min_capacity_for_backlog(&flat, 1.0, 50.0);
        assert!(
            cap_wave > cap_flat * 2.0,
            "wave {cap_wave} should need far more than flat {cap_flat}"
        );
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        Workforce::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "demand")]
    fn rejects_negative_demand() {
        run_backlog(&[-1.0], &Workforce::new(10.0, 1.0));
    }
}
