//! Obsolescence processes: the ways working devices die anyway.
//!
//! §1 (footnote 3) taxonomizes obsolescence: **technical** (a better device
//! supplants it, or the surrounding technology moves), **style** (taste),
//! **planned** (vendor-imposed), and the paper's goal state, **functional**
//! (replaced only when it stops doing its job). §3.2 adds the vendor-lock
//! mechanism: sensors that only work with their manufacturer's gateways
//! inherit the manufacturer's lifetime.

use simcore::dist::Exponential;
use simcore::rng::Rng;

/// Why a working device left service.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Obsolescence {
    /// Superseded by newer technology, or its dependencies moved on
    /// (e.g. the 802.11b scale whose router upgrade orphaned it).
    Technical,
    /// Replaced for taste/appearance reasons.
    Style,
    /// Vendor lockout, cloud-service shutdown, or designed-in expiry.
    Planned,
    /// Wore out doing its job — the only kind the paper accepts.
    Functional,
    /// Stranded by supporting-infrastructure loss (gateway or backhaul).
    Infrastructure,
}

/// Hazard rates (per year) for the non-functional obsolescence channels a
/// device is exposed to.
#[derive(Clone, Copy, Debug)]
pub struct ObsolescenceRates {
    /// Technical-obsolescence rate.
    pub technical: f64,
    /// Style-obsolescence rate.
    pub style: f64,
    /// Planned-obsolescence (vendor action) rate.
    pub planned: f64,
}

impl ObsolescenceRates {
    /// Consumer-electronics shape: the paper's 50-month mean replacement
    /// cadence is dominated by technical and style churn. Rates chosen so
    /// the combined mean time ≈ 50 months (≈ 4.17 y): technical 0.14/y,
    /// style 0.06/y, planned 0.04/y → combined 0.24/y ⇒ mean 4.17 y.
    pub fn consumer() -> Self {
        ObsolescenceRates { technical: 0.14, style: 0.06, planned: 0.04 }
    }

    /// Infrastructure-grade deployment that follows the paper's principles:
    /// standards-compliant radios (no vendor lock), no style pressure.
    /// Residual technical churn only.
    pub fn century_principled() -> Self {
        ObsolescenceRates { technical: 0.01, style: 0.0, planned: 0.0 }
    }

    /// Combined annual rate.
    pub fn total(&self) -> f64 {
        self.technical + self.style + self.planned
    }

    /// Samples `(time_years, cause)` of the first obsolescence event, or
    /// `None` if all rates are zero (the device is only ever functionally
    /// obsoleted).
    pub fn sample_first(&self, rng: &mut Rng) -> Option<(f64, Obsolescence)> {
        let mut best: Option<(f64, Obsolescence)> = None;
        for (rate, cause) in [
            (self.technical, Obsolescence::Technical),
            (self.style, Obsolescence::Style),
            (self.planned, Obsolescence::Planned),
        ] {
            // A non-positive (or non-finite) rate means "this channel is
            // off"; Exponential::new enforces the same bound, so the two
            // checks collapse into one panic-free gate.
            if let Ok(dist) = Exponential::new(rate) {
                let t = dist.sample(rng);
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, cause));
                }
            }
        }
        best
    }
}

/// A device's effective end of service: the earlier of functional failure
/// and non-functional obsolescence. Returns `(years, cause)`.
pub fn end_of_service(
    functional_ttf_years: f64,
    rates: &ObsolescenceRates,
    rng: &mut Rng,
) -> (f64, Obsolescence) {
    match rates.sample_first(rng) {
        Some((t, cause)) if t < functional_ttf_years => (t, cause),
        _ => (functional_ttf_years, Obsolescence::Functional),
    }
}

/// Vendor lock-in: a locked device inherits `min(own_ttf, vendor_exit)`;
/// a standards-compliant device keeps its own lifetime (the §3.2 takeaway:
/// "rely on properties of infrastructure, not specific instances").
pub fn vendor_locked_ttf(own_ttf_years: f64, vendor_exit_years: f64, locked: bool) -> f64 {
    if locked {
        own_ttf_years.min(vendor_exit_years)
    } else {
        own_ttf_years
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consumer_rates_match_50_month_cadence() {
        let r = ObsolescenceRates::consumer();
        let mean_years = 1.0 / r.total();
        assert!((mean_years * 12.0 - 50.0).abs() < 1.0, "months {}", mean_years * 12.0);
    }

    #[test]
    fn sampled_first_event_matches_combined_rate() {
        let r = ObsolescenceRates::consumer();
        let mut rng = Rng::seed_from(1);
        let n = 50_000;
        let mean: f64 = (0..n)
            .map(|_| r.sample_first(&mut rng).expect("rates > 0").0)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0 / r.total()).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn cause_mix_proportional_to_rates() {
        let r = ObsolescenceRates::consumer();
        let mut rng = Rng::seed_from(2);
        let n = 50_000;
        let technical = (0..n)
            .filter(|_| {
                matches!(
                    r.sample_first(&mut rng),
                    Some((_, Obsolescence::Technical))
                )
            })
            .count() as f64
            / n as f64;
        let expect = r.technical / r.total();
        assert!((technical - expect).abs() < 0.01, "technical {technical} expect {expect}");
    }

    #[test]
    fn principled_rates_rarely_fire_before_wearout() {
        let r = ObsolescenceRates::century_principled();
        let mut rng = Rng::seed_from(3);
        let n = 10_000;
        let functional = (0..n)
            .filter(|_| matches!(end_of_service(20.0, &r, &mut rng), (_, Obsolescence::Functional)))
            .count() as f64
            / n as f64;
        // P(exp(0.01) > 20) = e^-0.2 ≈ 0.819.
        assert!((functional - 0.819).abs() < 0.02, "functional {functional}");
    }

    #[test]
    fn zero_rates_always_functional() {
        let r = ObsolescenceRates { technical: 0.0, style: 0.0, planned: 0.0 };
        let mut rng = Rng::seed_from(4);
        assert!(r.sample_first(&mut rng).is_none());
        assert_eq!(end_of_service(12.0, &r, &mut rng), (12.0, Obsolescence::Functional));
    }

    #[test]
    fn vendor_lock_caps_lifetime() {
        assert_eq!(vendor_locked_ttf(20.0, 6.0, true), 6.0);
        assert_eq!(vendor_locked_ttf(20.0, 6.0, false), 20.0);
        assert_eq!(vendor_locked_ttf(4.0, 6.0, true), 4.0);
    }
}
