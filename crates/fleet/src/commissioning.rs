//! The gateway commissioning and migration protocol (§3.2).
//!
//! *"The process should allow newer gateways to establish links with the
//! backhaul using secure mechanisms similar to those used for home router
//! commissioning. Additionally, when replacing existing gateway units, we
//! can have a process in place to utilize the outgoing gateway as a
//! trusted third party for easy migration of existing connected devices."*
//!
//! This module types that process as a small state machine over a
//! gateway's service records. Transitions are total functions returning
//! `Result`, so illegal protocol steps are unrepresentable at runtime and
//! the invariants ("a device never loses its session except by explicit
//! orphaning") are property-testable.

use std::collections::BTreeMap;

/// Identifier of a gateway generation/unit in the protocol.
pub type GatewayId = u32;
/// Identifier of an attached device.
pub type DeviceId = u32;

/// A device's standing with the gateway complex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Session {
    /// Connectionless: the gateway merely forwards (transmit-only devices).
    Forwarding,
    /// Keyed session for bidirectional/secured service.
    Keyed {
        /// The key epoch; bumped on every migration.
        epoch: u32,
    },
}

/// Protocol state of one gateway slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GatewayPhase {
    /// Fresh hardware, not yet trusted by the backhaul.
    Factory,
    /// In service: holds sessions for its devices.
    Commissioned,
    /// Handing over to a successor (the trusted-third-party window).
    Migrating {
        /// The successor gateway.
        to: GatewayId,
    },
    /// Retired after successful migration.
    Retired,
}

/// Errors for illegal protocol transitions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// Operation requires the gateway to be commissioned.
    NotCommissioned,
    /// The successor is not in the Factory phase.
    SuccessorNotFactory,
    /// Migration attempted while no migration is in progress.
    NoMigrationInProgress,
    /// A device id was not found on the source gateway.
    UnknownDevice(DeviceId),
}

impl core::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProtocolError::NotCommissioned => f.write_str("gateway is not commissioned"),
            ProtocolError::SuccessorNotFactory => f.write_str("successor must be factory-fresh"),
            ProtocolError::NoMigrationInProgress => f.write_str("no migration in progress"),
            ProtocolError::UnknownDevice(d) => write!(f, "unknown device {d}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// One gateway's protocol record.
#[derive(Clone, Debug)]
pub struct GatewayRecord {
    /// Protocol phase.
    pub phase: GatewayPhase,
    /// Sessions held, by device.
    pub sessions: BTreeMap<DeviceId, Session>,
}

impl GatewayRecord {
    /// A factory-fresh record.
    pub fn factory() -> Self {
        GatewayRecord { phase: GatewayPhase::Factory, sessions: BTreeMap::new() }
    }
}

/// The commissioning registry for a deployment site.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    gateways: BTreeMap<GatewayId, GatewayRecord>,
    orphaned: Vec<DeviceId>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers factory-fresh hardware.
    pub fn add_factory(&mut self, id: GatewayId) {
        self.gateways.insert(id, GatewayRecord::factory());
    }

    /// Commissions a factory gateway onto the backhaul.
    pub fn commission(&mut self, id: GatewayId) -> Result<(), ProtocolError> {
        let rec = self.gateways.entry(id).or_insert_with(GatewayRecord::factory);
        match rec.phase {
            GatewayPhase::Factory => {
                rec.phase = GatewayPhase::Commissioned;
                Ok(())
            }
            _ => Err(ProtocolError::SuccessorNotFactory),
        }
    }

    /// Attaches a device to a commissioned gateway.
    pub fn attach(
        &mut self,
        gw: GatewayId,
        device: DeviceId,
        session: Session,
    ) -> Result<(), ProtocolError> {
        let rec = self.gateways.get_mut(&gw).ok_or(ProtocolError::NotCommissioned)?;
        if rec.phase != GatewayPhase::Commissioned {
            return Err(ProtocolError::NotCommissioned);
        }
        rec.sessions.insert(device, session);
        Ok(())
    }

    /// Begins migrating `old` to factory-fresh `new`: `new` is
    /// commissioned, `old` enters the trusted-third-party window.
    pub fn begin_migration(
        &mut self,
        old: GatewayId,
        new: GatewayId,
    ) -> Result<(), ProtocolError> {
        match self.gateways.get(&old).map(|r| &r.phase) {
            Some(GatewayPhase::Commissioned) => {}
            _ => return Err(ProtocolError::NotCommissioned),
        }
        match self.gateways.get_mut(&new) {
            Some(rec) if rec.phase == GatewayPhase::Factory => {
                rec.phase = GatewayPhase::Commissioned;
            }
            _ => return Err(ProtocolError::SuccessorNotFactory),
        }
        if let Some(rec) = self.gateways.get_mut(&old) {
            rec.phase = GatewayPhase::Migrating { to: new };
        }
        Ok(())
    }

    /// Completes a migration: every session moves to the successor with a
    /// bumped key epoch (the old gateway vouches, so devices need no
    /// manual re-provisioning); the old gateway retires.
    pub fn complete_migration(&mut self, old: GatewayId) -> Result<usize, ProtocolError> {
        let to = match self.gateways.get(&old).map(|r| r.phase.clone()) {
            Some(GatewayPhase::Migrating { to }) => to,
            _ => return Err(ProtocolError::NoMigrationInProgress),
        };
        let sessions = match self.gateways.get_mut(&old) {
            Some(rec) => std::mem::take(&mut rec.sessions),
            None => return Err(ProtocolError::NoMigrationInProgress),
        };
        let moved = sessions.len();
        let Some(successor) = self.gateways.get_mut(&to) else {
            // The successor record vanished mid-window: put the sessions
            // back so nothing is lost and report the broken handoff.
            if let Some(rec) = self.gateways.get_mut(&old) {
                rec.sessions = sessions;
            }
            return Err(ProtocolError::NotCommissioned);
        };
        for (dev, session) in sessions {
            let migrated = match session {
                Session::Forwarding => Session::Forwarding,
                Session::Keyed { epoch } => Session::Keyed { epoch: epoch + 1 },
            };
            successor.sessions.insert(dev, migrated);
        }
        if let Some(rec) = self.gateways.get_mut(&old) {
            rec.phase = GatewayPhase::Retired;
        }
        Ok(moved)
    }

    /// The disorderly path: the gateway died with no handoff. Keyed
    /// devices are orphaned (manual re-provisioning required);
    /// connectionless devices survive, homeless but re-attachable.
    pub fn fail_without_handoff(&mut self, gw: GatewayId) -> Result<usize, ProtocolError> {
        let rec = self.gateways.get_mut(&gw).ok_or(ProtocolError::NotCommissioned)?;
        let sessions = std::mem::take(&mut rec.sessions);
        rec.phase = GatewayPhase::Retired;
        let mut orphaned = 0;
        for (dev, session) in sessions {
            if matches!(session, Session::Keyed { .. }) {
                self.orphaned.push(dev);
                orphaned += 1;
            }
        }
        Ok(orphaned)
    }

    /// Looks up a device's session on a gateway.
    ///
    /// Returns [`ProtocolError::UnknownDevice`] when the gateway holds no
    /// session for `device`.
    pub fn session(&self, gw: GatewayId, device: DeviceId) -> Result<Session, ProtocolError> {
        let rec = self.gateways.get(&gw).ok_or(ProtocolError::NotCommissioned)?;
        rec.sessions
            .get(&device)
            .copied()
            .ok_or(ProtocolError::UnknownDevice(device))
    }

    /// Detaches a device from a gateway (decommissioning a single sensor),
    /// returning the session it held.
    ///
    /// Returns [`ProtocolError::UnknownDevice`] when the gateway holds no
    /// session for `device`.
    pub fn detach(
        &mut self,
        gw: GatewayId,
        device: DeviceId,
    ) -> Result<Session, ProtocolError> {
        let rec = self.gateways.get_mut(&gw).ok_or(ProtocolError::NotCommissioned)?;
        rec.sessions
            .remove(&device)
            .ok_or(ProtocolError::UnknownDevice(device))
    }

    /// The record for a gateway.
    pub fn gateway(&self, id: GatewayId) -> Option<&GatewayRecord> {
        self.gateways.get(&id)
    }

    /// Devices orphaned by disorderly failures so far.
    pub fn orphaned(&self) -> &[DeviceId] {
        &self.orphaned
    }

    /// Total live sessions across commissioned gateways.
    pub fn live_sessions(&self) -> usize {
        self.gateways
            .values()
            .filter(|r| matches!(r.phase, GatewayPhase::Commissioned | GatewayPhase::Migrating { .. }))
            .map(|r| r.sessions.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with_devices(n: u32) -> Registry {
        let mut r = Registry::new();
        r.add_factory(0);
        r.commission(0).expect("commission");
        for d in 0..n {
            let session = if d % 2 == 0 {
                Session::Forwarding
            } else {
                Session::Keyed { epoch: 0 }
            };
            r.attach(0, d, session).expect("attach");
        }
        r
    }

    #[test]
    fn orderly_migration_preserves_every_session() {
        let mut r = registry_with_devices(10);
        r.add_factory(1);
        r.begin_migration(0, 1).expect("begin");
        let moved = r.complete_migration(0).expect("complete");
        assert_eq!(moved, 10);
        assert_eq!(r.live_sessions(), 10);
        assert!(r.orphaned().is_empty());
        assert_eq!(r.gateway(0).unwrap().phase, GatewayPhase::Retired);
        assert_eq!(r.gateway(1).unwrap().phase, GatewayPhase::Commissioned);
    }

    #[test]
    fn migration_bumps_key_epochs_only_for_keyed() {
        let mut r = registry_with_devices(4);
        r.add_factory(1);
        r.begin_migration(0, 1).expect("begin");
        r.complete_migration(0).expect("complete");
        let gw1 = r.gateway(1).unwrap();
        assert_eq!(gw1.sessions[&0], Session::Forwarding);
        assert_eq!(gw1.sessions[&1], Session::Keyed { epoch: 1 });
    }

    #[test]
    fn disorderly_failure_orphans_keyed_devices() {
        let mut r = registry_with_devices(10);
        let orphaned = r.fail_without_handoff(0).expect("fail");
        assert_eq!(orphaned, 5, "half the sessions were keyed");
        assert_eq!(r.orphaned().len(), 5);
        assert_eq!(r.live_sessions(), 0);
    }

    #[test]
    fn cannot_migrate_to_commissioned_successor() {
        let mut r = registry_with_devices(2);
        r.add_factory(1);
        r.commission(1).expect("commission");
        assert_eq!(r.begin_migration(0, 1), Err(ProtocolError::SuccessorNotFactory));
    }

    #[test]
    fn cannot_attach_to_factory_gateway() {
        let mut r = Registry::new();
        r.add_factory(5);
        assert_eq!(
            r.attach(5, 0, Session::Forwarding),
            Err(ProtocolError::NotCommissioned)
        );
    }

    #[test]
    fn cannot_complete_without_begin() {
        let mut r = registry_with_devices(1);
        assert_eq!(r.complete_migration(0), Err(ProtocolError::NoMigrationInProgress));
    }

    #[test]
    fn double_commission_rejected() {
        let mut r = Registry::new();
        r.add_factory(0);
        r.commission(0).expect("first");
        assert!(r.commission(0).is_err());
    }

    #[test]
    fn chained_migrations_accumulate_epochs() {
        let mut r = registry_with_devices(2);
        for gen in 1u32..=3 {
            r.add_factory(gen);
            r.begin_migration(gen - 1, gen).expect("begin");
            r.complete_migration(gen - 1).expect("complete");
        }
        let last = r.gateway(3).unwrap();
        assert_eq!(last.sessions[&1], Session::Keyed { epoch: 3 });
        assert_eq!(r.live_sessions(), 2);
    }

    // One test per ProtocolError variant: every error the protocol can
    // emit is constructed through the public API.

    #[test]
    fn not_commissioned_variant() {
        // From attach on a factory gateway…
        let mut r = Registry::new();
        r.add_factory(5);
        assert_eq!(
            r.attach(5, 0, Session::Forwarding),
            Err(ProtocolError::NotCommissioned)
        );
        // …from migrating an unknown source…
        assert_eq!(r.begin_migration(99, 5), Err(ProtocolError::NotCommissioned));
        // …and from a disorderly failure of an unknown gateway.
        assert_eq!(r.fail_without_handoff(42), Err(ProtocolError::NotCommissioned));
    }

    #[test]
    fn successor_not_factory_variant() {
        let mut r = registry_with_devices(1);
        // Missing successor record.
        assert_eq!(r.begin_migration(0, 77), Err(ProtocolError::SuccessorNotFactory));
        // Already-commissioned successor.
        r.add_factory(1);
        r.commission(1).expect("commission");
        assert_eq!(r.begin_migration(0, 1), Err(ProtocolError::SuccessorNotFactory));
        // Double-commission reports the same phase violation.
        assert_eq!(r.commission(1), Err(ProtocolError::SuccessorNotFactory));
    }

    #[test]
    fn no_migration_in_progress_variant() {
        let mut r = registry_with_devices(1);
        assert_eq!(r.complete_migration(0), Err(ProtocolError::NoMigrationInProgress));
        // Completing twice: the second call finds the source retired.
        r.add_factory(1);
        r.begin_migration(0, 1).expect("begin");
        r.complete_migration(0).expect("complete");
        assert_eq!(r.complete_migration(0), Err(ProtocolError::NoMigrationInProgress));
    }

    #[test]
    fn unknown_device_variant() {
        let mut r = registry_with_devices(2);
        assert_eq!(r.session(0, 9), Err(ProtocolError::UnknownDevice(9)));
        assert_eq!(r.detach(0, 9), Err(ProtocolError::UnknownDevice(9)));
        // Known devices resolve, and a detached device becomes unknown.
        assert_eq!(r.session(0, 0), Ok(Session::Forwarding));
        assert_eq!(r.detach(0, 1), Ok(Session::Keyed { epoch: 0 }));
        assert_eq!(r.session(0, 1), Err(ProtocolError::UnknownDevice(1)));
        assert_eq!(r.live_sessions(), 1);
    }

    #[test]
    fn aborted_begin_leaves_source_untouched() {
        // A failed begin_migration must not half-commit: the source stays
        // Commissioned when the successor check fails.
        let mut r = registry_with_devices(3);
        assert!(r.begin_migration(0, 77).is_err());
        assert_eq!(r.gateway(0).unwrap().phase, GatewayPhase::Commissioned);
        assert_eq!(r.live_sessions(), 3);
    }

    #[test]
    fn error_display() {
        assert!(ProtocolError::UnknownDevice(7).to_string().contains('7'));
        assert!(ProtocolError::NotCommissioned.to_string().contains("commissioned"));
        assert!(ProtocolError::SuccessorNotFactory.to_string().contains("factory"));
        assert!(ProtocolError::NoMigrationInProgress.to_string().contains("migration"));
    }
}
