//! The data endpoint: the one tier with *scheduled* obligations (§4.4–4.5).
//!
//! "Long-lived cloud services are comparatively well-understood" — but they
//! still decay without rituals: the paper calls out the 10-year maximum
//! domain lease (ICANN) as "one certain event". [`CloudEndpoint`] models
//! the renewal calendar (domain, TLS certificates, hosting) and the outage
//! that follows a missed ritual.

use simcore::rng::Rng;
use simcore::time::{SimDuration, SimTime};

/// A recurring administrative obligation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ritual {
    /// Descriptive name.
    pub name: &'static str,
    /// How often it must be performed.
    pub period: SimDuration,
    /// Probability any single occurrence is missed (staff turnover,
    /// expired card, forgotten mailbox).
    pub miss_probability: f64,
    /// Outage until a missed occurrence is noticed and fixed.
    pub recovery: SimDuration,
}

impl Ritual {
    /// The paper's "one certain event": the domain lease, renewable at
    /// most 10 years ahead.
    pub fn domain_lease() -> Self {
        Ritual {
            name: "domain-lease",
            period: SimDuration::from_years(10),
            miss_probability: 0.05,
            recovery: SimDuration::from_days(14),
        }
    }

    /// TLS certificate rotation (90-day ACME cadence, automated — low miss
    /// probability but frequent).
    pub fn tls_certificate() -> Self {
        Ritual {
            name: "tls-certificate",
            period: SimDuration::from_days(90),
            miss_probability: 0.002,
            recovery: SimDuration::from_days(3),
        }
    }

    /// Hosting-bill / account custody check (yearly).
    pub fn hosting_account() -> Self {
        Ritual {
            name: "hosting-account",
            period: SimDuration::from_years(1),
            miss_probability: 0.01,
            recovery: SimDuration::from_days(7),
        }
    }
}

/// One missed-ritual outage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CloudOutage {
    /// Which ritual was missed.
    pub ritual: &'static str,
    /// When service dropped.
    pub from: SimTime,
    /// When service returned.
    pub until: SimTime,
}

/// The endpoint's precomputed outage calendar over a horizon.
#[derive(Clone, Debug)]
pub struct CloudEndpoint {
    outages: Vec<CloudOutage>,
}

impl CloudEndpoint {
    /// Simulates the ritual calendar over `horizon`, sampling misses.
    pub fn simulate(rituals: &[Ritual], horizon: SimDuration, rng: &mut Rng) -> Self {
        let mut outages = Vec::new();
        for ritual in rituals {
            assert!(!ritual.period.is_zero(), "ritual period must be positive");
            let mut t = ritual.period;
            while t.as_secs() < horizon.as_secs() {
                if rng.chance(ritual.miss_probability) {
                    let from = SimTime::ZERO + t;
                    outages.push(CloudOutage {
                        ritual: ritual.name,
                        from,
                        until: from + ritual.recovery,
                    });
                }
                t += ritual.period;
            }
        }
        outages.sort_by_key(|o| o.from);
        CloudEndpoint { outages }
    }

    /// The paper's endpoint with the standard ritual set.
    pub fn paper_default(horizon: SimDuration, rng: &mut Rng) -> Self {
        Self::simulate(
            &[Ritual::domain_lease(), Ritual::tls_certificate(), Ritual::hosting_account()],
            horizon,
            rng,
        )
    }

    /// Whether the endpoint is serving at `t`.
    pub fn up_at(&self, t: SimTime) -> bool {
        !self.outages.iter().any(|o| (o.from..o.until).contains(&t))
    }

    /// All outages in time order.
    pub fn outages(&self) -> &[CloudOutage] {
        &self.outages
    }

    /// Total downtime over the horizon.
    pub fn total_downtime(&self) -> SimDuration {
        // Outages from different rituals can overlap; merge intervals.
        let mut total = SimDuration::ZERO;
        let mut current: Option<(SimTime, SimTime)> = None;
        for o in &self.outages {
            match current {
                Some((from, until)) if o.from <= until => {
                    current = Some((from, until.max(o.until)));
                }
                Some((from, until)) => {
                    total += until.since(from);
                    current = Some((o.from, o.until));
                }
                None => current = Some((o.from, o.until)),
            }
        }
        if let Some((from, until)) = current {
            total += until.since(from);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_misses_means_no_outages() {
        let ritual = Ritual { miss_probability: 0.0, ..Ritual::domain_lease() };
        let mut rng = Rng::seed_from(1);
        let ep = CloudEndpoint::simulate(&[ritual], SimDuration::from_years(50), &mut rng);
        assert!(ep.outages().is_empty());
        assert!(ep.up_at(SimTime::from_years(25)));
        assert_eq!(ep.total_downtime(), SimDuration::ZERO);
    }

    #[test]
    fn certain_miss_produces_outage_each_period() {
        let ritual = Ritual {
            name: "test",
            period: SimDuration::from_years(10),
            miss_probability: 1.0,
            recovery: SimDuration::from_days(14),
        };
        let mut rng = Rng::seed_from(2);
        let ep = CloudEndpoint::simulate(&[ritual], SimDuration::from_years(50), &mut rng);
        // Renewals at years 10, 20, 30, 40 (50 excluded: not < horizon).
        assert_eq!(ep.outages().len(), 4);
        assert!(!ep.up_at(SimTime::from_years(10)));
        assert!(ep.up_at(SimTime::from_years(10) + SimDuration::from_days(20)));
        assert_eq!(ep.total_downtime(), SimDuration::from_days(14 * 4));
    }

    #[test]
    fn fifty_year_run_misses_some_rituals() {
        // ~520 renewal events at the default miss rates: expect a handful
        // of misses over 50 years for most seeds.
        let mut any = 0;
        for seed in 0..20 {
            let mut rng = Rng::seed_from(seed);
            let ep = CloudEndpoint::paper_default(SimDuration::from_years(50), &mut rng);
            any += ep.outages().len();
        }
        assert!(any > 0, "no seed produced any missed ritual");
    }

    #[test]
    fn overlapping_outages_merge_in_downtime() {
        let a = Ritual {
            name: "a",
            period: SimDuration::from_years(1),
            miss_probability: 1.0,
            recovery: SimDuration::from_days(10),
        };
        let b = Ritual {
            name: "b",
            period: SimDuration::from_years(1),
            miss_probability: 1.0,
            recovery: SimDuration::from_days(5),
        };
        let mut rng = Rng::seed_from(3);
        let ep = CloudEndpoint::simulate(&[a, b], SimDuration::from_years(2), &mut rng);
        // One overlapping pair at year 1: merged downtime = 10 days.
        assert_eq!(ep.total_downtime(), SimDuration::from_days(10));
    }

    #[test]
    fn up_at_boundary_semantics() {
        let ritual = Ritual {
            name: "x",
            period: SimDuration::from_years(1),
            miss_probability: 1.0,
            recovery: SimDuration::from_days(1),
        };
        let mut rng = Rng::seed_from(4);
        let ep = CloudEndpoint::simulate(&[ritual], SimDuration::from_years(1) + SimDuration::from_days(1), &mut rng);
        let from = SimTime::from_years(1);
        assert!(!ep.up_at(from));
        assert!(ep.up_at(from + SimDuration::from_days(1)));
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_ritual_panics() {
        let ritual = Ritual {
            name: "bad",
            period: SimDuration::ZERO,
            miss_probability: 0.5,
            recovery: SimDuration::from_days(1),
        };
        CloudEndpoint::simulate(&[ritual], SimDuration::from_years(1), &mut Rng::seed_from(5));
    }
}
