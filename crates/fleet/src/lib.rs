//! `fleet` — the deployment hierarchy and its century-scale dynamics.
//!
//! This crate assembles the substrates (`energy`, `reliability`, `net`,
//! `backhaul`, `econ`) into the system *Century-Scale Smart Infrastructure*
//! (HotOS ’21) describes: devices that expect no human attention, gateways
//! that are maintained, backhaul that sunsets, and the maintenance economy
//! around them.
//!
//! * [`device`] / [`gateway`] / [`cloud`] — the three managed tiers.
//! * [`hierarchy`] — Figure 1's reliance graph and its fan-out statistics.
//! * [`commissioning`] — the §3.2 gateway-migration protocol as a typed
//!   state machine (trusted-third-party handoff vs disorderly failure).
//! * [`maintenance`] — crews, truck rolls, geographic batching.
//! * [`obsolescence`] — technical/style/planned/functional obsolescence
//!   and vendor lock-in.
//! * [`pipeline`] — Ship-of-Theseus cohort pipelining.
//! * [`sim`] — the discrete-event fleet simulation running §4's 50-year
//!   experiment.
//! * [`shard`] — deterministic intra-run sharding: the same simulation
//!   split across worker threads with a bit-identical run digest.
//! * [`snapshot`] — crash-recoverable mid-run checkpoints: run-to-week,
//!   snapshot, resume, run-to-horizon digests exactly like the
//!   uninterrupted run.
//! * [`store`] — the struct-of-arrays device population (parallel
//!   columns + path cohorts) that aggregate weekly sampling runs over.
//! * [`upgrade`] — gateway technology-generation planning: upgrade policies
//!   vs heterogeneity and out-of-support exposure.
//! * [`workforce`] — crew-capacity backlog dynamics: what replacement waves
//!   cost in dark device-years when the crew is finite.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cloud;
pub mod commissioning;
pub mod device;
pub mod gateway;
pub mod geometry;
pub mod hierarchy;
pub mod maintenance;
pub mod obsolescence;
pub mod pipeline;
pub mod shard;
pub mod sim;
pub mod snapshot;
pub mod store;
pub mod upgrade;
pub mod workforce;

pub use device::{DeviceSpec, DeviceState, EnergySystem};
pub use gateway::{GatewaySpec, GatewayState};
pub use hierarchy::Hierarchy;
pub use shard::{ShardError, ShardPlan};
pub use sim::{ArmConfig, ArmReport, FleetConfig, FleetReport, FleetSim, SamplingMode};
pub use snapshot::{ChaosProgress, ResumedFleet, FLEET_SNAPSHOT_VERSION};
pub use store::DeviceStore;
