//! The fleet simulation: §4's 50-year experiment, executable.
//!
//! [`FleetSim`] wires the whole stack together — devices
//! ([`crate::device`]), gateways ([`crate::gateway`]), backhaul providers
//! and hotspot populations ([`backhaul`]), the cloud endpoint
//! ([`crate::cloud`]) — and runs it on the discrete-event engine over a
//! multi-decade horizon. Each experiment *arm* mirrors the paper:
//!
//! * **owned-802.15.4** — self-deployed Pi-class gateways on a campus
//!   backhaul; gateways are maintained, devices are not.
//! * **helium-lora** — third-party hotspots carry the data, prepaid with
//!   data-credit wallets; nothing but the device is deployed.
//!
//! The paper's uptime metric is implemented verbatim: *"some data arrives
//! at some interval of time up to once a week."* Weekly check events walk
//! each arm's end-to-end path; the structured diary records every failure,
//! repair, sunset and renewal, exactly as §4.5 promises to publish.
//!
//! ## Modelling notes
//!
//! Per-packet events over 50 years (hundreds of thousands per device) are
//! aggregated to weekly evaluations: within a week, a live device's packet
//! deliveries are Bernoulli draws at the arm's per-packet delivery
//! probability. Device energy availability enters as a per-week
//! availability factor computed by the `energy` crate offline (E12 covers
//! the fine-grained energy dynamics).

use std::sync::Arc;

use backhaul::helium::HotspotPopulation;
use econ::credits::{Wallet, WalletColumn};
use econ::labor::PersonHours;
use econ::money::Usd;
use reliability::system::bom;
use simcore::dist::{sorted_uniforms, Binomial, InverseCdf};
use simcore::engine::{Ctx, Engine, EngineProfile, World};
use simcore::event::EventQueue;
use simcore::rng::Rng;
use simcore::survival::Observation;
use simcore::time::{SimDuration, SimTime, WEEK};
use simcore::trace::{Diary, Severity, Tier};
use telemetry::span::{SpanId, SpanLog};
use telemetry::{Buckets, Counter, Digest, Histogram, LocalHistogram, Registry, Snapshot, Span};

use crate::cloud::CloudEndpoint;
use crate::device::{DeviceSpec, DeviceState, EnergySystem};
use crate::gateway::{GatewaySpec, GatewayState};
use crate::store::DeviceStore;

/// Infrastructure flavour of an experiment arm.
#[derive(Clone, Debug)]
pub enum ArmKind {
    /// Self-deployed gateways (the paper's 802.15.4 arm).
    Owned {
        /// Number of gateways deployed.
        gateways: usize,
        /// Gateway configuration.
        spec: GatewaySpec,
    },
    /// Third-party federated coverage (the paper's Helium arm).
    Federated {
        /// Local hotspot census dynamics.
        hotspots: HotspotPopulation,
        /// Wallet provisioned per device.
        wallet_dollars: Usd,
    },
}

/// Configuration of one experiment arm.
#[derive(Clone, Debug)]
pub struct ArmConfig {
    /// Display name (diary prefix).
    pub name: &'static str,
    /// Infrastructure flavour.
    pub kind: ArmKind,
    /// Number of edge devices.
    pub devices: usize,
    /// Device archetype.
    pub device_spec: DeviceSpec,
    /// Per-packet delivery probability given the path is up (link PRR ×
    /// collision survival), from the `net` crate's models.
    pub per_packet_delivery: f64,
    /// Whether failed devices are replaced (the paper documents, diagnoses
    /// and replaces — a living study), and after what delay.
    pub replace_devices: Option<SimDuration>,
    /// Fraction of devices hearing two gateways instead of one (owned
    /// arms; Figure 1's "one or two gateways"). The rest are single-homed
    /// on a deployment-time lottery.
    pub dual_homed_fraction: f64,
}

impl ArmConfig {
    /// The paper's owned-802.15.4 arm with `devices` sensors and
    /// `gateways` campus-backhauled Pi gateways.
    pub fn paper_owned_154(devices: usize, gateways: usize) -> Self {
        ArmConfig {
            name: "owned-802.15.4",
            kind: ArmKind::Owned { gateways, spec: GatewaySpec::paper_owned() },
            devices,
            device_spec: DeviceSpec::paper_sensor(net::packet::RadioTech::Ieee802154),
            per_packet_delivery: 0.95,
            replace_devices: Some(SimDuration::from_weeks(2)),
            dual_homed_fraction: 0.6,
        }
    }

    /// Derives `per_packet_delivery` from the shared-channel model instead
    /// of the preset constant: link PRR × pure-ALOHA collision survival
    /// (with capture) at this arm's own offered load.
    ///
    /// # Panics
    ///
    /// Panics if the spec's report interval is zero.
    pub fn with_channel_derived_delivery(mut self, link_prr: f64, capture_prob: f64) -> Self {
        let airtime = match self.device_spec.tech {
            net::packet::RadioTech::Ieee802154 => {
                net::ieee802154::airtime_s(self.device_spec.payload.len() as u32)
            }
            net::packet::RadioTech::LoRa => {
                net::lora::LoraConfig::uplink(net::lora::SpreadingFactor::Sf10)
                    .airtime_s(self.device_spec.payload.len() as u32)
            }
        };
        let interval = self.device_spec.report_interval.as_secs() as f64;
        assert!(interval > 0.0, "report interval must be positive");
        let g = net::aloha::offered_load(self.devices as u64, airtime, interval);
        let collision_survival = net::aloha::delivery_prob_with_capture(g, capture_prob);
        self.per_packet_delivery = (link_prr * collision_survival).clamp(0.0, 1.0);
        self
    }

    /// A cellular-backhauled variant of the owned arm (§3.3.2's risk case):
    /// same devices and gateways, but the uplink is a cellular generation
    /// that will sunset within the horizon.
    pub fn cellular_owned_154(
        devices: usize,
        gateways: usize,
        generation: backhaul::tech::CellularGen,
    ) -> Self {
        let mut spec = GatewaySpec::paper_owned();
        spec.backhaul = backhaul::tech::BackhaulTech::Cellular(generation);
        spec.provider = backhaul::provider::Provider::commercial();
        ArmConfig {
            name: "cellular-802.15.4",
            kind: ArmKind::Owned { gateways, spec },
            devices,
            device_spec: DeviceSpec::paper_sensor(net::packet::RadioTech::Ieee802154),
            per_packet_delivery: 0.95,
            replace_devices: Some(SimDuration::from_weeks(2)),
            dual_homed_fraction: 0.6,
        }
    }

    /// The paper's Helium arm with `devices` sensors riding `hotspots`
    /// initially-audible hotspots, each device prepaid with a $5 wallet.
    pub fn paper_helium(devices: usize, hotspots: u32) -> Self {
        ArmConfig {
            name: "helium-lora",
            kind: ArmKind::Federated {
                hotspots: HotspotPopulation::emerging(hotspots),
                wallet_dollars: Usd::from_dollars(5),
            },
            devices,
            device_spec: DeviceSpec::paper_sensor(net::packet::RadioTech::LoRa),
            per_packet_delivery: 0.90,
            replace_devices: Some(SimDuration::from_weeks(2)),
            dual_homed_fraction: 1.0,
        }
    }
}

/// How weekly deliveries are sampled (DESIGN.md §13).
///
/// The three modes share the struct-of-arrays [`DeviceStore`] and every
/// event handler; they differ only in the weekly evaluation pass and in
/// how build-time device lifetimes are drawn.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SamplingMode {
    /// One RNG draw per alive device per week — the original paper-scale
    /// path, bit-for-bit. All published golden digests are pinned under
    /// this mode; it remains the default.
    #[default]
    Legacy,
    /// Population-level aggregate sampling: one binomial draw per
    /// (arm × path cohort × week), shares distributed by device id, bulk
    /// wallet burns over the federated column, cohort order-statistic
    /// death times at build. The million-device path. Draws are pinned to
    /// entity ids (per-arm `"aggregate"` substream keyed by week and
    /// cohort), never loop order, so the CRN contract survives.
    Aggregate,
    /// A naive per-device implementation of the *aggregate* semantics —
    /// fresh participant scans, materialized rows, scalar wallet ops —
    /// kept as the exact-equality oracle the differential harness pins
    /// [`Aggregate`](Self::Aggregate) against. Feature-gated so
    /// production builds can strip it.
    #[cfg(feature = "reference-mode")]
    Reference,
}

/// Whole-simulation configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Master seed; every entity derives an independent stream from it.
    pub seed: u64,
    /// Simulation horizon.
    pub horizon: SimDuration,
    /// Experiment arms.
    pub arms: Vec<ArmConfig>,
    /// Device/gateway physical environment.
    pub env: bom::Environment,
    /// Weekly delivery sampling mode.
    pub sampling: SamplingMode,
}

impl FleetConfig {
    /// The paper's initial experiment: 10 devices per arm, 2 owned
    /// gateways, 4 audible hotspots, 50-year horizon.
    pub fn paper_experiment(seed: u64) -> Self {
        FleetConfig {
            seed,
            horizon: SimDuration::from_years(50),
            arms: vec![
                ArmConfig::paper_owned_154(10, 2),
                ArmConfig::paper_helium(10, 4),
            ],
            env: bom::Environment::default(),
            sampling: SamplingMode::Legacy,
        }
    }

    /// Returns the configuration with its sampling mode replaced.
    pub fn with_sampling(mut self, sampling: SamplingMode) -> Self {
        self.sampling = sampling;
        self
    }
}

/// Simulation events (public because the `World` impl exposes the type;
/// construct them only through [`FleetSim::build`]).
#[derive(Clone, Copy, Debug)]
#[doc(hidden)]
pub enum Ev {
    /// Per-week end-to-end evaluation.
    WeeklyCheck,
    /// Yearly hotspot/upkeep tick.
    YearlyTick,
    /// Device hardware failure: `(arm, device)`.
    DeviceFail(usize, usize),
    /// Device replacement arrives: `(arm, device)`.
    DeviceReplace(usize, usize),
    /// Gateway hardware failure: `(arm, gateway)`.
    GatewayFail(usize, usize),
    /// Gateway repaired: `(arm, gateway)`.
    GatewayRepair(usize, usize),
    /// The arm's backhaul provider exits the business: `(arm)`.
    ProviderExit(usize),
    /// Replacement backhaul commissioned after a provider exit: `(arm)`.
    BackhaulMigrated(usize),
}

impl Ev {
    /// The global arm index this event is scoped to, or `None` for the
    /// fleet-wide tick chains ([`Ev::WeeklyCheck`], [`Ev::YearlyTick`])
    /// that every shard replays locally. The shard router
    /// ([`FleetSim::split_for_shards`]) uses this to deliver each primed
    /// event to the one shard that owns its arm.
    pub(crate) fn arm(&self) -> Option<usize> {
        match *self {
            Ev::WeeklyCheck | Ev::YearlyTick => None,
            Ev::DeviceFail(ai, _)
            | Ev::DeviceReplace(ai, _)
            | Ev::GatewayFail(ai, _)
            | Ev::GatewayRepair(ai, _)
            | Ev::ProviderExit(ai)
            | Ev::BackhaulMigrated(ai) => Some(ai),
        }
    }
}

/// Live infrastructure state of an arm.
pub(crate) enum ArmInfra {
    Owned {
        gateways: Vec<GatewayState>,
        /// True while the backhaul provider is gone and the replacement is
        /// not yet commissioned (§3.3.3 continuity risk).
        backhaul_down: bool,
        /// Whether the technology-sunset incident has been logged.
        sunset_logged: bool,
        /// Chaos: the backhaul link is flapping/offline until this time.
        flap_until: SimTime,
    },
    Federated {
        hotspots: HotspotPopulation,
        /// Per-device prepaid wallets, laid out column-wise so the weekly
        /// bulk burn touches only the balance columns.
        wallets: WalletColumn,
        /// Chaos: a regional outage blacks out every hotspot until this
        /// time.
        dark_until: SimTime,
    },
}

/// Per-arm accumulated results.
#[derive(Clone, Debug, Default)]
pub struct ArmReport {
    /// Arm display name.
    pub name: &'static str,
    /// Weeks in which at least one reading reached the endpoint.
    pub weeks_up: u64,
    /// Total weeks evaluated.
    pub weeks_total: u64,
    /// Readings delivered end-to-end.
    pub readings_delivered: u64,
    /// Readings expected (devices × reports, regardless of state).
    pub readings_expected: u64,
    /// Device hardware failures observed.
    pub device_failures: u64,
    /// Device replacements performed.
    pub device_replacements: u64,
    /// Gateway repairs performed.
    pub gateway_repairs: u64,
    /// Backhaul provider exits survived (replacement commissioned).
    pub backhaul_migrations: u64,
    /// Field labor spent on this arm.
    pub labor: PersonHours,
    /// Money spent on this arm (hardware, wallets, truck rolls).
    pub spend: Usd,
    /// Devices whose wallets exhausted (federated arm).
    pub wallets_exhausted: u64,
    /// Chaos faults injected into this arm (zero outside chaos runs).
    pub faults_injected: u64,
    /// Per-incarnation device lifetimes in years: failures observed during
    /// the run plus right-censored survivors at the horizon — ready for
    /// [`simcore::survival::KaplanMeier`] or `reliability::fit`.
    pub lifetime_observations: Vec<Observation>,
}

impl ArmReport {
    /// The paper's end-to-end uptime metric: fraction of weeks with data.
    pub fn uptime(&self) -> f64 {
        if self.weeks_total == 0 {
            return 0.0;
        }
        self.weeks_up as f64 / self.weeks_total as f64
    }

    /// Fraction of expected readings that arrived.
    pub fn data_yield(&self) -> f64 {
        if self.readings_expected == 0 {
            return 0.0;
        }
        self.readings_delivered as f64 / self.readings_expected as f64
    }
}

/// Full simulation output.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-arm results, in configuration order.
    pub arms: Vec<ArmReport>,
    /// The experiment diary (§4.5).
    pub diary: Diary,
    /// Events processed by the engine.
    pub events_processed: u64,
    /// Engine profiling: per-kind dispatch counts, queue high-water mark,
    /// wall-clock timing. Excluded from [`digest`](FleetReport::digest) —
    /// wall-clock varies run to run.
    pub profile: EngineProfile,
    /// Final metric snapshot, name-sorted.
    pub metrics: Snapshot,
    /// Recorded sim-time spans (e.g. backhaul outages), in open order.
    pub spans: Vec<Span>,
}

impl FleetReport {
    /// The deterministic run digest: a 64-bit fold of everything the
    /// simulation *did* — ordered diary, spans, per-arm ledgers, the
    /// metric snapshot and the event count. Same seed + same code ⇒ same
    /// digest, serial or parallel; wall-clock profiling is excluded by
    /// contract. The golden-trace regression suite pins these values.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_str("century-fleet-digest-v1");
        d.write_u64(self.events_processed);
        d.fold_diary(&self.diary);
        d.write_u64(self.arms.len() as u64);
        for arm in &self.arms {
            d.write_str(arm.name);
            for v in [
                arm.weeks_up,
                arm.weeks_total,
                arm.readings_delivered,
                arm.readings_expected,
                arm.device_failures,
                arm.device_replacements,
                arm.gateway_repairs,
                arm.backhaul_migrations,
                arm.wallets_exhausted,
                arm.faults_injected,
            ] {
                d.write_u64(v);
            }
            d.write_f64(arm.labor.hours());
            d.write_i128(arm.spend.micros());
            d.write_u64(arm.lifetime_observations.len() as u64);
            for o in &arm.lifetime_observations {
                d.write_f64(o.time);
                d.write_u8(u8::from(o.event));
            }
        }
        d.fold_spans(&self.spans);
        d.fold_snapshot(&self.metrics);
        d.finish()
    }

    /// Exports the run as JSON Lines: diary events, then spans, then the
    /// metric snapshot — one self-describing object per line.
    pub fn export_jsonl(&self) -> String {
        let mut out = telemetry::jsonl::diary_to_jsonl(&self.diary);
        out.push_str(&telemetry::jsonl::spans_to_jsonl(&self.spans));
        out.push_str(&telemetry::jsonl::snapshot_to_jsonl(&self.metrics));
        out
    }
}

pub(crate) struct ArmState {
    /// Global arm index — the arm's position in `FleetConfig::arms`. A
    /// shard world owns an ascending *subset* of arms but keeps their
    /// global ids, so events (which carry global indices) and rng-stream
    /// derivations are identical to the serial run.
    pub(crate) id: usize,
    pub(crate) cfg: ArmConfig,
    /// The device population as struct-of-arrays columns, including the
    /// home-gateway lottery and the path-cohort decomposition.
    pub(crate) store: DeviceStore,
    pub(crate) infra: ArmInfra,
    pub(crate) report: ArmReport,
    /// The arm's private runtime stream: weekly draws, replacements and
    /// hotspot churn never touch another arm's randomness, so adding an
    /// arm to a configuration cannot perturb existing arms (the
    /// common-random-numbers property DESIGN.md calls out).
    pub(crate) rng: Rng,
    /// Root of the aggregate path's weekly cohort substreams:
    /// `agg_root.split("week", t).split("cohort", c)` is a pure function
    /// of (seed, arm, week, cohort), never of loop order or event
    /// history, so chaos cannot shift any other cohort's draws. Derived
    /// at build (`arm_rng.split("aggregate", 0)`), not snapshotted — the
    /// resume skeleton rebuilds it bit-identically from the config.
    pub(crate) agg_root: Rng,
    /// The arm's private diary. Every diary line the simulation writes is
    /// arm-scoped, so each arm logs into its own stream and finalize
    /// performs one canonical merge: stable by time, ties in ascending
    /// global-arm-id order. Serial and sharded runs share that merge, so
    /// the merged diary — and therefore the run digest — is bit-identical
    /// by construction, not by scheduling accident.
    pub(crate) diary: Diary,
    /// The arm's private span log (same ownership argument as `diary`).
    pub(crate) spans: SpanLog,
    /// Telemetry: readings delivered end-to-end (mirrors the report field
    /// so the snapshot cross-checks the ledger). Settled once at finalize
    /// from the report ledger rather than bumped mid-run.
    pub(crate) delivered: Counter,
    /// Telemetry: distribution of per-device delivered readings per week.
    pub(crate) weekly_hist: Histogram,
    /// Hot-loop buffer for `weekly_hist`: ~50k observations per 50-year
    /// run accumulate here without atomics and flush once at finalize,
    /// keeping instrumentation inside the profiling overhead budget.
    pub(crate) weekly_acc: LocalHistogram,
    /// Telemetry: the open backhaul-outage span, between a provider exit
    /// and the replacement commissioning.
    pub(crate) outage_span: Option<SpanId>,
}

/// The simulation world.
///
/// A *serial* world owns every configured arm at its natural index. A
/// *shard* world (see [`crate::shard`]) owns an ascending subset of the
/// arms, shares the metric [`Registry`] with its sibling shards through
/// the `Arc`, and is merged back into a single report at the horizon.
pub struct FleetSim {
    pub(crate) cfg: FleetConfig,
    pub(crate) arms: Vec<ArmState>,
    pub(crate) cloud: CloudEndpoint,
    pub(crate) metrics: Arc<Registry>,
    pub(crate) chaos_applied: Counter,
    pub(crate) chaos_skipped: Counter,
}

/// The registry-free output of build phase 1 for one arm: a pure function
/// of `(config, arm index)`, computable on any thread
/// (see [`FleetSim::build_parallel`]).
struct ArmPlan {
    store: DeviceStore,
    infra: ArmInfra,
    report: ArmReport,
    /// The arm's primed events in canonical serial order:
    /// device failures (ascending id), provider exit, gateway failures.
    initial: Vec<(SimTime, Ev)>,
    rng: Rng,
    agg_root: Rng,
}

impl FleetSim {
    /// Builds the world and returns an engine primed with initial events.
    pub fn build(cfg: FleetConfig) -> Engine<FleetSim> {
        Self::build_with_queue(cfg, EventQueue::new())
    }

    /// [`build`](Self::build) reusing the allocations of a queue from a
    /// previous run (see [`Engine::new_with_queue`]) — the replicate-worker
    /// fast path. Event order, and therefore the run digest, is identical
    /// to a fresh build.
    pub fn build_with_queue(cfg: FleetConfig, queue: EventQueue<Ev>) -> Engine<FleetSim> {
        let plans = (0..cfg.arms.len()).map(|ai| Self::plan_arm(&cfg, ai)).collect();
        Self::assemble(cfg, plans, queue)
    }

    /// [`build`](Self::build) with the per-arm deployment planning —
    /// lifetime sampling, gateway deploys, the coverage lottery — fanned
    /// out over scoped worker threads.
    ///
    /// Bit-identical to the serial build: phase 1 ([`plan_arm`]) is a
    /// pure function of `(seed, arm index, config)` with no shared state,
    /// so computing plans concurrently changes nothing; phase 2
    /// ([`assemble`]) runs serially on the calling thread and registers
    /// metrics, merges the priming events, and primes the queue in exactly
    /// the serial order. At 1M devices the plan phase (order-statistic
    /// lifetimes per arm) dominates build time, which is what was
    /// Amdahl-capping the sharded sweep.
    ///
    /// [`plan_arm`]: Self::plan_arm
    /// [`assemble`]: Self::assemble
    pub fn build_parallel(cfg: FleetConfig) -> Engine<FleetSim> {
        let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        Self::build_parallel_with(cfg, workers)
    }

    /// [`build_parallel`](Self::build_parallel) with an explicit worker
    /// count. The sharded runner passes its shard count here: a container
    /// whose cgroup quota reports one core still runs `k` shard threads,
    /// so the plan phase should fan out just as wide.
    pub fn build_parallel_with(cfg: FleetConfig, workers: usize) -> Engine<FleetSim> {
        let n = cfg.arms.len();
        let workers = workers.min(n.max(1));
        if workers <= 1 {
            return Self::build(cfg);
        }
        let mut plans: Vec<Option<ArmPlan>> = (0..n).map(|_| None).collect();
        let chunk = n.div_ceil(workers);
        std::thread::scope(|s| {
            for (w, slots) in plans.chunks_mut(chunk).enumerate() {
                let cfg = &cfg;
                s.spawn(move || {
                    for (off, slot) in slots.iter_mut().enumerate() {
                        *slot = Some(FleetSim::plan_arm(cfg, w * chunk + off));
                    }
                });
            }
        });
        let plans = plans.into_iter().flatten().collect();
        Self::assemble(cfg, plans, EventQueue::new())
    }

    /// Phase 1 of the build: everything about arm `ai` that is a pure
    /// function of the configuration — device lifetimes, infrastructure
    /// deploys, the coverage lottery, initial spend, and the arm's primed
    /// events (in the canonical device → provider → gateway order). No
    /// registry or queue access, so arms can be planned concurrently
    /// ([`build_parallel`](Self::build_parallel)) with a bit-identical
    /// result.
    fn plan_arm(cfg: &FleetConfig, ai: usize) -> ArmPlan {
        let arm_cfg = &cfg.arms[ai];
        let root = Rng::seed_from(cfg.seed);
        let arm_rng = root.split("arm", ai as u64);
        let mut initial: Vec<(SimTime, Ev)> = Vec::new();
        // Device lifetimes. Legacy samples per device from the device's
        // own substream (the original event-path contract the paper-scale
        // goldens pin); the cohort modes pre-sample the whole arm's
        // lifetimes as order statistics in O(n) from one "deaths" stream.
        let fails: Vec<SimTime> = match cfg.sampling {
            SamplingMode::Legacy => (0..arm_cfg.devices)
                .map(|di| {
                    let mut drng = arm_rng.split("device", di as u64);
                    DeviceState::deploy(arm_cfg.device_spec, SimTime::ZERO, &cfg.env, &mut drng)
                        .fails_at
                })
                .collect(),
            _ => Self::cohort_death_times(cfg, arm_cfg, &arm_rng),
        };
        for (di, &at) in fails.iter().enumerate() {
            if at.as_secs() < cfg.horizon.as_secs() {
                initial.push((at, Ev::DeviceFail(ai, di)));
            }
        }
        // Infrastructure.
        // §3.3.3: the provider may terminate service within the horizon.
        if let ArmKind::Owned { spec, .. } = &arm_cfg.kind {
            let mut prng = arm_rng.split("provider", 0);
            let exit = SimDuration::from_years_f64(spec.provider.sample_exit_years(&mut prng));
            if exit.as_secs() < cfg.horizon.as_secs() {
                initial.push((SimTime::ZERO + exit, Ev::ProviderExit(ai)));
            }
        }
        let infra = match &arm_cfg.kind {
            ArmKind::Owned { gateways, spec } => {
                let mut gws = Vec::with_capacity(*gateways);
                for gi in 0..*gateways {
                    let mut grng = arm_rng.split("gateway", gi as u64);
                    let gw = GatewayState::deploy(*spec, SimTime::ZERO, &cfg.env, &mut grng);
                    if gw.fails_at.as_secs() < cfg.horizon.as_secs() {
                        initial.push((gw.fails_at, Ev::GatewayFail(ai, gi)));
                    }
                    gws.push(gw);
                }
                ArmInfra::Owned {
                    gateways: gws,
                    backhaul_down: false,
                    sunset_logged: false,
                    flap_until: SimTime::ZERO,
                }
            }
            ArmKind::Federated { hotspots, wallet_dollars } => ArmInfra::Federated {
                hotspots: hotspots.clone(),
                wallets: WalletColumn::provision_uniform(arm_cfg.devices, *wallet_dollars),
                dark_until: SimTime::ZERO,
            },
        };
        // Figure 1: each device relies on one or two gateways.
        let mut home_rng = arm_rng.split("homes", 0);
        let homes: Vec<Vec<usize>> = match &arm_cfg.kind {
            ArmKind::Owned { gateways, .. } if *gateways > 0 => (0..arm_cfg.devices)
                .map(|_| {
                    let first = home_rng.next_below(*gateways as u64) as usize;
                    if *gateways > 1 && home_rng.chance(arm_cfg.dual_homed_fraction) {
                        let mut second = home_rng.next_below(*gateways as u64 - 1) as usize;
                        if second >= first {
                            second += 1;
                        }
                        vec![first, second]
                    } else {
                        vec![first]
                    }
                })
                .collect(),
            _ => vec![Vec::new(); arm_cfg.devices],
        };
        let store = DeviceStore::build(arm_cfg.device_spec, fails, homes);
        let mut report = ArmReport { name: arm_cfg.name, ..ArmReport::default() };
        // Initial spend: device hardware + wallets + gateway hardware.
        let device_cost = Usd::from_dollars(80) * arm_cfg.devices as i64;
        report.spend += device_cost;
        match &arm_cfg.kind {
            ArmKind::Owned { gateways, .. } => {
                report.spend += Usd::from_dollars(150) * *gateways as i64;
            }
            ArmKind::Federated { wallet_dollars, .. } => {
                report.spend += *wallet_dollars * arm_cfg.devices as i64;
            }
        }
        ArmPlan {
            store,
            infra,
            report,
            initial,
            rng: arm_rng.split("runtime", 0),
            agg_root: arm_rng.split("aggregate", 0),
        }
    }

    /// Cohort-mode device lifetimes for one arm: `n` sorted uniforms
    /// (exponential spacings, O(n)) mapped through a numeric inverse of
    /// the archetype's closed-form survival product. Device `i` receives
    /// the `i`-th order statistic — exchangeable with `n` independent
    /// draws for every arm-level summary statistic, and two orders of
    /// magnitude cheaper than a million `sample_ttf` min-of-three calls.
    fn cohort_death_times(cfg: &FleetConfig, arm_cfg: &ArmConfig, arm_rng: &Rng) -> Vec<SimTime> {
        let block = match arm_cfg.device_spec.energy {
            EnergySystem::Harvesting => bom::harvesting_node(&cfg.env),
            EnergySystem::Battery => bom::battery_node(&cfg.env),
        };
        // Tabulate past the horizon: clamped mass beyond t_max belongs to
        // devices that outlive the run either way.
        let t_max = 200.0_f64.max(cfg.horizon.as_years_f64() * 2.0);
        #[allow(clippy::expect_used)]
        let table = InverseCdf::tabulate(|t| 1.0 - block.survival(t), t_max, 4096)
            // simlint: allow(P001, the survival product is finite and non-increasing by construction)
            .expect("lifetime CDF is finite and monotone");
        let mut death_rng = arm_rng.split("deaths", 0);
        sorted_uniforms(arm_cfg.devices, &mut death_rng)
            .into_iter()
            .map(|u| SimTime::ZERO.saturating_add(SimDuration::from_years_f64(table.invert(u))))
            .collect()
    }

    /// Phase 2 of the build: serial assembly of planned arms into the
    /// world — metric registration (in arm order, so the registry is
    /// identical to the serial build's), diary creation, and queue
    /// priming in the canonical serial order.
    fn assemble(cfg: FleetConfig, plans: Vec<ArmPlan>, queue: EventQueue<Ev>) -> Engine<FleetSim> {
        let root = Rng::seed_from(cfg.seed);
        let metrics = Arc::new(Registry::new());
        // Chaos counters are pre-registered (at zero) in *every* run, so a
        // zero-fault chaos run snapshots — and therefore digests —
        // identically to a plain run.
        #[allow(clippy::expect_used)]
        // simlint: allow(P001, fresh registry; fixed names cannot collide)
        let chaos_applied = metrics.counter("chaos.applied").expect("fresh registry");
        #[allow(clippy::expect_used)]
        // simlint: allow(P001, fresh registry; fixed names cannot collide)
        let chaos_skipped = metrics.counter("chaos.skipped").expect("fresh registry");

        let mut arms = Vec::with_capacity(plans.len());
        let mut initial_failures: Vec<(SimTime, Ev)> = Vec::new();
        for (ai, plan) in plans.into_iter().enumerate() {
            let arm_cfg = &cfg.arms[ai];
            initial_failures.extend(plan.initial);
            let mut arm_diary = Diary::new();
            arm_diary.log(
                SimTime::ZERO,
                Severity::Info,
                Tier::System,
                format!("arm '{}' deployed: {} devices", arm_cfg.name, arm_cfg.devices),
            );
            // Per-arm metric handles; the index prefix makes names unique
            // even if two arms share a display name.
            #[allow(clippy::expect_used)]
            let delivered = metrics
                .counter(&format!("fleet.arm{ai}.{}.readings_delivered", arm_cfg.name))
                // simlint: allow(P001, the arm-index prefix makes the name unique)
                .expect("index-prefixed names are unique");
            #[allow(clippy::expect_used)]
            // simlint: allow(P001, constant bucket layout; infallible by construction)
            let weekly_buckets = Buckets::linear(0.0, 24.0, 7).expect("static bucket layout");
            #[allow(clippy::expect_used)]
            let weekly_hist = metrics
                .histogram(
                    &format!("fleet.arm{ai}.{}.weekly_deliveries", arm_cfg.name),
                    weekly_buckets.clone(),
                )
                // simlint: allow(P001, the arm-index prefix makes the name unique)
                .expect("index-prefixed names are unique");
            let weekly_acc = LocalHistogram::new(weekly_buckets);
            arms.push(ArmState {
                id: ai,
                cfg: arm_cfg.clone(),
                store: plan.store,
                infra: plan.infra,
                report: plan.report,
                rng: plan.rng,
                agg_root: plan.agg_root,
                diary: arm_diary,
                spans: SpanLog::new(),
                delivered,
                weekly_hist,
                weekly_acc,
                outage_span: None,
            });
        }

        let mut cloud_rng = root.split("cloud", 0);
        let cloud = CloudEndpoint::paper_default(cfg.horizon, &mut cloud_rng);

        let world = FleetSim { cfg, arms, cloud, metrics, chaos_applied, chaos_skipped };
        let mut engine = Engine::new_with_queue(world, queue);
        // Batch-schedule the priming events in the exact order the serial
        // schedule_at calls used — FIFO sequence numbers are assigned in
        // iteration order, so run digests are unchanged.
        let mut ids = Vec::new();
        engine.schedule_many(
            [
                (SimTime::ZERO + SimDuration::from_weeks(1), Ev::WeeklyCheck),
                (SimTime::ZERO + SimDuration::from_years(1), Ev::YearlyTick),
            ]
            .into_iter()
            .chain(initial_failures),
            &mut ids,
        );
        engine
    }

    /// Runs the configured experiment to its horizon and returns the report.
    pub fn run(cfg: FleetConfig) -> FleetReport {
        Self::run_with_queue(cfg, EventQueue::new()).0
    }

    /// [`run`](Self::run) reusing a queue from a previous replicate and
    /// handing the queue back for the next one. Replicate drivers loop
    /// this to amortise queue allocations across seeds; the report is
    /// bit-identical to [`run`](Self::run).
    pub fn run_with_queue(cfg: FleetConfig, queue: EventQueue<Ev>) -> (FleetReport, EventQueue<Ev>) {
        let horizon = SimTime::ZERO + cfg.horizon;
        let mut engine = Self::build_with_queue(cfg, queue);
        engine.run_until(horizon);
        Self::into_report_recycling(engine, horizon)
    }

    /// Finalizes a finished engine into a [`FleetReport`]: right-censors
    /// the survivors and collects the per-arm ledgers. Shared by [`run`]
    /// and external drivers (fault injection wraps the engine itself, then
    /// finalizes through the same path so reports stay structurally
    /// identical).
    ///
    /// [`run`]: FleetSim::run
    pub fn into_report(engine: Engine<FleetSim>, horizon: SimTime) -> FleetReport {
        Self::into_report_recycling(engine, horizon).0
    }

    /// [`into_report`](Self::into_report), additionally returning the
    /// engine's event queue so the caller can recycle its allocations
    /// into the next replicate via
    /// [`build_with_queue`](Self::build_with_queue).
    pub fn into_report_recycling(
        engine: Engine<FleetSim>,
        horizon: SimTime,
    ) -> (FleetReport, EventQueue<Ev>) {
        let events = engine.events_processed();
        let profile = engine.profile().clone();
        let (world, queue) = engine.into_parts();
        (world.finalize(events, profile, horizon), queue)
    }

    /// The one finalize path every runner — serial, hooked, sharded —
    /// funnels through: right-censors survivors, settles the deferred
    /// per-arm metrics, and performs the canonical merge of the per-arm
    /// diaries and span logs (stable by time, ties in ascending global
    /// arm id). Because the merge order is a pure function of per-arm
    /// streams, a sharded run that reproduced each arm's stream exactly
    /// produces a bit-identical report here.
    pub(crate) fn finalize(
        mut self,
        events: u64,
        profile: EngineProfile,
        horizon: SimTime,
    ) -> FleetReport {
        // Arms in ascending global id: the identity for serial worlds,
        // and the merge order for arms regrouped from shards.
        self.arms.sort_by_key(|a| a.id);
        // Right-censor the survivors at the horizon.
        for arm in &mut self.arms {
            for di in 0..arm.store.len() {
                if arm.store.alive_at(di, horizon) {
                    arm.report
                        .lifetime_observations
                        .push(Observation::censored(arm.store.age_at(di, horizon).as_years_f64()));
                }
            }
        }
        // Settle the per-arm delivery metrics the hot loop deferred: the
        // counter from the report ledger, the histogram from its local
        // accumulator. Local f64 accumulation starting from 0.0 matches
        // the sequential atomic-add order bit-for-bit, so digests are
        // unchanged by the batching.
        for arm in &mut self.arms {
            arm.delivered.add(arm.report.readings_delivered);
            let flushed = arm.weekly_acc.flush_into(&arm.weekly_hist);
            debug_assert!(flushed, "accumulator layout matches by construction");
        }
        // Canonical merge. `Diary::extend` re-sorts stably by time, so
        // same-second entries from different arms always come out in
        // ascending arm order — regardless of which order the serial
        // event loop (or which shard) happened to write them in.
        let mut diary = Diary::new();
        let mut spans: Vec<Span> = Vec::new();
        for arm in &mut self.arms {
            diary.extend(core::mem::take(&mut arm.diary));
            spans.extend(arm.spans.spans().iter().cloned());
        }
        spans.sort_by_key(|s| s.start);
        let metrics = self.metrics.snapshot();
        FleetReport {
            arms: self.arms.into_iter().map(|a| a.report).collect(),
            diary,
            events_processed: events,
            profile,
            metrics,
            spans,
        }
    }

    /// Restores a mid-run simulation from the snapshot file at `path`
    /// (see [`crate::snapshot`]). `cfg` must be the configuration the
    /// snapshot was taken under; the rebuilt world is positioned exactly
    /// at the checkpoint instant.
    ///
    /// # Errors
    ///
    /// Fail-closed [`simcore::snapshot::SnapshotError`] on any I/O,
    /// framing, checksum, or configuration defect.
    pub fn resume_from(
        path: &std::path::Path,
        cfg: FleetConfig,
    ) -> Result<crate::snapshot::ResumedFleet, simcore::snapshot::SnapshotError> {
        crate::snapshot::resume_from(path, cfg)
    }

    /// Event kinds every shard replays locally instead of owning: the
    /// fleet-wide tick chains. [`merge_shards`](Self::merge_shards) must
    /// not sum their dispatch counts across shards — shard 0's copy is the
    /// canonical one — so the merged profile (and `events_processed`)
    /// matches the serial run exactly.
    pub(crate) const DUPLICATED_KINDS: &'static [&'static str] = &["weekly-check", "yearly-tick"];

    /// Splits a freshly built (primed, not yet run) engine into one engine
    /// per shard group.
    ///
    /// `groups[si]` lists the global arm ids shard `si` owns; every arm
    /// must appear in exactly one group and groups must be non-empty. The
    /// split preserves determinism in three ways:
    ///
    /// 1. **Arms** move whole (with their private rng/diary/spans) into
    ///    their owner shard, keeping ascending-id order within the shard,
    ///    so each arm's random stream is untouched.
    /// 2. **Primed events** are drained from the serial queue in its
    ///    (time, FIFO) pop order and re-scheduled into the owner shard's
    ///    queue in that same order — relative order among a shard's events
    ///    is exactly the serial order. Tick-chain events ([`Ev::arm`] =
    ///    `None`) are cloned into every shard so each shard evaluates its
    ///    own arms weekly.
    /// 3. **Shared telemetry**: all shards keep handles to the same
    ///    [`Registry`] through the `Arc`; counter increments are atomic
    ///    adds, which commute, and histogram flushes happen per-arm at
    ///    finalize — so the merged snapshot is order-independent.
    pub(crate) fn split_for_shards(
        engine: Engine<FleetSim>,
        groups: &[Vec<usize>],
    ) -> Vec<Engine<FleetSim>> {
        let (world, mut queue) = engine.into_parts();
        let FleetSim { cfg, arms, cloud, metrics, chaos_applied, chaos_skipped } = world;
        // Owner map: global arm id -> shard slot.
        let mut owner = vec![0usize; arms.len()];
        for (si, group) in groups.iter().enumerate() {
            for &ai in group {
                owner[ai] = si;
            }
        }
        // Partition arms, preserving ascending-id order within each shard.
        let mut shard_arms: Vec<Vec<ArmState>> = (0..groups.len()).map(|_| Vec::new()).collect();
        for arm in arms {
            shard_arms[owner[arm.id]].push(arm);
        }
        // Route the primed events in serial (time, FIFO) pop order.
        let mut shard_events: Vec<Vec<(SimTime, Ev)>> =
            (0..groups.len()).map(|_| Vec::new()).collect();
        while let Some((at, ev)) = queue.pop() {
            match ev.arm() {
                Some(ai) => shard_events[owner[ai]].push((at, ev)),
                None => {
                    for events in &mut shard_events {
                        events.push((at, ev));
                    }
                }
            }
        }
        let mut engines = Vec::with_capacity(groups.len());
        let mut ids = Vec::new();
        for (si, arms) in shard_arms.into_iter().enumerate() {
            let world = FleetSim {
                cfg: cfg.clone(),
                arms,
                cloud: cloud.clone(),
                metrics: Arc::clone(&metrics),
                chaos_applied: chaos_applied.clone(),
                chaos_skipped: chaos_skipped.clone(),
            };
            let mut engine = Engine::new(world);
            ids.clear();
            engine.schedule_many(shard_events[si].drain(..), &mut ids);
            engines.push(engine);
        }
        engines
    }

    /// Merges finished shard engines (in shard-index order) back into one
    /// [`FleetReport`], bit-identical to the serial report.
    ///
    /// Arms are regrouped and [`finalize`](Self::finalize) re-sorts them
    /// into ascending global-id order, so the canonical diary/span merge
    /// and the per-arm ledgers come out exactly as a serial run's would.
    /// Profiles fold via [`EngineProfile::absorb_shard`]: per-arm event
    /// kinds sum (each is owned by one shard), the replayed tick chains
    /// ([`DUPLICATED_KINDS`](Self::DUPLICATED_KINDS)) keep shard 0's
    /// canonical count, and `events_processed` is recomputed from the
    /// merged dispatch counts. Returns `None` only for an empty input.
    ///
    /// Shard profiles fold onto `base` — the dispatch counts a resumed
    /// run accrued *before* its checkpoint, which
    /// [`split_for_shards`](Self::split_for_shards) discards (shard
    /// engines start with fresh profiles). Fresh runs pass a default
    /// base; resumed sharded runs pass the restored serial profile so
    /// `events_processed` still matches the uninterrupted serial run
    /// exactly.
    pub(crate) fn merge_shards_onto(
        base: EngineProfile,
        engines: Vec<Engine<FleetSim>>,
        horizon: SimTime,
    ) -> Option<FleetReport> {
        let mut engines = engines.into_iter();
        let first = engines.next()?;
        let mut profile = base;
        // The first shard absorbs with nothing deduplicated: its tick
        // chains are the canonical copies.
        profile.absorb_shard(first.profile(), &[]);
        let (mut world, _queue) = first.into_parts();
        for engine in engines {
            profile.absorb_shard(engine.profile(), Self::DUPLICATED_KINDS);
            let (shard_world, _queue) = engine.into_parts();
            world.arms.extend(shard_world.arms);
        }
        let events = profile.total_dispatched();
        Some(world.finalize(events, profile, horizon))
    }

    /// Runs the configured experiment split across `shards` worker
    /// threads. The report — and therefore its run digest — is
    /// bit-identical to [`run`](Self::run) for every seed and every shard
    /// count; see [`crate::shard`] for the partitioner and the argument.
    ///
    /// # Errors
    ///
    /// Returns [`crate::shard::ShardError::ZeroShards`] when `shards == 0`.
    pub fn run_sharded(
        cfg: FleetConfig,
        shards: usize,
    ) -> Result<FleetReport, crate::shard::ShardError> {
        crate::shard::run_sharded(cfg, shards)
    }

    /// Evaluates one week for one arm: delivers readings, burns credits,
    /// and updates the uptime ledger. Dispatches on the configured
    /// [`SamplingMode`]; all three paths share the event handlers, the
    /// store, and the ledger shape.
    fn weekly_eval(&mut self, li: usize, now: SimTime) {
        match self.cfg.sampling {
            SamplingMode::Legacy => self.weekly_eval_legacy(li, now),
            SamplingMode::Aggregate => self.weekly_eval_cohort(li, now),
            #[cfg(feature = "reference-mode")]
            SamplingMode::Reference => self.weekly_eval_reference(li, now),
        }
    }

    /// The original per-device weekly pass, bit-for-bit (the paper-scale
    /// goldens pin its digests), now reading the SoA store.
    ///
    /// **Common-random-numbers discipline:** exactly one normal draw is
    /// consumed per *alive* device per week, whether or not the path is up.
    /// Path state (cloud, backhaul, gateways, hotspots, chaos injections)
    /// only scales the per-packet probability the draw is applied to, so a
    /// fault schedule can never shift another entity's random stream — the
    /// property the metamorphic monotonicity tests depend on.
    fn weekly_eval_legacy(&mut self, li: usize, now: SimTime) {
        let cloud_up = self.cloud.up_at(now);
        let arm = &mut self.arms[li];
        let reports = arm.cfg.device_spec.reports_per_week();
        arm.report.weeks_total += 1;
        arm.report.readings_expected += reports * arm.cfg.devices as u64;
        // Arm-level infrastructure state (chaos-aware).
        let federated_prob = match &arm.infra {
            ArmInfra::Owned { .. } => None,
            ArmInfra::Federated { hotspots, dark_until, .. } => {
                let p = if now < *dark_until {
                    0.0
                } else {
                    hotspots.delivery_probability(arm.cfg.per_packet_delivery)
                };
                Some(p)
            }
        };
        let owned_backhaul_up = match &arm.infra {
            ArmInfra::Owned { backhaul_down, flap_until, .. } => {
                !*backhaul_down && now >= *flap_until
            }
            ArmInfra::Federated { .. } => true,
        };
        let mut any_delivered = false;
        for di in 0..arm.store.len() {
            if !arm.store.alive_at(di, now) {
                continue;
            }
            // One unconditional draw per alive device (CRN; see above).
            let z = simcore::dist::standard_normal(&mut arm.rng);
            // Expected deliveries this week for this device: Figure 1's
            // reliance structure — the device's own gateways must forward.
            let path_p = match (&arm.infra, federated_prob) {
                (ArmInfra::Owned { gateways, .. }, _) => {
                    let heard = arm
                        .store
                        .homes(di)
                        .iter()
                        .any(|&g| gateways.get(g).is_some_and(|gw| gw.forwarding_at(now)));
                    if heard && owned_backhaul_up {
                        arm.cfg.per_packet_delivery
                    } else {
                        0.0
                    }
                }
                (_, Some(p)) => p,
                _ => 0.0,
            };
            let p_packet = if !cloud_up || arm.store.stuck_at(di, now) {
                0.0
            } else {
                path_p * arm.cfg.device_spec.energy_availability
            };
            // Sample the delivered count with a normal approximation of the
            // binomial (reports is 168 for the paper cadence).
            let delivered = if p_packet <= 0.0 {
                0
            } else {
                let mean = reports as f64 * p_packet;
                let sd = (reports as f64 * p_packet * (1.0 - p_packet)).sqrt();
                (mean + sd * z).round().clamp(0.0, reports as f64) as u64
            };
            // Federated arm: credits burn per delivered packet.
            let delivered = match &mut arm.infra {
                ArmInfra::Federated { wallets, .. } => {
                    // O(1) bulk burn, semantically identical to burning
                    // per packet and stopping at the first failure.
                    let paid = wallets.burn_packets(
                        di,
                        now,
                        arm.cfg.device_spec.payload.len() as u32,
                        delivered,
                    );
                    if wallets.exhausted_at(di) == Some(now) {
                        arm.report.wallets_exhausted += 1;
                        arm.diary.log(
                            now,
                            Severity::Incident,
                            Tier::Backhaul,
                            format!("{}: device {di} data-credit wallet exhausted", arm.cfg.name),
                        );
                    }
                    paid
                }
                ArmInfra::Owned { .. } => delivered,
            };
            // A byzantine device transmits (and pays) as usual, but its
            // readings are garbage: nothing usable reaches the endpoint.
            let delivered = if arm.store.byzantine_at(di, now) { 0 } else { delivered };
            arm.weekly_acc.observe(delivered as f64);
            if delivered > 0 {
                any_delivered = true;
                arm.store.seq_add(di, delivered);
                arm.report.readings_delivered += delivered;
            }
        }
        if any_delivered {
            arm.report.weeks_up += 1;
        }
    }

    /// Per-cohort path probability this week, shared by the aggregate and
    /// reference passes: owned cohorts need any home gateway forwarding
    /// plus the backhaul up; federated cohorts ride the hotspot census
    /// (or a chaos blackout).
    fn cohort_path_probs(arm: &ArmState, now: SimTime) -> Vec<f64> {
        let ncoh = arm.store.cohort_count();
        match &arm.infra {
            ArmInfra::Owned { gateways, backhaul_down, flap_until, .. } => {
                let backhaul_up = !*backhaul_down && now >= *flap_until;
                (0..ncoh)
                    .map(|c| {
                        let heard = arm
                            .store
                            .cohort_homes(c)
                            .iter()
                            .any(|&g| gateways.get(g).is_some_and(|gw| gw.forwarding_at(now)));
                        if heard && backhaul_up {
                            arm.cfg.per_packet_delivery
                        } else {
                            0.0
                        }
                    })
                    .collect()
            }
            ArmInfra::Federated { hotspots, dark_until, .. } => {
                let p = if now < *dark_until {
                    0.0
                } else {
                    hotspots.delivery_probability(arm.cfg.per_packet_delivery)
                };
                vec![p; ncoh]
            }
        }
    }

    /// One binomial draw per cohort: the cohort's weekly delivered total
    /// over `participants × reports` trials, from the substream pinned to
    /// `(arm, week, cohort)`. Returns `(base, rem)` per cohort — every
    /// participant receives `base`, and the first `rem` participants in
    /// ascending device-id order receive one extra.
    fn cohort_totals(
        arm: &ArmState,
        now: SimTime,
        cloud_up: bool,
        probs: &[f64],
        participants: &[u64],
        reports: u64,
    ) -> (Vec<u64>, Vec<u64>) {
        let energy = arm.cfg.device_spec.energy_availability;
        let mut base = vec![0u64; probs.len()];
        let mut rem = vec![0u64; probs.len()];
        for (c, &p) in probs.iter().enumerate() {
            let pe = if cloud_up { p * energy } else { 0.0 };
            let trials = participants[c] * reports;
            if trials == 0 || pe <= 0.0 {
                continue;
            }
            let total = match Binomial::new(trials, pe) {
                Ok(b) => {
                    let mut crng =
                        arm.agg_root.split("week", now.as_secs()).split("cohort", c as u64);
                    b.sample(&mut crng)
                }
                Err(_) => 0,
            };
            base[c] = total / participants[c];
            rem[c] = total % participants[c];
        }
        (base, rem)
    }

    /// The aggregate weekly pass: one binomial draw per (cohort × week)
    /// instead of one normal draw per device, shares distributed in
    /// ascending device-id order, wallet burns against the federated
    /// column, and the weekly histogram fed by exact batched counts.
    ///
    /// Participation is the *flag* state (`present && !stuck`), which the
    /// incrementally-maintained cohort alive counts track event-exactly;
    /// the per-device reference pass recomputes the same sets naively, so
    /// the differential harness pins this pass's bookkeeping — cohort
    /// counters, stuck-index correction, bulk burns, `observe_n` — against
    /// a loop with none of it.
    fn weekly_eval_cohort(&mut self, li: usize, now: SimTime) {
        let cloud_up = self.cloud.up_at(now);
        let arm = &mut self.arms[li];
        let reports = arm.cfg.device_spec.reports_per_week();
        arm.report.weeks_total += 1;
        arm.report.readings_expected += reports * arm.cfg.devices as u64;
        let payload_len = arm.cfg.device_spec.payload.len() as u32;

        let probs = Self::cohort_path_probs(arm, now);
        let ncoh = probs.len();

        // Participants per cohort: the incremental alive counts minus the
        // currently-stuck present devices (corrected over the short
        // stuck-device index, not the population).
        let mut participants: Vec<u64> = (0..ncoh).map(|c| arm.store.cohort_alive(c)).collect();
        let mut stuck_present = 0u64;
        for i in 0..arm.store.stuck_ids().len() {
            let di = arm.store.stuck_ids()[i];
            if arm.store.present(di) && arm.store.stuck_at(di, now) {
                participants[arm.store.cohort_of(di)] -= 1;
                stuck_present += 1;
            }
        }

        let (base, rem) =
            Self::cohort_totals(arm, now, cloud_up, &probs, &participants, reports);

        // Owned arms with nobody stuck or byzantine: every participant's
        // delivered count *is* its share, so the histogram counts follow
        // arithmetically from (participants, base, rem) and the only
        // per-device work left is the sequence-counter update (snapshot
        // state). The general scan below stays the oracle-checked path
        // for federated wallets and active chaos.
        if stuck_present == 0
            && matches!(arm.infra, ArmInfra::Owned { .. })
            && !arm.store.any_byzantine_at(now)
        {
            let mut counts = vec![0u64; reports as usize + 1];
            let mut delivered_total = 0u64;
            for c in 0..ncoh {
                counts[base[c] as usize] += participants[c] - rem[c];
                if rem[c] > 0 {
                    counts[base[c] as usize + 1] += rem[c];
                }
                delivered_total += base[c] * participants[c] + rem[c];
            }
            if delivered_total > 0 {
                arm.store.seq_add_shares(&base, &rem);
                arm.report.readings_delivered += delivered_total;
                arm.report.weeks_up += 1;
            }
            for (v, &n) in counts.iter().enumerate() {
                if n > 0 {
                    arm.weekly_acc.observe_n(v as f64, n);
                }
            }
            return;
        }

        // Single O(n) scan in ascending device-id order: assign shares,
        // burn credits, accumulate exact per-value histogram counts.
        let mut rank = vec![0u64; ncoh];
        let mut value_counts = vec![0u64; reports as usize + 1];
        let mut any_delivered = false;
        for di in 0..arm.store.len() {
            if !arm.store.present(di) {
                continue;
            }
            if stuck_present > 0 && arm.store.stuck_at(di, now) {
                // A stuck device is alive but transmits nothing; it still
                // observes a zero week, exactly as the per-device paths do.
                value_counts[0] += 1;
                continue;
            }
            let c = arm.store.cohort_of(di);
            let share = base[c] + u64::from(rank[c] < rem[c]);
            rank[c] += 1;
            let delivered = match &mut arm.infra {
                ArmInfra::Federated { wallets, .. } => {
                    let paid = wallets.burn_packets(di, now, payload_len, share);
                    if wallets.exhausted_at(di) == Some(now) {
                        arm.report.wallets_exhausted += 1;
                        arm.diary.log(
                            now,
                            Severity::Incident,
                            Tier::Backhaul,
                            format!("{}: device {di} data-credit wallet exhausted", arm.cfg.name),
                        );
                    }
                    paid
                }
                ArmInfra::Owned { .. } => share,
            };
            // Byzantine devices transmit (and pay) but deliver garbage.
            let delivered = if arm.store.byzantine_at(di, now) { 0 } else { delivered };
            value_counts[delivered as usize] += 1;
            if delivered > 0 {
                any_delivered = true;
                arm.store.seq_add(di, delivered);
                arm.report.readings_delivered += delivered;
            }
        }
        // Batched histogram feed: every observed value is an integer
        // ≤ reports, so `observe_n` reproduces the per-device observe
        // sequence bit-for-bit regardless of batching order (see
        // `LocalHistogram::observe_n`).
        for (v, &n) in value_counts.iter().enumerate() {
            if n > 0 {
                arm.weekly_acc.observe_n(v as f64, n);
            }
        }
        if any_delivered {
            arm.report.weeks_up += 1;
        }
    }

    /// The reference weekly pass: identical *semantics* to
    /// [`weekly_eval_cohort`](Self::weekly_eval_cohort) — same cohort
    /// substreams, same binomial totals, same id-order share distribution
    /// — implemented the naive way: participants recounted by a fresh
    /// population scan, device rows materialized, wallets round-tripped
    /// through scalar [`Wallet`] ops, and the histogram observed one
    /// device at a time. Everything the aggregate pass does incrementally
    /// or in bulk, this pass does from first principles, so an exact
    /// digest match is a proof of the aggregate bookkeeping.
    #[cfg(feature = "reference-mode")]
    fn weekly_eval_reference(&mut self, li: usize, now: SimTime) {
        let cloud_up = self.cloud.up_at(now);
        let arm = &mut self.arms[li];
        let reports = arm.cfg.device_spec.reports_per_week();
        arm.report.weeks_total += 1;
        arm.report.readings_expected += reports * arm.cfg.devices as u64;
        let payload_len = arm.cfg.device_spec.payload.len() as u32;

        let probs = Self::cohort_path_probs(arm, now);
        let ncoh = probs.len();

        // Participants recounted from scratch (the oracle for the
        // aggregate pass's incremental counts + stuck-index correction).
        let mut participants = vec![0u64; ncoh];
        for di in 0..arm.store.len() {
            let dev = arm.store.row(di);
            if !dev.failed && !dev.stuck_at(now) {
                participants[arm.store.cohort_of(di)] += 1;
            }
        }

        let (base, rem) =
            Self::cohort_totals(arm, now, cloud_up, &probs, &participants, reports);

        let mut rank = vec![0u64; ncoh];
        let mut any_delivered = false;
        for di in 0..arm.store.len() {
            let dev = arm.store.row(di);
            if dev.failed {
                continue;
            }
            if dev.stuck_at(now) {
                arm.weekly_acc.observe(0.0);
                continue;
            }
            let c = arm.store.cohort_of(di);
            let share = base[c] + u64::from(rank[c] < rem[c]);
            rank[c] += 1;
            let delivered = match &mut arm.infra {
                ArmInfra::Federated { wallets, .. } => {
                    // Scalar wallet round-trip: materialize, burn via the
                    // per-wallet path, write back.
                    let Some(mut w) = wallets.get(di) else { continue };
                    let paid = w.burn_packets(now, payload_len, share);
                    wallets.set(di, &w);
                    if w.exhausted_at() == Some(now) {
                        arm.report.wallets_exhausted += 1;
                        arm.diary.log(
                            now,
                            Severity::Incident,
                            Tier::Backhaul,
                            format!("{}: device {di} data-credit wallet exhausted", arm.cfg.name),
                        );
                    }
                    paid
                }
                ArmInfra::Owned { .. } => share,
            };
            let delivered = if dev.byzantine_at(now) { 0 } else { delivered };
            arm.weekly_acc.observe(delivered as f64);
            if delivered > 0 {
                any_delivered = true;
                arm.store.seq_add(di, delivered);
                arm.report.readings_delivered += delivered;
            }
        }
        if any_delivered {
            arm.report.weeks_up += 1;
        }
    }

    /// Number of arms this world owns (fault planners size their targets
    /// by this; equal to the configured arm count for serial worlds).
    pub fn arm_count(&self) -> usize {
        self.arms.len()
    }

    /// Resolves a *global* arm index to this world's slot for it. Serial
    /// worlds are identity-indexed (the fast path); shard worlds own an
    /// ascending subset and fall back to a binary search on the stable
    /// global id. `None` means another shard owns the arm — or it never
    /// existed.
    fn local_slot(&self, ai: usize) -> Option<usize> {
        match self.arms.get(ai) {
            Some(arm) if arm.id == ai => Some(ai),
            _ => self.arms.binary_search_by_key(&ai, |a| a.id).ok(),
        }
    }

    /// Mutable access to the arm with *global* index `ai`, if owned.
    fn local_arm(&mut self, ai: usize) -> Option<&mut ArmState> {
        let li = self.local_slot(ai)?;
        self.arms.get_mut(li)
    }

    /// The run's live metric registry. Snapshot it (or finalize through
    /// [`FleetSim::into_report`]) to read values. Note: the per-arm
    /// delivery counter and weekly-deliveries histogram are batched in the
    /// hot loop and only settle at finalize, so mid-run snapshots show
    /// them at zero; chaos counters are always live.
    pub fn metrics(&self) -> &Registry {
        self.metrics.as_ref()
    }

    /// Records a chaos fault whose target did not exist — the injector's
    /// skipped path — so the metric snapshot ledgers both outcomes.
    pub fn note_chaos_skipped(&self) {
        self.chaos_skipped.inc();
    }

    /// Records one applied chaos fault: diary line + per-arm counter.
    /// Every injection funnels through here so "chaos:" grep-counts the
    /// applied faults exactly.
    fn chaos_log(applied: &Counter, arm: &mut ArmState, now: SimTime, tier: Tier, what: String) {
        applied.inc();
        arm.report.faults_injected += 1;
        arm.diary.log(
            now,
            Severity::Incident,
            tier,
            format!("{}: chaos: {what}", arm.cfg.name),
        );
    }

    /// Chaos: a correlated regional outage (storm, grid failure) takes the
    /// whole arm's coverage down until `now + duration` — every owned
    /// gateway is suppressed, or every hotspot goes dark. Returns whether
    /// the fault applied (arm exists).
    ///
    /// Injection draws no randomness: overlapping outages keep the latest
    /// end time, so fault schedules compose monotonically.
    pub fn inject_regional_outage(&mut self, ai: usize, now: SimTime, duration: SimDuration) -> bool {
        let until = now.saturating_add(duration);
        let applied = self.chaos_applied.clone();
        let Some(arm) = self.local_arm(ai) else { return false };
        match &mut arm.infra {
            ArmInfra::Owned { gateways, .. } => {
                for gw in gateways.iter_mut() {
                    gw.suppress_until(until);
                }
            }
            ArmInfra::Federated { dark_until, .. } => {
                *dark_until = (*dark_until).max(until);
            }
        }
        let days = duration.as_secs() / 86_400;
        Self::chaos_log(&applied, arm, now, Tier::Gateway, format!("regional outage, {days} days"));
        true
    }

    /// Chaos: the backhaul provider's link flaps out until `now +
    /// duration` (owned arms only; federated arms have no single backhaul
    /// to flap). Returns whether the fault applied.
    pub fn inject_backhaul_flap(&mut self, ai: usize, now: SimTime, duration: SimDuration) -> bool {
        let until = now.saturating_add(duration);
        let applied = self.chaos_applied.clone();
        let Some(arm) = self.local_arm(ai) else { return false };
        let ArmInfra::Owned { flap_until, .. } = &mut arm.infra else { return false };
        *flap_until = (*flap_until).max(until);
        let hours = duration.as_secs() / 3_600;
        Self::chaos_log(&applied, arm, now, Tier::Backhaul, format!("backhaul flapping, {hours} h"));
        true
    }

    /// Chaos: the backhaul provider sunsets service abruptly — no notice
    /// period, §3.3.2's revocable-medium risk — and the arm spends a
    /// quarter dark while an emergency replacement is commissioned (owned
    /// arms only). Returns whether the fault applied.
    pub fn inject_provider_sunset(&mut self, ai: usize, now: SimTime) -> bool {
        let until = now.saturating_add(SimDuration::from_weeks(13));
        let applied = self.chaos_applied.clone();
        let Some(arm) = self.local_arm(ai) else { return false };
        let ArmInfra::Owned { flap_until, .. } = &mut arm.infra else { return false };
        *flap_until = (*flap_until).max(until);
        Self::chaos_log(
            &applied,
            arm,
            now,
            Tier::Backhaul,
            "provider sunset without notice; emergency recommissioning".to_string(),
        );
        true
    }

    /// Chaos: the hotspot market collapses, removing `fraction` of the
    /// arm's audible hotspots at once (federated arms only). Returns
    /// whether the fault applied.
    pub fn inject_hotspot_collapse(&mut self, ai: usize, now: SimTime, fraction: f64) -> bool {
        let applied = self.chaos_applied.clone();
        let Some(arm) = self.local_arm(ai) else { return false };
        let ArmInfra::Federated { hotspots, .. } = &mut arm.infra else { return false };
        let removed = hotspots.collapse(fraction);
        Self::chaos_log(
            &applied,
            arm,
            now,
            Tier::Gateway,
            format!("hotspot population collapse, {removed} hotspots lost"),
        );
        true
    }

    /// Chaos: a top-up/billing failure empties `device`'s prepaid wallet
    /// (federated arms only). Returns whether the fault applied.
    pub fn inject_wallet_failure(&mut self, ai: usize, now: SimTime, device: usize) -> bool {
        let applied = self.chaos_applied.clone();
        let Some(arm) = self.local_arm(ai) else { return false };
        let ArmInfra::Federated { wallets, .. } = &mut arm.infra else { return false };
        if wallets.drain(device).is_none() {
            return false;
        }
        Self::chaos_log(
            &applied,
            arm,
            now,
            Tier::Backhaul,
            format!("device {device} top-up failed; wallet drained"),
        );
        true
    }

    /// Chaos: `device`'s firmware wedges — it transmits nothing until `now
    /// + duration`. Returns whether the fault applied.
    pub fn inject_device_stuck(
        &mut self,
        ai: usize,
        now: SimTime,
        device: usize,
        duration: SimDuration,
    ) -> bool {
        let until = now.saturating_add(duration);
        let applied = self.chaos_applied.clone();
        let Some(arm) = self.local_arm(ai) else { return false };
        if !arm.store.set_stuck_until(device, until) {
            return false;
        }
        let weeks = duration.as_secs() / (7 * 86_400);
        Self::chaos_log(
            &applied,
            arm,
            now,
            Tier::Device,
            format!("device {device} firmware stuck, {weeks} weeks"),
        );
        true
    }

    /// Chaos: a geometric storm knocks `device` out — same transmit-
    /// silence mechanics as [`inject_device_stuck`](Self::inject_device_stuck)
    /// (max-merged stuck-until, so overlapping storms compose
    /// monotonically), but ledgered as a storm knockout so diaries
    /// distinguish weather from firmware. Returns whether the fault
    /// applied.
    pub fn inject_storm_knockout(
        &mut self,
        ai: usize,
        now: SimTime,
        device: usize,
        duration: SimDuration,
    ) -> bool {
        let until = now.saturating_add(duration);
        let applied = self.chaos_applied.clone();
        let Some(arm) = self.local_arm(ai) else { return false };
        if !arm.store.set_stuck_until(device, until) {
            return false;
        }
        let days = duration.as_secs() / 86_400;
        Self::chaos_log(
            &applied,
            arm,
            now,
            Tier::Device,
            format!("device {device} storm knockout, {days} days"),
        );
        true
    }

    /// Chaos: `device` turns byzantine — it keeps transmitting (and
    /// paying) but every reading is garbage until `now + duration`.
    /// Returns whether the fault applied.
    pub fn inject_device_byzantine(
        &mut self,
        ai: usize,
        now: SimTime,
        device: usize,
        duration: SimDuration,
    ) -> bool {
        let until = now.saturating_add(duration);
        let applied = self.chaos_applied.clone();
        let Some(arm) = self.local_arm(ai) else { return false };
        if !arm.store.set_byzantine_until(device, until) {
            return false;
        }
        let weeks = duration.as_secs() / (7 * 86_400);
        Self::chaos_log(
            &applied,
            arm,
            now,
            Tier::Device,
            format!("device {device} byzantine readings, {weeks} weeks"),
        );
        true
    }
}

/// Maps a checkpointed dispatch-count name back to the `&'static` entry
/// of [`FleetSim`]'s event-kind table (the strings
/// [`World::event_kind`] returns) — the resolver
/// [`simcore::engine::Engine::resume`] needs to rebuild an engine
/// profile. `None` means the snapshot belongs to a different world shape.
pub(crate) fn resolve_event_kind(name: &str) -> Option<&'static str> {
    const KINDS: [&str; 8] = [
        "weekly-check",
        "yearly-tick",
        "device-fail",
        "device-replace",
        "gateway-fail",
        "gateway-repair",
        "provider-exit",
        "backhaul-migrated",
    ];
    KINDS.iter().copied().find(|&k| k == name)
}

impl World for FleetSim {
    type Event = Ev;

    fn event_kind(event: &Ev) -> &'static str {
        match event {
            Ev::WeeklyCheck => "weekly-check",
            Ev::YearlyTick => "yearly-tick",
            Ev::DeviceFail(..) => "device-fail",
            Ev::DeviceReplace(..) => "device-replace",
            Ev::GatewayFail(..) => "gateway-fail",
            Ev::GatewayRepair(..) => "gateway-repair",
            Ev::ProviderExit(..) => "provider-exit",
            Ev::BackhaulMigrated(..) => "backhaul-migrated",
        }
    }

    fn handle(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        let now = ctx.now();
        match ev {
            Ev::WeeklyCheck => {
                // Walks the arms this world owns (all of them in a serial
                // run, the shard's subset otherwise) in ascending global
                // id — the same per-arm order either way.
                for li in 0..self.arms.len() {
                    self.weekly_eval(li, now);
                }
                ctx.schedule_in(SimDuration::from_secs(WEEK), Ev::WeeklyCheck);
            }
            Ev::YearlyTick => {
                for arm in &mut self.arms {
                    if let ArmInfra::Federated { hotspots, .. } = &mut arm.infra {
                        let before = hotspots.count();
                        // Per-year split stream: churn draws scale with the
                        // census, so a chaos-injected collapse would shift
                        // every later draw if churn shared the arm's weekly
                        // stream. Keyed on the year, the perturbation stays
                        // confined to the hotspot model (CRN).
                        let mut hrng = arm.rng.split("hotspots", u64::from(hotspots.year()) + 1);
                        let after = hotspots.step_year(&mut hrng);
                        if before > 0 && after == 0 {
                            arm.diary.log(
                                now,
                                Severity::Incident,
                                Tier::Gateway,
                                format!("{}: no hotspots remain in range", arm.cfg.name),
                            );
                        }
                    }
                    if let ArmInfra::Owned { gateways, sunset_logged, .. } = &mut arm.infra {
                        // §3.3.2: a revocable medium can disappear on the
                        // operator's schedule — log the stranding once.
                        let t_years = now.as_years_f64();
                        if !*sunset_logged
                            && gateways
                                .iter()
                                .any(|g| !g.spec.backhaul.available(t_years))
                        {
                            *sunset_logged = true;
                            arm.diary.log(
                                now,
                                Severity::Incident,
                                Tier::Backhaul,
                                format!(
                                    "{}: backhaul technology sunset; gateways stranded",
                                    arm.cfg.name
                                ),
                            );
                        }
                        // Software upkeep labor for maintained gateways.
                        let hours: f64 = gateways
                            .iter()
                            .map(|g| g.spec.mode.yearly_upkeep_hours())
                            .sum();
                        arm.report.labor = arm.report.labor.plus(PersonHours::from_hours(hours));
                    }
                }
                ctx.schedule_in(SimDuration::from_years(1), Ev::YearlyTick);
            }
            Ev::DeviceFail(ai, di) => {
                let Some(arm) = self.local_arm(ai) else { return };
                arm.store.mark_failed(di);
                arm.report.device_failures += 1;
                arm.report.lifetime_observations.push(Observation::failed(
                    arm.store.age_at(di, now).as_years_f64(),
                ));
                arm.diary.log(
                    now,
                    Severity::Warning,
                    Tier::Device,
                    format!("{}: device {di} hardware failure (untouched policy: diagnose & replace)", arm.cfg.name),
                );
                if let Some(delay) = arm.cfg.replace_devices {
                    ctx.schedule_in(delay, Ev::DeviceReplace(ai, di));
                }
            }
            Ev::DeviceReplace(ai, di) => {
                let env = self.cfg.env;
                let horizon = self.cfg.horizon;
                let Some(arm) = self.local_arm(ai) else { return };
                let mut drng = arm
                    .rng
                    .split("replace", di as u64)
                    .split("at", now.as_secs());
                let dev = DeviceState::deploy(arm.cfg.device_spec, now, &env, &mut drng);
                if dev.fails_at.as_secs() < horizon.as_secs() {
                    ctx.schedule_at(dev.fails_at, Ev::DeviceFail(ai, di));
                }
                arm.store.set_row(di, &dev);
                arm.report.device_replacements += 1;
                arm.report.labor = arm.report.labor.plus(PersonHours::from_hours(20.0 / 60.0));
                arm.report.spend += Usd::from_dollars(80) + Usd::from_dollars(45);
                // Federated devices carry a fresh wallet.
                if let ArmInfra::Federated { wallets, .. } = &mut arm.infra {
                    wallets.set(di, &Wallet::provision_dollars(Usd::from_dollars(5)));
                    arm.report.spend += Usd::from_dollars(5);
                }
                arm.diary.log(
                    now,
                    Severity::Incident,
                    Tier::Device,
                    format!("{}: device {di} replaced", arm.cfg.name),
                );
            }
            Ev::GatewayFail(ai, gi) => {
                let Some(arm) = self.local_arm(ai) else { return };
                if let ArmInfra::Owned { gateways, .. } = &mut arm.infra {
                    let done = gateways[gi].fail(now);
                    ctx.schedule_at(done, Ev::GatewayRepair(ai, gi));
                    arm.diary.log(
                        now,
                        Severity::Incident,
                        Tier::Gateway,
                        format!("{}: gateway {gi} failed; repair scheduled", arm.cfg.name),
                    );
                }
            }
            Ev::GatewayRepair(ai, gi) => {
                let env = self.cfg.env;
                let horizon = self.cfg.horizon;
                let Some(arm) = self.local_arm(ai) else { return };
                if let ArmInfra::Owned { gateways, .. } = &mut arm.infra {
                    let mut grng = arm
                        .rng
                        .split("gw-repair", gi as u64)
                        .split("at", now.as_secs());
                    gateways[gi].repair(now, &env, &mut grng);
                    if gateways[gi].fails_at.as_secs() < horizon.as_secs() {
                        ctx.schedule_at(gateways[gi].fails_at, Ev::GatewayFail(ai, gi));
                    }
                    arm.report.gateway_repairs += 1;
                    arm.report.labor = arm.report.labor.plus(PersonHours::from_hours(2.0));
                    arm.report.spend += Usd::from_dollars(150) + Usd::from_dollars(170);
                    arm.diary.log(
                        now,
                        Severity::Info,
                        Tier::Gateway,
                        format!("{}: gateway {gi} repaired", arm.cfg.name),
                    );
                }
            }
            Ev::ProviderExit(ai) => {
                let Some(arm) = self.local_arm(ai) else { return };
                if let ArmInfra::Owned { backhaul_down, .. } = &mut arm.infra {
                    *backhaul_down = true;
                    let sid = arm.spans.open(format!("{}: backhaul-outage", arm.cfg.name), now);
                    arm.outage_span = Some(sid);
                    arm.diary.log(
                        now,
                        Severity::Incident,
                        Tier::Backhaul,
                        format!(
                            "{}: backhaul provider terminated service; sourcing replacement",
                            arm.cfg.name
                        ),
                    );
                    // Sourcing + commissioning a replacement attachment:
                    // a quarter of procurement, per §3.4's "comparatively
                    // manageable cost" for wired replacements.
                    ctx.schedule_in(SimDuration::from_weeks(13), Ev::BackhaulMigrated(ai));
                }
            }
            Ev::BackhaulMigrated(ai) => {
                let horizon = self.cfg.horizon;
                let Some(arm) = self.local_arm(ai) else { return };
                if let ArmInfra::Owned { gateways, backhaul_down, .. } = &mut arm.infra {
                    *backhaul_down = false;
                    if let Some(id) = arm.outage_span.take() {
                        arm.spans.close(id, now);
                    }
                    arm.report.backhaul_migrations += 1;
                    let n_gw = gateways.len() as i64;
                    // Re-attachment cost and commissioning labor per gateway.
                    arm.report.spend += Usd::from_dollars(400) * n_gw;
                    arm.report.labor =
                        arm.report.labor.plus(PersonHours::from_hours(2.0 * n_gw as f64));
                    // The replacement provider gets a fresh exit clock.
                    if let ArmKind::Owned { spec, .. } = &arm.cfg.kind {
                        let mut prng = arm.rng.split("provider-next", now.as_secs());
                        let exit = SimDuration::from_years_f64(
                            spec.provider.sample_exit_years(&mut prng),
                        );
                        let at = now.saturating_add(exit);
                        if at.as_secs() < horizon.as_secs() {
                            ctx.schedule_at(at, Ev::ProviderExit(ai));
                        }
                    }
                    arm.diary.log(
                        now,
                        Severity::Info,
                        Tier::Backhaul,
                        format!("{}: replacement backhaul commissioned", arm.cfg.name),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_experiment_runs_to_horizon() {
        let report = FleetSim::run(FleetConfig::paper_experiment(1));
        assert_eq!(report.arms.len(), 2);
        for arm in &report.arms {
            assert_eq!(arm.weeks_total, 50 * 365 / 7);
            assert!(arm.weeks_up > 0, "{} never delivered", arm.name);
            assert!(arm.uptime() > 0.3, "{} uptime {}", arm.name, arm.uptime());
            assert!(arm.uptime() <= 1.0);
        }
        assert!(!report.diary.is_empty());
        assert!(report.events_processed > 2_600);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = FleetSim::run(FleetConfig::paper_experiment(7));
        let b = FleetSim::run(FleetConfig::paper_experiment(7));
        for (x, y) in a.arms.iter().zip(&b.arms) {
            assert_eq!(x.weeks_up, y.weeks_up);
            assert_eq!(x.readings_delivered, y.readings_delivered);
            assert_eq!(x.spend, y.spend);
        }
        assert_eq!(a.diary.len(), b.diary.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FleetSim::run(FleetConfig::paper_experiment(1));
        let b = FleetSim::run(FleetConfig::paper_experiment(2));
        let same = a
            .arms
            .iter()
            .zip(&b.arms)
            .all(|(x, y)| x.readings_delivered == y.readings_delivered);
        assert!(!same, "different seeds should perturb delivery counts");
    }

    #[test]
    fn devices_fail_and_get_replaced_over_50_years() {
        let report = FleetSim::run(FleetConfig::paper_experiment(3));
        let owned = &report.arms[0];
        // Harvesting nodes median ~20 y: with 10 devices over 50 y, many
        // failures are near-certain.
        assert!(owned.device_failures >= 3, "failures {}", owned.device_failures);
        assert_eq!(owned.device_failures, owned.device_replacements);
    }

    #[test]
    fn owned_arm_pays_gateway_maintenance() {
        let report = FleetSim::run(FleetConfig::paper_experiment(4));
        let owned = &report.arms[0];
        assert!(owned.gateway_repairs >= 2, "repairs {}", owned.gateway_repairs);
        assert!(owned.labor.hours() > 10.0);
    }

    #[test]
    fn no_replacement_policy_decays_to_dark() {
        let mut cfg = FleetConfig::paper_experiment(5);
        for arm in &mut cfg.arms {
            arm.replace_devices = None;
        }
        let with = FleetSim::run(FleetConfig::paper_experiment(5));
        let without = FleetSim::run(cfg);
        for (w, wo) in with.arms.iter().zip(&without.arms) {
            assert!(wo.device_replacements == 0);
            assert!(
                wo.readings_delivered <= w.readings_delivered,
                "{}: unreplaced fleet cannot deliver more",
                w.name
            );
        }
    }

    #[test]
    fn federated_arm_burns_credits() {
        let report = FleetSim::run(FleetConfig::paper_experiment(6));
        let helium = &report.arms[1];
        // Data yield implies credits flowed.
        assert!(helium.readings_delivered > 0);
        // Initial spend includes 10 x $5 wallets + 10 x $80 devices.
        assert!(helium.spend >= Usd::from_dollars(850));
    }

    #[test]
    fn lifetime_observations_cover_every_incarnation() {
        let report = FleetSim::run(FleetConfig::paper_experiment(21));
        for arm in &report.arms {
            let failures = arm
                .lifetime_observations
                .iter()
                .filter(|o| o.event)
                .count() as u64;
            assert_eq!(failures, arm.device_failures, "{}", arm.name);
            let censored = arm.lifetime_observations.len() as u64 - failures;
            // Every mount's final incarnation that is still alive at the
            // horizon is censored; unreplaced dead mounts contribute none.
            assert!(censored <= 10, "{}: censored {censored}", arm.name);
            for o in &arm.lifetime_observations {
                assert!(o.time >= 0.0 && o.time <= 50.0);
            }
        }
    }

    #[test]
    fn dual_homing_beats_single_homing() {
        // Single-homed devices go dark with their gateway; dual-homed ride
        // through. Compare yields with identical seeds.
        let mk = |dual: f64, seed: u64| {
            let mut cfg = FleetConfig::paper_experiment(seed);
            cfg.arms.truncate(1);
            cfg.arms[0].dual_homed_fraction = dual;
            FleetSim::run(cfg).arms[0].data_yield()
        };
        let mut single_total = 0.0;
        let mut dual_total = 0.0;
        for seed in 0..5 {
            single_total += mk(0.0, seed);
            dual_total += mk(1.0, seed);
        }
        assert!(
            dual_total > single_total,
            "dual {dual_total} should beat single {single_total}"
        );
    }

    #[test]
    fn channel_derived_delivery_scales_with_population() {
        let small = ArmConfig::paper_owned_154(10, 2)
            .with_channel_derived_delivery(0.95, 0.24);
        let huge = ArmConfig::paper_owned_154(200_000, 2)
            .with_channel_derived_delivery(0.95, 0.24);
        assert!(small.per_packet_delivery > 0.90, "{}", small.per_packet_delivery);
        assert!(
            huge.per_packet_delivery < small.per_packet_delivery - 0.05,
            "huge fleet {} should collide more than {}",
            huge.per_packet_delivery,
            small.per_packet_delivery
        );
    }

    #[test]
    fn cellular_arm_goes_dark_at_sunset() {
        use backhaul::tech::CellularGen;
        // 3G sunsets at year 12: a 3G-backhauled arm delivers nothing after,
        // and the diary records the stranding.
        let mut cfg = FleetConfig::paper_experiment(42);
        cfg.arms = vec![
            ArmConfig::paper_owned_154(10, 2),
            ArmConfig::cellular_owned_154(10, 2, CellularGen::G3),
        ];
        let report = FleetSim::run(cfg);
        let ethernet = &report.arms[0];
        let cellular = &report.arms[1];
        // The cellular arm's uptime is capped near 12/50 of the horizon.
        assert!(
            cellular.uptime() < 0.30,
            "cellular uptime {} should collapse after the year-12 sunset",
            cellular.uptime()
        );
        assert!(ethernet.uptime() > 0.9);
        assert!(report.diary.render().contains("backhaul technology sunset"));
    }

    #[test]
    fn provider_exits_happen_and_are_survived() {
        // Campus provider mean-exit 60 y: over many seeds, exits within the
        // 50-year horizon are common and each is followed by a migration.
        let mut exits = 0u64;
        for seed in 0..10 {
            let report = FleetSim::run(FleetConfig::paper_experiment(seed));
            let owned = &report.arms[0];
            exits += owned.backhaul_migrations;
            if owned.backhaul_migrations > 0 {
                let text = report.diary.render();
                assert!(text.contains("backhaul provider terminated service"));
                assert!(text.contains("replacement backhaul commissioned"));
            }
        }
        assert!(exits > 0, "no provider exit across 10 seeds is implausible");
    }

    #[test]
    fn fast_cadence_exhausts_prepaid_wallets() {
        // At a 5-minute cadence the $5 wallet lasts ~4.8 years; over a
        // 50-year run the federated arm must log exhaustions.
        let mut cfg = FleetConfig::paper_experiment(77);
        cfg.arms.remove(0);
        cfg.arms[0].device_spec.report_interval = SimDuration::from_mins(5);
        cfg.arms[0].replace_devices = None; // Keep original wallets in place.
        let report = FleetSim::run(cfg);
        let helium = &report.arms[0];
        assert!(
            helium.wallets_exhausted > 0,
            "5-minute reporting must exhaust $5 wallets"
        );
        let text = report.diary.render();
        assert!(text.contains("wallet exhausted"));
    }

    #[test]
    fn injections_apply_only_to_matching_arms() {
        let mut engine = FleetSim::build(FleetConfig::paper_experiment(9));
        let w = engine.world_mut();
        let t = SimTime::from_years(1);
        // Arm 0 is owned, arm 1 is federated.
        assert!(w.inject_regional_outage(0, t, SimDuration::from_weeks(1)));
        assert!(w.inject_regional_outage(1, t, SimDuration::from_weeks(1)));
        assert!(w.inject_backhaul_flap(0, t, SimDuration::from_hours(6)));
        assert!(!w.inject_backhaul_flap(1, t, SimDuration::from_hours(6)));
        assert!(w.inject_provider_sunset(0, t));
        assert!(!w.inject_provider_sunset(1, t));
        assert!(!w.inject_hotspot_collapse(0, t, 0.5));
        assert!(w.inject_hotspot_collapse(1, t, 0.5));
        assert!(!w.inject_wallet_failure(0, t, 0));
        assert!(w.inject_wallet_failure(1, t, 0));
        assert!(w.inject_device_stuck(0, t, 3, SimDuration::from_weeks(2)));
        assert!(w.inject_device_byzantine(1, t, 3, SimDuration::from_weeks(2)));
        // Out-of-range targets are rejected, not panics.
        assert!(!w.inject_regional_outage(99, t, SimDuration::from_weeks(1)));
        assert!(!w.inject_device_stuck(0, t, 99, SimDuration::from_weeks(1)));
        assert!(!w.inject_wallet_failure(1, t, 99));
    }

    #[test]
    fn hooked_faults_degrade_uptime_and_are_diarised() {
        use simcore::engine::FaultHook;

        // A year-long regional outage against both arms every 5 years.
        struct Storms {
            times: Vec<SimTime>,
            next: usize,
        }
        impl FaultHook<FleetSim> for Storms {
            fn next_fault_at(&self) -> Option<SimTime> {
                self.times.get(self.next).copied()
            }
            fn fire(&mut self, now: SimTime, world: &mut FleetSim, _ctx: &mut Ctx<'_, Ev>) {
                self.next += 1;
                for ai in 0..world.arm_count() {
                    assert!(world.inject_regional_outage(ai, now, SimDuration::from_years(1)));
                }
            }
        }

        let horizon = SimTime::ZERO + SimDuration::from_years(50);
        let baseline = FleetSim::run(FleetConfig::paper_experiment(11));
        let mut hook = Storms {
            times: (1..50).step_by(5).map(SimTime::from_years).collect(),
            next: 0,
        };
        let n_storms = hook.times.len() as u64;
        let mut engine = FleetSim::build(FleetConfig::paper_experiment(11));
        engine.run_until_hooked(horizon, &mut hook);
        let stormy = FleetSim::into_report(engine, horizon);

        for (b, s) in baseline.arms.iter().zip(&stormy.arms) {
            assert_eq!(s.faults_injected, n_storms, "{}", s.name);
            assert!(
                s.weeks_up < b.weeks_up,
                "{}: {} storm-weeks should cost uptime ({} vs {})",
                s.name,
                n_storms,
                s.weeks_up,
                b.weeks_up
            );
        }
        let text = stormy.diary.render();
        assert!(text.contains("chaos: regional outage"));
        let chaos_lines = text.lines().filter(|l| l.contains("chaos:")).count() as u64;
        assert_eq!(chaos_lines, 2 * n_storms);
        assert!(!baseline.diary.render().contains("chaos:"));
    }

    #[test]
    fn digest_is_deterministic_and_seed_sensitive() {
        let a = FleetSim::run(FleetConfig::paper_experiment(13));
        let b = FleetSim::run(FleetConfig::paper_experiment(13));
        let c = FleetSim::run(FleetConfig::paper_experiment(14));
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest(), "different seeds must not collide");
    }

    #[test]
    fn metric_snapshot_cross_checks_the_ledger() {
        use telemetry::MetricValue;
        let report = FleetSim::run(FleetConfig::paper_experiment(15));
        for (ai, arm) in report.arms.iter().enumerate() {
            let name = format!("fleet.arm{ai}.{}.readings_delivered", arm.name);
            assert_eq!(
                report.metrics.get(&name),
                Some(&MetricValue::Counter(arm.readings_delivered)),
                "{name} must mirror the report ledger"
            );
            let hist = format!("fleet.arm{ai}.{}.weekly_deliveries", arm.name);
            match report.metrics.get(&hist) {
                Some(MetricValue::Histogram { count, .. }) => {
                    // One observation per alive device per week: bounded by
                    // devices × weeks.
                    assert!(*count > 0 && *count <= 10 * arm.weeks_total, "{hist}: {count}");
                }
                other => panic!("{hist}: expected histogram, got {other:?}"),
            }
        }
        assert_eq!(report.metrics.get("chaos.applied"), Some(&MetricValue::Counter(0)));
        assert_eq!(report.metrics.get("chaos.skipped"), Some(&MetricValue::Counter(0)));
    }

    #[test]
    fn provider_exits_record_outage_spans() {
        // Find a seed whose owned arm migrates at least once, then check
        // the span ledger matches the migration count.
        for seed in 0..10 {
            let report = FleetSim::run(FleetConfig::paper_experiment(seed));
            let owned = &report.arms[0];
            if owned.backhaul_migrations == 0 {
                continue;
            }
            let outages: Vec<_> = report
                .spans
                .iter()
                .filter(|s| s.name.contains("backhaul-outage"))
                .collect();
            assert!(outages.len() as u64 >= owned.backhaul_migrations);
            let closed = outages.iter().filter(|s| s.end.is_some()).count() as u64;
            assert_eq!(closed, owned.backhaul_migrations, "every migration closes its span");
            for s in &outages {
                if let Some(end) = s.end {
                    // §3.4: sourcing a replacement takes a quarter.
                    assert_eq!(end.since(s.start), SimDuration::from_weeks(13));
                }
            }
            return;
        }
        panic!("no provider exit across 10 seeds is implausible");
    }

    #[test]
    fn profile_reports_event_mix_and_timing() {
        let report = FleetSim::run(FleetConfig::paper_experiment(16));
        assert_eq!(report.profile.count("weekly-check"), 50 * 365 / 7);
        assert_eq!(report.profile.count("yearly-tick"), 49);
        assert_eq!(report.profile.total_dispatched(), report.events_processed);
        assert!(report.profile.queue_high_water > 0);
        assert!(report.profile.run_nanos > 0);
        // Handler time is sampled (every 1024th dispatch); a ~2.8k-event
        // run must have timed at least the dispatches at 0, 1024 and 2048.
        assert!(report.profile.handler_samples() >= 3);
    }

    #[test]
    fn jsonl_export_is_one_object_per_line() {
        let report = FleetSim::run(FleetConfig::paper_experiment(17));
        let out = report.export_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines.len(),
            report.diary.len() + report.spans.len() + report.metrics.len()
        );
        for line in &lines {
            assert!(line.starts_with("{\"type\":\"") && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn diary_is_time_ordered() {
        let report = FleetSim::run(FleetConfig::paper_experiment(8));
        let mut last = SimTime::ZERO;
        for e in report.diary.entries() {
            assert!(e.at >= last);
            last = e.at;
        }
    }
}
