//! Gateway technology-generation planning.
//!
//! §1: deployments mix "state-of-the-art technologies" with "legacy devices
//! to keep costs down or lessen operational heterogeneity"; §3.2 demands
//! the gateway layer "allow for upgradability". This module simulates a
//! gateway fleet across arriving technology generations under different
//! upgrade policies and measures what each policy costs and risks:
//! hardware turns, operational heterogeneity (distinct generations in
//! service), and time spent running out-of-support equipment.

use reliability::hazard::Hazard;
use simcore::rng::Rng;

/// One technology generation's availability window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TechGeneration {
    /// Generation index (0 = the generation current at deployment).
    pub id: u32,
    /// Year (from epoch) the generation becomes purchasable.
    pub arrives: f64,
    /// Year vendor support ends (security patches, spares).
    pub support_ends: f64,
}

/// Builds a generation timeline: a new generation every `cadence` years
/// starting at year 0, each supported for `support` years after arrival.
pub fn timeline(cadence: f64, support: f64, horizon: f64) -> Vec<TechGeneration> {
    assert!(cadence > 0.0, "cadence must be positive");
    assert!(support > 0.0, "support must be positive");
    let mut out = Vec::new();
    let mut id = 0;
    let mut at = 0.0;
    while at < horizon {
        out.push(TechGeneration { id, arrives: at, support_ends: at + support });
        id += 1;
        at += cadence;
    }
    out
}

/// When a mount's gateway gets replaced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpgradePolicy {
    /// Replace the unit whenever a newer generation arrives (and on
    /// failure) — maximum freshness, maximum spend.
    AlwaysLatest,
    /// Replace only on hardware failure; the replacement is whatever is
    /// newest at that moment — the economical default.
    RunToFailure,
    /// Replace on failure *or* when the unit's generation loses support —
    /// the security-conscious middle.
    OnSupportEnd,
}

/// Results of an upgrade-policy run.
#[derive(Clone, Debug)]
pub struct UpgradeRun {
    /// Total hardware installations across all mounts (including initial).
    pub installs: u64,
    /// Mean distinct generations in service per sampled year.
    pub mean_heterogeneity: f64,
    /// Peak distinct generations in service in any sampled year.
    pub peak_heterogeneity: usize,
    /// Total mount-years spent on out-of-support hardware.
    pub unsupported_mount_years: f64,
}

/// The newest generation purchasable at year `t`.
fn newest_at(tl: &[TechGeneration], t: f64) -> u32 {
    tl.iter().filter(|g| g.arrives <= t).map(|g| g.id).max().unwrap_or(0)
}

fn support_end_of(tl: &[TechGeneration], id: u32) -> f64 {
    tl.iter().find(|g| g.id == id).map_or(f64::INFINITY, |g| g.support_ends)
}

/// Simulates `mounts` gateway mounts over `horizon` years under a policy.
///
/// Hardware lifetimes come from `ttf`; replacements are instantaneous
/// (repair lag is the fleet sim's concern, not the planner's).
pub fn run<H: Hazard + ?Sized>(
    policy: UpgradePolicy,
    ttf: &H,
    tl: &[TechGeneration],
    mounts: u32,
    horizon: f64,
    rng: &mut Rng,
) -> UpgradeRun {
    assert!(mounts > 0, "need at least one mount");
    assert!(!tl.is_empty(), "need at least one generation");
    let n_years = horizon.ceil() as usize;
    // Per-year set of generations in service, as counts per generation id.
    let max_gen = tl.iter().map(|g| g.id).max().unwrap_or(0) as usize + 1;
    let mut in_service = vec![vec![false; max_gen]; n_years];
    let mut installs = 0u64;
    let mut unsupported = 0.0f64;

    for m in 0..mounts {
        let mut mrng = rng.split("upgrade-mount", m as u64);
        let mut t = 0.0;
        let mut gen = newest_at(tl, t);
        installs += 1;
        while t < horizon {
            let fail_at = t + ttf.sample_ttf(&mut mrng);
            // Candidate replacement triggers under the policy.
            let next_event = match policy {
                UpgradePolicy::AlwaysLatest => {
                    let next_arrival = tl
                        .iter()
                        .map(|g| g.arrives)
                        .filter(|&a| a > t)
                        .fold(f64::INFINITY, f64::min);
                    fail_at.min(next_arrival)
                }
                UpgradePolicy::RunToFailure => fail_at,
                UpgradePolicy::OnSupportEnd => fail_at.min(support_end_of(tl, gen).max(t)),
            };
            let end = next_event.min(horizon);
            // Credit service years and unsupported time.
            let support_end = support_end_of(tl, gen);
            let mut y = t;
            while y < end {
                let year_idx = y as usize;
                let year_end = (year_idx + 1) as f64;
                let seg_end = end.min(year_end);
                if year_idx < n_years {
                    in_service[year_idx][gen as usize] = true;
                    if y >= support_end {
                        unsupported += seg_end - y;
                    } else if seg_end > support_end {
                        unsupported += seg_end - support_end;
                    }
                }
                y = year_end;
            }
            if end >= horizon {
                break;
            }
            // Replace with the newest generation available at that moment.
            t = end;
            gen = newest_at(tl, t);
            installs += 1;
        }
    }

    let hetero: Vec<usize> = in_service
        .iter()
        .map(|gens| gens.iter().filter(|&&x| x).count())
        .collect();
    UpgradeRun {
        installs,
        mean_heterogeneity: hetero.iter().sum::<usize>() as f64 / hetero.len() as f64,
        peak_heterogeneity: hetero.iter().copied().max().unwrap_or(0),
        unsupported_mount_years: unsupported,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reliability::hazard::WeibullHazard;

    fn ttf() -> WeibullHazard {
        // Pi-class median ~4 years.
        WeibullHazard::with_median(2.0, 4.0)
    }

    fn tl() -> Vec<TechGeneration> {
        timeline(10.0, 15.0, 50.0)
    }

    #[test]
    fn timeline_shape() {
        let t = tl();
        assert_eq!(t.len(), 5);
        assert_eq!(t[0], TechGeneration { id: 0, arrives: 0.0, support_ends: 15.0 });
        assert_eq!(t[4].arrives, 40.0);
    }

    #[test]
    fn always_latest_installs_most() {
        let base = Rng::seed_from(1);
        let mut r1 = base.split("a", 0);
        let mut r2 = base.split("a", 0); // Same stream: identical lifetimes.
        let latest = run(UpgradePolicy::AlwaysLatest, &ttf(), &tl(), 200, 50.0, &mut r1);
        let rtf = run(UpgradePolicy::RunToFailure, &ttf(), &tl(), 200, 50.0, &mut r2);
        assert!(latest.installs > rtf.installs, "{} vs {}", latest.installs, rtf.installs);
    }

    #[test]
    fn run_to_failure_accrues_unsupported_time() {
        let mut rng = Rng::seed_from(2);
        let rtf = run(UpgradePolicy::RunToFailure, &ttf(), &tl(), 200, 50.0, &mut rng);
        // With a 4-year median TTF and 15-year support, some units straggle
        // past support but not most.
        assert!(rtf.unsupported_mount_years > 0.0);
        let mut rng2 = Rng::seed_from(2);
        let ose = run(UpgradePolicy::OnSupportEnd, &ttf(), &tl(), 200, 50.0, &mut rng2);
        assert!(
            ose.unsupported_mount_years < rtf.unsupported_mount_years * 0.2,
            "on-support-end {} vs run-to-failure {}",
            ose.unsupported_mount_years,
            rtf.unsupported_mount_years
        );
    }

    #[test]
    fn always_latest_minimizes_heterogeneity() {
        let base = Rng::seed_from(3);
        let mut r1 = base.split("a", 0);
        let mut r2 = base.split("a", 0);
        let latest = run(UpgradePolicy::AlwaysLatest, &ttf(), &tl(), 300, 50.0, &mut r1);
        let rtf = run(UpgradePolicy::RunToFailure, &ttf(), &tl(), 300, 50.0, &mut r2);
        assert!(latest.mean_heterogeneity <= rtf.mean_heterogeneity + 1e-9);
        assert!(latest.peak_heterogeneity <= rtf.peak_heterogeneity);
    }

    #[test]
    fn heterogeneity_bounded_by_generations() {
        let mut rng = Rng::seed_from(4);
        let out = run(UpgradePolicy::RunToFailure, &ttf(), &tl(), 100, 50.0, &mut rng);
        assert!(out.peak_heterogeneity <= 5);
        assert!(out.mean_heterogeneity >= 1.0);
    }

    #[test]
    fn single_generation_world() {
        let tl1 = timeline(100.0, 200.0, 50.0);
        assert_eq!(tl1.len(), 1);
        let mut rng = Rng::seed_from(5);
        let out = run(UpgradePolicy::RunToFailure, &ttf(), &tl1, 50, 50.0, &mut rng);
        assert_eq!(out.peak_heterogeneity, 1);
        assert_eq!(out.unsupported_mount_years, 0.0);
    }

    #[test]
    #[should_panic(expected = "cadence")]
    fn timeline_rejects_zero_cadence() {
        timeline(0.0, 10.0, 50.0);
    }
}
