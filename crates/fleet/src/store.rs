//! Struct-of-arrays device population store.
//!
//! [`DeviceStore`] holds one arm's whole device population as parallel
//! columns (death time, failed flag, sequence counter, chaos timers,
//! home-gateway sets) instead of a `Vec<DeviceState>`-of-structs. The
//! weekly hot loop at million-device scale touches one or two columns per
//! device; the row layout made every pass stride over whole structs.
//!
//! The store also owns the *cohort* decomposition that aggregate sampling
//! (DESIGN.md §13) is built on: devices with the same canonical (sorted)
//! home-gateway set share one path probability each week, so a single
//! binomial draw per (arm × cohort × week) replaces one draw per device.
//! Cohort ids are assigned in first-appearance (device-id) order at build
//! time and never change — replacements keep the device's homes, so a
//! device's cohort is a pure function of the deployment lottery.
//!
//! Mutation goes through accessors ([`mark_failed`](DeviceStore::mark_failed),
//! [`set_row`](DeviceStore::set_row), the chaos setters) so the
//! incremental per-cohort alive counts and the stuck-device index stay
//! consistent with the columns; simlint rule D004 enforces the discipline
//! in digest-feeding crates.

use simcore::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

use crate::device::{DeviceSpec, DeviceState};

/// One experiment arm's device population, laid out column-wise.
#[derive(Clone, Debug)]
pub struct DeviceStore {
    /// The shared archetype (every device in an arm uses the arm's spec).
    spec: DeviceSpec,
    installed_at: Vec<SimTime>,
    fails_at: Vec<SimTime>,
    failed: Vec<bool>,
    seq: Vec<u64>,
    stuck_until: Vec<SimTime>,
    byzantine_until: Vec<SimTime>,
    /// Owned arms: the gateway indices each device can reach (1 or 2
    /// entries from the deployment lottery); empty for federated arms.
    homes: Vec<Vec<usize>>,
    /// Each device's cohort id (index into the `cohort_*` columns).
    cohort: Vec<u32>,
    /// Canonical (sorted, deduplicated by construction) home set per
    /// cohort, in first-appearance order.
    cohort_homes: Vec<Vec<usize>>,
    /// Present (not-failed) devices per cohort, maintained incrementally
    /// by [`mark_failed`](Self::mark_failed) / [`set_row`](Self::set_row).
    cohort_alive: Vec<u64>,
    /// Devices that have ever been chaos-stuck (deduplicated, bounded by
    /// the fault plan's injection count). The weekly aggregate pass
    /// corrects participant counts by scanning this short list instead of
    /// the whole population.
    stuck_ids: Vec<usize>,
    /// Upper bound on every device's `byzantine_until` (max-merged by the
    /// setters, never lowered). `any_byzantine_at` tests against it so the
    /// weekly aggregate pass can skip the per-device byzantine column
    /// entirely in runs with no (or no longer active) injections.
    byzantine_max_until: SimTime,
}

impl DeviceStore {
    /// Builds a store for devices all installed at `SimTime::ZERO` with
    /// the given sampled death times and home-gateway assignments.
    pub fn build(spec: DeviceSpec, fails_at: Vec<SimTime>, homes: Vec<Vec<usize>>) -> Self {
        let n = fails_at.len();
        debug_assert_eq!(homes.len(), n, "one home set per device");
        let mut ids: BTreeMap<Vec<usize>, u32> = BTreeMap::new();
        let mut cohort = Vec::with_capacity(n);
        let mut cohort_homes: Vec<Vec<usize>> = Vec::new();
        // One scratch buffer for canonicalization; the map key is only
        // allocated when a new cohort first appears, not once per device.
        let mut scratch: Vec<usize> = Vec::new();
        for set in &homes {
            scratch.clear();
            scratch.extend_from_slice(set);
            scratch.sort_unstable();
            let id = match ids.get(scratch.as_slice()) {
                Some(&id) => id,
                None => {
                    let next = cohort_homes.len() as u32;
                    ids.insert(scratch.clone(), next);
                    cohort_homes.push(scratch.clone());
                    next
                }
            };
            cohort.push(id);
        }
        let mut cohort_alive = vec![0u64; cohort_homes.len()];
        for &c in &cohort {
            cohort_alive[c as usize] += 1;
        }
        DeviceStore {
            spec,
            installed_at: vec![SimTime::ZERO; n],
            fails_at,
            failed: vec![false; n],
            seq: vec![0; n],
            stuck_until: vec![SimTime::ZERO; n],
            byzantine_until: vec![SimTime::ZERO; n],
            homes,
            cohort,
            cohort_homes,
            cohort_alive,
            stuck_ids: Vec::new(),
            byzantine_max_until: SimTime::ZERO,
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.fails_at.len()
    }

    /// Whether the store holds no devices.
    pub fn is_empty(&self) -> bool {
        self.fails_at.is_empty()
    }

    /// The arm's device archetype.
    pub fn spec(&self) -> DeviceSpec {
        self.spec
    }

    /// Whether device `di`'s hardware is functional at `t` (the
    /// time-based check [`DeviceState::alive_at`] performs).
    #[inline]
    pub fn alive_at(&self, di: usize, t: SimTime) -> bool {
        !self.failed[di] && t < self.fails_at[di]
    }

    /// Whether device `di` is present — its failure *event* has not yet
    /// been processed. This is the flag the aggregate path keys
    /// participation on: it is exactly what the incremental
    /// [`cohort_alive`](Self::cohort_alive) counts track, event by event.
    #[inline]
    pub fn present(&self, di: usize) -> bool {
        !self.failed[di]
    }

    /// Whether device `di`'s firmware is chaos-wedged at `t`.
    #[inline]
    pub fn stuck_at(&self, di: usize, t: SimTime) -> bool {
        t < self.stuck_until[di]
    }

    /// Whether device `di` emits garbage readings at `t`.
    #[inline]
    pub fn byzantine_at(&self, di: usize, t: SimTime) -> bool {
        t < self.byzantine_until[di]
    }

    /// Whether *any* device could be byzantine at `t` (watermark check —
    /// may over-approximate, never under-approximates). `false` lets the
    /// weekly pass skip the per-device `byzantine_until` reads.
    #[inline]
    pub fn any_byzantine_at(&self, t: SimTime) -> bool {
        t < self.byzantine_max_until
    }

    /// Device `di`'s age at `t` (zero before installation).
    pub fn age_at(&self, di: usize, t: SimTime) -> SimDuration {
        let installed = self.installed_at[di];
        if t <= installed {
            SimDuration::ZERO
        } else {
            t.since(installed)
        }
    }

    /// When device `di`'s hardware fails.
    pub fn fails_at(&self, di: usize) -> SimTime {
        self.fails_at[di]
    }

    /// Device `di`'s lifetime report sequence number.
    pub fn seq(&self, di: usize) -> u64 {
        self.seq[di]
    }

    /// Advances device `di`'s sequence number by `n` delivered reports.
    #[inline]
    pub fn seq_add(&mut self, di: usize, n: u64) {
        self.seq[di] += n;
    }

    /// The gateway indices device `di` can reach.
    pub fn homes(&self, di: usize) -> &[usize] {
        &self.homes[di]
    }

    /// Number of path cohorts (distinct canonical home sets).
    pub fn cohort_count(&self) -> usize {
        self.cohort_homes.len()
    }

    /// Device `di`'s cohort id.
    #[inline]
    pub fn cohort_of(&self, di: usize) -> usize {
        self.cohort[di] as usize
    }

    /// The canonical home-gateway set of cohort `c`.
    pub fn cohort_homes(&self, c: usize) -> &[usize] {
        &self.cohort_homes[c]
    }

    /// Present devices in cohort `c` (incrementally maintained).
    pub fn cohort_alive(&self, c: usize) -> u64 {
        self.cohort_alive[c]
    }

    /// Devices that have ever been chaos-stuck, deduplicated.
    pub fn stuck_ids(&self) -> &[usize] {
        &self.stuck_ids
    }

    /// Marks device `di` failed (its `DeviceFail` event fired) and
    /// decrements its cohort's alive count. Idempotent.
    pub fn mark_failed(&mut self, di: usize) {
        if !self.failed[di] {
            self.failed[di] = true;
            self.cohort_alive[self.cohort[di] as usize] -= 1;
        }
    }

    /// Overwrites device `di`'s mutable columns from a materialized row
    /// (device replacement, snapshot restore), keeping the cohort alive
    /// count consistent with the failed-flag transition. The device's
    /// homes — and therefore its cohort — are deployment-time constants
    /// and are not touched.
    pub fn set_row(&mut self, di: usize, dev: &DeviceState) {
        match (self.failed[di], dev.failed) {
            (true, false) => self.cohort_alive[self.cohort[di] as usize] += 1,
            (false, true) => self.cohort_alive[self.cohort[di] as usize] -= 1,
            _ => {}
        }
        self.installed_at[di] = dev.installed_at;
        self.fails_at[di] = dev.fails_at;
        self.failed[di] = dev.failed;
        self.seq[di] = dev.seq;
        self.stuck_until[di] = dev.stuck_until;
        self.byzantine_until[di] = dev.byzantine_until;
        self.byzantine_max_until = self.byzantine_max_until.max(dev.byzantine_until);
    }

    /// Materializes device `di` as a standalone [`DeviceState`] row
    /// (snapshotting and the per-device reference path).
    pub fn row(&self, di: usize) -> DeviceState {
        DeviceState {
            spec: self.spec,
            installed_at: self.installed_at[di],
            fails_at: self.fails_at[di],
            failed: self.failed[di],
            seq: self.seq[di],
            stuck_until: self.stuck_until[di],
            byzantine_until: self.byzantine_until[di],
        }
    }

    /// Chaos: wedges device `di` until at least `until` (overlapping
    /// injections keep the latest end time) and indexes it for the
    /// aggregate participant correction. Returns `false` (and changes
    /// nothing) if `di` is out of bounds.
    pub fn set_stuck_until(&mut self, di: usize, until: SimTime) -> bool {
        let Some(slot) = self.stuck_until.get_mut(di) else {
            return false;
        };
        *slot = (*slot).max(until);
        if !self.stuck_ids.contains(&di) {
            self.stuck_ids.push(di);
        }
        true
    }

    /// Chaos: marks device `di` byzantine until at least `until`
    /// (max-merge). Returns `false` if `di` is out of bounds.
    pub fn set_byzantine_until(&mut self, di: usize, until: SimTime) -> bool {
        let Some(slot) = self.byzantine_until.get_mut(di) else {
            return false;
        };
        *slot = (*slot).max(until);
        self.byzantine_max_until = self.byzantine_max_until.max(until);
        true
    }

    /// Adds each present device's weekly share to its sequence counter:
    /// `base[c]` per participant of cohort `c`, plus one extra for the
    /// first `rem[c]` participants in ascending device-id order — the same
    /// id-order rank rule the general weekly loop applies. Fast path for
    /// owned arms with no stuck or byzantine devices, where the share *is*
    /// the delivered count; callers are responsible for that precondition.
    pub fn seq_add_shares(&mut self, base: &[u64], rem: &[u64]) {
        let mut rank = vec![0u64; base.len()];
        for di in 0..self.failed.len() {
            if self.failed[di] {
                continue;
            }
            let c = self.cohort[di] as usize;
            self.seq[di] += base[c] + u64::from(rank[c] < rem[c]);
            rank[c] += 1;
        }
    }

    /// Rebuilds the stuck-device index from the `stuck_until` column
    /// (snapshot resume: the index is derived state and is not stored).
    /// The rebuilt list is ascending by device id; the weekly correction
    /// only counts over it, so ordering differences against the
    /// injection-order list of an uninterrupted run are unobservable.
    pub fn rebuild_stuck_ids(&mut self) {
        self.stuck_ids.clear();
        for (di, &until) in self.stuck_until.iter().enumerate() {
            if until > SimTime::ZERO {
                self.stuck_ids.push(di);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net::packet::RadioTech;

    fn spec() -> DeviceSpec {
        DeviceSpec::paper_sensor(RadioTech::Ieee802154)
    }

    fn store() -> DeviceStore {
        // Homes: {0}, {0,1} (given unsorted), {1}, {1,0} -> cohort of
        // device 3 must equal device 1's, and ids follow first appearance.
        DeviceStore::build(
            spec(),
            vec![
                SimTime::from_years(10),
                SimTime::from_years(20),
                SimTime::from_years(30),
                SimTime::from_years(40),
            ],
            vec![vec![0], vec![1, 0], vec![1], vec![0, 1]],
        )
    }

    #[test]
    fn cohorts_are_canonical_and_first_appearance_ordered() {
        let s = store();
        assert_eq!(s.cohort_count(), 3);
        assert_eq!(s.cohort_of(0), 0);
        assert_eq!(s.cohort_of(1), 1);
        assert_eq!(s.cohort_of(2), 2);
        assert_eq!(s.cohort_of(3), 1, "unsorted {{0,1}} joins {{1,0}}'s cohort");
        assert_eq!(s.cohort_homes(0), &[0]);
        assert_eq!(s.cohort_homes(1), &[0, 1]);
        assert_eq!(s.cohort_homes(2), &[1]);
        assert_eq!(s.cohort_alive(1), 2);
    }

    #[test]
    fn mark_failed_is_idempotent_and_tracks_cohort_alive() {
        let mut s = store();
        assert!(s.present(1));
        s.mark_failed(1);
        assert!(!s.present(1));
        assert!(!s.alive_at(1, SimTime::ZERO));
        assert_eq!(s.cohort_alive(1), 1);
        s.mark_failed(1);
        assert_eq!(s.cohort_alive(1), 1, "second mark must not double-decrement");
    }

    #[test]
    fn set_row_round_trips_and_updates_cohort_alive() {
        let mut s = store();
        s.mark_failed(3);
        assert_eq!(s.cohort_alive(1), 1);
        // Replacement: a fresh, live row re-enters the cohort.
        let mut fresh = s.row(3);
        fresh.failed = false;
        fresh.installed_at = SimTime::from_years(5);
        fresh.fails_at = SimTime::from_years(45);
        fresh.seq = 7;
        s.set_row(3, &fresh);
        assert_eq!(s.cohort_alive(1), 2);
        let back = s.row(3);
        assert_eq!(back.installed_at, fresh.installed_at);
        assert_eq!(back.fails_at, fresh.fails_at);
        assert_eq!(back.seq, 7);
        assert!(!back.failed);
        // Overwriting a live row with a failed one decrements once.
        let mut dead = s.row(0);
        dead.failed = true;
        s.set_row(0, &dead);
        assert_eq!(s.cohort_alive(0), 0);
    }

    #[test]
    fn row_matches_column_accessors() {
        let mut s = store();
        s.seq_add(2, 42);
        assert!(s.set_stuck_until(2, SimTime::from_years(1)));
        assert!(s.set_byzantine_until(2, SimTime::from_years(2)));
        let r = s.row(2);
        assert_eq!(r.seq, s.seq(2));
        assert_eq!(r.fails_at, s.fails_at(2));
        assert_eq!(r.stuck_until, SimTime::from_years(1));
        assert_eq!(r.byzantine_until, SimTime::from_years(2));
        assert_eq!(s.age_at(2, SimTime::from_years(3)), SimDuration::from_years(3));
        assert!(s.stuck_at(2, SimTime::from_secs(1)));
        assert!(s.byzantine_at(2, SimTime::from_years(1)));
        assert!(!s.stuck_at(2, SimTime::from_years(1)));
    }

    #[test]
    fn chaos_setters_max_merge_and_bounds_check() {
        let mut s = store();
        assert!(s.set_stuck_until(0, SimTime::from_years(2)));
        assert!(s.set_stuck_until(0, SimTime::from_years(1)), "shorter overlap applies");
        assert_eq!(s.row(0).stuck_until, SimTime::from_years(2), "max-merge keeps the later end");
        assert_eq!(s.stuck_ids(), &[0], "re-injection must not duplicate the index");
        assert!(!s.set_stuck_until(99, SimTime::from_years(1)));
        assert!(!s.set_byzantine_until(99, SimTime::from_years(1)));
    }

    #[test]
    fn rebuild_stuck_ids_recovers_index_from_columns() {
        let mut s = store();
        assert!(s.set_stuck_until(3, SimTime::from_years(1)));
        assert!(s.set_stuck_until(1, SimTime::from_years(2)));
        assert_eq!(s.stuck_ids(), &[3, 1], "injection order before rebuild");
        s.rebuild_stuck_ids();
        assert_eq!(s.stuck_ids(), &[1, 3], "ascending id order after rebuild");
    }

    #[test]
    fn byzantine_watermark_over_approximates_and_never_lowers() {
        let mut s = store();
        assert!(!s.any_byzantine_at(SimTime::ZERO), "fresh store has no byzantine devices");
        assert!(s.set_byzantine_until(2, SimTime::from_years(2)));
        assert!(s.any_byzantine_at(SimTime::from_years(1)));
        assert!(!s.any_byzantine_at(SimTime::from_years(2)), "watermark expires with the injection");
        // Clearing the device's own timer via set_row must not lower the
        // watermark (it is an upper bound, not an exact max).
        let mut cleared = s.row(2);
        cleared.byzantine_until = SimTime::ZERO;
        s.set_row(2, &cleared);
        assert!(s.any_byzantine_at(SimTime::from_years(1)), "watermark is sticky");
    }

    #[test]
    fn seq_add_shares_matches_the_id_order_rank_rule() {
        let mut s = store();
        s.mark_failed(0);
        // Cohorts: 0 -> {0}, 1 -> {1, 3}, 2 -> {2}. Device 0 is dead.
        // base = [5, 2, 0], rem = [0, 1, 0]: device 1 (rank 0 in cohort 1)
        // takes the extra, device 3 (rank 1) does not.
        s.seq_add_shares(&[5, 2, 0], &[0, 1, 0]);
        assert_eq!(s.seq(0), 0, "failed devices receive nothing");
        assert_eq!(s.seq(1), 3);
        assert_eq!(s.seq(2), 0);
        assert_eq!(s.seq(3), 2);
    }

    #[test]
    fn federated_homes_collapse_to_one_cohort() {
        let s = DeviceStore::build(
            spec(),
            vec![SimTime::from_years(10); 5],
            vec![Vec::new(); 5],
        );
        assert_eq!(s.cohort_count(), 1);
        assert_eq!(s.cohort_alive(0), 5);
        assert!(s.cohort_homes(0).is_empty());
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
    }
}
