//! Edge devices: the paper's transmit-only, energy-harvesting sensors.
//!
//! A [`DeviceSpec`] describes an archetype (radio, energy system, reporting
//! cadence, vendor posture); [`DeviceState`] is one deployed instance with
//! its sampled lifetime and availability. Devices follow the §3.1
//! takeaways: they expect **no human attention** during their service life
//! and rely on **properties** of infrastructure, never specific instances —
//! unless explicitly configured vendor-locked for ablations.

use net::packet::{Payload, RadioTech};
use reliability::system::bom;
use simcore::rng::Rng;
use simcore::time::{SimDuration, SimTime};

/// How the device is powered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnergySystem {
    /// Energy harvesting with capacitor buffer — the paper's design point.
    Harvesting,
    /// Primary battery — the 10–15-year folklore design point.
    Battery,
}

/// A device archetype.
#[derive(Clone, Copy, Debug)]
pub struct DeviceSpec {
    /// Radio technology.
    pub tech: RadioTech,
    /// Power architecture.
    pub energy: EnergySystem,
    /// Application payload per report.
    pub payload: Payload,
    /// Reporting interval.
    pub report_interval: SimDuration,
    /// True if the device only works with its manufacturer's gateways.
    pub vendor_locked: bool,
    /// Long-run energy availability (fraction of reports with enough
    /// energy to transmit), from `energy::budget` sizing. 1.0 = never
    /// energy-limited.
    pub energy_availability: f64,
}

impl DeviceSpec {
    /// The paper's initial experiment device (§4.1): harvesting,
    /// transmit-only, hourly 24-byte reports, standards-compliant.
    pub fn paper_sensor(tech: RadioTech) -> Self {
        DeviceSpec {
            tech,
            energy: EnergySystem::Harvesting,
            payload: Payload::CREDIT_UNIT,
            report_interval: SimDuration::from_hours(1),
            vendor_locked: false,
            energy_availability: 0.999,
        }
    }

    /// Reports per week (the paper's uptime metric counts weekly arrivals).
    pub fn reports_per_week(&self) -> u64 {
        simcore::time::WEEK / self.report_interval.as_secs().max(1)
    }
}

/// One deployed device.
#[derive(Clone, Debug)]
pub struct DeviceState {
    /// The archetype.
    pub spec: DeviceSpec,
    /// When it was installed.
    pub installed_at: SimTime,
    /// When its hardware fails (sampled at install).
    pub fails_at: SimTime,
    /// Whether it has been marked failed.
    pub failed: bool,
    /// Lifetime sequence number of transmitted reports.
    pub seq: u64,
    /// Chaos: firmware wedged (transmitting nothing) until this time.
    pub stuck_until: SimTime,
    /// Chaos: emitting garbage readings (transmit, but worthless) until
    /// this time.
    pub byzantine_until: SimTime,
}

impl DeviceState {
    /// Deploys a device at `now`, sampling its hardware lifetime from the
    /// archetype's reliability BOM in the given environment.
    pub fn deploy(spec: DeviceSpec, now: SimTime, env: &bom::Environment, rng: &mut Rng) -> Self {
        let block = match spec.energy {
            EnergySystem::Harvesting => bom::harvesting_node(env),
            EnergySystem::Battery => bom::battery_node(env),
        };
        let ttf_years = block.sample_ttf(rng);
        DeviceState {
            spec,
            installed_at: now,
            fails_at: now.saturating_add(SimDuration::from_years_f64(ttf_years)),
            failed: false,
            seq: 0,
            stuck_until: SimTime::ZERO,
            byzantine_until: SimTime::ZERO,
        }
    }

    /// Whether the firmware is wedged (chaos-injected) at `t`.
    pub fn stuck_at(&self, t: SimTime) -> bool {
        t < self.stuck_until
    }

    /// Whether the device emits garbage readings (chaos-injected) at `t`.
    pub fn byzantine_at(&self, t: SimTime) -> bool {
        t < self.byzantine_until
    }

    /// Whether the hardware is functional at `t`.
    pub fn alive_at(&self, t: SimTime) -> bool {
        !self.failed && t < self.fails_at
    }

    /// Age at time `t`.
    pub fn age_at(&self, t: SimTime) -> SimDuration {
        if t <= self.installed_at {
            SimDuration::ZERO
        } else {
            t.since(self.installed_at)
        }
    }

    /// Whether a given report attempt has energy, drawn per attempt.
    pub fn has_energy(&self, rng: &mut Rng) -> bool {
        rng.chance(self.spec.energy_availability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> bom::Environment {
        bom::Environment::default()
    }

    #[test]
    fn paper_sensor_shape() {
        let s = DeviceSpec::paper_sensor(RadioTech::LoRa);
        assert_eq!(s.payload.len(), 24);
        assert_eq!(s.reports_per_week(), 168);
        assert!(!s.vendor_locked);
        assert_eq!(s.energy, EnergySystem::Harvesting);
    }

    #[test]
    fn deploy_samples_future_failure() {
        let mut rng = Rng::seed_from(1);
        let d = DeviceState::deploy(
            DeviceSpec::paper_sensor(RadioTech::Ieee802154),
            SimTime::from_years(2),
            &env(),
            &mut rng,
        );
        assert!(d.fails_at > d.installed_at);
        assert!(d.alive_at(SimTime::from_years(2)));
        assert!(!d.alive_at(SimTime::MAX));
    }

    #[test]
    fn harvesting_outlives_battery_in_distribution() {
        let mut rng = Rng::seed_from(2);
        let n = 2_000;
        let mean_life = |energy: EnergySystem, rng: &mut Rng| {
            let spec = DeviceSpec { energy, ..DeviceSpec::paper_sensor(RadioTech::LoRa) };
            (0..n)
                .map(|_| {
                    let d = DeviceState::deploy(spec, SimTime::ZERO, &env(), rng);
                    d.fails_at.as_years_f64()
                })
                .sum::<f64>()
                / n as f64
        };
        let h = mean_life(EnergySystem::Harvesting, &mut rng);
        let b = mean_life(EnergySystem::Battery, &mut rng);
        assert!(h > b, "harvesting {h} battery {b}");
    }

    #[test]
    fn age_accounting() {
        let mut rng = Rng::seed_from(3);
        let d = DeviceState::deploy(
            DeviceSpec::paper_sensor(RadioTech::LoRa),
            SimTime::from_years(5),
            &env(),
            &mut rng,
        );
        assert_eq!(d.age_at(SimTime::from_years(4)), SimDuration::ZERO);
        assert_eq!(d.age_at(SimTime::from_years(8)), SimDuration::from_years(3));
    }

    #[test]
    fn energy_availability_drives_has_energy() {
        let mut rng = Rng::seed_from(4);
        let mut spec = DeviceSpec::paper_sensor(RadioTech::LoRa);
        spec.energy_availability = 0.25;
        let d = DeviceState::deploy(spec, SimTime::ZERO, &env(), &mut rng);
        let n = 40_000;
        let ok = (0..n).filter(|_| d.has_energy(&mut rng)).count() as f64 / n as f64;
        assert!((ok - 0.25).abs() < 0.01, "ok {ok}");
    }
}
