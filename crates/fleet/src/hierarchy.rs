//! The deployment hierarchy of Figure 1, as a data structure.
//!
//! *"Smart devices rely on one or two gateways, while gateways may support
//! thousands of devices. Similarly, individual gateways rely on one or two
//! backhaul technologies, which backhaul infrastructure may support
//! thousands of gateways. The further up the hierarchy one travels, the
//! more devices there are that are reliant on the stability and reliability
//! of the provided interface."*
//!
//! [`Hierarchy`] holds the reliance edges between the four tiers and
//! computes the fan-out and blast-radius statistics exhibit F1 reports.

use std::collections::BTreeMap;

/// The four tiers of Figure 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TierLevel {
    /// Edge devices (most numerous, least accessible).
    Device,
    /// Gateways.
    Gateway,
    /// Backhaul links/providers.
    Backhaul,
    /// The cloud endpoint.
    Cloud,
}

impl TierLevel {
    /// Tiers bottom-up.
    pub const ALL: [TierLevel; 4] =
        [TierLevel::Device, TierLevel::Gateway, TierLevel::Backhaul, TierLevel::Cloud];
}

/// A node id within a tier.
pub type NodeId = u32;

/// The reliance graph: each node lists the upstream nodes (next tier up)
/// it can use.
#[derive(Clone, Debug, Default)]
pub struct Hierarchy {
    /// device -> gateways it can reach.
    pub device_gateways: BTreeMap<NodeId, Vec<NodeId>>,
    /// gateway -> backhauls it is attached to.
    pub gateway_backhauls: BTreeMap<NodeId, Vec<NodeId>>,
    /// backhaul -> clouds it can deliver to.
    pub backhaul_clouds: BTreeMap<NodeId, Vec<NodeId>>,
}

/// Fan-out statistics for one reliance layer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FanOut {
    /// Mean upstream count per downstream node (e.g. gateways per device).
    pub mean_upstream: f64,
    /// Fraction of downstream nodes with exactly one upstream option.
    pub single_homed: f64,
    /// Maximum downstream count on any upstream node (e.g. devices on the
    /// busiest gateway).
    pub max_downstream: usize,
    /// Downstream nodes with zero upstream options (orphans).
    pub orphans: usize,
}

fn layer_stats(edges: &BTreeMap<NodeId, Vec<NodeId>>) -> FanOut {
    if edges.is_empty() {
        return FanOut { mean_upstream: 0.0, single_homed: 0.0, max_downstream: 0, orphans: 0 };
    }
    let mut up_total = 0usize;
    let mut single = 0usize;
    let mut orphans = 0usize;
    let mut downstream: BTreeMap<NodeId, usize> = BTreeMap::new();
    for ups in edges.values() {
        up_total += ups.len();
        match ups.len() {
            0 => orphans += 1,
            1 => single += 1,
            _ => {}
        }
        for &u in ups {
            *downstream.entry(u).or_insert(0) += 1;
        }
    }
    let homed = edges.len() - orphans;
    FanOut {
        mean_upstream: up_total as f64 / edges.len() as f64,
        single_homed: if homed == 0 { 0.0 } else { single as f64 / homed as f64 },
        max_downstream: downstream.values().copied().max().unwrap_or(0),
        orphans,
    }
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    pub fn new() -> Self {
        Hierarchy::default()
    }

    /// Fan-out statistics of the device→gateway layer.
    pub fn device_layer(&self) -> FanOut {
        layer_stats(&self.device_gateways)
    }

    /// Fan-out statistics of the gateway→backhaul layer.
    pub fn gateway_layer(&self) -> FanOut {
        layer_stats(&self.gateway_backhauls)
    }

    /// Fan-out statistics of the backhaul→cloud layer.
    pub fn backhaul_layer(&self) -> FanOut {
        layer_stats(&self.backhaul_clouds)
    }

    /// Number of devices whose every path to some cloud passes through the
    /// given gateway — the gateway's blast radius.
    pub fn gateway_blast_radius(&self, gateway: NodeId) -> usize {
        self.device_gateways
            .values()
            .filter(|gs| gs.len() == 1 && gs[0] == gateway)
            .count()
    }

    /// Number of devices that lose all connectivity if the given backhaul
    /// dies (every usable gateway of theirs is single-homed on it).
    pub fn backhaul_blast_radius(&self, backhaul: NodeId) -> usize {
        self.device_gateways
            .values()
            .filter(|gws| {
                !gws.is_empty()
                    && gws.iter().all(|g| {
                        self.gateway_backhauls
                            .get(g)
                            .map(|bs| bs.len() == 1 && bs[0] == backhaul)
                            .unwrap_or(true)
                    })
            })
            .count()
    }

    /// True if every device with any gateway can reach some cloud.
    pub fn fully_connected(&self) -> bool {
        self.device_gateways.values().all(|gws| {
            gws.is_empty()
                || gws.iter().any(|g| {
                    self.gateway_backhauls
                        .get(g)
                        .is_some_and(|bs| {
                            bs.iter().any(|b| {
                                self.backhaul_clouds.get(b).is_some_and(|cs| !cs.is_empty())
                            })
                        })
                })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1's canonical shape: many devices on few gateways on fewer
    /// backhauls on one cloud.
    fn figure1() -> Hierarchy {
        let mut h = Hierarchy::new();
        // 6 devices: most dual-homed, some single-homed.
        h.device_gateways.insert(0, vec![0, 1]);
        h.device_gateways.insert(1, vec![0]);
        h.device_gateways.insert(2, vec![0, 1]);
        h.device_gateways.insert(3, vec![1]);
        h.device_gateways.insert(4, vec![1, 0]);
        h.device_gateways.insert(5, vec![1]);
        // 2 gateways, each one backhaul.
        h.gateway_backhauls.insert(0, vec![0]);
        h.gateway_backhauls.insert(1, vec![1]);
        // 2 backhauls to one cloud.
        h.backhaul_clouds.insert(0, vec![0]);
        h.backhaul_clouds.insert(1, vec![0]);
        h
    }

    #[test]
    fn device_layer_statistics() {
        let h = figure1();
        let f = h.device_layer();
        assert!((f.mean_upstream - 9.0 / 6.0).abs() < 1e-12);
        assert!((f.single_homed - 0.5).abs() < 1e-12);
        assert_eq!(f.max_downstream, 5); // Gateway 1 serves 5 devices.
        assert_eq!(f.orphans, 0);
    }

    #[test]
    fn blast_radii() {
        let h = figure1();
        assert_eq!(h.gateway_blast_radius(0), 1); // Device 1 only.
        assert_eq!(h.gateway_blast_radius(1), 2); // Devices 3 and 5.
        // Backhaul 1 dying kills gateway 1's single-homed devices only if
        // they cannot reach gateway 0: devices 3 and 5.
        assert_eq!(h.backhaul_blast_radius(1), 2);
        assert_eq!(h.backhaul_blast_radius(0), 1);
    }

    #[test]
    fn connectivity_check() {
        let mut h = figure1();
        assert!(h.fully_connected());
        // Disconnect backhaul 1 from every cloud.
        h.backhaul_clouds.insert(1, vec![]);
        assert!(!h.fully_connected());
    }

    #[test]
    fn orphan_detection() {
        let mut h = Hierarchy::new();
        h.device_gateways.insert(0, vec![]);
        h.device_gateways.insert(1, vec![0]);
        h.gateway_backhauls.insert(0, vec![0]);
        h.backhaul_clouds.insert(0, vec![0]);
        let f = h.device_layer();
        assert_eq!(f.orphans, 1);
        assert!((f.single_homed - 1.0).abs() < 1e-12);
        // An orphaned device does not break "fully connected" (it has no
        // gateways at all — it was never connected).
        assert!(h.fully_connected());
    }

    #[test]
    fn empty_hierarchy() {
        let h = Hierarchy::new();
        let f = h.device_layer();
        assert_eq!(f.mean_upstream, 0.0);
        assert_eq!(f.max_downstream, 0);
        assert!(h.fully_connected());
    }

    #[test]
    fn tier_ordering() {
        assert!(TierLevel::Device < TierLevel::Cloud);
        assert_eq!(TierLevel::ALL.len(), 4);
    }
}
