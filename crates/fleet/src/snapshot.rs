//! Fleet world snapshot/restore: crash-recoverable checkpoints mid-run.
//!
//! A century-scale run is long; the machine running it will crash, be
//! rebooted, or get preempted before the horizon. This module captures a
//! running [`FleetSim`] engine into the versioned, checksummed binary
//! frame of [`simcore::snapshot`] and rebuilds a bit-identical
//! continuation from it: run-to-week-W, snapshot, crash, resume,
//! run-to-horizon digests exactly like the uninterrupted run
//! (`tests/snapshot_differential.rs` proves it per seed × week × chaos ×
//! shard count).
//!
//! The design splits state two ways:
//!
//! * **Rebuilt, not stored.** Everything `FleetSim::build` derives purely
//!   from the [`FleetConfig`] — the config itself, arm metadata, device
//!   specs, gateway specs, the deployment-time coverage lottery
//!   (`homes`), the cloud ritual calendar, metric registration. Resume
//!   re-runs `build` on the caller's config and asserts (via a config
//!   fingerprint) that it matches the one the snapshot was taken under.
//! * **Stored and overlaid.** Everything the run mutates: the engine's
//!   clock, dispatch counters and pending event queue
//!   ([`simcore::engine::EngineCheckpoint`]); each arm's runtime rng
//!   stream, device wear, gateway state, wallets, hotspot census, ledger,
//!   diary, spans and the deferred weekly-delivery accumulator; and chaos
//!   replay progress ([`ChaosProgress`]).
//!
//! Loads are fail-closed: a torn, truncated, or bit-flipped file is a
//! typed [`SnapshotError`], never a silently wrong world.

use std::path::Path;

use simcore::engine::{Engine, EngineCheckpoint, FaultHook};
use simcore::rng::Rng;
use simcore::snapshot::{self, ByteReader, ByteWriter, SnapshotError};
use simcore::survival::Observation;
use simcore::time::SimTime;
use simcore::trace::{Diary, Severity, Tier};
use telemetry::span::{Span, SpanLog};

use econ::labor::PersonHours;
use econ::money::Usd;

use crate::sim::{ArmInfra, ArmKind, ArmState, Ev, FleetConfig, FleetReport, FleetSim, SamplingMode};

/// Version byte of the fleet snapshot payload. Bump on any layout change;
/// old files then fail with [`SnapshotError::UnsupportedVersion`] instead
/// of decoding garbage.
///
/// v2: the device population moved into the struct-of-arrays
/// [`DeviceStore`](crate::store::DeviceStore) (same per-device byte
/// layout, encoded via materialized rows), federated wallets became a
/// [`WalletColumn`](econ::credits::WalletColumn), and the config
/// fingerprint gained the sampling mode.
pub const FLEET_SNAPSHOT_VERSION: u8 = 2;

/// Chaos replay progress at the checkpoint: how far through its
/// [`FaultPlan`](https://docs.rs/)-ordered schedule the injector had
/// advanced, and its applied/skipped tallies. All zero for plain runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosProgress {
    /// Index of the next fault to fire in the serial plan order.
    pub next: u64,
    /// Faults successfully injected before the checkpoint.
    pub applied: u64,
    /// Faults skipped (missing target) before the checkpoint.
    pub skipped: u64,
}

/// A restored mid-run simulation: the engine positioned exactly where the
/// checkpoint was taken, plus the chaos progress needed to resume an
/// injected run. Produced by [`resume_from`] / [`resume_from_bytes`].
pub struct ResumedFleet {
    /// The engine, clock and queue restored to the checkpoint instant.
    pub engine: Engine<FleetSim>,
    /// Chaos replay progress stored in the snapshot (zeros for plain runs).
    pub chaos: ChaosProgress,
}

impl ResumedFleet {
    /// The configured horizon of the resumed run.
    pub fn horizon(&self) -> SimTime {
        SimTime::ZERO + self.engine.world().cfg.horizon
    }

    /// Runs the restored engine to its horizon and finalizes through the
    /// same path as [`FleetSim::run`], so the report digests bit-identically
    /// to an uninterrupted run.
    pub fn run_to_horizon(mut self) -> FleetReport {
        let horizon = self.horizon();
        self.engine.run_until(horizon);
        FleetSim::into_report(self.engine, horizon)
    }

    /// [`run_to_horizon`](Self::run_to_horizon) with a fault hook — the
    /// chaos crate resumes an injected run through this, wrapping the
    /// remaining plan suffix in a fresh injector.
    pub fn run_to_horizon_hooked<H: FaultHook<FleetSim>>(mut self, hook: &mut H) -> FleetReport {
        let horizon = self.horizon();
        self.engine.run_until_hooked(horizon, hook);
        FleetSim::into_report(self.engine, horizon)
    }
}

/// A 64-bit FNV-1a fold of the configuration facets that determine the
/// simulation's derived state: seed, horizon, and each arm's shape. Two
/// configs with the same fingerprint rebuild the same world skeleton, so
/// a snapshot overlays cleanly; a mismatch is refused with
/// [`SnapshotError::ConfigMismatch`] before any state is touched.
pub fn config_fingerprint(cfg: &FleetConfig) -> u64 {
    let mut w = ByteWriter::new();
    w.put_str("century-fleet-config-v2");
    w.put_u64(cfg.seed);
    w.put_u64(cfg.horizon.as_secs());
    w.put_u8(match cfg.sampling {
        SamplingMode::Legacy => 0,
        SamplingMode::Aggregate => 1,
        #[cfg(feature = "reference-mode")]
        SamplingMode::Reference => 2,
    });
    w.put_u64(cfg.arms.len() as u64);
    for arm in &cfg.arms {
        w.put_str(arm.name);
        w.put_u64(arm.devices as u64);
        w.put_u64(arm.device_spec.report_interval.as_secs());
        w.put_u64(arm.per_packet_delivery.to_bits());
        w.put_u64(arm.dual_homed_fraction.to_bits());
        match arm.replace_devices {
            Some(delay) => {
                w.put_u8(1);
                w.put_u64(delay.as_secs());
            }
            None => w.put_u8(0),
        }
        match &arm.kind {
            ArmKind::Owned { gateways, spec } => {
                w.put_u8(0);
                w.put_u64(*gateways as u64);
                w.put_u64(spec.repair_delay.as_secs());
            }
            ArmKind::Federated { hotspots, wallet_dollars } => {
                w.put_u8(1);
                w.put_u32(hotspots.count());
                w.put_i128(wallet_dollars.micros());
            }
        }
    }
    snapshot::fnv1a(w.as_bytes())
}

/// Captures the engine mid-run into a complete sealed snapshot image
/// (framing, version byte and checksum trailer included).
///
/// Takes `&mut` because the engine's queue is drained and rebuilt to
/// observe its (time, FIFO) order — continuing the run afterwards is
/// bit-identical to never having snapshotted. Pass
/// [`ChaosProgress::default`] for plain runs.
pub fn checkpoint_bytes(engine: &mut Engine<FleetSim>, chaos: ChaosProgress) -> Vec<u8> {
    let cp = engine.checkpoint();
    let world = engine.world();
    let mut w = ByteWriter::with_capacity(4096);
    w.put_u64(config_fingerprint(&world.cfg));
    w.put_u64(world.cfg.seed);
    w.put_u64(world.cfg.horizon.as_secs());
    encode_engine(&mut w, &cp);
    w.put_u64(chaos.next);
    w.put_u64(chaos.applied);
    w.put_u64(chaos.skipped);
    w.put_u64(world.chaos_applied.get());
    w.put_u64(world.chaos_skipped.get());
    w.put_u64(world.arms.len() as u64);
    for arm in &world.arms {
        encode_arm(&mut w, arm);
    }
    snapshot::seal(FLEET_SNAPSHOT_VERSION, w.as_bytes())
}

/// [`checkpoint_bytes`] written atomically to `path`: temp-file sibling,
/// fsync, rename — a crash mid-write leaves either the previous file or a
/// torn temp file, never a half-written snapshot under the final name.
///
/// # Errors
///
/// [`SnapshotError::Io`] on any filesystem failure.
pub fn write_checkpoint(
    path: &Path,
    engine: &mut Engine<FleetSim>,
    chaos: ChaosProgress,
) -> Result<(), SnapshotError> {
    let bytes = checkpoint_bytes(engine, chaos);
    snapshot::write_atomic(path, &bytes)
}

/// Runs a plain (fault-free) simulation to the checkpoint boundary `at`
/// and writes an atomic snapshot there, returning the engine still
/// positioned at `at` — keep running it, or drop it and [`resume_from`]
/// later. Chaos runs checkpoint through the `chaos` crate instead, which
/// carries the injector's replay progress into the snapshot.
///
/// # Errors
///
/// [`SnapshotError::Io`] on any filesystem failure.
pub fn checkpoint_run(
    cfg: FleetConfig,
    at: SimTime,
    path: &Path,
) -> Result<Engine<FleetSim>, SnapshotError> {
    let mut engine = FleetSim::build(cfg);
    engine.run_until(at);
    write_checkpoint(path, &mut engine, ChaosProgress::default())?;
    Ok(engine)
}

/// Restores a mid-run simulation from a sealed snapshot image.
///
/// `cfg` must be the configuration the snapshot was taken under (checked
/// by fingerprint): the world skeleton is rebuilt from it and the stored
/// mutable state overlaid.
///
/// # Errors
///
/// Fail-closed on every defect: framing/checksum errors from
/// [`simcore::snapshot::open`], [`SnapshotError::ConfigMismatch`] for a
/// foreign config, [`SnapshotError::Truncated`]/[`SnapshotError::Corrupt`]
/// for payload damage.
pub fn resume_from_bytes(bytes: &[u8], cfg: FleetConfig) -> Result<ResumedFleet, SnapshotError> {
    let (_version, payload) = snapshot::open(bytes, FLEET_SNAPSHOT_VERSION)?;
    resume_payload(payload, cfg)
}

/// [`resume_from_bytes`] reading (and verifying) the file at `path`.
///
/// # Errors
///
/// As [`resume_from_bytes`], plus [`SnapshotError::Io`] on read failure.
pub fn resume_from(path: &Path, cfg: FleetConfig) -> Result<ResumedFleet, SnapshotError> {
    let (_version, payload) = snapshot::read_verified(path, FLEET_SNAPSHOT_VERSION)?;
    resume_payload(&payload, cfg)
}

fn encode_engine(w: &mut ByteWriter, cp: &EngineCheckpoint<Ev>) {
    w.put_time(cp.now);
    w.put_u64(cp.processed);
    w.put_u64(cp.dispatches.len() as u64);
    for (name, n) in &cp.dispatches {
        w.put_str(name);
        w.put_u64(*n);
    }
    w.put_u64(cp.queue_high_water as u64);
    w.put_u64(cp.hook_fires);
    w.put_u64(cp.events.len() as u64);
    for (at, ev) in &cp.events {
        w.put_time(*at);
        encode_ev(w, *ev);
    }
}

fn decode_engine(r: &mut ByteReader<'_>) -> Result<EngineCheckpoint<Ev>, SnapshotError> {
    let now = r.take_time()?;
    let processed = r.take_u64()?;
    let n_dispatches = r.take_count(16)?;
    let mut dispatches = Vec::with_capacity(n_dispatches);
    for _ in 0..n_dispatches {
        let name = r.take_str()?;
        let n = r.take_u64()?;
        dispatches.push((name, n));
    }
    let queue_high_water = usize::try_from(r.take_u64()?)
        .map_err(|_| SnapshotError::Corrupt { what: "queue high-water exceeds usize" })?;
    let hook_fires = r.take_u64()?;
    let n_events = r.take_count(9)?;
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let at = r.take_time()?;
        let ev = decode_ev(r)?;
        events.push((at, ev));
    }
    Ok(EngineCheckpoint { now, processed, dispatches, queue_high_water, hook_fires, events })
}

fn encode_ev(w: &mut ByteWriter, ev: Ev) {
    match ev {
        Ev::WeeklyCheck => w.put_u8(0),
        Ev::YearlyTick => w.put_u8(1),
        Ev::DeviceFail(ai, di) => {
            w.put_u8(2);
            w.put_u64(ai as u64);
            w.put_u64(di as u64);
        }
        Ev::DeviceReplace(ai, di) => {
            w.put_u8(3);
            w.put_u64(ai as u64);
            w.put_u64(di as u64);
        }
        Ev::GatewayFail(ai, gi) => {
            w.put_u8(4);
            w.put_u64(ai as u64);
            w.put_u64(gi as u64);
        }
        Ev::GatewayRepair(ai, gi) => {
            w.put_u8(5);
            w.put_u64(ai as u64);
            w.put_u64(gi as u64);
        }
        Ev::ProviderExit(ai) => {
            w.put_u8(6);
            w.put_u64(ai as u64);
        }
        Ev::BackhaulMigrated(ai) => {
            w.put_u8(7);
            w.put_u64(ai as u64);
        }
    }
}

fn take_index(r: &mut ByteReader<'_>) -> Result<usize, SnapshotError> {
    usize::try_from(r.take_u64()?)
        .map_err(|_| SnapshotError::Corrupt { what: "index exceeds usize" })
}

fn decode_ev(r: &mut ByteReader<'_>) -> Result<Ev, SnapshotError> {
    Ok(match r.take_u8()? {
        0 => Ev::WeeklyCheck,
        1 => Ev::YearlyTick,
        2 => Ev::DeviceFail(take_index(r)?, take_index(r)?),
        3 => Ev::DeviceReplace(take_index(r)?, take_index(r)?),
        4 => Ev::GatewayFail(take_index(r)?, take_index(r)?),
        5 => Ev::GatewayRepair(take_index(r)?, take_index(r)?),
        6 => Ev::ProviderExit(take_index(r)?),
        7 => Ev::BackhaulMigrated(take_index(r)?),
        _ => return Err(SnapshotError::Corrupt { what: "unknown event tag" }),
    })
}

fn encode_arm(w: &mut ByteWriter, arm: &ArmState) {
    w.put_u64(arm.id as u64);
    for s in arm.rng.state() {
        w.put_u64(s);
    }
    w.put_u64(arm.store.len() as u64);
    for di in 0..arm.store.len() {
        let dev = arm.store.row(di);
        w.put_time(dev.installed_at);
        w.put_time(dev.fails_at);
        w.put_bool(dev.failed);
        w.put_u64(dev.seq);
        w.put_time(dev.stuck_until);
        w.put_time(dev.byzantine_until);
    }
    match &arm.infra {
        ArmInfra::Owned { gateways, backhaul_down, sunset_logged, flap_until } => {
            w.put_u8(0);
            w.put_u64(gateways.len() as u64);
            for gw in gateways {
                w.put_time(gw.fails_at);
                w.put_bool(gw.down);
                w.put_u64(gw.repairs);
                w.put_time(gw.outage_until);
            }
            w.put_bool(*backhaul_down);
            w.put_bool(*sunset_logged);
            w.put_time(*flap_until);
        }
        ArmInfra::Federated { hotspots, wallets, dark_until } => {
            w.put_u8(1);
            w.put_u32(hotspots.count());
            w.put_u32(hotspots.year());
            w.put_u64(wallets.len() as u64);
            for i in 0..wallets.len() {
                let Some(wallet) = wallets.get(i) else { continue };
                let (balance, burned, funded, exhausted_at) = wallet.raw_state();
                w.put_u64(balance);
                w.put_u64(burned);
                w.put_i128(funded.micros());
                w.put_opt_time(exhausted_at);
            }
            w.put_time(*dark_until);
        }
    }
    // Ledger.
    w.put_str(arm.report.name);
    for v in [
        arm.report.weeks_up,
        arm.report.weeks_total,
        arm.report.readings_delivered,
        arm.report.readings_expected,
        arm.report.device_failures,
        arm.report.device_replacements,
        arm.report.gateway_repairs,
        arm.report.backhaul_migrations,
        arm.report.wallets_exhausted,
        arm.report.faults_injected,
    ] {
        w.put_u64(v);
    }
    w.put_f64(arm.report.labor.hours());
    w.put_i128(arm.report.spend.micros());
    w.put_u64(arm.report.lifetime_observations.len() as u64);
    for o in &arm.report.lifetime_observations {
        w.put_f64(o.time);
        w.put_bool(o.event);
    }
    // Diary (replaces the rebuilt arm's deployment entry on resume — the
    // stored stream already begins with it).
    w.put_u64(arm.diary.len() as u64);
    for entry in arm.diary.entries() {
        w.put_time(entry.at);
        w.put_u8(entry.severity.code());
        w.put_u8(entry.tier.code());
        w.put_str(&entry.message);
    }
    // Spans, plus the open-outage handle as an index into them.
    w.put_u64(arm.spans.len() as u64);
    for span in arm.spans.spans() {
        w.put_str(&span.name);
        w.put_time(span.start);
        w.put_opt_time(span.end);
    }
    match arm.outage_span {
        Some(id) => {
            w.put_u8(1);
            w.put_u64(id.index() as u64);
        }
        None => w.put_u8(0),
    }
    // The deferred weekly-delivery accumulator: the only telemetry buffer
    // with mid-run state (counters/histograms settle at finalize).
    w.put_u64(arm.weekly_acc.bucket_counts().len() as u64);
    for &c in arm.weekly_acc.bucket_counts() {
        w.put_u64(c);
    }
    w.put_u64(arm.weekly_acc.count());
    w.put_f64(arm.weekly_acc.sum());
}

fn decode_arm_into(r: &mut ByteReader<'_>, arm: &mut ArmState) -> Result<(), SnapshotError> {
    if r.take_u64()? != arm.id as u64 {
        return Err(SnapshotError::Corrupt { what: "arm id out of order" });
    }
    let mut state = [0u64; 4];
    for s in &mut state {
        *s = r.take_u64()?;
    }
    arm.rng = Rng::from_state(state);
    let n_devices = r.take_count(34)?;
    if n_devices != arm.store.len() {
        return Err(SnapshotError::Corrupt { what: "device count differs from config" });
    }
    for di in 0..n_devices {
        let mut dev = arm.store.row(di);
        dev.installed_at = r.take_time()?;
        dev.fails_at = r.take_time()?;
        dev.failed = r.take_bool()?;
        dev.seq = r.take_u64()?;
        dev.stuck_until = r.take_time()?;
        dev.byzantine_until = r.take_time()?;
        arm.store.set_row(di, &dev);
    }
    arm.store.rebuild_stuck_ids();
    match (&mut arm.infra, r.take_u8()?) {
        (ArmInfra::Owned { gateways, backhaul_down, sunset_logged, flap_until }, 0) => {
            let n_gw = r.take_count(25)?;
            if n_gw != gateways.len() {
                return Err(SnapshotError::Corrupt { what: "gateway count differs from config" });
            }
            for gw in gateways.iter_mut() {
                gw.fails_at = r.take_time()?;
                gw.down = r.take_bool()?;
                gw.repairs = r.take_u64()?;
                gw.outage_until = r.take_time()?;
            }
            *backhaul_down = r.take_bool()?;
            *sunset_logged = r.take_bool()?;
            *flap_until = r.take_time()?;
        }
        (ArmInfra::Federated { hotspots, wallets, dark_until }, 1) => {
            let count = r.take_u32()?;
            let year = r.take_u32()?;
            hotspots.restore_census(count, year);
            let n_wallets = r.take_count(33)?;
            if n_wallets != wallets.len() {
                return Err(SnapshotError::Corrupt { what: "wallet count differs from config" });
            }
            for i in 0..n_wallets {
                let balance = r.take_u64()?;
                let burned = r.take_u64()?;
                let funded = Usd::from_micros(r.take_i128()?);
                let exhausted_at = r.take_opt_time()?;
                let wallet =
                    econ::credits::Wallet::from_raw_state(balance, burned, funded, exhausted_at);
                wallets.set(i, &wallet);
            }
            *dark_until = r.take_time()?;
        }
        _ => return Err(SnapshotError::Corrupt { what: "arm infrastructure kind differs" }),
    }
    // Ledger.
    if r.take_str()? != arm.report.name {
        return Err(SnapshotError::Corrupt { what: "arm name differs from config" });
    }
    arm.report.weeks_up = r.take_u64()?;
    arm.report.weeks_total = r.take_u64()?;
    arm.report.readings_delivered = r.take_u64()?;
    arm.report.readings_expected = r.take_u64()?;
    arm.report.device_failures = r.take_u64()?;
    arm.report.device_replacements = r.take_u64()?;
    arm.report.gateway_repairs = r.take_u64()?;
    arm.report.backhaul_migrations = r.take_u64()?;
    arm.report.wallets_exhausted = r.take_u64()?;
    arm.report.faults_injected = r.take_u64()?;
    arm.report.labor = PersonHours::from_hours(restore_finite(r.take_f64()?, "labor hours")?);
    arm.report.spend = Usd::from_micros(r.take_i128()?);
    let n_obs = r.take_count(9)?;
    let mut observations = Vec::with_capacity(n_obs);
    for _ in 0..n_obs {
        let time = restore_finite(r.take_f64()?, "lifetime observation")?;
        let event = r.take_bool()?;
        observations.push(Observation { time, event });
    }
    arm.report.lifetime_observations = observations;
    // Diary: rebuilt wholesale in stored (time-ordered) sequence.
    let n_diary = r.take_count(18)?;
    let mut diary = Diary::new();
    for _ in 0..n_diary {
        let at = r.take_time()?;
        let severity = Severity::from_code(r.take_u8()?)
            .ok_or(SnapshotError::Corrupt { what: "unknown diary severity code" })?;
        let tier = Tier::from_code(r.take_u8()?)
            .ok_or(SnapshotError::Corrupt { what: "unknown diary tier code" })?;
        let message = r.take_str()?;
        diary.log(at, severity, tier, message);
    }
    arm.diary = diary;
    // Spans and the re-minted open-outage handle.
    let n_spans = r.take_count(25)?;
    let mut spans = Vec::with_capacity(n_spans);
    for _ in 0..n_spans {
        let name = r.take_str()?;
        let start = r.take_time()?;
        let end = r.take_opt_time()?;
        spans.push(Span { name, start, end });
    }
    arm.spans = SpanLog::restore(spans);
    arm.outage_span = match r.take_u8()? {
        0 => None,
        1 => {
            let index = take_index(r)?;
            Some(
                arm.spans
                    .handle(index)
                    .ok_or(SnapshotError::Corrupt { what: "outage span index out of range" })?,
            )
        }
        _ => return Err(SnapshotError::Corrupt { what: "unknown outage-span tag" }),
    };
    // Weekly accumulator buffer.
    let n_buckets = r.take_count(8)?;
    let mut counts = Vec::with_capacity(n_buckets);
    for _ in 0..n_buckets {
        counts.push(r.take_u64()?);
    }
    let count = r.take_u64()?;
    let sum = restore_finite(r.take_f64()?, "weekly accumulator sum")?;
    if !arm.weekly_acc.restore(&counts, count, sum) {
        return Err(SnapshotError::Corrupt { what: "weekly accumulator layout differs" });
    }
    Ok(())
}

/// Times in the simulation are finite by construction; a non-finite float
/// in a snapshot is damage, not data.
fn restore_finite(v: f64, what: &'static str) -> Result<f64, SnapshotError> {
    if v.is_finite() {
        Ok(v)
    } else {
        Err(SnapshotError::Corrupt { what })
    }
}

fn resume_payload(payload: &[u8], cfg: FleetConfig) -> Result<ResumedFleet, SnapshotError> {
    let mut r = ByteReader::new(payload);
    let stored_fp = r.take_u64()?;
    let current_fp = config_fingerprint(&cfg);
    if stored_fp != current_fp {
        return Err(SnapshotError::ConfigMismatch { stored: stored_fp, current: current_fp });
    }
    if r.take_u64()? != cfg.seed || r.take_u64()? != cfg.horizon.as_secs() {
        return Err(SnapshotError::ConfigMismatch { stored: stored_fp, current: current_fp });
    }
    let cp = decode_engine(&mut r)?;
    let horizon = SimTime::ZERO + cfg.horizon;
    if cp.now > horizon {
        return Err(SnapshotError::Corrupt { what: "checkpoint clock past the horizon" });
    }
    let chaos =
        ChaosProgress { next: r.take_u64()?, applied: r.take_u64()?, skipped: r.take_u64()? };
    let applied_counter = r.take_u64()?;
    let skipped_counter = r.take_u64()?;
    // Rebuild the world skeleton deterministically from the config, then
    // discard the freshly primed queue: the stored checkpoint carries the
    // authoritative pending events.
    let (mut world, _primed) = FleetSim::build(cfg).into_parts();
    let n_arms = r.take_count(64)?;
    if n_arms != world.arms.len() {
        return Err(SnapshotError::Corrupt { what: "arm count differs from config" });
    }
    for arm in &mut world.arms {
        decode_arm_into(&mut r, arm)?;
    }
    r.finish()?;
    world.chaos_applied.add(applied_counter);
    world.chaos_skipped.add(skipped_counter);
    let engine = Engine::resume(world, cp, crate::sim::resolve_event_kind)
        .map_err(|_| SnapshotError::Corrupt { what: "checkpoint names unknown event kind" })?;
    Ok(ResumedFleet { engine, chaos })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;

    fn cfg(seed: u64) -> FleetConfig {
        FleetConfig::paper_experiment(seed)
    }

    fn week(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_weeks(n)
    }

    #[test]
    fn snapshot_resume_matches_uninterrupted_run() {
        let baseline = FleetSim::run(cfg(11));
        let mut engine = FleetSim::build(cfg(11));
        engine.run_until(week(52));
        let bytes = checkpoint_bytes(&mut engine, ChaosProgress::default());
        drop(engine);
        let resumed = resume_from_bytes(&bytes, cfg(11)).expect("snapshot round-trips");
        assert_eq!(resumed.chaos, ChaosProgress::default());
        let report = resumed.run_to_horizon();
        assert_eq!(report.digest(), baseline.digest());
        assert_eq!(report.events_processed, baseline.events_processed);
    }

    #[test]
    fn checkpointing_does_not_perturb_the_run() {
        let baseline = FleetSim::run(cfg(12));
        let horizon = SimTime::ZERO + cfg(12).horizon;
        let mut engine = FleetSim::build(cfg(12));
        engine.run_until(week(100));
        let _ = checkpoint_bytes(&mut engine, ChaosProgress::default());
        engine.run_until(horizon);
        let report = FleetSim::into_report(engine, horizon);
        assert_eq!(report.digest(), baseline.digest());
    }

    #[test]
    fn foreign_config_is_refused() {
        let mut engine = FleetSim::build(cfg(13));
        engine.run_until(week(10));
        let bytes = checkpoint_bytes(&mut engine, ChaosProgress::default());
        let Err(err) = resume_from_bytes(&bytes, cfg(14)) else {
            panic!("seed mismatch must be refused");
        };
        assert!(matches!(err, SnapshotError::ConfigMismatch { .. }), "{err}");
        let mut small = cfg(13);
        small.arms.truncate(1);
        let Err(err) = resume_from_bytes(&bytes, small) else {
            panic!("arm-list mismatch must be refused");
        };
        assert!(matches!(err, SnapshotError::ConfigMismatch { .. }), "{err}");
    }

    #[test]
    fn truncated_and_corrupted_images_fail_closed() {
        let mut engine = FleetSim::build(cfg(15));
        engine.run_until(week(26));
        let bytes = checkpoint_bytes(&mut engine, ChaosProgress::default());
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                resume_from_bytes(&bytes[..cut], cfg(15)).is_err(),
                "truncation to {cut} bytes must be rejected"
            );
        }
        let mut flipped = bytes.clone();
        flipped[bytes.len() / 3] ^= 0x40;
        assert!(matches!(
            resume_from_bytes(&flipped, cfg(15)),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn fingerprint_separates_configs() {
        assert_ne!(config_fingerprint(&cfg(1)), config_fingerprint(&cfg(2)));
        let mut wider = cfg(1);
        wider.arms[0].devices += 1;
        assert_ne!(config_fingerprint(&cfg(1)), config_fingerprint(&wider));
        assert_eq!(config_fingerprint(&cfg(1)), config_fingerprint(&cfg(1)));
    }
}
