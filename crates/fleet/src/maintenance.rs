//! Maintenance crews, truck rolls, and geographic batching.
//!
//! Two of the paper's observations live here:
//!
//! * §1: replacing a city's worth of devices costs person-hours that scale
//!   with fleet size — ~200,000 hours for LA's census at 20 min/device.
//! * §1: *"infrastructure projects operate in geographical batches to keep
//!   costs down — one project repaves a block, installs its traffic
//!   sensors, and replaces its streetlights."* Batched service amortizes
//!   travel; reactive service pays full truck rolls.

use econ::labor::PersonHours;
use econ::money::Usd;
use simcore::dist::LogNormal;
use simcore::rng::Rng;
use simcore::time::SimDuration;

/// A maintenance workforce.
#[derive(Clone, Copy, Debug)]
pub struct Crew {
    /// Number of field technicians.
    pub workers: u32,
    /// Working hours per technician per day.
    pub hours_per_day: f64,
    /// Fully-burdened hourly labor rate.
    pub hourly_rate: Usd,
}

impl Crew {
    /// A small municipal crew: 4 techs, 8 h/day, $85/h burdened.
    pub fn municipal_small() -> Self {
        Crew { workers: 4, hours_per_day: 8.0, hourly_rate: Usd::from_dollars(85) }
    }

    /// Calendar time for this crew to complete `effort`.
    pub fn calendar_time(&self, effort: PersonHours) -> SimDuration {
        effort.calendar_time(self.workers, self.hours_per_day)
    }

    /// Labor cost of `effort`.
    pub fn cost(&self, effort: PersonHours) -> Usd {
        effort.cost(self.hourly_rate)
    }
}

/// Service-time model for one site visit.
#[derive(Clone, Debug)]
pub struct ServiceTimes {
    /// Travel time per *dispatch* (a reactive roll pays it once per device;
    /// a batch pays it once per batch plus a short hop between sites).
    pub travel: SimDuration,
    /// Hop time between adjacent sites within a batch.
    pub intra_batch_hop: SimDuration,
    /// On-site service time distribution (minutes-scale, lognormal).
    pub on_site: LogNormal,
}

impl ServiceTimes {
    /// The paper's nominal figures: 20 minutes total per device for a
    /// reactive roll. We split that into 12 min travel + 8 min on-site
    /// (mean), with a 2-minute intra-batch hop.
    #[allow(clippy::expect_used)]
    pub fn paper_nominal() -> Self {
        ServiceTimes {
            travel: SimDuration::from_mins(12),
            intra_batch_hop: SimDuration::from_mins(2),
            // simlint: allow(P001, constant parameters; infallible by construction)
            on_site: LogNormal::from_mean_cv(8.0, 0.4).expect("valid parameters"),
        }
    }

    /// Samples the on-site minutes for one device.
    pub fn sample_on_site_mins(&self, rng: &mut Rng) -> f64 {
        self.on_site.sample(rng)
    }
}

/// Effort to service `n` devices reactively (one dispatch each).
pub fn reactive_effort(times: &ServiceTimes, n: u64, rng: &mut Rng) -> PersonHours {
    let mut total_mins = 0.0;
    for _ in 0..n {
        total_mins += times.travel.as_secs() as f64 / 60.0 + times.sample_on_site_mins(rng);
    }
    PersonHours::from_hours(total_mins / 60.0)
}

/// Effort to service `n` devices in geographic batches of `batch_size`
/// (one travel per batch, hops between sites).
///
/// # Panics
///
/// Panics if `batch_size == 0`.
pub fn batched_effort(
    times: &ServiceTimes,
    n: u64,
    batch_size: u64,
    rng: &mut Rng,
) -> PersonHours {
    assert!(batch_size > 0, "batch size must be positive");
    let batches = n.div_ceil(batch_size);
    let mut total_mins = batches as f64 * times.travel.as_secs() as f64 / 60.0;
    for _ in 0..n {
        total_mins += times.sample_on_site_mins(rng);
    }
    // Hops: every device after the first in each batch.
    let hops = n.saturating_sub(batches);
    total_mins += hops as f64 * times.intra_batch_hop.as_secs() as f64 / 60.0;
    PersonHours::from_hours(total_mins / 60.0)
}

/// The batching advantage: reactive effort divided by batched effort for
/// the same `n`, under true common random numbers: both policies mint the
/// *same* `svc-crn` substream, and both draw exactly `n` on-site service
/// times in device order, so each device sees an identical service draw
/// under either policy (see STREAMS.md).
pub fn batching_speedup(times: &ServiceTimes, n: u64, batch_size: u64, seed: u64) -> f64 {
    let base = Rng::seed_from(seed);
    let mut r1 = base.split("svc-crn", 0);
    let mut r2 = base.split("svc-crn", 0);
    let reactive = reactive_effort(times, n, &mut r1);
    let batched = batched_effort(times, n, batch_size, &mut r2);
    if batched.hours() <= 0.0 {
        return 1.0;
    }
    reactive.hours() / batched.hours()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reactive_matches_paper_nominal() {
        // 20 min/device mean -> 1,000 devices ≈ 333 person-hours.
        let times = ServiceTimes::paper_nominal();
        let mut rng = Rng::seed_from(1);
        let e = reactive_effort(&times, 1_000, &mut rng);
        assert!((e.hours() - 333.3).abs() < 15.0, "hours {}", e.hours());
    }

    #[test]
    fn batching_amortizes_travel() {
        let times = ServiceTimes::paper_nominal();
        let speedup = batching_speedup(&times, 10_000, 25, 7);
        // Travel drops from 12 min/device to ~12/25 + 2 min/device:
        // (12+8)/(8+2+0.48) ≈ 1.9.
        assert!(speedup > 1.5 && speedup < 2.5, "speedup {speedup}");
    }

    #[test]
    fn batch_of_one_is_reactive_plus_no_hops() {
        let times = ServiceTimes::paper_nominal();
        let base = Rng::seed_from(3);
        let mut r1 = base.split("a", 0);
        let mut r2 = base.split("a", 0);
        let reactive = reactive_effort(&times, 100, &mut r1);
        let batched = batched_effort(&times, 100, 1, &mut r2);
        assert!((reactive.hours() - batched.hours()).abs() < 1e-9);
    }

    #[test]
    fn crew_calendar_and_cost() {
        let crew = Crew::municipal_small();
        let effort = PersonHours::from_hours(320.0);
        // 4 workers * 8 h = 32 h/day -> 10 days.
        assert!((crew.calendar_time(effort).as_days_f64() - 10.0).abs() < 1e-9);
        assert_eq!(crew.cost(effort), Usd::from_dollars(27_200));
    }

    #[test]
    fn zero_devices_zero_effort() {
        let times = ServiceTimes::paper_nominal();
        let mut rng = Rng::seed_from(4);
        assert_eq!(reactive_effort(&times, 0, &mut rng).hours(), 0.0);
        let b = batched_effort(&times, 0, 10, &mut rng);
        assert_eq!(b.hours(), 0.0);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        let times = ServiceTimes::paper_nominal();
        batched_effort(&times, 10, 0, &mut Rng::seed_from(5));
    }
}
