//! Gateways: routers by principle, Raspberry Pis in practice (§3.2, §4.2).
//!
//! The paper's owned arm runs Pi-class 802.15.4 gateways; the takeaways say
//! gateways should *only route*, serve all manufacturers, and be
//! replaceable through a commissioning process. Unlike edge devices,
//! gateways **are** maintained: failures trigger a repair visit after a
//! configurable delay.

use backhaul::provider::Provider;
use backhaul::tech::BackhaulTech;
use reliability::system::bom;
use simcore::rng::Rng;
use simcore::time::{SimDuration, SimTime};

/// Gateway service posture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GatewayMode {
    /// Forward-only, aggressively firewalled (§4.4): minimal attack
    /// surface, minimal software upkeep.
    UnidirectionalFirewalled,
    /// Full bidirectional service: more useful, more upkeep (patching a
    /// public-facing networked device).
    Bidirectional,
}

impl GatewayMode {
    /// Yearly software-maintenance burden in person-hours (patching,
    /// certificate rotation, incident response). The firewalled
    /// unidirectional posture nearly eliminates it.
    pub fn yearly_upkeep_hours(self) -> f64 {
        match self {
            GatewayMode::UnidirectionalFirewalled => 0.5,
            GatewayMode::Bidirectional => 6.0,
        }
    }
}

/// A gateway's configuration.
#[derive(Clone, Copy, Debug)]
pub struct GatewaySpec {
    /// Backhaul attachment.
    pub backhaul: BackhaulTech,
    /// Backhaul provider characteristics.
    pub provider: Provider,
    /// Service posture.
    pub mode: GatewayMode,
    /// Repair turnaround once a failure is noticed.
    pub repair_delay: SimDuration,
    /// Serves devices of every manufacturer (the §3.2 interop takeaway);
    /// false models a vendor-locked gateway.
    pub serves_all_vendors: bool,
}

impl GatewaySpec {
    /// The paper's owned 802.15.4 gateway: campus Ethernet, unidirectional
    /// firewalled Pi, one-week repair turnaround, serves everyone.
    pub fn paper_owned() -> Self {
        GatewaySpec {
            backhaul: BackhaulTech::Ethernet,
            provider: Provider::campus(),
            mode: GatewayMode::UnidirectionalFirewalled,
            repair_delay: SimDuration::from_weeks(1),
            serves_all_vendors: true,
        }
    }
}

/// One deployed gateway.
#[derive(Clone, Debug)]
pub struct GatewayState {
    /// Configuration.
    pub spec: GatewaySpec,
    /// When the current hardware fails next.
    pub fails_at: SimTime,
    /// Whether currently down awaiting repair.
    pub down: bool,
    /// Hardware replacements so far.
    pub repairs: u64,
    /// Chaos: suppressed (storm/power outage) until this time.
    pub outage_until: SimTime,
}

impl GatewayState {
    /// Deploys a gateway at `now`, sampling Pi-class hardware lifetime.
    pub fn deploy(spec: GatewaySpec, now: SimTime, env: &bom::Environment, rng: &mut Rng) -> Self {
        GatewayState {
            spec,
            fails_at: now.saturating_add(Self::sample_life(env, rng)),
            down: false,
            repairs: 0,
            outage_until: SimTime::ZERO,
        }
    }

    /// Chaos: suppresses forwarding until `until` (correlated regional
    /// outage). Overlapping outages keep the latest end time.
    pub fn suppress_until(&mut self, until: SimTime) {
        self.outage_until = self.outage_until.max(until);
    }

    fn sample_life(env: &bom::Environment, rng: &mut Rng) -> SimDuration {
        let block = bom::pi_gateway(env);
        SimDuration::from_years_f64(block.sample_ttf(rng))
    }

    /// Marks the hardware failed at `now`; returns when the repair visit
    /// completes.
    pub fn fail(&mut self, now: SimTime) -> SimTime {
        self.down = true;
        now.saturating_add(self.spec.repair_delay)
    }

    /// Completes a repair at `now` with fresh hardware; samples the next
    /// failure time.
    pub fn repair(&mut self, now: SimTime, env: &bom::Environment, rng: &mut Rng) {
        self.down = false;
        self.repairs += 1;
        self.fails_at = now.saturating_add(Self::sample_life(env, rng));
    }

    /// Whether the gateway forwards traffic at `t`: hardware up, backhaul
    /// technology still in service, and no chaos-injected outage active.
    pub fn forwarding_at(&self, t: SimTime) -> bool {
        !self.down
            && t < self.fails_at
            && t >= self.outage_until
            && self.spec.backhaul.available(t.as_years_f64())
    }
}

/// Commissioning/migration model (§3.2): replacing a gateway uses the
/// outgoing unit as a trusted third party, so migration takes bounded
/// effort per attached device rather than per-device re-provisioning.
#[derive(Clone, Copy, Debug)]
pub struct Commissioning {
    /// Fixed effort to stand up and key the new gateway, hours.
    pub base_hours: f64,
    /// Per-device migration effort when the old gateway can vouch, hours.
    pub per_device_hours_trusted: f64,
    /// Per-device effort when devices must be re-provisioned by hand
    /// (vendor-locked or no trusted handoff), hours.
    pub per_device_hours_manual: f64,
}

impl Default for Commissioning {
    fn default() -> Self {
        Commissioning {
            base_hours: 2.0,
            per_device_hours_trusted: 0.01,
            per_device_hours_manual: 0.5,
        }
    }
}

impl Commissioning {
    /// Total migration effort for `devices` attached devices, with or
    /// without a trusted-third-party handoff.
    pub fn migration_hours(&self, devices: u64, trusted_handoff: bool) -> f64 {
        let per = if trusted_handoff {
            self.per_device_hours_trusted
        } else {
            self.per_device_hours_manual
        };
        self.base_hours + per * devices as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> bom::Environment {
        bom::Environment::default()
    }

    #[test]
    fn deploy_fail_repair_cycle() {
        let mut rng = Rng::seed_from(1);
        let mut gw = GatewayState::deploy(GatewaySpec::paper_owned(), SimTime::ZERO, &env(), &mut rng);
        assert!(gw.forwarding_at(SimTime::ZERO));
        let fail_time = gw.fails_at;
        let repair_done = gw.fail(fail_time);
        assert!(!gw.forwarding_at(fail_time));
        assert_eq!(repair_done, fail_time + SimDuration::from_weeks(1));
        gw.repair(repair_done, &env(), &mut rng);
        assert!(gw.forwarding_at(repair_done));
        assert_eq!(gw.repairs, 1);
        assert!(gw.fails_at > repair_done);
    }

    #[test]
    fn pi_gateway_needs_repairs_within_decades() {
        // Median Pi-class TTF is a handful of years; over 50 years a
        // gateway should cycle hardware multiple times.
        let mut rng = Rng::seed_from(2);
        let mut gw = GatewayState::deploy(GatewaySpec::paper_owned(), SimTime::ZERO, &env(), &mut rng);
        let horizon = SimTime::from_years(50);
        while gw.fails_at < horizon {
            let repaired_at = gw.fail(gw.fails_at);
            gw.repair(repaired_at, &env(), &mut rng);
        }
        assert!(gw.repairs >= 3, "repairs {}", gw.repairs);
    }

    #[test]
    fn cellular_gateway_loses_service_at_sunset() {
        use backhaul::tech::CellularGen;
        let mut rng = Rng::seed_from(3);
        let spec = GatewaySpec {
            backhaul: BackhaulTech::Cellular(CellularGen::G3),
            ..GatewaySpec::paper_owned()
        };
        let gw = GatewayState::deploy(spec, SimTime::ZERO, &env(), &mut rng);
        // Even with working hardware, service dies at the 3G sunset (yr 12).
        if gw.fails_at > SimTime::from_years(13) {
            assert!(!gw.forwarding_at(SimTime::from_years(13)));
        }
        assert_eq!(gw.forwarding_at(SimTime::from_years(5)), gw.fails_at > SimTime::from_years(5));
    }

    #[test]
    fn unidirectional_mode_slashes_upkeep() {
        assert!(
            GatewayMode::Bidirectional.yearly_upkeep_hours()
                > GatewayMode::UnidirectionalFirewalled.yearly_upkeep_hours() * 5.0
        );
    }

    #[test]
    fn trusted_commissioning_scales() {
        let c = Commissioning::default();
        let trusted = c.migration_hours(1_000, true);
        let manual = c.migration_hours(1_000, false);
        assert!((trusted - 12.0).abs() < 1e-9, "trusted {trusted}");
        assert!((manual - 502.0).abs() < 1e-9, "manual {manual}");
        assert!(manual > trusted * 20.0);
    }
}
