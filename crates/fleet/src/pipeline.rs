//! Ship-of-Theseus cohort pipelining (§1, §3.4; exhibit E3).
//!
//! *"Constituent device lifetimes are pipelined, where some 15-year sensors
//! are 10 years into their service life while others are being freshly
//! deployed."* This module simulates a fleet of mounts whose devices are
//! deployed in cohorts — staggered (pipelined) or all at once (en masse) —
//! and replaced on failure, producing the aggregate-continuity statistics
//! the paper argues from: fraction of fleet alive over time, replacement
//! labor per year, and peak-year workload.

use reliability::hazard::Hazard;
use simcore::rng::Rng;
use simcore::series::Series;
use simcore::time::SimTime;

/// How the initial fleet is rolled out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rollout {
    /// Everything deployed in year 0 (the "replace one sensor type en
    /// masse" anti-pattern).
    EnMasse,
    /// Deployment staggered uniformly over the given number of years
    /// (geographic batches, one district at a time).
    Staggered {
        /// Years over which cohorts are spread.
        years: u32,
    },
}

/// Configuration of a pipelined-fleet run.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Number of mounts (each hosts exactly one device when serviced).
    pub mounts: u32,
    /// Rollout policy.
    pub rollout: Rollout,
    /// Replacement lag after a failure, in years (procurement + visit).
    pub replace_lag_years: f64,
    /// Horizon in years.
    pub horizon_years: f64,
}

/// Results of a pipelined-fleet run.
#[derive(Clone, Debug)]
pub struct PipelineRun {
    /// Fraction of mounts with a live device, sampled yearly.
    pub alive_fraction: Series,
    /// Replacements performed per year (index = year).
    pub replacements_per_year: Vec<u32>,
    /// Total replacements over the horizon.
    pub total_replacements: u64,
    /// Worst single-year replacement count.
    pub peak_year_replacements: u32,
    /// Time-average alive fraction.
    pub mean_alive: f64,
}

/// Simulates the fleet under the given lifetime model.
///
/// Each mount draws independent device lifetimes from `ttf`; on failure a
/// replacement arrives `replace_lag_years` later with a fresh lifetime.
pub fn run<H: Hazard + ?Sized>(cfg: &PipelineConfig, ttf: &H, rng: &mut Rng) -> PipelineRun {
    assert!(cfg.mounts > 0, "need at least one mount");
    assert!(cfg.horizon_years > 0.0, "horizon must be positive");
    assert!(cfg.replace_lag_years >= 0.0, "lag must be >= 0");

    // Per-mount chronology of [install, fail) intervals.
    let years = cfg.horizon_years;
    let n_years = years.ceil() as usize;
    let mut replacements_per_year = vec![0u32; n_years];
    let mut total_replacements = 0u64;
    // alive[y] accumulates the fraction of the year each mount was live.
    let mut alive = vec![0.0f64; n_years];

    for m in 0..cfg.mounts {
        let mut mrng = rng.split("mount", m as u64);
        let mut t = match cfg.rollout {
            Rollout::EnMasse => 0.0,
            Rollout::Staggered { years } => {
                mrng.next_f64() * years as f64
            }
        };
        let mut first = true;
        while t < years {
            if !first {
                total_replacements += 1;
                let y = t as usize;
                if y < n_years {
                    replacements_per_year[y] += 1;
                }
            }
            first = false;
            let life = ttf.sample_ttf(&mut mrng);
            let up_end = (t + life).min(years);
            // Credit alive time year by year.
            let mut a = t;
            while a < up_end {
                let y = a as usize;
                let year_end = (y + 1) as f64;
                let credit = up_end.min(year_end) - a;
                alive[y] += credit;
                a = year_end;
            }
            t += life + cfg.replace_lag_years;
        }
    }

    let mut series = Series::new("alive-fraction");
    let mounts = cfg.mounts as f64;
    let mut sum = 0.0;
    for (y, &a) in alive.iter().enumerate() {
        let frac = a / mounts;
        sum += frac;
        series.push(SimTime::from_years(y as u64), frac);
    }
    let peak = replacements_per_year.iter().copied().max().unwrap_or(0);
    PipelineRun {
        alive_fraction: series,
        replacements_per_year,
        total_replacements,
        peak_year_replacements: peak,
        mean_alive: sum / n_years as f64,
    }
}

/// Steady-state fleet age statistics: mean and P90 of the in-service
/// device age across mounts at the horizon (for the Figure-1 "lifetime
/// variability" narrative).
pub fn fleet_age_at_horizon<H: Hazard + ?Sized>(
    cfg: &PipelineConfig,
    ttf: &H,
    rng: &mut Rng,
) -> (f64, f64) {
    assert!(cfg.mounts > 0, "need at least one mount");
    let years = cfg.horizon_years;
    let mut ages: Vec<f64> = Vec::with_capacity(cfg.mounts as usize);
    for m in 0..cfg.mounts {
        let mut mrng = rng.split("age-mount", m as u64);
        let mut t = match cfg.rollout {
            Rollout::EnMasse => 0.0,
            Rollout::Staggered { years } => mrng.next_f64() * years as f64,
        };
        let mut installed = t;
        while t < years {
            let life = ttf.sample_ttf(&mut mrng);
            if t + life >= years {
                installed = t;
                break;
            }
            t += life + cfg.replace_lag_years;
            installed = t;
        }
        ages.push((years - installed).max(0.0));
    }
    ages.sort_by(f64::total_cmp);
    let mean = ages.iter().sum::<f64>() / ages.len() as f64;
    let idx = ((ages.len() as f64 * 0.9) as usize).min(ages.len() - 1);
    let p90 = ages[idx];
    (mean, p90)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reliability::hazard::{ExponentialHazard, WeibullHazard};

    fn cfg(rollout: Rollout) -> PipelineConfig {
        PipelineConfig {
            mounts: 500,
            rollout,
            replace_lag_years: 0.1,
            horizon_years: 60.0,
        }
    }

    #[test]
    fn fleet_outlives_any_device() {
        // 15-year devices, 60-year horizon: the fleet stays >90 % alive
        // throughout (after rollout), though every device dies several
        // times over — the Ship of Theseus.
        let ttf = WeibullHazard::with_median(4.0, 15.0);
        let mut rng = Rng::seed_from(1);
        let run = run(&cfg(Rollout::EnMasse), &ttf, &mut rng);
        assert!(run.mean_alive > 0.9, "mean alive {}", run.mean_alive);
        assert!(run.total_replacements > 1_000);
    }

    #[test]
    fn staggering_flattens_replacement_peaks() {
        // Sharp 15-year lifetimes deployed en masse echo as synchronized
        // replacement waves; staggering spreads them.
        let ttf = WeibullHazard::with_median(10.0, 15.0); // Sharp wear-out.
        let base = Rng::seed_from(2);
        let mut r1 = base.split("a", 0);
        let mut r2 = base.split("b", 0);
        let en_masse = run(&cfg(Rollout::EnMasse), &ttf, &mut r1);
        let staggered = run(&cfg(Rollout::Staggered { years: 15 }), &ttf, &mut r2);
        assert!(
            staggered.peak_year_replacements * 2 < en_masse.peak_year_replacements,
            "staggered peak {} vs en-masse {}",
            staggered.peak_year_replacements,
            en_masse.peak_year_replacements
        );
    }

    #[test]
    fn replacement_totals_similar_across_rollouts() {
        let ttf = ExponentialHazard::with_mttf(10.0);
        let base = Rng::seed_from(3);
        let mut r1 = base.split("a", 0);
        let mut r2 = base.split("b", 0);
        let a = run(&cfg(Rollout::EnMasse), &ttf, &mut r1);
        let b = run(&cfg(Rollout::Staggered { years: 10 }), &ttf, &mut r2);
        // Staggered fleets deploy later so replace slightly less.
        assert!(b.total_replacements < a.total_replacements);
        let ratio = b.total_replacements as f64 / a.total_replacements as f64;
        assert!(ratio > 0.8, "ratio {ratio}");
    }

    #[test]
    fn alive_series_spans_horizon() {
        let ttf = ExponentialHazard::with_mttf(10.0);
        let mut rng = Rng::seed_from(4);
        let r = run(&cfg(Rollout::EnMasse), &ttf, &mut rng);
        assert_eq!(r.alive_fraction.len(), 60);
        for &(_, v) in r.alive_fraction.points() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn replace_lag_lowers_availability() {
        let ttf = ExponentialHazard::with_mttf(5.0);
        let base = Rng::seed_from(5);
        let mut r1 = base.split("a", 0);
        let mut r2 = base.split("a", 0); // Same stream: identical lifetimes.
        let fast = run(
            &PipelineConfig { replace_lag_years: 0.0, ..cfg(Rollout::EnMasse) },
            &ttf,
            &mut r1,
        );
        let slow = run(
            &PipelineConfig { replace_lag_years: 1.0, ..cfg(Rollout::EnMasse) },
            &ttf,
            &mut r2,
        );
        assert!(slow.mean_alive < fast.mean_alive - 0.05);
    }

    #[test]
    fn fleet_age_mean_below_mttf() {
        let ttf = WeibullHazard::with_median(4.0, 15.0);
        let mut rng = Rng::seed_from(6);
        let (mean, p90) = fleet_age_at_horizon(&cfg(Rollout::Staggered { years: 15 }), &ttf, &mut rng);
        assert!(mean > 0.0 && mean < ttf.mttf());
        assert!(p90 > mean);
    }

    #[test]
    #[should_panic(expected = "mount")]
    fn zero_mounts_panics() {
        let ttf = ExponentialHazard::with_mttf(5.0);
        run(
            &PipelineConfig {
                mounts: 0,
                rollout: Rollout::EnMasse,
                replace_lag_years: 0.0,
                horizon_years: 10.0,
            },
            &ttf,
            &mut Rng::seed_from(7),
        );
    }
}
