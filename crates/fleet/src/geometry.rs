//! Fleet geometry: where each arm's devices physically sit.
//!
//! The event simulation itself is placement-free — delivery paths are
//! resolved probabilistically — but geometric chaos (a storm disc
//! sweeping a city, DESIGN.md §14) needs real coordinates to decide who
//! is underneath it. [`FleetGeometry`] derives a deterministic layout
//! from a [`FleetConfig`] alone: each arm's devices are scattered
//! uniformly over a square district whose area scales with the device
//! count at a fixed urban density, from an RNG stream keyed only by the
//! master seed and the arm index. Two runs of the same config agree on
//! every coordinate; the layout never consumes simulation randomness.

use net::grid::SpatialGrid;
use net::topology::{uniform_scatter, Point};
use simcore::rng::Rng;

use crate::sim::FleetConfig;

/// Device density used to size an arm's district: ~600 devices per km²
/// is street-asset scale (LA's ~320k poles over ~500 km² of city is the
/// calibration point).
pub const DEVICES_PER_KM2: f64 = 600.0;

/// One arm's physical layout.
#[derive(Clone, Debug)]
pub struct ArmGeometry {
    /// Square district side (m).
    pub side_m: f64,
    /// Device positions, indexed by device id.
    pub devices: Vec<Point>,
}

impl ArmGeometry {
    /// A spatial grid over this arm's devices with the given cell side —
    /// the index geometric chaos selects victims through.
    pub fn grid(&self, cell_m: f64) -> SpatialGrid {
        SpatialGrid::build(&self.devices, cell_m)
    }
}

/// Deterministic per-arm device layouts for a whole fleet.
#[derive(Clone, Debug)]
pub struct FleetGeometry {
    /// Per-arm layouts, indexed by arm.
    pub arms: Vec<ArmGeometry>,
}

impl FleetGeometry {
    /// Derives the layout for `cfg`. Pure: depends only on `cfg.seed`,
    /// the arm count, and each arm's device count.
    pub fn for_config(cfg: &FleetConfig) -> FleetGeometry {
        let root = Rng::seed_from(cfg.seed);
        let arms = cfg
            .arms
            .iter()
            .enumerate()
            .map(|(ai, arm)| {
                // At least one block so tiny test arms still have extent.
                let km2 = (arm.devices as f64 / DEVICES_PER_KM2).max(0.01);
                let side_m = (km2 * 1e6).sqrt();
                let mut rng = root.split("geometry", ai as u64);
                let devices = uniform_scatter(arm.devices, side_m, side_m, &mut rng);
                ArmGeometry { side_m, devices }
            })
            .collect();
        FleetGeometry { arms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_deterministic_and_in_bounds() {
        let cfg = FleetConfig::paper_experiment(42);
        let a = FleetGeometry::for_config(&cfg);
        let b = FleetGeometry::for_config(&cfg);
        assert_eq!(a.arms.len(), cfg.arms.len());
        for (ai, (ga, gb)) in a.arms.iter().zip(&b.arms).enumerate() {
            assert_eq!(ga.devices.len(), cfg.arms[ai].devices);
            assert_eq!(ga.side_m, gb.side_m);
            for (pa, pb) in ga.devices.iter().zip(&gb.devices) {
                assert_eq!(pa.x, pb.x);
                assert_eq!(pa.y, pb.y);
                assert!(pa.x >= 0.0 && pa.x <= ga.side_m);
                assert!(pa.y >= 0.0 && pa.y <= ga.side_m);
            }
        }
    }

    #[test]
    fn different_seeds_move_devices() {
        let a = FleetGeometry::for_config(&FleetConfig::paper_experiment(1));
        let b = FleetGeometry::for_config(&FleetConfig::paper_experiment(2));
        let moved = a.arms[0]
            .devices
            .iter()
            .zip(&b.arms[0].devices)
            .filter(|(p, q)| p.distance(q) > 1.0)
            .count();
        assert!(moved > 0, "seed must drive the layout");
    }

    #[test]
    fn grid_round_trip_selects_devices() {
        let cfg = FleetConfig::paper_experiment(7);
        let geo = FleetGeometry::for_config(&cfg);
        let arm = &geo.arms[0];
        let grid = arm.grid(50.0);
        let center = arm.devices[0];
        let hit = grid.within(center, 1.0);
        assert!(hit.contains(&0), "a device is inside its own storm");
    }
}
